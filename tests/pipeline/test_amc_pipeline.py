"""Golden-pinned tests for the stage pipeline behind run_amc.

The hashes below were captured from the pre-pipeline monolithic
``run_amc`` (commit bdd69d5) on the exact scenes constructed here; the
refactored pipeline must reproduce every output bit-for-bit, on every
backend, serial and chunk-parallel.
"""

import hashlib

import numpy as np
import pytest

from repro.core import AMCConfig, run_amc
from repro.hsi import SceneParams, generate_scene
from repro.pipeline import (
    AMC_STAGE_NAMES,
    Pipeline,
    build_amc_pipeline,
    execute_amc,
)
from repro.profiling import Profiler


def sha(array) -> str:
    return hashlib.sha256(
        np.ascontiguousarray(array).tobytes()).hexdigest()[:16]


@pytest.fixture(scope="module")
def golden_scene():
    """The scene the pre-refactor goldens were captured on."""
    return generate_scene(SceneParams(lines=20, samples=18, band_count=24,
                                      seed=99, min_field=4))


class TestGoldenBitIdentity:
    @pytest.mark.parametrize("n_workers", [1, 2])
    @pytest.mark.parametrize("backend,mei_hash", [
        ("reference", "28bb97cfd84205d5"),
        ("gpu", "313e9dbe50fa516c"),
    ])
    def test_host_tail_paths(self, golden_scene, backend, mei_hash,
                             n_workers):
        config = AMCConfig(n_classes=5, backend=backend,
                           n_workers=n_workers)
        result = run_amc(golden_scene.cube, config,
                         ground_truth=golden_scene.ground_truth)
        assert sha(result.mei) == mei_hash
        assert sha(result.labels) == "a2fdefa91c5def69"
        assert result.report.overall_accuracy == 62.77777777777778
        assert result.report.kappa == 0.5176096478070439

    @pytest.mark.parametrize("n_workers,launches,modeled_time_s", [
        (1, 184.0, 0.0058574061395348835),
        (2, 353.0, 0.010143319240697678),
    ])
    def test_gpu_unmixing_path(self, golden_scene, n_workers, launches,
                               modeled_time_s):
        config = AMCConfig(n_classes=5, backend="gpu", gpu_unmixing=True,
                           n_workers=n_workers)
        result = run_amc(golden_scene.cube, config,
                         ground_truth=golden_scene.ground_truth)
        assert sha(result.mei) == "313e9dbe50fa516c"
        assert sha(result.labels) == "5cd97718ec41de52"
        assert sha(result.abundances) == "10f577b9e122dbf5"
        assert result.report.overall_accuracy == 69.16666666666667
        # accounting covers morphology *and* the device tail; with two
        # workers each chunk ran its own board (redundant halo work)
        assert result.gpu_output.counters["kernel_launches"] == launches
        assert result.gpu_output.modeled_time_s == modeled_time_s

    @pytest.mark.parametrize("n_workers", [1, 2])
    def test_naive_backend(self, n_workers):
        cube = np.random.default_rng(2024).uniform(
            0.05, 1.0, size=(8, 7, 6))
        result = run_amc(cube, AMCConfig(n_classes=3, backend="naive",
                                         n_workers=n_workers))
        assert sha(result.mei) == "b3c8137f5d313b83"
        assert sha(result.labels) == "0676d87caab84dce"


class TestPipelineComposition:
    def test_stage_names(self):
        pipeline = build_amc_pipeline()
        assert pipeline.stage_names == AMC_STAGE_NAMES
        assert AMC_STAGE_NAMES == ("morphology", "endmembers", "unmixing",
                                   "classification", "evaluation")

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError, match="stage"):
            Pipeline(())

    def test_execute_amc_matches_facade(self, golden_scene):
        config = AMCConfig(n_classes=5)
        via_facade = run_amc(golden_scene.cube, config,
                             ground_truth=golden_scene.ground_truth)
        direct = execute_amc(
            golden_scene.cube.as_bip(), config,
            ground_truth=golden_scene.ground_truth,
            pipeline=build_amc_pipeline())
        np.testing.assert_array_equal(direct.mei, via_facade.mei)
        np.testing.assert_array_equal(direct.labels, via_facade.labels)

    def test_truncated_pipeline_runs_partial_context(self, golden_scene):
        """Stages compose: a morphology+endmembers prefix is a valid
        pipeline and leaves its products in the context."""
        pipeline = Pipeline(build_amc_pipeline().stages[:2])
        ctx = {"bip": golden_scene.cube.as_bip(),
               "config": AMCConfig(n_classes=5),
               "ground_truth": None, "class_names": None}
        from repro.backends import get_backend

        ctx["backend"] = get_backend("reference")
        out = pipeline.run(ctx)
        assert out["mei"].shape == golden_scene.cube.as_bip().shape[:2]
        assert len(out["endmembers"].spectra) == 5
        assert "abundances" not in out


class TestProfilingSymmetry:
    @pytest.mark.parametrize("config", [
        AMCConfig(n_classes=5, backend="reference"),
        AMCConfig(n_classes=5, backend="gpu"),
        AMCConfig(n_classes=5, backend="gpu", gpu_unmixing=True),
        AMCConfig(n_classes=5, backend="gpu", gpu_unmixing=True,
                  n_workers=2),
    ], ids=["reference", "gpu", "gpu-unmix", "gpu-unmix-w2"])
    def test_all_five_stage_records_on_every_path(self, golden_scene,
                                                  config):
        """Regression: the monolith skipped the classification record on
        the gpu_unmixing path; the runner now owns the spans, so every
        path emits exactly the five canonical records, in order."""
        profiler = Profiler()
        run_amc(golden_scene.cube, config,
                ground_truth=golden_scene.ground_truth, profiler=profiler)
        names = [record.name for record in profiler.stage_records]
        assert names == list(AMC_STAGE_NAMES)


class TestNonFiniteRejection:
    """Non-finite cubes are rejected at the pipeline's front door."""

    def test_nan_named_by_pixel_and_band(self, small_cube):
        from repro.errors import NonFiniteInputError
        from repro.pipeline import check_finite_cube

        bad = np.array(small_cube, copy=True)
        bad[2, 3, 7] = np.nan
        with pytest.raises(NonFiniteInputError,
                           match=r"pixel \(line=2, sample=3\), band 7"):
            check_finite_cube(bad)

    def test_infinity_rejected_too(self, small_cube):
        from repro.errors import NonFiniteInputError

        bad = np.array(small_cube, copy=True)
        bad[0, 0, 0] = np.inf
        with pytest.raises(NonFiniteInputError, match="inf"):
            run_amc(bad, AMCConfig(n_classes=3))

    def test_first_offender_is_named(self, small_cube):
        """Several bad values: the row-major first one is reported."""
        from repro.errors import NonFiniteInputError

        bad = np.array(small_cube, copy=True)
        bad[5, 1, 2] = np.nan
        bad[1, 4, 9] = -np.inf
        with pytest.raises(NonFiniteInputError,
                           match=r"pixel \(line=1, sample=4\), band 9"):
            execute_amc(bad, AMCConfig(n_classes=3))

    def test_is_a_value_error(self, small_cube):
        """Callers catching ValueError keep working."""
        from repro.errors import NonFiniteInputError, ReproError

        assert issubclass(NonFiniteInputError, ValueError)
        assert issubclass(NonFiniteInputError, ReproError)
        bad = np.array(small_cube, copy=True)
        bad[0, 0, 0] = np.nan
        with pytest.raises(ValueError):
            run_amc(bad, AMCConfig(n_classes=3))

    def test_finite_cube_passes_through_unchanged(self, small_cube):
        from repro.pipeline import check_finite_cube

        out = check_finite_cube(small_cube)
        assert out is np.asarray(small_cube) or np.shares_memory(
            out, small_cube)
