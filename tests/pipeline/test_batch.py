"""run_amc_batch equals independent per-cube run_amc calls."""

import numpy as np
import pytest

from repro.core import AMCConfig, run_amc
from repro.hsi import SceneParams, generate_scene
from repro.pipeline import AMC_STAGE_NAMES, run_amc_batch
from repro.profiling import Profiler


@pytest.fixture(scope="module")
def batch_scenes():
    """Three small scenes with different shapes and content."""
    return [generate_scene(SceneParams(lines=14 + 2 * i, samples=12 + i,
                                       band_count=20, seed=300 + i,
                                       min_field=4))
            for i in range(3)]


def assert_results_equal(batch, singles):
    assert len(batch) == len(singles)
    for got, want in zip(batch, singles):
        np.testing.assert_array_equal(got.mei, want.mei)
        np.testing.assert_array_equal(got.labels, want.labels)
        np.testing.assert_array_equal(got.abundances, want.abundances)
        assert (got.report is None) == (want.report is None)
        if want.report is not None:
            assert got.report.overall_accuracy \
                == want.report.overall_accuracy
            assert got.report.kappa == want.report.kappa


@pytest.mark.parametrize("n_workers", [1, 2])
def test_batch_matches_per_cube_runs(batch_scenes, n_workers):
    config = AMCConfig(n_classes=4, n_workers=n_workers)
    singles = [run_amc(scene.cube, config,
                       ground_truth=scene.ground_truth)
               for scene in batch_scenes]
    batch = run_amc_batch(
        [scene.cube for scene in batch_scenes], config,
        ground_truths=[scene.ground_truth for scene in batch_scenes])
    assert_results_equal(batch, singles)
    assert all(result.config is config for result in batch)


def test_batch_gpu_backend(batch_scenes):
    config = AMCConfig(n_classes=4, backend="gpu")
    singles = [run_amc(scene.cube, config) for scene in batch_scenes]
    batch = run_amc_batch([scene.cube for scene in batch_scenes], config)
    assert_results_equal(batch, singles)
    for got, want in zip(batch, singles):
        assert got.gpu_output.modeled_time_s \
            == want.gpu_output.modeled_time_s


def test_batch_without_ground_truth(batch_scenes):
    batch = run_amc_batch([scene.cube for scene in batch_scenes],
                          AMCConfig(n_classes=4))
    assert all(result.report is None for result in batch)


def test_mismatched_ground_truth_length(batch_scenes):
    with pytest.raises(ValueError, match="3 cubes but 1"):
        run_amc_batch([scene.cube for scene in batch_scenes],
                      AMCConfig(n_classes=4),
                      ground_truths=[batch_scenes[0].ground_truth])


def test_empty_batch():
    assert run_amc_batch([], AMCConfig(n_classes=4)) == []


def test_sequential_batch_profiles_every_cube(batch_scenes):
    profiler = Profiler()
    run_amc_batch([scene.cube for scene in batch_scenes],
                  AMCConfig(n_classes=4), profiler=profiler)
    names = [record.name for record in profiler.stage_records]
    assert names == list(AMC_STAGE_NAMES) * len(batch_scenes)
