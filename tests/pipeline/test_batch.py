"""run_amc_batch equals independent per-cube run_amc calls."""

import numpy as np
import pytest

from repro import faults
from repro.core import AMCConfig, run_amc
from repro.errors import NonFiniteInputError, TransientFaultError
from repro.faults import FaultInjector, FaultSpec
from repro.hsi import SceneParams, generate_scene
from repro.pipeline import (
    AMC_STAGE_NAMES,
    BatchItemError,
    run_amc_batch,
)
from repro.profiling import Profiler


@pytest.fixture(scope="module")
def batch_scenes():
    """Three small scenes with different shapes and content."""
    return [generate_scene(SceneParams(lines=14 + 2 * i, samples=12 + i,
                                       band_count=20, seed=300 + i,
                                       min_field=4))
            for i in range(3)]


def assert_results_equal(batch, singles):
    assert len(batch) == len(singles)
    for got, want in zip(batch, singles):
        np.testing.assert_array_equal(got.mei, want.mei)
        np.testing.assert_array_equal(got.labels, want.labels)
        np.testing.assert_array_equal(got.abundances, want.abundances)
        assert (got.report is None) == (want.report is None)
        if want.report is not None:
            assert got.report.overall_accuracy \
                == want.report.overall_accuracy
            assert got.report.kappa == want.report.kappa


@pytest.mark.parametrize("n_workers", [1, 2])
def test_batch_matches_per_cube_runs(batch_scenes, n_workers):
    config = AMCConfig(n_classes=4, n_workers=n_workers)
    singles = [run_amc(scene.cube, config,
                       ground_truth=scene.ground_truth)
               for scene in batch_scenes]
    batch = run_amc_batch(
        [scene.cube for scene in batch_scenes], config,
        ground_truths=[scene.ground_truth for scene in batch_scenes])
    assert_results_equal(batch, singles)
    assert all(result.config is config for result in batch)


def test_batch_gpu_backend(batch_scenes):
    config = AMCConfig(n_classes=4, backend="gpu")
    singles = [run_amc(scene.cube, config) for scene in batch_scenes]
    batch = run_amc_batch([scene.cube for scene in batch_scenes], config)
    assert_results_equal(batch, singles)
    for got, want in zip(batch, singles):
        assert got.gpu_output.modeled_time_s \
            == want.gpu_output.modeled_time_s


def test_batch_without_ground_truth(batch_scenes):
    batch = run_amc_batch([scene.cube for scene in batch_scenes],
                          AMCConfig(n_classes=4))
    assert all(result.report is None for result in batch)


def test_mismatched_ground_truth_length(batch_scenes):
    with pytest.raises(ValueError, match="3 cubes but 1"):
        run_amc_batch([scene.cube for scene in batch_scenes],
                      AMCConfig(n_classes=4),
                      ground_truths=[batch_scenes[0].ground_truth])


def test_empty_batch():
    assert run_amc_batch([], AMCConfig(n_classes=4)) == []


def test_sequential_batch_profiles_every_cube(batch_scenes):
    profiler = Profiler()
    run_amc_batch([scene.cube for scene in batch_scenes],
                  AMCConfig(n_classes=4), profiler=profiler)
    names = [record.name for record in profiler.stage_records]
    assert names == list(AMC_STAGE_NAMES) * len(batch_scenes)


@pytest.fixture()
def poisoned_batch(batch_scenes):
    """The three scenes' cubes with NaN injected into the middle one."""
    cubes = [np.array(scene.cube.as_bip(), copy=True)
             for scene in batch_scenes]
    cubes[1][3, 4, 5] = np.nan
    return cubes


class TestOnError:
    def test_invalid_policy_rejected(self, batch_scenes):
        with pytest.raises(ValueError, match="on_error"):
            run_amc_batch([batch_scenes[0].cube], AMCConfig(n_classes=4),
                          on_error="ignore")

    def test_raise_is_default(self, poisoned_batch):
        with pytest.raises(NonFiniteInputError, match="band 5"):
            run_amc_batch(poisoned_batch, AMCConfig(n_classes=4))

    def test_skip_drops_failed_cubes(self, poisoned_batch):
        config = AMCConfig(n_classes=4)
        results = run_amc_batch(poisoned_batch, config, on_error="skip")
        singles = [run_amc(poisoned_batch[i], config) for i in (0, 2)]
        assert_results_equal(results, singles)

    def test_collect_keeps_positions(self, poisoned_batch):
        config = AMCConfig(n_classes=4)
        results = run_amc_batch(poisoned_batch, config, on_error="collect")
        assert len(results) == 3
        failure = results[1]
        assert isinstance(failure, BatchItemError)
        assert failure.index == 1
        assert isinstance(failure.error, NonFiniteInputError)
        assert str(failure).startswith("cube 1 failed: ")
        assert_results_equal([results[0], results[2]],
                             [run_amc(poisoned_batch[i], config)
                              for i in (0, 2)])

    @pytest.mark.parametrize("on_error", ["skip", "collect"])
    def test_pool_path_isolates_failures(self, poisoned_batch, on_error):
        """Worker-side exceptions are returned, never cross the pool."""
        config = AMCConfig(n_classes=4, n_workers=2)
        results = run_amc_batch(poisoned_batch, config, on_error=on_error)
        survivors = [r for r in results
                     if not isinstance(r, BatchItemError)]
        assert len(survivors) == 2
        if on_error == "collect":
            assert isinstance(results[1], BatchItemError)
            assert results[1].index == 1
        assert all(r.config is config for r in survivors)

    def test_failures_recorded_on_profiler(self, poisoned_batch):
        profiler = Profiler()
        run_amc_batch(poisoned_batch, AMCConfig(n_classes=4),
                      on_error="skip", profiler=profiler)
        events = [e for e in profiler.event_records
                  if e.kind == "batch_error"]
        assert len(events) == 1
        assert events[0].chunk_index == 1
        assert "NonFiniteInputError" in events[0].detail

    def test_injected_cube_fault_is_isolated(self, batch_scenes):
        """The injector's "cube" site fails exactly one batch item."""
        faults.install(FaultInjector(
            [FaultSpec(kind="transient", site="cube", index=2,
                       attempt=None)]))
        try:
            results = run_amc_batch(
                [scene.cube for scene in batch_scenes],
                AMCConfig(n_classes=4), on_error="collect")
        finally:
            faults.uninstall()
        assert isinstance(results[2], BatchItemError)
        assert isinstance(results[2].error, TransientFaultError)
        assert not isinstance(results[0], BatchItemError)
        assert not isinstance(results[1], BatchItemError)
