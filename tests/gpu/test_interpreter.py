"""Tests for the vectorized shader interpreter.

Everything here cross-checks interpreter semantics against the
corresponding NumPy operation in float32.
"""

import numpy as np
import pytest

from repro.errors import ShaderError
from repro.gpu import FragmentShader
from repro.gpu import shaderir as ir
from repro.gpu.interpreter import execute


@pytest.fixture()
def tex_a(rng):
    return rng.uniform(0.1, 2.0, size=(5, 6, 4)).astype(np.float32)


@pytest.fixture()
def tex_b(rng):
    return rng.uniform(0.1, 2.0, size=(5, 6, 4)).astype(np.float32)


def run(body, textures, uniforms=None, samplers=None, shape=(5, 6)):
    shader = FragmentShader(
        "t", body,
        samplers=tuple(samplers if samplers is not None else textures),
        uniforms=tuple(uniforms or ()))
    return execute(shader, shape[0], shape[1], textures, uniforms)


class TestArithmetic:
    def test_add(self, tex_a, tex_b):
        out = run(ir.add(ir.TexFetch("a"), ir.TexFetch("b")),
                  {"a": tex_a, "b": tex_b})
        np.testing.assert_array_equal(out, tex_a + tex_b)

    def test_sub_mul(self, tex_a, tex_b):
        out = run(ir.mul(ir.sub(ir.TexFetch("a"), ir.TexFetch("b")),
                         ir.TexFetch("a")),
                  {"a": tex_a, "b": tex_b})
        np.testing.assert_array_equal(out, (tex_a - tex_b) * tex_a)

    def test_div(self, tex_a, tex_b):
        out = run(ir.div(ir.TexFetch("a"), ir.TexFetch("b")),
                  {"a": tex_a, "b": tex_b})
        np.testing.assert_array_equal(out, tex_a / tex_b)

    def test_min_max(self, tex_a, tex_b):
        out = run(ir.max_(ir.min_(ir.TexFetch("a"), ir.TexFetch("b")), 0.5),
                  {"a": tex_a, "b": tex_b})
        np.testing.assert_array_equal(
            out, np.maximum(np.minimum(tex_a, tex_b), np.float32(0.5)))

    def test_log_exp(self, tex_a):
        out = run(ir.exp(ir.log(ir.TexFetch("a"))), {"a": tex_a})
        np.testing.assert_allclose(out, tex_a, rtol=1e-6)

    def test_unary_ops(self, tex_a):
        for op, fn in (("neg", np.negative), ("abs", np.abs),
                       ("floor", np.floor), ("sqrt", np.sqrt)):
            out = run(ir.Op(op, (ir.TexFetch("a"),)), {"a": tex_a})
            np.testing.assert_allclose(out, fn(tex_a), rtol=1e-6)

    def test_rcp(self, tex_a):
        out = run(ir.Op("rcp", (ir.TexFetch("a"),)), {"a": tex_a})
        np.testing.assert_allclose(out, 1.0 / tex_a, rtol=1e-6)

    def test_comparisons(self, tex_a, tex_b):
        gt = run(ir.cmp_gt(ir.TexFetch("a"), ir.TexFetch("b")),
                 {"a": tex_a, "b": tex_b})
        np.testing.assert_array_equal(gt, (tex_a > tex_b).astype(np.float32))
        ge = run(ir.cmp_ge(ir.TexFetch("a"), ir.TexFetch("a")),
                 {"a": tex_a})
        assert np.all(ge == 1.0)

    def test_float32_throughout(self, tex_a):
        out = run(ir.add(ir.TexFetch("a"), 1.0), {"a": tex_a})
        assert out.dtype == np.float32

    def test_log_of_zero_is_neg_inf(self):
        tex = np.zeros((2, 2, 4), dtype=np.float32)
        out = run(ir.log(ir.TexFetch("a")), {"a": tex}, shape=(2, 2))
        assert np.all(np.isneginf(out))


class TestStructuralOps:
    def test_dot_broadcasts(self, tex_a, tex_b):
        out = run(ir.dot4(ir.TexFetch("a"), ir.TexFetch("b")),
                  {"a": tex_a, "b": tex_b})
        expected = (tex_a * tex_b).sum(axis=-1, dtype=np.float32)
        for lane in range(4):
            np.testing.assert_allclose(out[:, :, lane], expected, rtol=1e-6)

    def test_swizzle(self, tex_a):
        out = run(ir.Swizzle(ir.TexFetch("a"), "wzyx"), {"a": tex_a})
        np.testing.assert_array_equal(out, tex_a[:, :, [3, 2, 1, 0]])

    def test_combine(self, tex_a, tex_b):
        out = run(ir.Combine(ir.TexFetch("a"), ir.TexFetch("b"),
                             ir.vec4(7.0), ir.TexFetch("a")),
                  {"a": tex_a, "b": tex_b})
        np.testing.assert_array_equal(out[:, :, 0], tex_a[:, :, 0])
        np.testing.assert_array_equal(out[:, :, 1], tex_b[:, :, 0])
        assert np.all(out[:, :, 2] == 7.0)

    def test_select(self, tex_a, tex_b):
        cond = ir.cmp_gt(ir.TexFetch("a"), ir.TexFetch("b"))
        out = run(ir.select(cond, ir.TexFetch("a"), ir.TexFetch("b")),
                  {"a": tex_a, "b": tex_b})
        np.testing.assert_array_equal(out, np.maximum(tex_a, tex_b))

    def test_fragcoord(self):
        out = run(ir.FragCoord(), {}, samplers=(), shape=(3, 4))
        np.testing.assert_array_equal(out[:, :, 0],
                                      np.tile(np.arange(4), (3, 1)))
        np.testing.assert_array_equal(out[:, :, 1],
                                      np.tile(np.arange(3)[:, None], (1, 4)))

    def test_uniform_broadcast(self, tex_a):
        out = run(ir.mul(ir.TexFetch("a"), ir.Uniform("g")),
                  {"a": tex_a}, uniforms={"g": np.float32(2.0)})
        np.testing.assert_array_equal(out, tex_a * 2)

    def test_uniform_vec4(self, tex_a):
        gain = np.array([1, 2, 3, 4], dtype=np.float32)
        out = run(ir.mul(ir.TexFetch("a"), ir.Uniform("g")),
                  {"a": tex_a}, uniforms={"g": gain})
        np.testing.assert_array_equal(out, tex_a * gain)


class TestAddressing:
    def test_offset_fetch_interior(self, tex_a):
        out = run(ir.TexFetch("a", 1, 0), {"a": tex_a})
        np.testing.assert_array_equal(out[:, :-1], tex_a[:, 1:])

    def test_clamp_to_edge_right(self, tex_a):
        out = run(ir.TexFetch("a", 2, 0), {"a": tex_a})
        np.testing.assert_array_equal(out[:, -1], tex_a[:, -1])
        np.testing.assert_array_equal(out[:, -2], tex_a[:, -1])

    def test_clamp_to_edge_top(self, tex_a):
        out = run(ir.TexFetch("a", 0, -3), {"a": tex_a})
        np.testing.assert_array_equal(out[0], tex_a[0])
        np.testing.assert_array_equal(out[2], tex_a[0])

    def test_dynamic_fetch_identity(self, tex_a):
        out = run(ir.TexFetchDyn("a", ir.FragCoord()), {"a": tex_a})
        np.testing.assert_array_equal(out, tex_a)

    def test_dynamic_fetch_constant_coord(self, tex_a):
        coord = ir.vec4(2.0, 3.0, 0.0, 0.0)  # column 2, row 3
        out = run(ir.TexFetchDyn("a", coord), {"a": tex_a})
        for y in range(5):
            for x in range(6):
                np.testing.assert_array_equal(out[y, x], tex_a[3, 2])

    def test_dynamic_fetch_clamped(self, tex_a):
        coord = ir.vec4(99.0, -5.0, 0.0, 0.0)
        out = run(ir.TexFetchDyn("a", coord), {"a": tex_a})
        np.testing.assert_array_equal(out[0, 0], tex_a[0, 5])


class TestLaunchValidation:
    def test_missing_texture(self, tex_a):
        shader = FragmentShader("k", ir.TexFetch("zzz"), samplers=("zzz",))
        with pytest.raises(ShaderError, match="missing texture"):
            execute(shader, 5, 6, {"a": tex_a})

    def test_missing_uniform(self, tex_a):
        shader = FragmentShader(
            "k", ir.mul(ir.TexFetch("a"), ir.Uniform("g")),
            samplers=("a",), uniforms=("g",))
        with pytest.raises(ShaderError, match="missing uniforms"):
            execute(shader, 5, 6, {"a": tex_a})

    def test_bad_texture_shape(self):
        shader = FragmentShader("k", ir.TexFetch("a"), samplers=("a",))
        with pytest.raises(ShaderError, match="must be"):
            execute(shader, 2, 2, {"a": np.ones((2, 2, 3),
                                                dtype=np.float32)})

    def test_bad_uniform_size(self, tex_a):
        shader = FragmentShader(
            "k", ir.mul(ir.TexFetch("a"), ir.Uniform("g")),
            samplers=("a",), uniforms=("g",))
        with pytest.raises(ShaderError, match="components"):
            execute(shader, 5, 6, {"a": tex_a},
                    {"g": np.ones(3, dtype=np.float32)})

    def test_constant_body_fills_target(self):
        shader = FragmentShader("k", ir.vec4(1.0, 2.0, 3.0, 4.0))
        out = execute(shader, 3, 2, {})
        assert out.shape == (3, 2, 4)
        np.testing.assert_array_equal(out[1, 1], [1, 2, 3, 4])
