"""Tests for the VirtualGPU device object."""

import numpy as np
import pytest

from repro.errors import GpuOutOfMemoryError, ShaderError
from repro.gpu import FragmentShader, GEFORCE_7800GTX, VirtualGPU
from repro.gpu import shaderir as ir


@pytest.fixture()
def gpu():
    return VirtualGPU(GEFORCE_7800GTX)


@pytest.fixture()
def double_shader():
    return FragmentShader("double", ir.mul(ir.TexFetch("a"), 2.0),
                          samplers=("a",))


class TestUploadDownload:
    def test_upload_counts_transfer_and_vram(self, gpu, rng):
        data = rng.uniform(size=(8, 8, 4)).astype(np.float32)
        tex = gpu.upload(data)
        assert gpu.counters.bytes_uploaded == tex.nbytes
        assert gpu.vram.used == tex.nbytes

    def test_upload_copies(self, gpu):
        data = np.ones((4, 4, 4), dtype=np.float32)
        tex = gpu.upload(data)
        data[...] = 0
        assert np.all(tex.data == 1.0)

    def test_download_roundtrip(self, gpu, rng):
        data = rng.uniform(size=(6, 3, 4)).astype(np.float32)
        tex = gpu.upload(data)
        np.testing.assert_array_equal(gpu.download(tex), data)
        assert gpu.counters.bytes_downloaded == tex.nbytes

    def test_download_scalar_quarter_traffic(self, gpu, rng):
        data = rng.uniform(size=(8, 8, 4)).astype(np.float32)
        tex = gpu.upload(data)
        out = gpu.download_scalar(tex)
        np.testing.assert_array_equal(out, data[:, :, 0])
        assert gpu.counters.bytes_downloaded == tex.nbytes // 4

    def test_upload_scalar(self, gpu, rng):
        image = rng.uniform(size=(5, 7)).astype(np.float32)
        tex = gpu.upload_scalar(image)
        np.testing.assert_array_equal(tex.data[:, :, 0], image)

    def test_oom_on_upload(self):
        gpu = VirtualGPU(GEFORCE_7800GTX.with_(vram_bytes=64))
        with pytest.raises(GpuOutOfMemoryError):
            gpu.upload(np.zeros((8, 8, 4), dtype=np.float32))

    def test_free_releases_vram(self, gpu):
        tex = gpu.create_target(8, 8)
        used = gpu.vram.used
        gpu.free(tex)
        assert gpu.vram.used == used - 8 * 8 * 16
        gpu.free(tex)  # second free is a no-op
        assert gpu.vram.used == used - 8 * 8 * 16


class TestLaunch:
    def test_launch_computes_and_counts(self, gpu, double_shader, rng):
        data = rng.uniform(size=(4, 5, 4)).astype(np.float32)
        tex = gpu.upload(data)
        target = gpu.create_target(4, 5)
        gpu.launch(double_shader, target, {"a": tex})
        np.testing.assert_array_equal(target.data, data * 2)
        assert gpu.counters.kernel_launch_count == 1
        record = gpu.counters.launches[0]
        assert record.kernel == "double"
        assert record.fragments == 20
        assert record.modeled_time_s > 0

    def test_launch_requires_resident_inputs(self, gpu, double_shader):
        from repro.gpu import Texture2D
        ghost = Texture2D.zeros(4, 4)  # never uploaded
        target = gpu.create_target(4, 4)
        with pytest.raises(ShaderError, match="not.*resident|resident"):
            gpu.launch(double_shader, target, {"a": ghost})

    def test_launch_rejects_target_as_input(self, gpu):
        shader = FragmentShader("inc", ir.add(ir.TexFetch("a"), 1.0),
                                samplers=("a",))
        target = gpu.create_target(4, 4)
        with pytest.raises(ShaderError, match="ping-pong"):
            gpu.launch(shader, target, {"a": target})

    def test_launch_rejects_non_texture_binding(self, gpu, double_shader):
        target = gpu.create_target(4, 4)
        with pytest.raises(ShaderError, match="expected Texture2D"):
            gpu.launch(double_shader, target,
                       {"a": np.zeros((4, 4, 4))})  # type: ignore

    def test_chained_launches_ping_pong(self, gpu, double_shader, rng):
        data = rng.uniform(size=(4, 4, 4)).astype(np.float32)
        tex = gpu.upload(data)
        ping = gpu.create_target(4, 4)
        pong = gpu.create_target(4, 4)
        gpu.launch(double_shader, ping, {"a": tex})
        gpu.launch(double_shader, pong, {"a": ping})
        np.testing.assert_array_equal(pong.data, data * 4)

    def test_counters_aggregate(self, gpu, double_shader, rng):
        data = rng.uniform(size=(4, 4, 4)).astype(np.float32)
        tex = gpu.upload(data)
        target = gpu.create_target(4, 4)
        for _ in range(3):
            gpu.launch(double_shader, target, {"a": tex})
        summary = gpu.counters.summary()
        assert summary["kernel_launches"] == 3
        assert summary["fragments_shaded"] == 48
        assert summary["total_time_s"] == pytest.approx(
            summary["kernel_time_s"] + summary["transfer_time_s"])

    def test_time_by_kernel(self, gpu, double_shader, rng):
        tex = gpu.upload(rng.uniform(size=(4, 4, 4)).astype(np.float32))
        target = gpu.create_target(4, 4)
        gpu.launch(double_shader, target, {"a": tex})
        profile = gpu.counters.time_by_kernel()
        assert set(profile) == {"double"}
        assert profile["double"] > 0

    def test_reset_counters(self, gpu, rng):
        gpu.upload(rng.uniform(size=(4, 4, 4)).astype(np.float32))
        gpu.reset_counters()
        assert gpu.counters.kernel_launch_count == 0
        assert gpu.counters.bytes_uploaded == 0
