"""Tests for the shader IR node types and constructors."""

import pytest

from repro.errors import ShaderValidationError
from repro.gpu import shaderir as ir


class TestConstructors:
    def test_vec4_splat(self):
        assert ir.vec4(2.0).values == (2.0, 2.0, 2.0, 2.0)

    def test_vec4_full(self):
        assert ir.vec4(1, 2, 3, 4).values == (1.0, 2.0, 3.0, 4.0)

    def test_vec4_partial_rejected(self):
        with pytest.raises(ShaderValidationError):
            ir.vec4(1.0, 2.0)

    def test_const_wrong_arity(self):
        with pytest.raises(ShaderValidationError):
            ir.Const((1.0, 2.0))

    def test_helpers_coerce_scalars(self):
        node = ir.add(ir.TexFetch("t"), 3.0)
        assert isinstance(node.args[1], ir.Const)
        assert node.args[1].values == (3.0, 3.0, 3.0, 3.0)

    def test_binary_arity_checked(self):
        with pytest.raises(ShaderValidationError, match="2 operands"):
            ir.Op("add", (ir.vec4(1.0),))

    def test_unary_arity_checked(self):
        with pytest.raises(ShaderValidationError, match="1 operand"):
            ir.Op("log", (ir.vec4(1.0), ir.vec4(2.0)))

    def test_unknown_opcode(self):
        with pytest.raises(ShaderValidationError, match="unknown opcode"):
            ir.Op("fma", (ir.vec4(1.0), ir.vec4(1.0)))

    def test_non_expr_operand(self):
        with pytest.raises(ShaderValidationError, match="not an Expr"):
            ir.Op("add", (ir.vec4(1.0), 3.0))  # type: ignore

    def test_texfetch_offsets_coerced_int(self):
        node = ir.TexFetch("t", 1.0, -2.0)  # type: ignore
        assert node.dx == 1 and node.dy == -2


class TestSwizzle:
    def test_valid_pattern(self):
        assert ir.Swizzle(ir.vec4(0.0), "xyzw").lane_indices() == (0, 1, 2, 3)
        assert ir.Swizzle(ir.vec4(0.0), "wwww").lane_indices() == (3, 3, 3, 3)

    @pytest.mark.parametrize("pattern", ["xyz", "xyzwv", "abcd", ""])
    def test_invalid_pattern(self, pattern):
        with pytest.raises(ShaderValidationError):
            ir.Swizzle(ir.vec4(0.0), pattern)


class TestWalk:
    def test_yields_children_before_parents(self):
        a = ir.TexFetch("t")
        b = ir.log(a)
        c = ir.add(b, 1.0)
        order = list(ir.walk(c))
        assert order.index(a) < order.index(b) < order.index(c)

    def test_shared_subtree_visited_once(self):
        shared = ir.log(ir.TexFetch("t"))
        root = ir.add(shared, shared)
        visits = [n for n in ir.walk(root) if n is shared]
        assert len(visits) == 1

    def test_walk_covers_all_node_kinds(self):
        tree = ir.Select(
            ir.cmp_gt(ir.TexFetch("a"), 0.0),
            ir.Combine(ir.vec4(1.0), ir.Uniform("u"),
                       ir.Swizzle(ir.FragCoord(), "xxxx"),
                       ir.dot4(ir.TexFetch("a"), ir.vec4(1.0))),
            ir.TexFetchDyn("b", ir.FragCoord()))
        kinds = {type(n).__name__ for n in ir.walk(tree)}
        assert {"Select", "Combine", "Swizzle", "Dot", "TexFetch",
                "TexFetchDyn", "FragCoord", "Uniform", "Const",
                "Op"} <= kinds

    def test_children_of_leaves_empty(self):
        assert ir.children(ir.vec4(1.0)) == ()
        assert ir.children(ir.Uniform("u")) == ()
        assert ir.children(ir.TexFetch("t")) == ()
