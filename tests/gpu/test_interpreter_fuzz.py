"""Property-based fuzzing of the shader interpreter.

Hypothesis generates random IR trees; every tree is evaluated twice —
by the production interpreter and by an independent, recursive
reference evaluator written here (no memoization, no vectorized fetch
shortcuts, plain float32 NumPy per node).  Any semantic divergence
(including in clamp-to-edge addressing and lane plumbing) fails the
property.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import FragmentShader
from repro.gpu import shaderir as ir
from repro.gpu.interpreter import execute

H, W = 5, 4
_F32 = np.float32


def _reference_eval(node, textures, uniforms):
    """Straight-line recursive evaluation (independent of the
    interpreter's implementation choices)."""
    if isinstance(node, ir.Const):
        return np.broadcast_to(np.asarray(node.values, _F32),
                               (H, W, 4)).astype(_F32)
    if isinstance(node, ir.Uniform):
        return np.broadcast_to(uniforms[node.name], (H, W, 4)).astype(_F32)
    if isinstance(node, ir.FragCoord):
        out = np.zeros((H, W, 4), _F32)
        out[:, :, 0] = np.arange(W, dtype=_F32)
        out[:, :, 1] = np.arange(H, dtype=_F32)[:, None]
        return out
    if isinstance(node, ir.TexFetch):
        tex = textures[node.sampler]
        out = np.empty((H, W, 4), _F32)
        for y in range(H):
            for x in range(W):
                yy = min(max(y + node.dy, 0), H - 1)
                xx = min(max(x + node.dx, 0), W - 1)
                out[y, x] = tex[yy, xx]
        return out
    if isinstance(node, ir.Op):
        args = [_reference_eval(a, textures, uniforms) for a in node.args]
        fns = {"add": np.add, "sub": np.subtract, "mul": np.multiply,
               "min": np.minimum, "max": np.maximum,
               "neg": lambda a: -a, "abs": np.abs, "floor": np.floor,
               "exp": np.exp}
        if node.op in fns:
            return fns[node.op](*args).astype(_F32)
        if node.op == "log":
            with np.errstate(divide="ignore", invalid="ignore"):
                return np.log(args[0]).astype(_F32)
        if node.op == "cmp_gt":
            return (args[0] > args[1]).astype(_F32)
        if node.op == "cmp_ge":
            return (args[0] >= args[1]).astype(_F32)
        raise AssertionError(node.op)
    if isinstance(node, ir.Dot):
        a = _reference_eval(node.a, textures, uniforms)
        b = _reference_eval(node.b, textures, uniforms)
        s = (a * b).sum(axis=-1, dtype=_F32)
        return np.repeat(s[:, :, None], 4, axis=2).astype(_F32)
    if isinstance(node, ir.Swizzle):
        src = _reference_eval(node.source, textures, uniforms)
        return src[:, :, list(node.lane_indices())]
    if isinstance(node, ir.Combine):
        parts = [_reference_eval(p, textures, uniforms)[:, :, 0]
                 for p in (node.x, node.y, node.z, node.w)]
        return np.stack(parts, axis=-1).astype(_F32)
    if isinstance(node, ir.Select):
        c = _reference_eval(node.cond, textures, uniforms)
        t = _reference_eval(node.if_true, textures, uniforms)
        f = _reference_eval(node.if_false, textures, uniforms)
        return np.where(c != 0, t, f).astype(_F32)
    raise AssertionError(type(node))


# ---------------------------------------------------------------------------
# Random-tree strategy.  Values are kept in a range where float32
# arithmetic is exact enough that both evaluators agree bitwise for the
# closed ops ('log'/'exp' excluded from the bitwise set).
# ---------------------------------------------------------------------------

_SAMPLERS = ("t0", "t1")
_UNIFORMS = ("u0",)

finite = st.floats(-4.0, 4.0, allow_nan=False).map(
    lambda v: float(np.float32(v)))


def _leaf():
    return st.one_of(
        st.tuples(finite).map(lambda t: ir.vec4(t[0])),
        st.sampled_from([ir.Uniform(u) for u in _UNIFORMS]),
        st.builds(ir.TexFetch, st.sampled_from(_SAMPLERS),
                  st.integers(-3, 3), st.integers(-3, 3)),
        st.just(ir.FragCoord()),
    )


def _extend(children):
    binary = st.sampled_from(["add", "sub", "mul", "min", "max",
                              "cmp_gt", "cmp_ge"])
    return st.one_of(
        st.tuples(binary, children, children).map(
            lambda t: ir.Op(t[0], (t[1], t[2]))),
        st.tuples(st.sampled_from(["neg", "abs", "floor"]), children).map(
            lambda t: ir.Op(t[0], (t[1],))),
        st.tuples(children, children).map(lambda t: ir.Dot(*t)),
        st.tuples(children, st.sampled_from(["xyzw", "xxxx", "wzyx",
                                             "yyww"])).map(
            lambda t: ir.Swizzle(*t)),
        st.tuples(children, children, children, children).map(
            lambda t: ir.Combine(*t)),
        st.tuples(children, children, children).map(
            lambda t: ir.Select(*t)),
    )


trees = st.recursive(_leaf(), _extend, max_leaves=12)


def _wrap_used(body: ir.Expr) -> ir.Expr:
    """Ensure every declared sampler/uniform is used (validator rule):
    add 0 * (sum of everything) to the body."""
    total: ir.Expr = ir.vec4(0.0)
    for s in _SAMPLERS:
        total = ir.add(total, ir.TexFetch(s))
    for u in _UNIFORMS:
        total = ir.add(total, ir.Uniform(u))
    return ir.add(body, ir.mul(total, ir.vec4(0.0)))


@given(trees, st.integers(0, 2 ** 31 - 1))
@settings(max_examples=120, deadline=None)
def test_interpreter_matches_reference_evaluator(tree, seed):
    rng = np.random.default_rng(seed)
    textures = {s: rng.uniform(-2.0, 2.0, size=(H, W, 4)).astype(_F32)
                for s in _SAMPLERS}
    uniforms = {u: rng.uniform(-2.0, 2.0, size=4).astype(_F32)
                for u in _UNIFORMS}
    body = _wrap_used(tree)
    shader = FragmentShader("fuzz", body, samplers=_SAMPLERS,
                            uniforms=_UNIFORMS)
    got = execute(shader, H, W, textures, uniforms)
    want = _reference_eval(body, textures, uniforms)
    np.testing.assert_allclose(got, want, rtol=1e-6, atol=1e-6)
    assert got.dtype == np.float32
