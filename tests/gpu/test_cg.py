"""Tests for the Cg source emitter."""

import re

import pytest

from repro.gpu import FragmentShader
from repro.gpu import shaderir as ir
from repro.gpu.cg import emit_cg, emit_pipeline_kernels


def _body_k():
    return FragmentShader(
        "demo",
        ir.add(ir.log(ir.max_(ir.TexFetch("norm"), ir.vec4(1e-12))),
               ir.dot4(ir.TexFetch("norm", 1, -1), ir.Uniform("mask"))),
        samplers=("norm",), uniforms=("mask",))


class TestEmission:
    def test_signature(self):
        src = emit_cg(_body_k())
        assert "float4 demo(" in src
        assert "uniform sampler2D norm" in src
        assert "uniform float4 mask" in src
        assert "uniform float2 texel" in src
        assert ": COLOR" in src

    def test_offset_fetch_uses_texel(self):
        src = emit_cg(_body_k())
        assert "tex2D(norm, uv + float2(1, -1) * texel)" in src

    def test_zero_offset_fetch_plain(self):
        src = emit_cg(_body_k())
        assert "tex2D(norm, uv);" in src

    def test_dot_broadcast(self):
        src = emit_cg(_body_k())
        assert re.search(r"dot\(r\d+, mask\)\.xxxx", src)

    def test_single_return(self):
        src = emit_cg(_body_k())
        assert src.count("return ") == 1
        assert src.rstrip().endswith("}")

    def test_shared_subtree_emitted_once(self):
        fetch = ir.TexFetch("a")
        shader = FragmentShader("shared", ir.mul(ir.add(fetch, 1.0), fetch),
                                samplers=("a",))
        src = emit_cg(shader)
        assert src.count("tex2D(a, uv)") == 1

    def test_select_lowered_to_lerp(self):
        shader = FragmentShader(
            "sel",
            ir.select(ir.cmp_gt(ir.TexFetch("a"), 0.5),
                      ir.TexFetch("a"), ir.vec4(0.0)),
            samplers=("a",))
        src = emit_cg(shader)
        assert "lerp(" in src

    def test_dependent_fetch(self):
        shader = FragmentShader(
            "dyn", ir.TexFetchDyn("lut", ir.FragCoord()),
            samplers=("lut",))
        src = emit_cg(shader)
        assert "tex2D(lut, " in src and "texel" in src

    def test_braces_balanced(self):
        src = emit_cg(_body_k())
        assert src.count("{") == src.count("}")

    def test_registers_assigned_before_use(self):
        src = emit_cg(_body_k())
        defined = set()
        for line in src.splitlines():
            for used in re.findall(r"\br(\d+)\b", line):
                if f"float4 r{used} =" in line:
                    continue
                assert used in defined, line
            match = re.search(r"float4 r(\d+) =", line)
            if match:
                # uses on the right-hand side must already be defined
                rhs = line.split("=", 1)[1]
                for used in re.findall(r"\br(\d+)\b", rhs):
                    assert used in defined, line
                defined.add(match.group(1))


class TestPipelineExport:
    def test_every_kernel_emits(self):
        sources = emit_pipeline_kernels(radius=1, fuse_groups=6, bands=32)
        assert "bandsum_w6" in sources
        assert "cross_0_1_w6" in sources
        assert "mei_final" in sources
        for name, src in sources.items():
            assert src.count("{") == src.count("}"), name
            assert "return " in src, name

    def test_kernel_count_scales_with_pairs(self):
        sources = emit_pipeline_kernels(radius=1, fuse_groups=1, bands=8)
        crosses = [n for n in sources if n.startswith("cross_")]
        sids = [n for n in sources if n.startswith("sid_")]
        assert len(crosses) == 36 and len(sids) == 36
