"""Tests for the Chrome-trace export and counter aggregation details."""

import json

import numpy as np
import pytest

from repro.core.amc_gpu import gpu_morphological_stage
from repro.gpu import FragmentShader, GEFORCE_7800GTX, VirtualGPU
from repro.gpu import shaderir as ir
from repro.gpu.counters import GpuCounters, KernelLaunchRecord, TransferRecord
from repro.gpu.trace import build_timeline, export_chrome_trace


@pytest.fixture()
def busy_device(rng):
    gpu = VirtualGPU(GEFORCE_7800GTX)
    tex = gpu.upload(rng.uniform(size=(6, 6, 4)).astype(np.float32))
    shader = FragmentShader("dbl", ir.mul(ir.TexFetch("a"), 2.0),
                            samplers=("a",))
    target = gpu.create_target(6, 6)
    gpu.launch(shader, target, {"a": tex})
    gpu.launch(shader, target, {"a": tex})
    gpu.download(target)
    return gpu


class TestTimeline:
    def test_event_counts(self, busy_device):
        events = build_timeline(busy_device.counters)
        kinds = [e["cat"] for e in events]
        assert kinds.count("kernel") == 2
        assert kinds.count("transfer") == 2  # one upload, one download

    def test_ordering_upload_kernels_download(self, busy_device):
        events = build_timeline(busy_device.counters)
        names = [e["name"] for e in events]
        assert names[0].startswith("upload")
        assert names[-1].startswith("download")

    def test_events_back_to_back(self, busy_device):
        events = sorted(build_timeline(busy_device.counters),
                        key=lambda e: e["ts"])
        for before, after in zip(events, events[1:]):
            assert after["ts"] == pytest.approx(before["ts"] + before["dur"])

    def test_total_duration_matches_counters(self, busy_device):
        events = build_timeline(busy_device.counters)
        total_us = sum(e["dur"] for e in events)
        assert total_us == pytest.approx(
            busy_device.counters.total_time_s * 1e6)

    def test_kernel_args(self, busy_device):
        kernel = next(e for e in build_timeline(busy_device.counters)
                      if e["cat"] == "kernel")
        assert kernel["args"]["fragments"] == 36
        assert kernel["args"]["compute_us"] > 0

    def test_empty_counters(self):
        assert build_timeline(GpuCounters()) == []


class TestExport:
    def test_valid_json_with_metadata(self, busy_device, tmp_path):
        path = export_chrome_trace(busy_device.counters,
                                   str(tmp_path / "trace.json"))
        with open(path) as fh:
            trace = json.load(fh)
        assert trace["otherData"]["kernel_launches"] == 2
        assert len(trace["traceEvents"]) == 4
        assert all({"name", "ph", "ts", "dur"} <= set(e)
                   for e in trace["traceEvents"])

    def test_full_pipeline_trace(self, tmp_path, rng):
        device = VirtualGPU(GEFORCE_7800GTX)
        cube = rng.uniform(0.1, 1.0, size=(8, 8, 10))
        gpu_morphological_stage(cube, device=device)
        path = export_chrome_trace(device.counters,
                                   str(tmp_path / "amc.json"))
        with open(path) as fh:
            trace = json.load(fh)
        names = {e["name"] for e in trace["traceEvents"]}
        assert any(n.startswith("cross_") for n in names)
        assert "mei_final" in names
