"""Tests for fragment-shader validation and static statistics."""

import pytest

from repro.errors import ShaderValidationError
from repro.gpu import FragmentShader
from repro.gpu import shaderir as ir


def _simple_body():
    return ir.add(ir.TexFetch("a"), ir.TexFetch("b", 1, -1))


class TestValidation:
    def test_valid_shader(self):
        shader = FragmentShader("k", _simple_body(), samplers=("a", "b"))
        assert shader.name == "k"

    def test_empty_name_rejected(self):
        with pytest.raises(ShaderValidationError, match="name"):
            FragmentShader("", _simple_body(), samplers=("a", "b"))

    def test_undeclared_sampler(self):
        with pytest.raises(ShaderValidationError, match="undeclared sampler"):
            FragmentShader("k", _simple_body(), samplers=("a",))

    def test_unused_sampler(self):
        with pytest.raises(ShaderValidationError, match="unused samplers"):
            FragmentShader("k", _simple_body(), samplers=("a", "b", "c"))

    def test_undeclared_uniform(self):
        body = ir.mul(ir.TexFetch("a"), ir.Uniform("gain"))
        with pytest.raises(ShaderValidationError, match="undeclared uniform"):
            FragmentShader("k", body, samplers=("a",))

    def test_unused_uniform(self):
        with pytest.raises(ShaderValidationError, match="unused uniforms"):
            FragmentShader("k", _simple_body(), samplers=("a", "b"),
                           uniforms=("gain",))

    def test_duplicate_samplers(self):
        with pytest.raises(ShaderValidationError, match="duplicate"):
            FragmentShader("k", _simple_body(), samplers=("a", "b", "a"))

    def test_dynamic_fetch_sampler_checked(self):
        body = ir.TexFetchDyn("lut", ir.FragCoord())
        with pytest.raises(ShaderValidationError, match="undeclared sampler"):
            FragmentShader("k", body, samplers=())


class TestStats:
    def test_counts(self):
        body = ir.add(ir.log(ir.TexFetch("a")),
                      ir.dot4(ir.TexFetch("a", 1, 0), ir.TexFetch("b")))
        shader = FragmentShader("k", body, samplers=("a", "b"))
        stats = shader.stats
        assert stats.static_fetches == 3
        assert stats.dynamic_fetches == 0
        assert stats.transcendental_count == 1
        assert stats.max_static_offset == 1
        # 3 fetches + log + dot + add
        assert stats.instruction_count == 6

    def test_shared_subtree_counted_once(self):
        fetch = ir.TexFetch("a")
        body = ir.add(ir.mul(fetch, fetch), fetch)
        shader = FragmentShader("k", body, samplers=("a",))
        assert shader.stats.static_fetches == 1
        assert shader.stats.instruction_count == 3  # fetch, mul, add

    def test_dynamic_fetch_counted(self):
        body = ir.TexFetchDyn("lut", ir.FragCoord())
        shader = FragmentShader("k", body, samplers=("lut",))
        assert shader.stats.dynamic_fetches == 1
        assert shader.stats.static_fetches == 0

    def test_max_offset_chebyshev(self):
        body = ir.add(ir.TexFetch("a", -3, 2), ir.TexFetch("a", 1, 1))
        shader = FragmentShader("k", body, samplers=("a",))
        assert shader.stats.max_static_offset == 3
