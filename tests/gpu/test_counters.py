"""Unit tests for the counter records and aggregation."""

import pytest

from repro.gpu.counters import (
    GpuCounters,
    KernelLaunchRecord,
    TransferRecord,
)


def _launch(kernel="k", width=4, height=4, cycles=10.0, static=2,
            dynamic=0, time_s=1e-4, compute=6e-5, memory=4e-5):
    return KernelLaunchRecord(kernel=kernel, width=width, height=height,
                              cycles_per_fragment=cycles,
                              static_fetches=static,
                              dynamic_fetches=dynamic,
                              modeled_time_s=time_s,
                              compute_time_s=compute,
                              memory_time_s=memory)


class TestRecords:
    def test_fragments(self):
        assert _launch(width=6, height=7).fragments == 42

    def test_records_are_frozen(self):
        record = _launch()
        with pytest.raises(AttributeError):
            record.kernel = "other"


class TestAggregation:
    @pytest.fixture()
    def counters(self):
        c = GpuCounters()
        c.record_launch(_launch(kernel="a", time_s=2e-4))
        c.record_launch(_launch(kernel="b", width=8, time_s=3e-4,
                                static=1, dynamic=2))
        c.record_launch(_launch(kernel="a", time_s=1e-4))
        c.record_transfer(TransferRecord("upload", 1000, 5e-5))
        c.record_transfer(TransferRecord("download", 400, 2e-5))
        return c

    def test_launch_count(self, counters):
        assert counters.kernel_launch_count == 3

    def test_fragments_shaded(self, counters):
        assert counters.fragments_shaded == 16 + 32 + 16

    def test_texture_fetches(self, counters):
        # per fragment: a=2+0 (twice), b=1+2
        assert counters.texture_fetches == 16 * 2 + 32 * 3 + 16 * 2

    def test_byte_totals(self, counters):
        assert counters.bytes_uploaded == 1000
        assert counters.bytes_downloaded == 400

    def test_time_totals(self, counters):
        assert counters.kernel_time_s == pytest.approx(6e-4)
        assert counters.transfer_time_s == pytest.approx(7e-5)
        assert counters.total_time_s == pytest.approx(6.7e-4)

    def test_transfer_time_split(self, counters):
        assert counters.upload_time_s == pytest.approx(5e-5)
        assert counters.download_time_s == pytest.approx(2e-5)
        assert counters.upload_time_s + counters.download_time_s \
            == pytest.approx(counters.transfer_time_s)

    def test_time_by_kernel_groups(self, counters):
        profile = counters.time_by_kernel()
        assert profile["a"] == pytest.approx(3e-4)
        assert profile["b"] == pytest.approx(3e-4)

    def test_summary_keys_stable(self, counters):
        summary = counters.summary()
        assert set(summary) == {
            "kernel_launches", "fragments_shaded", "texture_fetches",
            "bytes_uploaded", "bytes_downloaded", "kernel_time_s",
            "transfer_time_s", "upload_time_s", "download_time_s",
            "total_time_s", "passes_fused", "temporaries_elided"}

    def test_reset(self, counters):
        counters.reset()
        assert counters.kernel_launch_count == 0
        assert counters.total_time_s == 0.0
        assert counters.time_by_kernel() == {}
