"""Tests for the Fig. 2 rendering pipeline (quad, vertex stage,
rasterizer, full chain)."""

import numpy as np
import pytest

from repro.errors import ShaderError, ShapeError
from repro.gpu import FragmentShader
from repro.gpu import shaderir as ir
from repro.gpu.pipeline import (
    QuadRenderer,
    Vertex,
    VertexShader,
    make_quad,
    rasterize,
)


class TestQuadGeometry:
    def test_quad_is_two_triangles(self):
        quad = make_quad(8, 6)
        assert len(quad) == 6

    def test_quad_spans_viewport(self):
        quad = make_quad(8, 6)
        xs = [v.x for v in quad]
        ys = [v.y for v in quad]
        assert min(xs) == 0 and max(xs) == 8
        assert min(ys) == 0 and max(ys) == 6

    def test_texcoords_unit_square(self):
        quad = make_quad(5, 5)
        assert {(v.u, v.v) for v in quad} == {(0, 0), (1, 0), (0, 1), (1, 1)}

    def test_bad_viewport(self):
        with pytest.raises(ShapeError):
            make_quad(0, 4)


class TestVertexShader:
    def test_identity_default(self):
        quad = make_quad(4, 4)
        assert VertexShader().run(quad) == quad

    def test_affine_transform(self):
        vs = VertexShader(scale=(0.5, 2.0), offset=(1.0, -1.0))
        out = vs.run((Vertex(2.0, 3.0, 0.25, 0.75),))
        assert out[0].x == 2.0 and out[0].y == 5.0
        assert out[0].u == 0.25 and out[0].v == 0.75  # passthrough


class TestRasterizer:
    def test_full_quad_covers_once(self):
        coverage, u, v = rasterize(make_quad(16, 9), 16, 9)
        assert np.all(coverage == 1)

    def test_interpolated_texcoords_monotone(self):
        _, u, v = rasterize(make_quad(8, 8), 8, 8)
        assert np.all(np.diff(u, axis=1) > 0)
        assert np.all(np.diff(v, axis=0) > 0)
        assert u[0, 0] == pytest.approx(0.5 / 8)
        assert u[0, -1] == pytest.approx(7.5 / 8)

    def test_half_size_quad_covers_quarter(self):
        quad = VertexShader(scale=(0.5, 0.5)).run(make_quad(8, 8))
        coverage, _, _ = rasterize(quad, 8, 8)
        assert coverage[:4, :4].all()
        assert not coverage[4:, :].any()
        assert not coverage[:, 4:].any()

    def test_degenerate_triangle_ignored(self):
        tri = (Vertex(0, 0, 0, 0), Vertex(4, 4, 0, 0), Vertex(2, 2, 0, 0))
        coverage, _, _ = rasterize(tri, 4, 4)
        assert coverage.sum() == 0

    def test_non_triangle_count_rejected(self):
        with pytest.raises(ShapeError):
            rasterize(make_quad(4, 4)[:4], 4, 4)


class TestQuadRenderer:
    def test_render_matches_direct_execute(self, rng):
        tex = rng.uniform(size=(6, 7, 4)).astype(np.float32)
        shader = FragmentShader("dbl", ir.mul(ir.TexFetch("a"), 2.0),
                                samplers=("a",))
        renderer = QuadRenderer()
        out = renderer.render(shader, 7, 6, {"a": tex})
        np.testing.assert_array_equal(out, tex * 2)
        assert renderer.vertices_processed == 6
        assert renderer.fragments_rasterized == 42

    def test_incomplete_coverage_detected(self, rng):
        tex = rng.uniform(size=(8, 8, 4)).astype(np.float32)
        shader = FragmentShader("id", ir.TexFetch("a"), samplers=("a",))
        shrunk = QuadRenderer(VertexShader(scale=(0.5, 1.0)))
        with pytest.raises(ShaderError, match="exactly once"):
            shrunk.render(shader, 8, 8, {"a": tex})

    def test_counters_accumulate(self, rng):
        tex = rng.uniform(size=(4, 4, 4)).astype(np.float32)
        shader = FragmentShader("id", ir.TexFetch("a"), samplers=("a",))
        renderer = QuadRenderer()
        renderer.render(shader, 4, 4, {"a": tex})
        renderer.render(shader, 4, 4, {"a": tex})
        assert renderer.vertices_processed == 12
        assert renderer.fragments_rasterized == 32
