"""Tests for the VRAM allocator, device specs and the cost model."""

import pytest

from repro.errors import DeviceError, GpuOutOfMemoryError
from repro.gpu import (
    CostModel,
    FragmentShader,
    GEFORCE_7800GTX,
    GEFORCE_FX5950U,
    GpuSpec,
    OP_COSTS,
    VramAllocator,
)
from repro.gpu import shaderir as ir


class TestVramAllocator:
    def test_allocate_and_free(self):
        vram = VramAllocator(1000)
        handle = vram.allocate(400)
        assert vram.used == 400 and vram.free == 600
        vram.release(handle)
        assert vram.used == 0

    def test_oom(self):
        vram = VramAllocator(100)
        vram.allocate(80)
        with pytest.raises(GpuOutOfMemoryError, match="cannot allocate"):
            vram.allocate(30, label="big texture")

    def test_oom_message_includes_label(self):
        vram = VramAllocator(10)
        with pytest.raises(GpuOutOfMemoryError, match="mei"):
            vram.allocate(100, label="mei")

    def test_oom_carries_structured_byte_counts(self):
        vram = VramAllocator(100)
        vram.allocate(80)
        with pytest.raises(GpuOutOfMemoryError) as excinfo:
            vram.allocate(30)
        error = excinfo.value
        assert error.requested == 30
        assert error.free == 20
        assert error.capacity == 100

    def test_oom_survives_pickling(self):
        """Pool workers ship the exception through a result queue."""
        import pickle

        vram = VramAllocator(100)
        vram.allocate(80)
        with pytest.raises(GpuOutOfMemoryError) as excinfo:
            vram.allocate(30, label="texture")
        clone = pickle.loads(pickle.dumps(excinfo.value))
        assert isinstance(clone, GpuOutOfMemoryError)
        assert clone.requested == 30
        assert clone.free == 20
        assert clone.capacity == 100
        assert str(clone) == str(excinfo.value)

    def test_double_free(self):
        vram = VramAllocator(100)
        handle = vram.allocate(10)
        vram.release(handle)
        with pytest.raises(KeyError):
            vram.release(handle)

    def test_high_water_mark(self):
        vram = VramAllocator(1000)
        a = vram.allocate(300)
        vram.allocate(200)
        vram.release(a)
        vram.allocate(100)
        assert vram.high_water_mark == 500

    def test_release_all(self):
        vram = VramAllocator(100)
        vram.allocate(40)
        vram.allocate(40)
        vram.release_all()
        assert vram.used == 0 and vram.allocation_count == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            VramAllocator(0)

    def test_invalid_allocation(self):
        with pytest.raises(ValueError):
            VramAllocator(10).allocate(0)


class TestGpuSpec:
    def test_paper_table1_values(self):
        assert GEFORCE_FX5950U.year == 2003
        assert GEFORCE_FX5950U.n_fragment_pipes == 4
        assert GEFORCE_FX5950U.core_clock_hz == 475e6
        assert GEFORCE_FX5950U.mem_bandwidth == 30.4e9
        assert GEFORCE_7800GTX.year == 2005
        assert GEFORCE_7800GTX.n_fragment_pipes == 24
        assert GEFORCE_7800GTX.core_clock_hz == 430e6
        assert GEFORCE_7800GTX.mem_bandwidth == 38.4e9
        assert GEFORCE_7800GTX.vram_bytes == GEFORCE_FX5950U.vram_bytes \
            == 256 * 1024 * 1024

    def test_bus_generations_differ(self):
        assert GEFORCE_7800GTX.bus_bandwidth > GEFORCE_FX5950U.bus_bandwidth

    def test_with_override(self):
        small = GEFORCE_7800GTX.with_(vram_bytes=1024)
        assert small.vram_bytes == 1024
        assert small.n_fragment_pipes == 24

    def test_invalid_spec_rejected(self):
        with pytest.raises(DeviceError):
            GpuSpec("x", 2000, "a", core_clock_hz=0, n_fragment_pipes=4,
                    mem_bandwidth=1e9, bus_bandwidth=1e9, vram_bytes=1)

    def test_invalid_hit_rate(self):
        with pytest.raises(DeviceError):
            GEFORCE_7800GTX.with_(texture_cache_hit_rate=1.5)


class TestCostModel:
    def _shader(self):
        body = ir.add(ir.log(ir.TexFetch("a")),
                      ir.dot4(ir.TexFetch("a", 1, 0), ir.TexFetch("b")))
        return FragmentShader("k", body, samplers=("a", "b"))

    def test_kernel_cost_matches_op_table(self):
        cost = CostModel.kernel_cost(self._shader())
        expected = 3 * OP_COSTS["tex"] + OP_COSTS["log"] \
            + OP_COSTS["dot"] + OP_COSTS["add"]
        assert cost.cycles_per_fragment == pytest.approx(expected)
        assert cost.static_fetches == 3

    def test_launch_time_scales_with_area(self):
        model = CostModel(GEFORCE_7800GTX)
        _, small = model.launch_time(self._shader(), 16, 16)
        _, large = model.launch_time(self._shader(), 64, 64)
        ratio = (large.total_s - GEFORCE_7800GTX.launch_overhead_s) \
            / (small.total_s - GEFORCE_7800GTX.launch_overhead_s)
        assert ratio == pytest.approx(16.0, rel=1e-6)

    def test_more_pipes_is_faster(self):
        fast = CostModel(GEFORCE_7800GTX)
        slow = CostModel(GEFORCE_FX5950U)
        _, t_fast = fast.launch_time(self._shader(), 256, 256)
        _, t_slow = slow.launch_time(self._shader(), 256, 256)
        assert t_fast.total_s < t_slow.total_s

    def test_launch_includes_overhead(self):
        model = CostModel(GEFORCE_7800GTX)
        _, timing = model.launch_time(self._shader(), 1, 1)
        assert timing.total_s >= GEFORCE_7800GTX.launch_overhead_s

    def test_transfer_time_linear(self):
        model = CostModel(GEFORCE_7800GTX)
        lat = GEFORCE_7800GTX.transfer_latency_s
        t1 = model.transfer_time(10 ** 6) - lat
        t2 = model.transfer_time(2 * 10 ** 6) - lat
        assert t2 == pytest.approx(2 * t1)

    def test_transfer_rejects_negative(self):
        with pytest.raises(ValueError):
            CostModel(GEFORCE_7800GTX).transfer_time(-1)

    def test_agp_transfers_slower_than_pcie(self):
        agp = CostModel(GEFORCE_FX5950U).transfer_time(10 ** 8)
        pcie = CostModel(GEFORCE_7800GTX).transfer_time(10 ** 8)
        assert agp > pcie
