"""Tests for textures and the Fig. 3 band packing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.gpu import Texture2D, pack_bands, unpack_bands
from repro.gpu.texture import band_group_count, group_masks


class TestTexture2D:
    def test_construction_coerces_float32(self):
        tex = Texture2D(np.ones((3, 4, 4), dtype=np.float64))
        assert tex.data.dtype == np.float32
        assert (tex.height, tex.width) == (3, 4)

    def test_nbytes(self):
        tex = Texture2D.zeros(5, 7)
        assert tex.nbytes == 5 * 7 * 16

    def test_rejects_wrong_channel_count(self):
        with pytest.raises(ShapeError):
            Texture2D(np.ones((3, 4, 3)))

    def test_rejects_non_3d(self):
        with pytest.raises(ShapeError):
            Texture2D(np.ones((3, 4)))

    def test_zeros_rejects_bad_extents(self):
        with pytest.raises(ShapeError):
            Texture2D.zeros(0, 4)

    def test_scalar_roundtrip(self, rng):
        image = rng.uniform(size=(6, 5)).astype(np.float32)
        tex = Texture2D.from_scalar_image(image)
        np.testing.assert_array_equal(tex.scalar_image(), image)
        assert np.all(tex.data[:, :, 1:] == 0)


class TestBandGrouping:
    @pytest.mark.parametrize("bands,groups", [(1, 1), (4, 1), (5, 2),
                                              (8, 2), (216, 54), (224, 56)])
    def test_group_count(self, bands, groups):
        assert band_group_count(bands) == groups

    def test_group_count_rejects_zero(self):
        with pytest.raises(ShapeError):
            band_group_count(0)

    def test_masks_cover_exactly_the_bands(self):
        masks = group_masks(10)
        total = sum(int(m.sum()) for m in masks)
        assert total == 10
        assert np.array_equal(masks[-1], [1, 1, 0, 0])

    def test_masks_full_groups_all_ones(self):
        for mask in group_masks(8):
            np.testing.assert_array_equal(mask, np.ones(4))


class TestPackUnpack:
    def test_pack_shapes(self, rng):
        cube = rng.uniform(size=(5, 6, 10)).astype(np.float32)
        stack = pack_bands(cube)
        assert len(stack) == 3
        assert all(t.shape == (5, 6, 4) for t in stack)

    def test_pack_values_and_padding(self, rng):
        cube = rng.uniform(size=(3, 3, 6)).astype(np.float32)
        stack = pack_bands(cube)
        np.testing.assert_array_equal(stack[0], cube[:, :, 0:4])
        np.testing.assert_array_equal(stack[1][:, :, :2], cube[:, :, 4:6])
        assert np.all(stack[1][:, :, 2:] == 0)

    def test_roundtrip(self, rng):
        cube = rng.uniform(size=(4, 7, 13)).astype(np.float32)
        np.testing.assert_array_equal(unpack_bands(pack_bands(cube), 13),
                                      cube)

    def test_unpack_accepts_texture_objects(self, rng):
        cube = rng.uniform(size=(4, 4, 5)).astype(np.float32)
        textures = [Texture2D(t) for t in pack_bands(cube)]
        np.testing.assert_array_equal(unpack_bands(textures, 5), cube)

    def test_unpack_wrong_stack_size(self, rng):
        cube = rng.uniform(size=(4, 4, 5)).astype(np.float32)
        with pytest.raises(ShapeError):
            unpack_bands(pack_bands(cube), 9)

    def test_unpack_empty(self):
        with pytest.raises(ShapeError):
            unpack_bands([], 4)

    def test_pack_rejects_2d(self):
        with pytest.raises(ShapeError):
            pack_bands(np.ones((4, 4)))

    @given(h=st.integers(1, 8), w=st.integers(1, 8), n=st.integers(1, 17))
    @settings(max_examples=50, deadline=None)
    def test_property_roundtrip(self, h, w, n):
        rng = np.random.default_rng(h * 100 + w * 10 + n)
        cube = rng.uniform(size=(h, w, n)).astype(np.float32)
        stack = pack_bands(cube)
        assert len(stack) == band_group_count(n)
        np.testing.assert_array_equal(unpack_bands(stack, n), cube)
