"""Tests for PCA / MNF / virtual dimensionality."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.spectral.reduction import (
    estimate_noise_covariance,
    mnf,
    pca,
    virtual_dimensionality,
)


@pytest.fixture()
def low_rank_cube(rng):
    """A 3-source scene: 16 bands, rank-3 signal + small noise."""
    sources = rng.uniform(0.1, 1.0, size=(3, 16))
    weights = rng.dirichlet(np.ones(3), size=(24, 24))
    cube = weights @ sources + rng.normal(0, 0.003, size=(24, 24, 16))
    return np.clip(cube, 1e-4, None), sources


class TestPca:
    def test_explains_low_rank_data(self, low_rank_cube):
        cube, _ = low_rank_cube
        proj = pca(cube, 5)
        total_var = cube.reshape(-1, 16).var(axis=0, ddof=1).sum()
        # rank-3 signal: 3 components carry essentially all variance
        assert proj.scores[:3].sum() / total_var > 0.98

    def test_components_orthonormal(self, low_rank_cube):
        cube, _ = low_rank_cube
        proj = pca(cube, 4)
        gram = proj.components @ proj.components.T
        np.testing.assert_allclose(gram, np.eye(4), atol=1e-10)

    def test_scores_descend(self, low_rank_cube):
        proj = pca(low_rank_cube[0], 6)
        assert np.all(np.diff(proj.scores) <= 1e-12)

    def test_transform_shape(self, low_rank_cube):
        proj = pca(low_rank_cube[0], 3)
        assert proj.transformed.shape == (24, 24, 3)

    def test_project_new_data(self, low_rank_cube, rng):
        cube, _ = low_rank_cube
        proj = pca(cube, 3)
        out = proj.project(cube[:2, :2])
        np.testing.assert_allclose(out, proj.transformed[:2, :2],
                                   rtol=1e-10)

    def test_project_band_mismatch(self, low_rank_cube):
        proj = pca(low_rank_cube[0], 3)
        with pytest.raises(ShapeError):
            proj.project(np.ones((4, 4, 5)))

    def test_component_bounds(self, low_rank_cube):
        with pytest.raises(ValueError):
            pca(low_rank_cube[0], 0)
        with pytest.raises(ValueError):
            pca(low_rank_cube[0], 17)

    def test_accepts_pixel_matrix(self, rng):
        pixels = rng.uniform(size=(100, 8))
        proj = pca(pixels, 2)
        assert proj.transformed.shape == (100, 2)


class TestNoiseCovariance:
    def test_recovers_iid_noise_level(self, rng):
        sigma = 0.05
        cube = 0.5 + rng.normal(0, sigma, size=(64, 64, 6))
        noise_cov = estimate_noise_covariance(cube)
        np.testing.assert_allclose(np.diag(noise_cov), sigma ** 2,
                                   rtol=0.15)

    def test_smooth_signal_ignored(self, rng):
        """A spatially smooth signal contributes ~nothing to the
        shift-difference estimate."""
        ramp = np.linspace(0, 1, 64)[None, :, None] * np.ones((64, 1, 6))
        noise_cov = estimate_noise_covariance(ramp)
        assert np.abs(noise_cov).max() < 1e-3

    def test_requires_cube(self):
        with pytest.raises(ShapeError):
            estimate_noise_covariance(np.ones((4, 6)))

    def test_requires_two_samples(self):
        with pytest.raises(ShapeError):
            estimate_noise_covariance(np.ones((4, 1, 6)))


class TestMnf:
    def test_ranks_noisy_band_below_signal(self, rng):
        """A band of pure high-variance noise dominates PCA but must rank
        last in MNF."""
        signal = np.linspace(0, 1, 32)[None, :, None] \
            * rng.uniform(0.5, 1.0, size=6)[None, None, :]
        cube = np.tile(signal, (32, 1, 1)) + rng.normal(0, 0.002,
                                                        (32, 32, 6))
        cube[:, :, 3] = rng.normal(0, 0.5, size=(32, 32))  # junk band
        proj_pca = pca(cube, 1)
        proj_mnf = mnf(cube, 1)
        # PCA's first component points at the junk band...
        assert np.abs(proj_pca.components[0, 3]) > 0.9
        # ...MNF's does not.
        junk_weight = np.abs(proj_mnf.components[0, 3]) \
            / np.abs(proj_mnf.components[0]).max()
        assert junk_weight < 0.2

    def test_transform_shape_and_scores(self, low_rank_cube):
        proj = mnf(low_rank_cube[0], 4)
        assert proj.transformed.shape == (24, 24, 4)
        assert np.all(np.diff(proj.scores) <= 1e-9)

    def test_requires_cube(self):
        with pytest.raises(ShapeError):
            mnf(np.ones((10, 6)), 2)


class TestVirtualDimensionality:
    def test_counts_sources_in_low_rank_scene(self, low_rank_cube):
        cube, sources = low_rank_cube
        vd = virtual_dimensionality(cube)
        # 3 sources + mean offset: HFC lands in a small band around 3
        assert 2 <= vd <= 6

    def test_pure_noise_has_low_vd(self, rng):
        cube = rng.normal(0, 1.0, size=(32, 32, 12))
        assert virtual_dimensionality(cube) <= 2

    def test_false_alarm_rate_validated(self, low_rank_cube):
        with pytest.raises(ValueError):
            virtual_dimensionality(low_rank_cube[0], false_alarm_rate=0.9)

    def test_needs_pixels(self):
        with pytest.raises(ShapeError):
            virtual_dimensionality(np.ones((1, 4)))
