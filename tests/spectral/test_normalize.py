"""Tests for probability normalization (paper eqs. 3-4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import ShapeError
from repro.spectral import (
    SpectralEpsilon,
    normalize_image,
    normalize_spectra,
    safe_log,
)


@pytest.fixture(autouse=True)
def _reset_epsilon():
    yield
    SpectralEpsilon.reset()


class TestNormalizeSpectra:
    def test_unit_sum_1d(self):
        out = normalize_spectra(np.array([1.0, 2.0, 3.0, 4.0]))
        assert out.sum() == pytest.approx(1.0)

    def test_unit_sum_batch(self, rng):
        spectra = rng.uniform(0.1, 5.0, size=(20, 16))
        out = normalize_spectra(spectra)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-12)

    def test_proportions_preserved(self):
        out = normalize_spectra(np.array([2.0, 6.0]))
        assert out[1] / out[0] == pytest.approx(3.0)

    def test_custom_axis(self, rng):
        spectra = rng.uniform(0.1, 1.0, size=(7, 5))
        out = normalize_spectra(spectra, axis=0)
        np.testing.assert_allclose(out.sum(axis=0), 1.0, rtol=1e-12)

    def test_zero_components_clamped(self):
        out = normalize_spectra(np.array([0.0, 1.0, 1.0]))
        assert out[0] == SpectralEpsilon.get()
        assert np.all(out > 0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            normalize_spectra(np.array([1.0, -0.5, 2.0]))

    def test_all_zero_spectrum_rejected(self):
        with pytest.raises(ValueError, match="sums to zero"):
            normalize_spectra(np.zeros((3, 4)))

    def test_empty_axis_rejected(self):
        with pytest.raises(ShapeError):
            normalize_spectra(np.empty((4, 0)))

    def test_scalar_rejected(self):
        with pytest.raises(ShapeError):
            normalize_spectra(np.float64(3.0))

    def test_float32_stays_float32(self):
        out = normalize_spectra(np.ones(8, dtype=np.float32))
        assert out.dtype == np.float32

    def test_float64_output_for_ints(self):
        out = normalize_spectra(np.array([1, 2, 3]))
        assert out.dtype == np.float64

    def test_explicit_epsilon(self):
        out = normalize_spectra(np.array([0.0, 1.0]), epsilon=1e-3)
        assert out[0] == pytest.approx(1e-3)

    @given(hnp.arrays(np.float64, hnp.array_shapes(min_dims=2, max_dims=3,
                                                   min_side=1, max_side=6),
                      elements=st.floats(0.01, 100.0)))
    @settings(max_examples=40, deadline=None)
    def test_property_unit_sum_and_bounds(self, spectra):
        out = normalize_spectra(spectra)
        assert np.all(out > 0)
        assert np.all(out <= 1.0 + 1e-9)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-9)


class TestNormalizeImage:
    def test_shape_preserved(self, small_cube):
        out = normalize_image(small_cube)
        assert out.shape == small_cube.shape

    def test_pixelwise_unit_sum(self, small_cube):
        out = normalize_image(small_cube)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-12)

    def test_requires_3d(self):
        with pytest.raises(ShapeError):
            normalize_image(np.ones((4, 4)))


class TestSpectralEpsilon:
    def test_default(self):
        assert SpectralEpsilon.get() == 1e-12

    def test_set_and_reset(self):
        SpectralEpsilon.set(1e-6)
        assert SpectralEpsilon.get() == 1e-6
        SpectralEpsilon.reset()
        assert SpectralEpsilon.get() == 1e-12

    @pytest.mark.parametrize("bad", [0.0, -1e-9, float("nan"), float("inf")])
    def test_rejects_invalid(self, bad):
        with pytest.raises(ValueError):
            SpectralEpsilon.set(bad)


class TestSafeLog:
    def test_matches_log_for_positive(self, rng):
        values = rng.uniform(0.5, 2.0, size=32)
        np.testing.assert_allclose(safe_log(values), np.log(values))

    def test_clamps_zero(self):
        out = safe_log(np.array([0.0]))
        assert out[0] == pytest.approx(np.log(SpectralEpsilon.get()))

    def test_no_warnings_on_zero(self):
        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            safe_log(np.zeros(4))

    def test_float32_preserved(self):
        out = safe_log(np.ones(4, dtype=np.float32))
        assert out.dtype == np.float32

    def test_custom_epsilon(self):
        out = safe_log(np.array([0.0]), epsilon=np.e)
        assert out[0] == pytest.approx(1.0)
