"""Tests for spectral distance measures, SID foremost (paper eq. 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import ShapeError
from repro.spectral import (
    euclidean,
    normalize_spectra,
    sam,
    sid,
    sid_cross_terms,
    sid_image,
    sid_pairwise,
    sid_self_entropy,
    spectral_correlation,
)

probability_vectors = hnp.arrays(
    np.float64, st.integers(2, 24).map(lambda n: (n,)),
    elements=st.floats(0.01, 100.0)).map(normalize_spectra)


def _sid_by_definition(p, q):
    """Literal transcription of eq. 2."""
    return float(np.sum(p * np.log(p / q)) + np.sum(q * np.log(q / p)))


class TestSid:
    def test_identical_spectra_zero(self):
        p = normalize_spectra(np.array([1.0, 2.0, 3.0]))
        assert sid(p, p) == pytest.approx(0.0, abs=1e-15)

    def test_matches_definition(self, rng):
        p = normalize_spectra(rng.uniform(0.1, 1.0, 12))
        q = normalize_spectra(rng.uniform(0.1, 1.0, 12))
        assert sid(p, q) == pytest.approx(_sid_by_definition(p, q))

    def test_symmetry(self, rng):
        p = normalize_spectra(rng.uniform(0.1, 1.0, 8))
        q = normalize_spectra(rng.uniform(0.1, 1.0, 8))
        assert sid(p, q) == pytest.approx(sid(q, p))

    def test_broadcasts_image_against_vector(self, rng):
        image = normalize_spectra(rng.uniform(0.1, 1.0, (4, 5, 8)))
        ref = normalize_spectra(rng.uniform(0.1, 1.0, 8))
        out = sid(image, ref)
        assert out.shape == (4, 5)
        assert out[2, 3] == pytest.approx(_sid_by_definition(image[2, 3], ref))

    def test_band_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            sid(np.ones(4) / 4, np.ones(5) / 5)

    def test_known_value_two_bands(self):
        p = np.array([0.75, 0.25])
        q = np.array([0.25, 0.75])
        expected = 0.5 * np.log(3) * 2  # (0.75-0.25)(log3) twice
        assert sid(p, q) == pytest.approx(expected)

    @given(probability_vectors, st.data())
    @settings(max_examples=40, deadline=None)
    def test_property_nonnegative_symmetric(self, p, data):
        q = normalize_spectra(data.draw(hnp.arrays(
            np.float64, p.shape, elements=st.floats(0.01, 100.0))))
        d1 = float(sid(p, q))
        d2 = float(sid(q, p))
        assert d1 >= 0.0
        assert d1 == pytest.approx(d2, rel=1e-9, abs=1e-12)

    @given(probability_vectors)
    @settings(max_examples=30, deadline=None)
    def test_property_identity_of_indiscernibles(self, p):
        assert float(sid(p, p)) == pytest.approx(0.0, abs=1e-10)


class TestDecomposition:
    def test_cross_entropy_identity(self, rng):
        """sid == h(p) + h(q) - cross(p, q) — the identity every backend
        relies on."""
        p = normalize_spectra(rng.uniform(0.1, 1.0, 16))
        q = normalize_spectra(rng.uniform(0.1, 1.0, 16))
        recomposed = sid_self_entropy(p) + sid_self_entropy(q) \
            - sid_cross_terms(p, q)
        assert recomposed == pytest.approx(float(sid(p, q)))

    def test_self_entropy_shape(self, rng):
        image = normalize_spectra(rng.uniform(0.1, 1.0, (3, 4, 8)))
        assert sid_self_entropy(image).shape == (3, 4)

    def test_self_entropy_is_negative(self, rng):
        p = normalize_spectra(rng.uniform(0.1, 1.0, 8))
        assert sid_self_entropy(p) < 0.0  # sum p log p < 0 for non-trivial p


class TestSidImage:
    def test_matches_per_pixel_sid(self, rng):
        a = normalize_spectra(rng.uniform(0.1, 1.0, (4, 3, 10)))
        b = normalize_spectra(rng.uniform(0.1, 1.0, (4, 3, 10)))
        out = sid_image(a, b)
        for y in range(4):
            for x in range(3):
                assert out[y, x] == pytest.approx(
                    _sid_by_definition(a[y, x], b[y, x]), abs=1e-12)

    def test_precomputed_entropies(self, rng):
        a = normalize_spectra(rng.uniform(0.1, 1.0, (4, 3, 10)))
        b = normalize_spectra(rng.uniform(0.1, 1.0, (4, 3, 10)))
        ha = sid_self_entropy(a)
        hb = sid_self_entropy(b)
        np.testing.assert_allclose(sid_image(a, b, ha, hb), sid_image(a, b))

    def test_shape_mismatch_rejected(self, rng):
        a = normalize_spectra(rng.uniform(0.1, 1.0, (4, 3, 10)))
        with pytest.raises(ShapeError):
            sid_image(a, a[:2])

    def test_requires_3d(self):
        with pytest.raises(ShapeError):
            sid_image(np.ones((3, 4)), np.ones((3, 4)))


class TestSidPairwise:
    def test_matches_elementwise(self, rng):
        a = normalize_spectra(rng.uniform(0.1, 1.0, (5, 12)))
        b = normalize_spectra(rng.uniform(0.1, 1.0, (3, 12)))
        out = sid_pairwise(a, b)
        assert out.shape == (5, 3)
        for i in range(5):
            for j in range(3):
                assert out[i, j] == pytest.approx(
                    _sid_by_definition(a[i], b[j]), abs=1e-10)

    def test_self_matrix_symmetric_zero_diag(self, rng):
        a = normalize_spectra(rng.uniform(0.1, 1.0, (6, 9)))
        out = sid_pairwise(a)
        np.testing.assert_allclose(out, out.T, atol=1e-12)
        np.testing.assert_allclose(np.diag(out), 0.0, atol=1e-10)

    def test_rejects_non_2d(self, rng):
        with pytest.raises(ShapeError):
            sid_pairwise(np.ones(4) / 4)

    def test_rejects_band_mismatch(self):
        with pytest.raises(ShapeError):
            sid_pairwise(np.ones((2, 4)) / 4, np.ones((2, 5)) / 5)


class TestSam:
    def test_zero_for_parallel(self, rng):
        p = rng.uniform(0.1, 1.0, 8)
        assert sam(p, 3.7 * p) == pytest.approx(0.0, abs=1e-7)

    def test_orthogonal_is_right_angle(self):
        assert sam(np.array([1.0, 0.0]), np.array([0.0, 1.0])) \
            == pytest.approx(np.pi / 2)

    def test_scale_invariance(self, rng):
        p = rng.uniform(0.1, 1.0, 8)
        q = rng.uniform(0.1, 1.0, 8)
        assert sam(p, q) == pytest.approx(sam(2.0 * p, 0.5 * q))

    def test_range(self, rng):
        for _ in range(20):
            p = rng.uniform(0.0, 1.0, 6)
            q = rng.uniform(0.0, 1.0, 6)
            angle = float(sam(p + 1e-6, q + 1e-6))
            assert 0.0 <= angle <= np.pi


class TestCorrelationAndEuclidean:
    def test_correlation_perfect(self, rng):
        p = rng.uniform(0.1, 1.0, 10)
        assert spectral_correlation(p, 2 * p + 3) == pytest.approx(1.0)

    def test_correlation_anti(self, rng):
        p = rng.uniform(0.1, 1.0, 10)
        assert spectral_correlation(p, -p) == pytest.approx(-1.0)

    def test_correlation_bounds(self, rng):
        for _ in range(10):
            c = float(spectral_correlation(rng.normal(size=8),
                                           rng.normal(size=8)))
            assert -1.0 <= c <= 1.0

    def test_euclidean_matches_numpy(self, rng):
        p = rng.normal(size=12)
        q = rng.normal(size=12)
        assert euclidean(p, q) == pytest.approx(np.linalg.norm(p - q))

    def test_euclidean_zero(self, rng):
        p = rng.normal(size=5)
        assert euclidean(p, p) == 0.0
