"""API-surface tests: the documented public interface stays importable
and consistent."""

import importlib

import pytest

PACKAGES = ["repro", "repro.spectral", "repro.hsi", "repro.stream",
            "repro.gpu", "repro.cpu", "repro.core", "repro.backends",
            "repro.pipeline", "repro.bench", "repro.viz", "repro.parallel",
            "repro.profiling", "repro.resilience", "repro.faults",
            "repro.serving"]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    """Every name in __all__ must actually exist in the module."""
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), package
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.{name}"


@pytest.mark.parametrize("package", PACKAGES)
def test_all_is_sorted(package):
    """__all__ lists are kept sorted (case-insensitive-ish: the
    convention in this codebase is plain sorted())."""
    module = importlib.import_module(package)
    assert list(module.__all__) == sorted(module.__all__), package


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_quickstart_snippet_runs():
    """The README / package-docstring quickstart must keep working."""
    from repro.core import AMCConfig, run_amc
    from repro.hsi import generate_indian_pines_like

    scene = generate_indian_pines_like(24, 24, band_count=32, seed=1)
    result = run_amc(scene.cube, AMCConfig(n_classes=5, backend="gpu"),
                     ground_truth=scene.ground_truth,
                     class_names=scene.class_names)
    assert "Overall:" in result.report.format_table()
    assert result.gpu_output.modeled_time_s > 0


def test_every_public_callable_has_docstring():
    """Documentation deliverable: every public item carries a docstring."""
    missing = []
    for package in PACKAGES:
        module = importlib.import_module(package)
        for name in module.__all__:
            obj = getattr(module, name)
            if callable(obj) and not (obj.__doc__ or "").strip():
                missing.append(f"{package}.{name}")
    assert not missing, f"undocumented public callables: {missing}"


def test_submodules_have_docstrings():
    import pkgutil

    import repro

    undocumented = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        module = importlib.import_module(info.name)
        if not (module.__doc__ or "").strip():
            undocumented.append(info.name)
    assert not undocumented, undocumented
