"""End-to-end tests of the non-AMC workloads through the Pipeline.

The contracts under test: every workload runs its declared stages with
profiling records; the chunk-parallel path is bit-identical to serial
— with and without injected faults; and each workload's math agrees
with the library functions it is built from
(:mod:`repro.core.detection`, :mod:`repro.spectral`).
"""

import numpy as np
import pytest

from repro import faults
from repro.core.detection import cem_detector, rx_detector
from repro.errors import NonFiniteInputError, ShapeError
from repro.faults import FaultInjector, FaultSpec
from repro.profiling import Profiler
from repro.spectral import pca, sam
from repro.workloads import get_workload, workload_names


@pytest.fixture(scope="module")
def scene():
    from repro.hsi import SceneParams, generate_scene

    return generate_scene(SceneParams(lines=40, samples=32, band_count=24,
                                      seed=424, min_field=5))


@pytest.fixture(scope="module")
def cube(scene):
    return scene.cube.as_bip()


@pytest.fixture(scope="module")
def target_class(scene):
    labels, counts = np.unique(scene.ground_truth, return_counts=True)
    present = [(int(label), int(count))
               for label, count in zip(labels, counts) if label != 0]
    return min(present, key=lambda pair: pair[1])[0]   # rarest class


@pytest.fixture(scope="module")
def target_mask(scene, target_class):
    return scene.ground_truth == target_class


@pytest.fixture(scope="module")
def target(cube, target_mask):
    return tuple(float(v) for v in cube[target_mask].mean(axis=0))


def _detection_params(name, target):
    return {"target": target} if get_workload(name).requires_target else {}


@pytest.fixture()
def _clean_faults():
    faults.uninstall()
    faults.set_attempt(0)
    yield
    faults.uninstall()
    faults.set_attempt(0)


class TestDetectionWorkloads:
    @pytest.mark.parametrize("name", ("sam", "cem", "rx"))
    def test_stage_records_and_result(self, name, cube, target,
                                      target_mask):
        profiler = Profiler()
        result = get_workload(name).run(
            cube, _detection_params(name, target),
            ground_truth=target_mask, profiler=profiler)
        assert [r.name for r in profiler.stage_records] == [
            "statistics", "scores", "evaluation"]
        assert result.workload == name
        assert result.scores.shape == cube.shape[:2]
        assert result.curve is not None
        assert result.auc == result.curve.auc

    @pytest.mark.parametrize("name", ("sam", "cem", "rx"))
    def test_detects_the_target(self, name, cube, target, target_mask):
        """The implanted class must rank far above chance."""
        result = get_workload(name).run(
            cube, _detection_params(name, target), ground_truth=target_mask)
        assert result.auc > 0.7

    @pytest.mark.parametrize("name", ("sam", "cem", "rx"))
    def test_chunked_bit_identical_to_serial(self, name, cube, target):
        params = _detection_params(name, target)
        serial = get_workload(name).run(cube, params)
        chunked = get_workload(name).run(
            cube, dict(params, n_workers=2))
        np.testing.assert_array_equal(serial.scores, chunked.scores)

    @pytest.mark.parametrize("name", ("sam", "cem", "rx"))
    def test_chunked_bit_identical_under_faults(self, name, cube, target,
                                                _clean_faults):
        params = _detection_params(name, target)
        serial = get_workload(name).run(cube, params)
        faults.install(FaultInjector(
            [FaultSpec(kind="transient", index=0, attempt=0)]))
        profiler = Profiler()
        chunked = get_workload(name).run(
            cube, dict(params, n_workers=2, max_retries=1),
            profiler=profiler)
        np.testing.assert_array_equal(serial.scores, chunked.scores)
        retried = [r for r in profiler.chunk_records if r.index == 0]
        assert retried and retried[0].retries >= 1

    def test_sam_agrees_with_spectral_sam(self, cube, target):
        result = get_workload("sam").run(cube, {"target": target})
        np.testing.assert_array_equal(
            result.scores, -sam(np.asarray(cube, dtype=np.float64),
                                np.asarray(target)))

    def test_cem_agrees_with_library_detector(self, cube, target):
        result = get_workload("cem").run(cube, {"target": target})
        np.testing.assert_allclose(
            result.scores,
            cem_detector(cube, np.asarray(target)), atol=1e-12)

    def test_rx_agrees_with_library_detector(self, cube):
        result = get_workload("rx").run(cube, {})
        np.testing.assert_array_equal(result.scores, rx_detector(cube))

    def test_matched_filters_require_target(self, cube):
        for name in ("sam", "cem"):
            with pytest.raises(ValueError, match="target"):
                get_workload(name).run(cube, {})

    def test_no_mask_means_no_curve(self, cube):
        result = get_workload("rx").run(cube)
        assert result.curve is None
        assert result.auc is None

    def test_non_finite_cube_rejected(self, cube):
        bad = np.array(cube, dtype=np.float64)
        bad[1, 2, 3] = np.inf
        with pytest.raises(NonFiniteInputError):
            get_workload("rx").run(bad)

    def test_non_3d_rejected(self):
        with pytest.raises(ShapeError):
            get_workload("rx").run(np.zeros((4, 5)))


class TestPcaWorkload:
    def test_stage_records_and_result(self, cube):
        profiler = Profiler()
        result = get_workload("pca").run(cube, {"n_components": 5},
                                         profiler=profiler)
        assert [r.name for r in profiler.stage_records] == [
            "statistics", "project"]
        assert result.transformed.shape == (*cube.shape[:2], 5)
        assert result.components.shape == (5, cube.shape[2])
        assert result.scores.shape == (5,)
        assert result.workload == "pca"

    def test_agrees_with_spectral_pca(self, cube):
        result = get_workload("pca").run(cube, {"n_components": 4})
        projection = pca(cube, 4)
        np.testing.assert_array_equal(result.components,
                                      projection.components)
        np.testing.assert_array_equal(result.mean, projection.mean)
        np.testing.assert_allclose(result.transformed,
                                   projection.transformed, atol=1e-9)

    def test_chunked_bit_identical_to_serial(self, cube):
        serial = get_workload("pca").run(cube, {"n_components": 3})
        chunked = get_workload("pca").run(
            cube, {"n_components": 3, "n_workers": 3})
        np.testing.assert_array_equal(serial.transformed,
                                      chunked.transformed)

    def test_chunked_bit_identical_under_faults(self, cube, _clean_faults):
        serial = get_workload("pca").run(cube, {"n_components": 3})
        faults.install(FaultInjector(
            [FaultSpec(kind="transient", index=1, attempt=0)]))
        chunked = get_workload("pca").run(
            cube, {"n_components": 3, "n_workers": 2, "max_retries": 1})
        np.testing.assert_array_equal(serial.transformed,
                                      chunked.transformed)

    def test_variance_ordering(self, cube):
        result = get_workload("pca").run(cube, {"n_components": 6})
        assert (np.diff(result.scores) <= 1e-12).all()


class TestResultAccounting:
    """result_arrays/result_nbytes back the serving digests and cache."""

    def test_detection_accounting(self, cube, target):
        wl = get_workload("sam")
        result = wl.run(cube, {"target": target})
        (scores,) = wl.result_arrays(result)
        assert scores is result.scores
        assert wl.result_nbytes(result) == result.scores.nbytes

    def test_reduction_accounting(self, cube):
        wl = get_workload("pca")
        result = wl.run(cube, {"n_components": 2})
        arrays = wl.result_arrays(result)
        assert arrays[0] is result.transformed
        assert wl.result_nbytes(result) == sum(a.nbytes for a in arrays)

    def test_amc_digest_arrays_order(self, cube):
        wl = get_workload("amc")
        result = wl.run(cube, {"n_classes": 4})
        labels, mei, abundances = wl.result_arrays(result)
        assert labels is result.labels
        assert mei is result.mei
        assert abundances is result.abundances


class TestFacades:
    """The historical entry points are thin shells over the registry."""

    def test_execute_amc_delegates_to_registry(self, cube):
        from repro.core import AMCConfig, run_amc
        from repro.pipeline import execute_amc

        config = AMCConfig(n_classes=4)
        via_facade = execute_amc(cube, config)
        via_run_amc = run_amc(cube, config)
        via_workload = get_workload("amc").run(cube, config)
        for a, b in ((via_facade, via_workload),
                     (via_run_amc, via_workload)):
            np.testing.assert_array_equal(a.labels, b.labels)
            np.testing.assert_array_equal(a.mei, b.mei)
            np.testing.assert_array_equal(a.abundances, b.abundances)

    def test_every_builtin_runs_through_generic_pipeline(self, cube,
                                                         target):
        """One loop over the registry — no name special-casing."""
        import dataclasses

        for name in workload_names():
            wl = get_workload(name)
            fields = {f.name for f in dataclasses.fields(wl.config_type)}
            params = {}
            if wl.requires_target:
                params["target"] = target
            if "n_classes" in fields:   # classify configs must fit the cube
                params["n_classes"] = 4
            pipeline = wl.build_pipeline()
            result = wl.run(cube, params, pipeline=pipeline)
            assert result is not None
            assert pipeline.run_count == 1
