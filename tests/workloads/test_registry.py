"""Tests for the workload registry and the Workload contract."""

import numpy as np
import pytest

from repro.errors import UnknownWorkloadError
from repro.workloads import (
    DEFAULT_EXECUTION_KNOBS,
    AMCWorkload,
    DetectionConfig,
    Workload,
    get_workload,
    register_workload,
    unregister_workload,
    workload_names,
)


class TestRegistry:
    def test_builtins_registered(self):
        assert workload_names() == ("amc", "cem", "pca", "rx", "sam")

    def test_kind_filter(self):
        assert workload_names(kind="detection") == ("cem", "rx", "sam")
        assert workload_names(kind="reduction") == ("pca",)
        assert workload_names(kind="classify") == ("amc",)
        assert workload_names(kind="nope") == ()

    def test_get_by_name_and_passthrough(self):
        amc = get_workload("amc")
        assert isinstance(amc, AMCWorkload)
        assert get_workload(amc) is amc

    def test_unknown_name_lists_registered(self):
        with pytest.raises(UnknownWorkloadError, match="amc"):
            get_workload("kmeans")

    def test_unknown_is_value_error(self):
        """Callers that catch ValueError (argparse-ish code) still work."""
        with pytest.raises(ValueError):
            get_workload("kmeans")

    def test_duplicate_name_rejected_unless_replace(self):
        class Dup(AMCWorkload):
            pass

        with pytest.raises(ValueError, match="already registered"):
            register_workload(Dup())
        try:
            replaced = register_workload(Dup(), replace=True)
            assert get_workload("amc") is replaced
        finally:
            register_workload(AMCWorkload(), replace=True)

    def test_register_rejects_non_workload_and_unnamed(self):
        with pytest.raises(TypeError):
            register_workload("amc")
        with pytest.raises(ValueError, match="non-empty"):
            register_workload(Workload())

    def test_unregister_roundtrip(self):
        class Custom(AMCWorkload):
            name = "custom-classify"

        register_workload(Custom())
        try:
            assert "custom-classify" in workload_names()
        finally:
            unregister_workload("custom-classify")
        assert "custom-classify" not in workload_names()
        unregister_workload("custom-classify")  # idempotent


class TestDeclarations:
    """Each built-in's declared metadata drives the generic layers."""

    def test_stage_names(self):
        assert get_workload("amc").stage_names == (
            "morphology", "endmembers", "unmixing", "classification",
            "evaluation")
        for name in ("sam", "cem", "rx"):
            assert get_workload(name).stage_names == (
                "statistics", "scores", "evaluation")
        assert get_workload("pca").stage_names == ("statistics", "project")

    def test_halo_declarations(self):
        assert get_workload("amc").halo({"se_radius": 3}) == 3
        assert get_workload("amc").halo(None) == 1    # config default
        for name in ("sam", "cem", "rx", "pca"):
            assert get_workload(name).halo(None) == 0

    def test_requires_target_capability(self):
        assert get_workload("sam").requires_target
        assert get_workload("cem").requires_target
        assert not get_workload("rx").requires_target
        assert not get_workload("amc").requires_target
        assert not get_workload("pca").requires_target

    def test_canonical_params_exclude_execution_knobs(self):
        for name in workload_names():
            params = get_workload(name).canonical_params(None)
            assert not (set(params) & DEFAULT_EXECUTION_KNOBS), name

    def test_canonical_params_fill_defaults(self):
        rx = get_workload("rx")
        assert rx.canonical_params(None) == rx.canonical_params(
            {"regularization": 1e-6})

    def test_canonical_params_json_serializable(self):
        import json

        target = (1.0, 2.0, 3.0)
        for name in workload_names():
            params = ({"target": target}
                      if get_workload(name).requires_target else None)
            json.dumps(get_workload(name).canonical_params(params),
                       sort_keys=True)

    def test_as_config_rejects_unknown_fields(self):
        with pytest.raises(TypeError):
            get_workload("rx").as_config({"se_radius": 2})

    def test_detection_config_validation(self):
        with pytest.raises(ValueError):
            DetectionConfig(regularization=0.0)
        with pytest.raises(ValueError):
            DetectionConfig(max_alarms=0)
        with pytest.raises(ValueError):
            DetectionConfig(n_workers=-1)
        with pytest.raises(ValueError):
            DetectionConfig(max_retries=-1)
        with pytest.raises(ValueError):
            DetectionConfig(chunk_timeout_s=0.0)

    def test_detection_target_canonicalized_to_floats(self):
        config = DetectionConfig(target=np.array([1, 2, 3]))
        assert config.target == (1.0, 2.0, 3.0)
        assert all(isinstance(v, float) for v in config.target)

    def test_reduction_config_validation(self):
        from repro.workloads import ReductionConfig

        with pytest.raises(ValueError):
            ReductionConfig(n_components=0)
        with pytest.raises(ValueError):
            ReductionConfig(n_workers=-1)
