"""Fused-vs-unfused bit-identity across every registered workload.

The ``optimize`` execution knob selects the fused fast paths
(``"fuse"``, the default) or the historical implementation
(``"none"``, the oracle).  The contract is *byte* identity: every
result array must hash the same under sha256 whichever path ran —
including under chunk-parallel execution with injected faults, where a
retried chunk shares border-correction pixels with its neighbour via
the halo-margin handoff and must not double-apply them.
"""

import hashlib

import numpy as np
import pytest

from repro import faults
from repro.core import AMCConfig, run_amc
from repro.faults import FaultInjector, FaultSpec
from repro.hsi import SceneParams, generate_scene
from repro.profiling import Profiler
from repro.workloads import get_workload


def _sha256(*arrays) -> str:
    digest = hashlib.sha256()
    for array in arrays:
        digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


@pytest.fixture(scope="module")
def scene():
    return generate_scene(SceneParams(lines=36, samples=28, band_count=24,
                                      seed=20060815, min_field=5))


@pytest.fixture(scope="module")
def cube(scene):
    return scene.cube.as_bip()


@pytest.fixture(scope="module")
def target(scene, cube):
    labels, counts = np.unique(scene.ground_truth, return_counts=True)
    rarest = min(((int(lab), int(cnt)) for lab, cnt in zip(labels, counts)
                  if lab != 0), key=lambda pair: pair[1])[0]
    return tuple(float(v) for v in
                 cube[scene.ground_truth == rarest].mean(axis=0))


@pytest.fixture()
def _clean_faults():
    faults.uninstall()
    faults.set_attempt(0)
    yield
    faults.uninstall()
    faults.set_attempt(0)


class TestAmcIdentity:
    @pytest.mark.parametrize("backend", ("reference", "gpu"))
    @pytest.mark.parametrize("radius", (1, 2, 3))
    def test_fused_matches_oracle(self, cube, backend, radius):
        fused = run_amc(cube, AMCConfig(n_classes=3, backend=backend,
                                        se_radius=radius))
        oracle = run_amc(cube, AMCConfig(n_classes=3, backend=backend,
                                         se_radius=radius,
                                         optimize="none"))
        assert _sha256(fused.labels, fused.mei, fused.abundances) == \
            _sha256(oracle.labels, oracle.mei, oracle.abundances)
        np.testing.assert_array_equal(fused.erosion_index,
                                      oracle.erosion_index)
        np.testing.assert_array_equal(fused.dilation_index,
                                      oracle.dilation_index)

    def test_fnnls_unmixing_matches_oracle(self, cube):
        fused = run_amc(cube, AMCConfig(n_classes=3, unmixing="fnnls"))
        oracle = run_amc(cube, AMCConfig(n_classes=3, unmixing="fnnls",
                                         optimize="none"))
        assert _sha256(fused.abundances) == _sha256(oracle.abundances)
        assert _sha256(fused.labels) == _sha256(oracle.labels)

    def test_parallel_fused_matches_serial_oracle(self, cube):
        """Chunked execution with halo-margin border sharing stays
        bit-identical to the serial historical path."""
        oracle = run_amc(cube, AMCConfig(n_classes=3, optimize="none"))
        profiler = Profiler()
        fused = run_amc(cube, AMCConfig(n_classes=3, n_workers=2),
                        profiler=profiler)
        assert _sha256(fused.labels, fused.mei) == \
            _sha256(oracle.labels, oracle.mei)
        # the margin handoff actually fired: elided border rows counted
        (morph,) = [r for r in profiler.stage_records
                    if r.name == "morphology"]
        assert morph.counters.get("border_pixels_shared", 0.0) > 0.0

    def test_gpu_counters_report_fusion(self, cube):
        profiler = Profiler()
        result = run_amc(cube, AMCConfig(n_classes=3, backend="gpu"),
                         profiler=profiler)
        summary = result.gpu_output.counters
        assert "passes_fused" in summary
        assert "temporaries_elided" in summary
        # the hand-tuned AMC kernels elide one scratch per launch
        assert summary["temporaries_elided"] > 0.0
        # the same numbers reach the --profile morphology stage record
        (morph,) = [r for r in profiler.stage_records
                    if r.name == "morphology"]
        assert morph.counters["temporaries_elided"] == \
            summary["temporaries_elided"]
        assert morph.counters["passes_fused"] == summary["passes_fused"]


class TestChaosRetryIdentity:
    def test_retried_chunk_does_not_double_apply_border_map(
            self, cube, _clean_faults):
        """A fault-injected chunk retry recomputes its halo margins from
        scratch; the shared border pixels must be applied exactly once."""
        serial = run_amc(cube, AMCConfig(n_classes=3, optimize="none"))

        faults.install(FaultInjector(
            [FaultSpec(kind="transient", index=0, attempt=0)]))
        profiler = Profiler()
        chaos = run_amc(cube,
                        AMCConfig(n_classes=3, n_workers=2, max_retries=1),
                        profiler=profiler)
        assert _sha256(chaos.labels, chaos.mei, chaos.abundances) == \
            _sha256(serial.labels, serial.mei, serial.abundances)
        retried = [r for r in profiler.chunk_records if r.index == 0]
        assert retried and retried[0].retries >= 1

    def test_retry_identity_holds_for_oracle_mode_too(
            self, cube, _clean_faults):
        """Same chaos run with optimize="none" everywhere: the knob
        never changes results, only code paths."""
        serial = run_amc(cube, AMCConfig(n_classes=3))
        faults.install(FaultInjector(
            [FaultSpec(kind="transient", index=1, attempt=0)]))
        chaos = run_amc(cube,
                        AMCConfig(n_classes=3, n_workers=2, max_retries=1,
                                  optimize="none"))
        assert _sha256(chaos.labels, chaos.mei) == \
            _sha256(serial.labels, serial.mei)


class TestDetectionReductionIdentity:
    """The knob is accepted (and validated) by every workload config;
    for the plain-NumPy detection/reduction kernels it is a documented
    no-op — results stay byte-identical."""

    @pytest.mark.parametrize("name", ("sam", "cem", "rx"))
    def test_detection_fused_matches_oracle(self, name, cube, target):
        wl = get_workload(name)
        params = {"target": target} if wl.requires_target else {}
        fused = wl.run(cube, params)
        oracle = wl.run(cube, dict(params, optimize="none"))
        np.testing.assert_array_equal(fused.scores, oracle.scores)

    def test_pca_fused_matches_oracle(self, cube):
        fused = get_workload("pca").run(cube, {"n_components": 4})
        oracle = get_workload("pca").run(
            cube, {"n_components": 4, "optimize": "none"})
        np.testing.assert_array_equal(fused.transformed,
                                      oracle.transformed)
        np.testing.assert_array_equal(fused.components, oracle.components)

    def test_bad_optimize_rejected(self, cube):
        with pytest.raises(Exception, match="optimize"):
            run_amc(cube, AMCConfig(n_classes=3, optimize="never"))
