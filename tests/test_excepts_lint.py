"""Except-lint gate: the check of tools/check_excepts.py runs in CI.

The checker fails when a bare ``except:`` or a blanket
``except Exception`` / ``except BaseException`` clause appears in
library code outside ``src/repro/resilience/`` — absorbing arbitrary
failures is the resilience layer's job and nobody else's.
"""

import importlib.util
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _load_checker():
    path = os.path.join(REPO_ROOT, "tools", "check_excepts.py")
    spec = importlib.util.spec_from_file_location("check_excepts", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_excepts", module)
    spec.loader.exec_module(module)
    return module


def test_excepts_are_contained():
    checker = _load_checker()
    problems = checker.scan()
    assert not problems, "\n".join(problems)


def test_checker_detects_blanket_excepts(tmp_path):
    """The gate actually gates: every blanket form is reported."""
    checker = _load_checker()
    offender = tmp_path / "src" / "repro" / "core"
    offender.mkdir(parents=True)
    (offender / "bad.py").write_text(
        'def risky():\n'
        '    try:\n'
        '        work()\n'
        '    except:\n'
        '        pass\n'
        '    try:\n'
        '        work()\n'
        '    except Exception as exc:\n'
        '        pass\n'
        '    try:\n'
        '        work()\n'
        '    except (ValueError, BaseException):\n'
        '        pass\n')
    problems = checker.scan(str(tmp_path))
    assert len(problems) == 3
    assert "bad.py:4" in problems[0]
    assert "bad.py:8" in problems[1]
    assert "bad.py:12" in problems[2]


def test_checker_allows_specific_excepts(tmp_path):
    checker = _load_checker()
    package = tmp_path / "src" / "repro" / "hsi"
    package.mkdir(parents=True)
    (package / "ok.py").write_text(
        'def careful():\n'
        '    try:\n'
        '        work()\n'
        '    except (ValueError, OSError) as exc:\n'
        '        raise RuntimeError() from exc\n'
        '    except KeyError:\n'
        '        pass\n')
    assert checker.scan(str(tmp_path)) == []


def test_checker_ignores_comments_and_resilience_package(tmp_path):
    checker = _load_checker()
    allowed = tmp_path / "src" / "repro" / "resilience"
    allowed.mkdir(parents=True)
    (allowed / "retry.py").write_text(
        'def isolate():\n'
        '    try:\n'
        '        work()\n'
        '    except Exception as exc:\n'
        '        return exc\n')
    other = tmp_path / "src" / "repro" / "parallel"
    other.mkdir(parents=True)
    (other / "pool.py").write_text(
        '# a blanket except Exception: here would be a bug\n'
        'X = 1\n')
    assert checker.scan(str(tmp_path)) == []
