"""Dispatch-lint gate: the check of tools/check_dispatch.py runs in CI.

The checker fails when a ``backend == "..."`` string comparison appears
in library code outside ``src/repro/backends/`` — the if/elif dispatch
the registry refactor removed must not re-fragment.
"""

import importlib.util
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _load_checker():
    path = os.path.join(REPO_ROOT, "tools", "check_dispatch.py")
    spec = importlib.util.spec_from_file_location("check_dispatch", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_dispatch", module)
    spec.loader.exec_module(module)
    return module


def test_dispatch_is_centralized():
    checker = _load_checker()
    problems = checker.scan()
    assert not problems, "\n".join(problems)


def test_checker_detects_string_dispatch(tmp_path):
    """The gate actually gates: a reintroduced comparison is reported."""
    checker = _load_checker()
    offender = tmp_path / "src" / "repro" / "core"
    offender.mkdir(parents=True)
    (offender / "bad.py").write_text(
        'def pick(config):\n'
        '    if config.backend == "gpu":  # backend == "x" in a comment'
        ' alone is fine\n'
        '        return 1\n'
        '    return 0\n')
    problems = checker.scan(str(tmp_path))
    assert len(problems) == 1
    assert "bad.py:2" in problems[0]


def test_checker_ignores_comments_and_backends_package(tmp_path):
    checker = _load_checker()
    allowed = tmp_path / "src" / "repro" / "backends"
    allowed.mkdir(parents=True)
    (allowed / "registry.py").write_text(
        'def get(name):\n'
        '    if name.backend == "gpu":\n'
        '        return 1\n')
    other = tmp_path / "src" / "repro" / "parallel"
    other.mkdir(parents=True)
    (other / "amc.py").write_text(
        '# historical: dispatched on backend == "gpu" here\n'
        'X = 1\n')
    assert checker.scan(str(tmp_path)) == []
