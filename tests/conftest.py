"""Shared fixtures: small deterministic cubes and scenes.

GPU-involved tests run the full interpreter over every fragment, so the
shared cubes are deliberately tiny; the scene fixture is session-scoped
because generation dominates several test modules otherwise.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hsi import SceneParams, generate_scene


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture()
def small_cube(rng: np.random.Generator) -> np.ndarray:
    """A (10, 9, 13) strictly positive radiance cube (odd sizes on
    purpose: pad/border paths get exercised)."""
    return rng.uniform(0.05, 1.0, size=(10, 9, 13))


@pytest.fixture()
def tiny_cube(rng: np.random.Generator) -> np.ndarray:
    """A (6, 5, 6) cube small enough for the naive O(B^4) oracle."""
    return rng.uniform(0.05, 1.0, size=(6, 5, 6))


@pytest.fixture(scope="session")
def session_scene():
    """A 48x48, 64-band scene shared by read-only tests."""
    return generate_scene(SceneParams(lines=48, samples=48, band_count=64,
                                      seed=777, min_field=6))
