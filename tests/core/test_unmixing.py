"""Tests for linear spectral unmixing and classification."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    classify_abundances,
    unmix_fcls,
    unmix_lsu,
    unmix_nnls,
    unmix_sclsu,
)
from repro.errors import ShapeError


@pytest.fixture()
def endmembers(rng):
    """Four well-separated synthetic endmembers over 16 bands."""
    base = rng.uniform(0.2, 1.0, size=(4, 16))
    base[0] *= np.linspace(0.3, 1.5, 16)
    base[1] *= np.linspace(1.5, 0.3, 16)
    base[2, 4:8] *= 0.2
    return base


@pytest.fixture()
def true_abundances(rng):
    a = rng.dirichlet(np.ones(4), size=(6, 5))
    return a


@pytest.fixture()
def mixed_pixels(endmembers, true_abundances):
    return true_abundances @ endmembers


class TestExactRecovery:
    """On noise-free mixtures every estimator must recover the truth."""

    def test_lsu(self, mixed_pixels, endmembers, true_abundances):
        est = unmix_lsu(mixed_pixels, endmembers)
        np.testing.assert_allclose(est, true_abundances, atol=1e-9)

    def test_sclsu(self, mixed_pixels, endmembers, true_abundances):
        est = unmix_sclsu(mixed_pixels, endmembers)
        np.testing.assert_allclose(est, true_abundances, atol=1e-9)

    def test_nnls(self, mixed_pixels, endmembers, true_abundances):
        est = unmix_nnls(mixed_pixels, endmembers)
        np.testing.assert_allclose(est, true_abundances, atol=1e-8)

    def test_fcls(self, mixed_pixels, endmembers, true_abundances):
        est = unmix_fcls(mixed_pixels, endmembers)
        np.testing.assert_allclose(est, true_abundances, atol=1e-6)


class TestConstraints:
    def test_sclsu_sums_to_one_even_with_noise(self, mixed_pixels,
                                               endmembers, rng):
        noisy = mixed_pixels + rng.normal(0, 0.01, mixed_pixels.shape)
        est = unmix_sclsu(noisy, endmembers)
        np.testing.assert_allclose(est.sum(axis=-1), 1.0, atol=1e-9)

    def test_nnls_nonnegative(self, mixed_pixels, endmembers, rng):
        noisy = np.abs(mixed_pixels + rng.normal(0, 0.05,
                                                 mixed_pixels.shape))
        est = unmix_nnls(noisy, endmembers)
        assert np.all(est >= 0)

    def test_fcls_both_constraints(self, mixed_pixels, endmembers, rng):
        noisy = np.abs(mixed_pixels + rng.normal(0, 0.05,
                                                 mixed_pixels.shape))
        est = unmix_fcls(noisy, endmembers)
        assert np.all(est >= 0)
        np.testing.assert_allclose(est.sum(axis=-1), 1.0, atol=1e-3)

    def test_lsu_scale_equivariance(self, mixed_pixels, endmembers):
        a = unmix_lsu(mixed_pixels, endmembers)
        b = unmix_lsu(3.0 * mixed_pixels, endmembers)
        np.testing.assert_allclose(b, 3.0 * a, rtol=1e-9)


class TestShapes:
    def test_single_pixel(self, endmembers):
        est = unmix_lsu(endmembers[2], endmembers)
        assert est.shape == (4,)
        np.testing.assert_allclose(est, [0, 0, 1, 0], atol=1e-9)

    def test_image_shape_preserved(self, mixed_pixels, endmembers):
        assert unmix_lsu(mixed_pixels, endmembers).shape == (6, 5, 4)

    def test_band_mismatch(self, endmembers):
        with pytest.raises(ShapeError):
            unmix_lsu(np.ones(8), endmembers)

    def test_underdetermined_rejected(self, rng):
        endmembers = rng.uniform(0.1, 1, size=(10, 6))
        with pytest.raises(ShapeError, match="underdetermined"):
            unmix_lsu(np.ones(6), endmembers)

    def test_endmembers_must_be_2d(self):
        with pytest.raises(ShapeError):
            unmix_lsu(np.ones(6), np.ones(6))


class TestClassify:
    def test_argmax(self):
        abundances = np.array([[0.2, 0.5, 0.3], [0.9, 0.05, 0.05]])
        np.testing.assert_array_equal(classify_abundances(abundances),
                                      [1, 0])

    def test_image_shape(self, rng):
        abundances = rng.uniform(size=(4, 5, 7))
        assert classify_abundances(abundances).shape == (4, 5)

    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            classify_abundances(np.empty((3, 0)))

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=20, deadline=None)
    def test_property_pure_endmember_classified_as_itself(self, seed):
        rng = np.random.default_rng(seed)
        endmembers = rng.uniform(0.1, 1.0, size=(5, 12))
        # guard against accidental near-collinearity
        if np.linalg.cond(endmembers @ endmembers.T) > 1e8:
            return
        est = unmix_sclsu(endmembers, endmembers)
        np.testing.assert_array_equal(classify_abundances(est),
                                      np.arange(5))
