"""Tests for classification metrics."""

import numpy as np
import pytest

from repro.core import confusion_matrix, evaluate_classification, kappa_score
from repro.core.metrics import map_endmembers_to_classes
from repro.errors import ShapeError


class TestConfusionMatrix:
    def test_perfect_prediction(self):
        truth = np.array([[1, 2], [3, 1]])
        matrix = confusion_matrix(truth, truth, 3)
        assert matrix.shape == (3, 4)
        np.testing.assert_array_equal(np.diag(matrix[:, :3]), [2, 1, 1])
        assert matrix.sum() == 4

    def test_errors_counted(self):
        truth = np.array([1, 1, 2])
        pred = np.array([1, 2, 2])
        matrix = confusion_matrix(truth, pred, 2)
        assert matrix[0, 0] == 1 and matrix[0, 1] == 1 and matrix[1, 1] == 1

    def test_unlabeled_truth_ignored(self):
        truth = np.array([0, 1, 0, 2])
        pred = np.array([1, 1, 2, 2])
        matrix = confusion_matrix(truth, pred, 2)
        assert matrix.sum() == 2

    def test_rejected_predictions_in_last_column(self):
        truth = np.array([1, 2])
        pred = np.array([0, 99])
        matrix = confusion_matrix(truth, pred, 2)
        assert matrix[0, 2] == 1 and matrix[1, 2] == 1

    def test_row_sums_equal_class_counts(self, rng):
        truth = rng.integers(1, 5, size=200)
        pred = rng.integers(0, 7, size=200)
        matrix = confusion_matrix(truth, pred, 4)
        for c in range(4):
            assert matrix[c].sum() == (truth == c + 1).sum()

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            confusion_matrix(np.ones(3), np.ones(4), 2)


class TestKappa:
    def test_perfect_agreement(self):
        matrix = confusion_matrix(np.array([1, 2, 1, 2]),
                                  np.array([1, 2, 1, 2]), 2)
        assert kappa_score(matrix) == pytest.approx(1.0)

    def test_chance_level_near_zero(self, rng):
        truth = rng.integers(1, 3, size=5000)
        pred = rng.integers(1, 3, size=5000)
        matrix = confusion_matrix(truth, pred, 2)
        assert abs(kappa_score(matrix)) < 0.06

    def test_empty_matrix(self):
        assert kappa_score(np.zeros((3, 4))) == 0.0


class TestEvaluate:
    def test_report_fields(self):
        truth = np.array([[1, 1], [2, 2]])
        pred = np.array([[1, 2], [2, 2]])
        report = evaluate_classification(truth, pred, ("a", "b"))
        assert report.overall_accuracy == pytest.approx(75.0)
        assert report.per_class_accuracy[0] == pytest.approx(50.0)
        assert report.per_class_accuracy[1] == pytest.approx(100.0)

    def test_absent_class_is_nan(self):
        truth = np.array([1, 1])
        pred = np.array([1, 1])
        report = evaluate_classification(truth, pred, ("a", "b"))
        assert np.isnan(report.per_class_accuracy[1])

    def test_rows_and_table(self):
        truth = np.array([1, 2])
        report = evaluate_classification(truth, truth, ("alpha", "beta"))
        rows = report.rows()
        assert rows[0][0] == "alpha"
        table = report.format_table()
        assert "alpha" in table and "Overall:" in table
        assert "100.00" in table

    def test_format_table_handles_nan(self):
        report = evaluate_classification(np.array([1]), np.array([1]),
                                         ("a", "b"))
        assert "--" in report.format_table()


class TestEndmemberMapping:
    def test_labels_from_positions(self):
        gt = np.array([[1, 2], [3, 4]])
        positions = np.array([[0, 1], [1, 0]])
        np.testing.assert_array_equal(
            map_endmembers_to_classes(positions, gt), [2, 3])

    def test_bad_positions_shape(self):
        with pytest.raises(ShapeError):
            map_endmembers_to_classes(np.array([1, 2]), np.ones((2, 2)))
