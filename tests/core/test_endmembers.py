"""Tests for endmember selection."""

import numpy as np
import pytest

from repro.core import mei_reference, select_endmembers
from repro.core.endmembers import dilation_candidates, smooth_cube
from repro.errors import ShapeError


@pytest.fixture()
def planted(rng):
    """A flat scene with three spectrally distinct plateaus planted in it;
    MEI peaks on their borders, the plateaus are the pure pixels."""
    cube = np.full((20, 20, 8), 0.3)
    cube[3:7, 3:7] = np.linspace(0.1, 0.9, 8)
    cube[12:16, 4:8] = np.linspace(0.9, 0.1, 8)
    cube[5:9, 13:17, :4] = 0.05
    cube += rng.normal(0, 0.002, cube.shape)
    np.clip(cube, 0.01, None, out=cube)
    morph = mei_reference(cube)
    return cube, morph


class TestSmoothCube:
    def test_radius_zero_identity(self, small_cube):
        out = smooth_cube(small_cube, 0)
        np.testing.assert_array_equal(out, small_cube)

    def test_constant_preserved(self):
        cube = np.full((6, 6, 3), 0.4)
        np.testing.assert_allclose(smooth_cube(cube, 1), 0.4)

    def test_reduces_noise(self, rng):
        cube = 0.5 + rng.normal(0, 0.1, size=(32, 32, 4))
        assert smooth_cube(cube, 1).std() < cube.std()

    def test_rejects_bad_args(self, small_cube):
        with pytest.raises(ValueError):
            smooth_cube(small_cube, -1)
        with pytest.raises(ShapeError):
            smooth_cube(np.ones((4, 4)), 1)


class TestDilationCandidates:
    def test_positions_within_image(self, planted):
        cube, morph = planted
        positions, scores = dilation_candidates(morph.mei,
                                                morph.dilation_index, 1)
        assert positions[:, 0].min() >= 0
        assert positions[:, 0].max() < 20
        assert positions.shape[0] == scores.shape[0]

    def test_unique_positions(self, planted):
        _, morph = planted
        positions, _ = dilation_candidates(morph.mei,
                                           morph.dilation_index, 1)
        flat = positions[:, 0] * 20 + positions[:, 1]
        assert np.unique(flat).size == flat.size

    def test_scores_are_max_of_nominators(self, planted):
        _, morph = planted
        positions, scores = dilation_candidates(morph.mei,
                                                morph.dilation_index, 1)
        assert np.all(scores <= morph.mei.max())

    def test_shape_mismatch_rejected(self, planted):
        _, morph = planted
        with pytest.raises(ShapeError):
            dilation_candidates(morph.mei, morph.dilation_index[:4], 1)


class TestSelection:
    def test_returns_requested_count(self, planted):
        cube, morph = planted
        out = select_endmembers(cube, morph.mei, 4)
        assert len(out) == 4
        assert out.spectra.shape == (4, 8)
        assert out.normalized.shape == (4, 8)

    def test_finds_the_planted_plateaus(self, planted):
        """ATGP over the MEI candidates must select pixels from the three
        distinct plateaus (plus background)."""
        cube, morph = planted
        out = select_endmembers(cube, morph.mei, 4, smooth_radius=1)
        regions = set()
        for y, x in out.positions:
            if 3 <= y < 7 and 3 <= x < 7:
                regions.add("A")
            elif 12 <= y < 16 and 4 <= x < 8:
                regions.add("B")
            elif 5 <= y < 9 and 13 <= x < 17:
                regions.add("C")
            else:
                regions.add("bg")
        assert {"A", "B", "C"} <= regions

    def test_sid_strategy_diverse(self, planted):
        cube, morph = planted
        out = select_endmembers(cube, morph.mei, 3, strategy="sid",
                                min_sid=0.01)
        from repro.spectral import sid_pairwise
        dists = sid_pairwise(out.normalized)
        iu = np.triu_indices(3, 1)
        assert dists[iu].min() >= 0.01 * 0.99

    def test_unknown_strategy(self, planted):
        cube, morph = planted
        with pytest.raises(ValueError, match="strategy"):
            select_endmembers(cube, morph.mei, 3, strategy="magic")

    def test_count_bounds(self, planted):
        cube, morph = planted
        with pytest.raises(ValueError):
            select_endmembers(cube, morph.mei, 0)
        with pytest.raises(ValueError):
            select_endmembers(cube, morph.mei, 20 * 20 + 1)

    def test_mei_shape_checked(self, planted):
        cube, _ = planted
        with pytest.raises(ShapeError):
            select_endmembers(cube, np.ones((4, 4)), 3)

    def test_explicit_candidates(self, planted):
        cube, morph = planted
        positions, scores = dilation_candidates(morph.mei,
                                                morph.dilation_index, 1)
        out = select_endmembers(cube, morph.mei, 3,
                                candidates=(positions, scores))
        # chosen positions must come from the candidate pool
        pool = {(int(y), int(x)) for y, x in positions}
        assert all((int(y), int(x)) in pool for y, x in out.positions)

    def test_border_exclusion(self, planted):
        cube, morph = planted
        out = select_endmembers(cube, morph.mei, 4, border=3)
        assert out.positions[:, 0].min() >= 3
        assert out.positions[:, 1].max() < 17

    def test_scores_descend_with_rank_for_sid_walk(self, planted):
        cube, morph = planted
        out = select_endmembers(cube, morph.mei, 3, strategy="sid",
                                min_sid=0.0, min_spatial=0)
        # with no guards the walk takes the top-3 scores in order
        assert np.all(np.diff(out.scores) <= 1e-12)
