"""End-to-end tests for the full AMC algorithm."""

import numpy as np
import pytest

from repro.core import AMCConfig, run_amc
from repro.errors import ShapeError


@pytest.fixture(scope="module")
def scene():
    from repro.hsi import SceneParams, generate_scene
    return generate_scene(SceneParams(lines=40, samples=40, band_count=48,
                                      seed=321, min_field=6))


@pytest.fixture(scope="module")
def result(scene):
    return run_amc(scene.cube, AMCConfig(n_classes=12),
                   ground_truth=scene.ground_truth,
                   class_names=scene.class_names)


class TestConfigValidation:
    def test_defaults_valid(self):
        AMCConfig()

    @pytest.mark.parametrize("kwargs", [
        {"backend": "cuda"},
        {"unmixing": "magic"},
        {"n_classes": 0},
        {"se_radius": 0},
        {"endmember_source": "erosion"},
        {"label_mapping": "hungarian"},
    ])
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ValueError):
            AMCConfig(**kwargs)


class TestEndToEnd:
    def test_outputs_shaped(self, scene, result):
        shape = (scene.cube.lines, scene.cube.samples)
        assert result.mei.shape == shape
        assert result.labels.shape == shape
        assert result.abundances.shape == shape + (12,)
        assert len(result.endmembers) == 12

    def test_labels_are_valid_classes(self, scene, result):
        assert result.labels.min() >= 1
        assert result.labels.max() <= scene.n_classes

    def test_report_present_with_ground_truth(self, result):
        assert result.report is not None
        assert 0.0 <= result.report.overall_accuracy <= 100.0
        assert result.overall_accuracy == result.report.overall_accuracy

    def test_accuracy_beats_chance(self, scene, result):
        # ~25 classes present; chance is ~4%.  AMC must do far better.
        assert result.report.overall_accuracy > 30.0

    def test_no_ground_truth_mode(self, scene):
        res = run_amc(scene.cube, AMCConfig(n_classes=5))
        assert res.report is None
        assert res.endmember_labels is None
        assert res.labels.min() >= 1 and res.labels.max() <= 5

    def test_accepts_raw_array(self, scene):
        res = run_amc(scene.cube.as_bip(), AMCConfig(n_classes=4))
        assert res.mei.shape == (40, 40)

    def test_rejects_2d(self):
        with pytest.raises(ShapeError):
            run_amc(np.ones((4, 4)), AMCConfig(n_classes=2))

    def test_ground_truth_shape_checked(self, scene):
        with pytest.raises(ShapeError):
            run_amc(scene.cube, AMCConfig(n_classes=4),
                    ground_truth=np.ones((3, 3), dtype=int))

    def test_default_class_names(self, scene):
        res = run_amc(scene.cube, AMCConfig(n_classes=4),
                      ground_truth=scene.ground_truth)
        assert res.report.class_names[0] == "class-1"


class TestBackendConsistency:
    def test_gpu_backend_matches_reference(self, scene):
        cfg_ref = AMCConfig(n_classes=8, backend="reference")
        cfg_gpu = AMCConfig(n_classes=8, backend="gpu")
        ref = run_amc(scene.cube, cfg_ref, ground_truth=scene.ground_truth)
        gpu = run_amc(scene.cube, cfg_gpu, ground_truth=scene.ground_truth)
        np.testing.assert_allclose(gpu.mei, ref.mei, rtol=5e-3, atol=1e-5)
        assert gpu.gpu_output is not None
        assert ref.gpu_output is None
        # endmember selection sees float32-vs-float64 MEI; demand close
        # but not identical accuracy
        assert gpu.report.overall_accuracy == pytest.approx(
            ref.report.overall_accuracy, abs=15.0)

    def test_naive_backend_small(self, rng):
        cube = rng.uniform(0.1, 1.0, size=(6, 6, 5))
        ref = run_amc(cube, AMCConfig(n_classes=3, backend="reference"))
        naive = run_amc(cube, AMCConfig(n_classes=3, backend="naive"))
        np.testing.assert_allclose(naive.mei, ref.mei, rtol=1e-9)

    def test_position_mapping_variant(self, scene):
        res = run_amc(scene.cube,
                      AMCConfig(n_classes=8, label_mapping="position"),
                      ground_truth=scene.ground_truth)
        assert res.report is not None

    @pytest.mark.parametrize("unmixing", ["lsu", "sclsu"])
    def test_unmixing_variants_run(self, scene, unmixing):
        res = run_amc(scene.cube, AMCConfig(n_classes=6, unmixing=unmixing),
                      ground_truth=scene.ground_truth)
        assert res.report.overall_accuracy > 0.0

    def test_full_gpu_pipeline_matches_host_lsu(self, scene):
        """backend='gpu' + gpu_unmixing runs every stage on the device
        and must agree with the host LSU path (no smoothing)."""
        full = run_amc(scene.cube,
                       AMCConfig(n_classes=6, backend="gpu",
                                 gpu_unmixing=True),
                       ground_truth=scene.ground_truth)
        host = run_amc(scene.cube,
                       AMCConfig(n_classes=6, backend="gpu",
                                 unmixing="lsu",
                                 classify_smooth_radius=0),
                       ground_truth=scene.ground_truth)
        assert (full.labels == host.labels).mean() > 0.99
        # the aggregate device accounting covers the extra stages
        assert full.gpu_output.counters["kernel_launches"] \
            > host.gpu_output.counters["kernel_launches"]
        assert full.abundances.shape == host.abundances.shape
