"""Tests for the GPU stream implementation of the morphological stage.

The central contracts: float32 agreement with the float64 reference,
chunking invariance, fusion invariance, and honest device accounting.
"""

import numpy as np
import pytest

from repro.core import gpu_morphological_stage, mei_reference
from repro.errors import ShapeError, StreamError
from repro.gpu import GEFORCE_7800GTX, GEFORCE_FX5950U, VirtualGPU


@pytest.fixture(scope="module")
def cube():
    return np.random.default_rng(42).uniform(0.05, 1.0, size=(12, 11, 14))


@pytest.fixture(scope="module")
def reference(cube):
    return mei_reference(cube)


@pytest.fixture(scope="module")
def gpu_out(cube):
    return gpu_morphological_stage(cube)


class TestAgreementWithReference:
    def test_mei_close(self, gpu_out, reference):
        np.testing.assert_allclose(gpu_out.mei, reference.mei,
                                   rtol=2e-3, atol=1e-6)

    def test_indices_match(self, gpu_out, reference):
        assert (gpu_out.erosion_index
                == reference.erosion_index).mean() > 0.99
        assert (gpu_out.dilation_index
                == reference.dilation_index).mean() > 0.99

    def test_float32_output(self, gpu_out):
        assert gpu_out.mei.dtype == np.float32

    def test_radius_two(self, rng):
        cube = rng.uniform(0.1, 1.0, size=(9, 8, 6))
        ref = mei_reference(cube, radius=2)
        out = gpu_morphological_stage(cube, radius=2)
        np.testing.assert_allclose(out.mei, ref.mei, rtol=2e-3, atol=1e-6)

    def test_requires_3d(self):
        with pytest.raises(ShapeError):
            gpu_morphological_stage(np.ones((4, 4)))


class TestChunking:
    def test_chunked_equals_unchunked(self, cube, gpu_out):
        tight = GEFORCE_7800GTX.with_(vram_bytes=32 * 1024)
        chunked = gpu_morphological_stage(cube, spec=tight)
        assert chunked.chunk_count > 1
        np.testing.assert_allclose(chunked.mei, gpu_out.mei,
                                   rtol=1e-6, atol=1e-8)
        np.testing.assert_array_equal(chunked.erosion_index,
                                      gpu_out.erosion_index)

    def test_impossible_budget_raises(self, cube):
        tiny = GEFORCE_7800GTX.with_(vram_bytes=4096)
        with pytest.raises(StreamError, match="VRAM"):
            gpu_morphological_stage(cube, spec=tiny)

    def test_vram_released_after_run(self, cube):
        device = VirtualGPU(GEFORCE_7800GTX)
        gpu_morphological_stage(cube, device=device)
        assert device.vram.used == 0


class TestFusion:
    @pytest.mark.parametrize("fuse", [1, 2, 4, 6])
    def test_fusion_invariance(self, cube, gpu_out, fuse):
        out = gpu_morphological_stage(cube, fuse_groups=fuse)
        np.testing.assert_allclose(out.mei, gpu_out.mei,
                                   rtol=1e-5, atol=1e-7)

    def test_fusion_reduces_launches(self, cube):
        unfused = gpu_morphological_stage(cube, fuse_groups=1)
        fused = gpu_morphological_stage(cube, fuse_groups=6)
        assert fused.counters["kernel_launches"] \
            < unfused.counters["kernel_launches"]
        assert fused.modeled_time_s < unfused.modeled_time_s

    def test_fusion_width_over_budget(self, rng):
        wide = rng.uniform(0.1, 1.0, size=(5, 5, 30))  # 8 band groups
        with pytest.raises(StreamError, match="texture units"):
            gpu_morphological_stage(wide, fuse_groups=7)


class TestAccounting:
    def test_counters_populated(self, gpu_out, cube):
        c = gpu_out.counters
        assert c["kernel_launches"] > 0
        assert c["fragments_shaded"] >= cube.shape[0] * cube.shape[1]
        assert c["bytes_uploaded"] > 0
        assert c["bytes_downloaded"] > 0
        assert gpu_out.modeled_time_s > 0

    def test_profile_covers_every_stage(self, gpu_out):
        names = set(gpu_out.time_by_kernel)
        for prefix in ("bandsum", "normalize", "logstream", "entropy",
                       "cross_", "sid_", "accum", "mm_init", "mm_step",
                       "mei_cross", "mei_final"):
            assert any(n.startswith(prefix) for n in names), prefix

    def test_slower_board_longer_modeled_time(self, cube, gpu_out):
        fx = gpu_morphological_stage(cube, spec=GEFORCE_FX5950U)
        assert fx.modeled_time_s > gpu_out.modeled_time_s
        np.testing.assert_allclose(fx.mei, gpu_out.mei, rtol=1e-6)

    def test_device_reuse_accumulates(self, cube):
        device = VirtualGPU(GEFORCE_7800GTX)
        first = gpu_morphological_stage(cube, device=device)
        second = gpu_morphological_stage(cube, device=device)
        # per-call modeled time is still the increment, not the total
        assert second.modeled_time_s == pytest.approx(first.modeled_time_s,
                                                      rel=1e-9)
        assert device.counters.total_time_s == pytest.approx(
            first.modeled_time_s + second.modeled_time_s, rel=1e-9)
