"""Tests for the analytic workload model."""

import pytest

from repro.core.workload import morphological_workload


class TestWorkload:
    def test_pair_count(self):
        w = morphological_workload(10, 10, 16, radius=1)
        assert w.se_size == 9
        assert w.pair_count == 36

    def test_linear_in_pixels(self):
        small = morphological_workload(10, 10, 16)
        large = morphological_workload(20, 20, 16)
        assert large.flops == pytest.approx(4 * small.flops)
        assert large.traffic_bytes == pytest.approx(4 * small.traffic_bytes)

    def test_linear_in_bands_dominant_term(self):
        """Flops are ~linear in N (the +6 per pair and argmin folds are
        the only non-N terms)."""
        a = morphological_workload(8, 8, 64)
        b = morphological_workload(8, 8, 128)
        assert b.flops / a.flops == pytest.approx(2.0, rel=0.02)

    def test_radius_scaling(self):
        """Complexity is O(P) with P ~ K^2: radius 2 has (25*24/2)/(9*8/2)
        = 300/36 times the pair work."""
        r1 = morphological_workload(8, 8, 32, radius=1)
        r2 = morphological_workload(8, 8, 32, radius=2)
        # the pair term dominates but normalization/log/entropy dilute the
        # pure 300/36 pair ratio slightly
        assert 6.5 < r2.flops / r1.flops < 300 / 36 + 0.01

    def test_transcendentals_one_log_per_band(self):
        w = morphological_workload(7, 5, 16)
        assert w.transcendentals == 7 * 5 * 16

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            morphological_workload(0, 4, 4)
        with pytest.raises(ValueError):
            morphological_workload(4, 4, 4, radius=-1)
