"""Tests for extended morphological sequences (opening/closing/AMEE)."""

import numpy as np
import pytest

from repro.core.morphology import (
    amee,
    extended_close,
    extended_dilate,
    extended_erode,
    extended_open,
)
from repro.errors import ShapeError


def _window_pixels(cube, y, x, radius):
    h, w, _ = cube.shape
    ys = range(max(0, y - radius), min(h, y + radius + 1))
    xs = range(max(0, x - radius), min(w, x + radius + 1))
    return [cube[yy, xx] for yy in ys for xx in xs]


class TestValuePreservation:
    """The extended operators select an existing neighbour — they never
    synthesize a spectrum."""

    @pytest.mark.parametrize("op", [extended_erode, extended_dilate])
    def test_output_pixels_come_from_window(self, op, small_cube):
        out = op(small_cube, 1)
        h, w, _ = small_cube.shape
        for y in range(0, h, 3):
            for x in range(0, w, 3):
                window = _window_pixels(small_cube, y, x, 1)
                # replicate padding means border windows may also include
                # clamped duplicates; membership in the window suffices
                assert any(np.allclose(out[y, x], p) for p in window)

    def test_constant_image_fixed_point(self):
        cube = np.full((6, 6, 4), 0.4)
        np.testing.assert_array_equal(extended_erode(cube), cube)
        np.testing.assert_array_equal(extended_dilate(cube), cube)


class TestOpeningClosing:
    def test_opening_removes_isolated_anomaly(self, rng):
        cube = np.full((9, 9, 6), 0.3) + rng.normal(0, 1e-4, (9, 9, 6))
        np.clip(cube, 1e-3, None, out=cube)
        anomaly = np.linspace(0.05, 1.0, 6)
        cube[4, 4] = anomaly
        opened = extended_open(cube, 1)
        # the anomalous spectrum must be gone from its location
        assert not np.allclose(opened[4, 4], anomaly, rtol=0.1)

    def test_dilation_propagates_distinct_pixel(self, rng):
        cube = np.full((9, 9, 6), 0.3) + rng.normal(0, 1e-4, (9, 9, 6))
        np.clip(cube, 1e-3, None, out=cube)
        anomaly = np.linspace(0.05, 1.0, 6)
        cube[4, 4] = anomaly
        dilated = extended_dilate(cube, 1)
        hits = sum(np.allclose(dilated[y, x], anomaly)
                   for y in range(3, 6) for x in range(3, 6))
        assert hits >= 8  # the 3x3 neighbourhood adopts the pure pixel

    def test_open_close_shapes(self, small_cube):
        assert extended_open(small_cube).shape == small_cube.shape
        assert extended_close(small_cube).shape == small_cube.shape

    def test_requires_3d(self):
        with pytest.raises(ShapeError):
            extended_erode(np.ones((4, 4)))


class TestAmee:
    def test_single_iteration_matches_reference(self, small_cube):
        from repro.core import mei_reference
        out = amee(small_cube, iterations=1)
        np.testing.assert_allclose(out.mei, mei_reference(small_cube).mei,
                                   rtol=1e-12)

    def test_mei_is_running_maximum(self, small_cube):
        out = amee(small_cube, iterations=3)
        np.testing.assert_allclose(out.mei, out.iteration_mei.max(axis=0),
                                   rtol=1e-12)
        assert np.all(out.mei >= out.iteration_mei[0] - 1e-15)

    def test_iteration_shapes(self, small_cube):
        out = amee(small_cube, iterations=2)
        assert out.iteration_mei.shape == (2,) + small_cube.shape[:2]
        assert out.final_cube.shape == small_cube.shape

    def test_iterations_extend_reach(self, rng):
        """A pure pixel's influence after k iterations extends ~k*r —
        check a pixel 2 steps away reacts only with 2 iterations."""
        cube = np.full((11, 11, 6), 0.3) + rng.normal(0, 1e-5, (11, 11, 6))
        np.clip(cube, 1e-3, None, out=cube)
        cube[5, 5] = np.linspace(0.05, 1.0, 6)
        one = amee(cube, iterations=1)
        two = amee(cube, iterations=2)
        probe = (5, 8)  # 3 pixels away: untouched by 1 iteration of r=1
        assert two.mei[probe] > one.mei[probe] * 2

    def test_invalid_iterations(self, small_cube):
        with pytest.raises(ValueError):
            amee(small_cube, iterations=0)

    def test_invalid_backend(self, small_cube):
        with pytest.raises(ValueError, match="backend"):
            amee(small_cube, backend="tpu")

    def test_gpu_backend_matches_reference(self, small_cube):
        ref = amee(small_cube, iterations=2)
        gpu = amee(small_cube, iterations=2, backend="gpu")
        np.testing.assert_allclose(gpu.mei, ref.mei, rtol=5e-3, atol=1e-5)
        # the gathered cubes coincide wherever the dilation picks agree
        agree = np.isclose(gpu.final_cube, ref.final_cube).all(axis=-1)
        assert agree.mean() > 0.97

    def test_final_cube_value_preserving(self, small_cube):
        out = amee(small_cube, iterations=2)
        flat_in = small_cube.reshape(-1, small_cube.shape[2])
        flat_out = out.final_cube.reshape(-1, small_cube.shape[2])
        # every output spectrum exists somewhere in the input image
        for spectrum in flat_out[::17]:
            assert np.any(np.all(np.isclose(flat_in, spectrum), axis=1))
