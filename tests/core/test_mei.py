"""Tests for the morphological stage: reference vs naive oracle, plus
structural invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import cumulative_distances, mei_naive, mei_reference, se_offsets
from repro.errors import ShapeError
from repro.spectral import normalize_image


class TestSeOffsets:
    def test_radius_one_row_major(self):
        offsets = se_offsets(1)
        assert len(offsets) == 9
        assert offsets[0] == (-1, -1)
        assert offsets[4] == (0, 0)
        assert offsets[8] == (1, 1)

    def test_radius_two_count(self):
        assert len(se_offsets(2)) == 25

    def test_radius_zero(self):
        assert se_offsets(0) == ((0, 0),)

    def test_negative_radius(self):
        with pytest.raises(ValueError):
            se_offsets(-1)


class TestReferenceVsOracle:
    """The vectorized reference must agree with the per-pixel loop
    transcription of the equations, everywhere including borders."""

    def test_cumulative_match(self, tiny_cube):
        ref = mei_reference(tiny_cube)
        oracle = mei_naive(tiny_cube)
        np.testing.assert_allclose(ref.cumulative, oracle.cumulative,
                                   rtol=1e-10, atol=1e-12)

    def test_indices_match(self, tiny_cube):
        ref = mei_reference(tiny_cube)
        oracle = mei_naive(tiny_cube)
        np.testing.assert_array_equal(ref.erosion_index,
                                      oracle.erosion_index)
        np.testing.assert_array_equal(ref.dilation_index,
                                      oracle.dilation_index)

    def test_mei_match(self, tiny_cube):
        ref = mei_reference(tiny_cube)
        oracle = mei_naive(tiny_cube)
        np.testing.assert_allclose(ref.mei, oracle.mei,
                                   rtol=1e-10, atol=1e-12)

    def test_match_radius_two(self, rng):
        cube = rng.uniform(0.1, 1.0, size=(7, 6, 5))
        ref = mei_reference(cube, radius=2)
        oracle = mei_naive(cube, radius=2)
        np.testing.assert_allclose(ref.mei, oracle.mei,
                                   rtol=1e-10, atol=1e-12)

    @given(seed=st.integers(0, 10 ** 6))
    @settings(max_examples=10, deadline=None)
    def test_property_agreement(self, seed):
        rng = np.random.default_rng(seed)
        cube = rng.uniform(0.05, 1.0, size=(5, 4, 4))
        ref = mei_reference(cube)
        oracle = mei_naive(cube)
        np.testing.assert_allclose(ref.cumulative, oracle.cumulative,
                                   rtol=1e-9, atol=1e-11)
        np.testing.assert_allclose(ref.mei, oracle.mei,
                                   rtol=1e-9, atol=1e-11)


class TestInvariants:
    def test_mei_nonnegative(self, small_cube):
        assert np.all(mei_reference(small_cube).mei >= 0.0)

    def test_cumulative_nonnegative(self, small_cube):
        assert np.all(mei_reference(small_cube).cumulative >= 0.0)

    def test_dilation_cumulative_geq_erosion(self, small_cube):
        out = mei_reference(small_cube)
        h, w, _ = out.cumulative.shape
        yy, xx = np.mgrid[0:h, 0:w]
        d_max = out.cumulative[yy, xx, out.dilation_index]
        d_min = out.cumulative[yy, xx, out.erosion_index]
        assert np.all(d_max >= d_min)

    def test_argmin_argmax_are_extremes(self, small_cube):
        out = mei_reference(small_cube)
        np.testing.assert_array_equal(out.erosion_index,
                                      np.argmin(out.cumulative, axis=2))
        np.testing.assert_array_equal(out.dilation_index,
                                      np.argmax(out.cumulative, axis=2))

    def test_constant_image_zero_mei(self):
        cube = np.full((6, 6, 5), 0.2)
        out = mei_reference(cube)
        np.testing.assert_allclose(out.mei, 0.0, atol=1e-12)

    def test_single_anomaly_raises_neighbourhood_mei(self, rng):
        cube = np.full((9, 9, 8), 0.3)
        cube[4, 4] = np.linspace(0.05, 1.0, 8)  # one spectrally odd pixel
        out = mei_reference(cube)
        assert out.mei[4, 4] > 0
        assert out.mei[4, 4] >= out.mei[0, 0]

    def test_normalization_scale_invariance(self, small_cube):
        """SID operates on normalized spectra, so a global per-pixel gain
        must not change the result."""
        gain = np.random.default_rng(3).uniform(0.5, 2.0,
                                                small_cube.shape[:2])
        scaled = small_cube * gain[:, :, None]
        a = mei_reference(small_cube)
        b = mei_reference(scaled)
        np.testing.assert_allclose(a.mei, b.mei, rtol=1e-8, atol=1e-12)

    def test_prenormalized_path(self, small_cube):
        normalized = normalize_image(small_cube)
        a = mei_reference(small_cube)
        b = mei_reference(normalized, prenormalized=True)
        np.testing.assert_allclose(a.mei, b.mei, rtol=1e-10)

    def test_offsets_helpers(self, small_cube):
        out = mei_reference(small_cube)
        ero = out.erosion_offsets()
        dil = out.dilation_offsets()
        assert ero.shape == small_cube.shape[:2] + (2,)
        assert np.all(np.abs(ero) <= 1) and np.all(np.abs(dil) <= 1)


class TestCumulativeDistances:
    def test_pair_map_return(self, tiny_cube):
        normalized = normalize_image(tiny_cube)
        cumulative, pairs = cumulative_distances(normalized, 1,
                                                 return_pair_maps=True)
        assert len(pairs) == 36
        total = np.zeros_like(cumulative)
        for (ka, kb), sid_map in pairs.items():
            total[:, :, ka] += sid_map
            total[:, :, kb] += sid_map
        np.testing.assert_allclose(total, cumulative, rtol=1e-12)

    def test_requires_3d(self):
        with pytest.raises(ShapeError):
            cumulative_distances(np.ones((4, 4)))

    def test_reference_requires_3d(self):
        with pytest.raises(ShapeError):
            mei_reference(np.ones((4, 4)))
