"""Property tests for FNNLS (Bro & De Jong) and its AMC integration.

FNNLS solves the same constrained problem as classic NNLS, so its
correctness is pinned by optimality *properties*, not by golden
vectors: non-negativity, the KKT conditions of the NNLS optimum (a
scipy-free oracle), never losing to the clamped unconstrained solution,
and exact agreement with the scipy active-set solver on full-rank
problems (where the optimum is unique).  All problems are seeded.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import faults
from repro.core import AMCConfig, run_amc, unmix_nnls
from repro.core.fnnls import fnnls, unmix_fnnls
from repro.errors import ShapeError
from repro.faults import FaultInjector, FaultSpec


def _random_problem(seed: int, n: int = 12, c: int = 4,
                    negative_rate: float = 0.5):
    """One seeded (E, x) pair in normal-equation form.

    With probability ``negative_rate`` the target is pushed away from
    the feasible cone, so the active set actually activates.
    """
    rng = np.random.default_rng(seed)
    endmembers = rng.uniform(0.1, 1.0, size=(c, n))
    coeffs = rng.uniform(0.0, 1.0, size=c)
    if rng.uniform() < negative_rate:
        coeffs = coeffs - 0.7      # some true coefficients negative
    target = coeffs @ endmembers + rng.normal(0.0, 0.01, size=n)
    ata = endmembers @ endmembers.T
    atb = endmembers @ target
    return endmembers, target, ata, atb


def _residual(endmembers, target, x):
    return float(np.linalg.norm(x @ endmembers - target))


class TestFnnlsProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_non_negative(self, seed):
        _, _, ata, atb = _random_problem(seed)
        x = fnnls(ata, atb)
        assert (x >= 0.0).all()

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_kkt_conditions(self, seed):
        """The scipy-free optimality oracle.

        At the NNLS optimum the dual ``w = Atb - AtA x`` satisfies
        ``w_i ~ 0`` where ``x_i > 0`` (interior: gradient vanishes) and
        ``w_i <= 0`` where ``x_i = 0`` (boundary: no descent into the
        cone).  Any vector passing both IS the optimum of this convex
        problem — no reference solver needed.
        """
        _, _, ata, atb = _random_problem(seed)
        x = fnnls(ata, atb)
        dual = atb - ata @ x
        scale = max(float(np.abs(atb).max()), 1.0)
        tol = 1e-8 * scale
        passive = x > 0
        assert np.all(np.abs(dual[passive]) <= tol)
        assert np.all(dual[~passive] <= tol)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_residual_beats_clamped_lstsq(self, seed):
        """Clamping the unconstrained solution to >= 0 is the naive
        fix; the true constrained optimum can never do worse."""
        endmembers, target, ata, atb = _random_problem(seed)
        x = fnnls(ata, atb)
        clamped = np.maximum(
            np.linalg.lstsq(endmembers.T, target, rcond=None)[0], 0.0)
        assert (_residual(endmembers, target, x)
                <= _residual(endmembers, target, clamped) + 1e-10)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_agrees_with_scipy_active_set(self, seed):
        """Full-rank Gram => unique optimum => both solvers land on it."""
        endmembers, target, ata, atb = _random_problem(seed)
        ours = fnnls(ata, atb)
        reference = unmix_nnls(target[None, :], endmembers)[0]
        np.testing.assert_allclose(ours, reference, atol=1e-10)

    def test_feasible_target_recovered_exactly(self, rng):
        """A noise-free non-negative mixture is its own optimum."""
        endmembers = rng.uniform(0.1, 1.0, size=(3, 10))
        coeffs = np.array([0.2, 0.0, 1.3])
        target = coeffs @ endmembers
        x = fnnls(endmembers @ endmembers.T, endmembers @ target)
        np.testing.assert_allclose(x, coeffs, atol=1e-10)

    def test_shape_errors(self):
        with pytest.raises(ShapeError):
            fnnls(np.eye(3), np.zeros(2))
        with pytest.raises(ShapeError):
            fnnls(np.zeros((3, 2)), np.zeros(2))

    def test_invalid_knobs(self):
        with pytest.raises(ValueError):
            fnnls(np.eye(2), np.zeros(2), max_iter=0)
        with pytest.raises(ValueError):
            fnnls(np.eye(2), np.zeros(2), tolerance=-1.0)


class TestUnmixFnnls:
    def test_matches_per_pixel_nnls(self, rng):
        endmembers = rng.uniform(0.1, 1.0, size=(4, 16))
        pixels = rng.uniform(0.0, 1.0, size=(50, 16))
        np.testing.assert_allclose(unmix_fnnls(pixels, endmembers),
                                   unmix_nnls(pixels, endmembers),
                                   atol=1e-10)

    def test_preserves_leading_shape(self, rng):
        endmembers = rng.uniform(0.1, 1.0, size=(3, 8))
        cube = rng.uniform(0.0, 1.0, size=(5, 4, 8))
        out = unmix_fnnls(cube, endmembers)
        assert out.shape == (5, 4, 3)
        assert (out >= 0.0).all()

    def test_registered_as_amc_estimator(self):
        from repro.core.unmixing import UNMIXERS

        assert UNMIXERS["fnnls"] is unmix_fnnls
        assert AMCConfig(unmixing="fnnls").unmixing == "fnnls"


@pytest.fixture()
def _clean_faults():
    faults.uninstall()
    faults.set_attempt(0)
    yield
    faults.uninstall()
    faults.set_attempt(0)


class TestFnnlsThroughAMC:
    """AMC with ``unmixing="fnnls"`` keeps the bit-identity discipline."""

    @pytest.fixture()
    def scene_cube(self, session_scene):
        return session_scene.cube.as_bip()

    def test_chunked_equals_serial(self, scene_cube):
        serial = run_amc(scene_cube, AMCConfig(n_classes=4,
                                               unmixing="fnnls"))
        chunked = run_amc(scene_cube, AMCConfig(n_classes=4,
                                                unmixing="fnnls",
                                                n_workers=2))
        np.testing.assert_array_equal(serial.abundances,
                                      chunked.abundances)
        np.testing.assert_array_equal(serial.labels, chunked.labels)

    def test_chunked_equals_serial_under_faults(self, scene_cube,
                                                _clean_faults):
        serial = run_amc(scene_cube, AMCConfig(n_classes=4,
                                               unmixing="fnnls"))
        faults.install(FaultInjector(
            [FaultSpec(kind="transient", index=0, attempt=0)]))
        chunked = run_amc(scene_cube, AMCConfig(n_classes=4,
                                                unmixing="fnnls",
                                                n_workers=2,
                                                max_retries=1))
        np.testing.assert_array_equal(serial.abundances,
                                      chunked.abundances)
        np.testing.assert_array_equal(serial.labels, chunked.labels)
        np.testing.assert_array_equal(serial.mei, chunked.mei)
