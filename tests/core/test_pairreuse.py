"""Tests for the shift-reuse pair-map engine (repro.core.pairreuse).

The engine's contract is **bit-identity**: ``method="shift"`` must
produce byte-for-byte the same cumulative distances, indices and MEI as
the historical all-pairs loop (``method="pairs"``) and — within the
established float tolerance — the naive per-pixel oracle.  The goldens
below were captured on the all-pairs implementation *before* the engine
existed, so they pin the reuse path against the pre-engine history, not
against itself.
"""

import hashlib

import numpy as np
import pytest

from repro import faults
from repro.core.mei import cumulative_distances, mei_reference, se_offsets
from repro.core.naive import mei_naive
from repro.core.pairreuse import (
    PairReuseEngine,
    PairReuseStats,
    gather_mei,
    sum_reuse_counters,
    unique_difference_offsets,
)
from repro.core.shifts import clamped_indices, clamped_shift, edge_rows
from repro.faults import FaultInjector, FaultSpec
from repro.hsi import SceneParams, generate_scene
from repro.parallel import parallel_morphological_stage
from repro.profiling import Profiler
from repro.resilience import RetryPolicy
from repro.spectral.distances import sid_self_entropy
from repro.spectral.normalize import normalize_image, safe_log


def _sha(array) -> str:
    return hashlib.sha256(
        np.ascontiguousarray(array).tobytes()).hexdigest()[:16]


#: mei_reference goldens captured on the pre-engine all-pairs code for
#: ``default_rng(1234).uniform(0.05, 1.0, (14, 11, 6))``.
GOLDEN_CUBE_SHAPE = (14, 11, 6)
GOLDEN_MEI = {
    0: "0abe90866c4fbc89",
    1: "46a078f8811cafbe",
    2: "d5e7147524d69160",
    3: "36ccb4656e965f00",
}
GOLDEN_CUMULATIVE = {
    0: "0abe90866c4fbc89",
    1: "928e1df7b6613fd8",
    2: "9d68a350fa3e65bd",
    3: "a94ab0b07e280afb",
}


@pytest.fixture()
def golden_cube():
    return np.random.default_rng(1234).uniform(
        0.05, 1.0, GOLDEN_CUBE_SHAPE)


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.uninstall()
    faults.set_attempt(0)
    yield
    faults.uninstall()
    faults.set_attempt(0)


class TestShiftHelpers:
    def test_clamped_indices_values(self):
        np.testing.assert_array_equal(clamped_indices(5, 2),
                                      [2, 3, 4, 4, 4])
        np.testing.assert_array_equal(clamped_indices(5, -2),
                                      [0, 0, 0, 1, 2])
        np.testing.assert_array_equal(clamped_indices(4, 0), [0, 1, 2, 3])

    def test_clamped_indices_cached_and_readonly(self):
        first = clamped_indices(7, 1)
        assert clamped_indices(7, 1) is first
        assert not first.flags.writeable

    def test_clamped_shift_zero_is_identity(self, rng):
        arr = rng.uniform(size=(4, 5))
        assert clamped_shift(arr, 0, 0) is arr

    def test_clamped_shift_replicates_edges(self, rng):
        arr = rng.uniform(size=(4, 5, 3))
        out = clamped_shift(arr, 2, -1)
        assert np.array_equal(out[0, 0], arr[2, 0])
        assert np.array_equal(out[3, 4], arr[3, 3])  # rows clamp at 3

    def test_edge_rows(self):
        np.testing.assert_array_equal(edge_rows(6, 2), [4, 5])
        np.testing.assert_array_equal(edge_rows(6, -2), [0, 1])
        assert edge_rows(6, 0).size == 0
        # offset larger than the extent: every row is a border row
        np.testing.assert_array_equal(edge_rows(2, 5), [0, 1])


class TestUniqueDifferences:
    @pytest.mark.parametrize("radius", [0, 1, 2, 3, 4])
    def test_count_closed_form(self, radius):
        """Smoke test: U = ((4r+1)^2 - 1) / 2 unique differences."""
        diffs = unique_difference_offsets(se_offsets(radius))
        assert len(diffs) == ((4 * radius + 1) ** 2 - 1) // 2

    def test_no_duplicates_no_zero(self):
        diffs = unique_difference_offsets(se_offsets(2))
        assert len(set(diffs)) == len(diffs)
        assert (0, 0) not in diffs


class TestBitIdentityShiftVsPairs:
    @pytest.mark.parametrize("radius", [0, 1, 2, 3])
    def test_golden_cube(self, golden_cube, radius):
        shift = mei_reference(golden_cube, radius, method="shift")
        pairs = mei_reference(golden_cube, radius, method="pairs")
        assert _sha(shift.mei) == _sha(pairs.mei)
        assert _sha(shift.cumulative) == _sha(pairs.cumulative)
        np.testing.assert_array_equal(shift.erosion_index,
                                      pairs.erosion_index)
        np.testing.assert_array_equal(shift.dilation_index,
                                      pairs.dilation_index)

    @pytest.mark.parametrize("shape", [
        (3, 3, 4),      # H == W == 2r + 1 at radius 1
        (2, 9, 4),      # H < 2r + 1: every pair is all border
        (9, 2, 4),      # W < 2r + 1
        (1, 1, 3),      # single pixel
        (1, 8, 4),      # single line
        (5, 12, 4),     # non-square, wide
        (12, 5, 4),     # non-square, tall
    ])
    @pytest.mark.parametrize("radius", [1, 2])
    def test_degenerate_shapes(self, shape, radius):
        cube = np.random.default_rng(hash(shape) % 2**32).uniform(
            0.05, 1.0, shape)
        shift = mei_reference(cube, radius, method="shift")
        pairs = mei_reference(cube, radius, method="pairs")
        assert _sha(shift.mei) == _sha(pairs.mei)
        assert _sha(shift.cumulative) == _sha(pairs.cumulative)

    def test_noncontiguous_input(self, rng):
        """Band-sequential storage viewed as BIP — the layout that
        makes einsum's reduction operand-sensitive."""
        bsq = rng.uniform(0.05, 1.0, size=(7, 9, 8))
        cube = bsq.transpose(2, 0, 1).copy().transpose(1, 2, 0)
        assert not cube.flags["C_CONTIGUOUS"]
        shift = mei_reference(cube, 1, method="shift")
        pairs = mei_reference(cube, 1, method="pairs")
        assert _sha(shift.mei) == _sha(pairs.mei)
        assert _sha(shift.cumulative) == _sha(pairs.cumulative)
        # the 8 zero-offset pairs had to re-create the historical
        # (raw, non-contiguous) einsum operands
        assert shift.stats.direct_pairs == 8
        assert shift.stats.difference_maps == 12 + 8

    @pytest.mark.parametrize("seed", range(5))
    def test_property_random_cubes(self, seed):
        rng = np.random.default_rng(seed)
        shape = (int(rng.integers(4, 12)), int(rng.integers(4, 12)),
                 int(rng.integers(3, 9)))
        cube = rng.uniform(0.05, 1.0, shape)
        shift = cumulative_distances(normalize_image(cube), 1,
                                     method="shift")
        pairs = cumulative_distances(normalize_image(cube), 1,
                                     method="pairs")
        assert _sha(shift) == _sha(pairs)

    def test_pair_maps_bit_equal(self, tiny_cube):
        normalized = np.asarray(normalize_image(tiny_cube),
                                dtype=np.float64)
        offsets = se_offsets(1)
        log_img = safe_log(normalized)
        entropy = sid_self_entropy(normalized)
        engine = PairReuseEngine(normalized, offsets, log_img=log_img,
                                 entropy=entropy)
        _, maps = cumulative_distances(normalized, 1,
                                       return_pair_maps=True,
                                       method="pairs")
        for (ka, kb), expected in maps.items():
            np.testing.assert_array_equal(engine.pair_map(ka, kb),
                                          expected,
                                          err_msg=f"pair ({ka}, {kb})")


class TestGoldens:
    @pytest.mark.parametrize("radius", sorted(GOLDEN_MEI))
    def test_pre_engine_goldens(self, golden_cube, radius):
        out = mei_reference(golden_cube, radius)     # default = shift
        assert _sha(out.mei) == GOLDEN_MEI[radius]
        assert _sha(out.cumulative) == GOLDEN_CUMULATIVE[radius]


class TestAgainstNaiveOracle:
    def test_mei_matches_oracle(self, tiny_cube):
        shift = mei_reference(tiny_cube, 1)
        oracle = mei_naive(tiny_cube, 1)
        np.testing.assert_allclose(shift.mei, oracle.mei,
                                   rtol=1e-9, atol=1e-12)
        np.testing.assert_array_equal(shift.erosion_index,
                                      oracle.erosion_index)
        np.testing.assert_array_equal(shift.dilation_index,
                                      oracle.dilation_index)


class TestStats:
    def test_counts_radius_one(self, tiny_cube):
        out = mei_reference(tiny_cube, 1)
        stats = out.stats
        assert isinstance(stats, PairReuseStats)
        # 36 cumulative pair maps + one per MEI-gathered pair
        assert stats.pair_maps == 36 + stats.mei_pairs_gathered
        # contiguous input: one evaluation per unique difference and
        # no direct zero-offset pairs
        assert stats.difference_maps == 12
        assert stats.direct_pairs == 0
        assert stats.reuse_ratio > 1.0
        assert stats.total_pixels == 6 * 5

    def test_pairs_method_has_no_stats(self, tiny_cube):
        assert mei_reference(tiny_cube, 1, method="pairs").stats is None

    def test_as_counters_and_sum(self, tiny_cube):
        stats = mei_reference(tiny_cube, 1).stats
        counters = stats.as_counters()
        assert counters["pair_maps"] == float(stats.pair_maps)
        assert counters["reuse_ratio"] == stats.reuse_ratio
        total = sum_reuse_counters([counters, counters])
        assert total["pair_maps"] == 2.0 * stats.pair_maps
        # ratio is recomputed from the summed totals, not summed
        assert total["reuse_ratio"] == pytest.approx(stats.reuse_ratio)

    def test_stats_reach_profiler_stage_record(self, tiny_cube):
        from repro.core import AMCConfig, run_amc

        profiler = Profiler()
        run_amc(tiny_cube, AMCConfig(n_classes=2), profiler=profiler)
        morph = next(s for s in profiler.stage_records
                     if s.name == "morphology")
        assert morph.counters["pair_maps"] >= 36.0
        assert morph.counters["reuse_ratio"] > 1.0


class TestGatherMei:
    def test_matches_mask_scan(self, tiny_cube):
        normalized = np.asarray(normalize_image(tiny_cube),
                                dtype=np.float64)
        cumulative, maps = cumulative_distances(
            normalized, 1, return_pair_maps=True, method="pairs")
        ero = np.argmin(cumulative, axis=2)
        dil = np.argmax(cumulative, axis=2)
        mei, gathered = gather_mei(
            ero, dil, lambda ka, kb: maps[(ka, kb)], len(se_offsets(1)))
        # oracle: the literal per-pixel lookup
        expected = np.zeros_like(mei)
        for y in range(mei.shape[0]):
            for x in range(mei.shape[1]):
                lo, hi = sorted((ero[y, x], dil[y, x]))
                if lo != hi:
                    expected[y, x] = maps[(lo, hi)][y, x]
        np.testing.assert_array_equal(mei, expected)
        assert 0 < gathered <= 36

    def test_flat_image_gathers_nothing(self):
        flat = np.full((4, 4, 3), 0.2)
        out = mei_reference(flat, 1)
        assert np.all(out.mei == 0.0)
        assert out.stats.mei_pairs_gathered == 0


class TestParallelBitIdentity:
    def test_chunked_with_faults_matches_serial(self, small_cube):
        """Shift-reuse through the chunk pool, with a worker crash and
        a stalled chunk injected, stays bit-identical to serial."""
        serial = mei_reference(small_cube, 1)
        faults.install(FaultInjector([
            FaultSpec(kind="worker_crash", index=0, attempt=0),
            FaultSpec(kind="timeout", index=1, attempt=0, sleep_s=30.0),
        ]))
        profiler = Profiler()
        with profiler.stage("morphology"):
            mei, ero, dil, _ = parallel_morphological_stage(
                small_cube, 1, backend="reference", n_workers=2,
                profiler=profiler,
                policy=RetryPolicy(max_retries=1, chunk_timeout_s=2.0))
        assert _sha(mei) == _sha(serial.mei)
        np.testing.assert_array_equal(ero, serial.erosion_index)
        np.testing.assert_array_equal(dil, serial.dilation_index)
        # per-chunk reuse counters were summed onto the morphology stage
        morph = next(s for s in profiler.stage_records
                     if s.name == "morphology")
        assert morph.counters["pair_maps"] >= 72.0  # two chunks
        assert morph.counters["reuse_ratio"] > 1.0
