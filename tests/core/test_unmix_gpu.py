"""Tests for the device-side unmixing + classification extension."""

import numpy as np
import pytest

from repro.core import classify_abundances, unmix_lsu
from repro.core.unmix_gpu import gpu_unmix_classify
from repro.errors import ShapeError
from repro.gpu import GEFORCE_7800GTX, VirtualGPU


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(8)
    endmembers = rng.uniform(0.2, 1.0, size=(5, 24))
    endmembers[0] *= np.linspace(0.3, 1.6, 24)
    endmembers[1] *= np.linspace(1.6, 0.3, 24)
    endmembers[2, 6:12] *= 0.25
    endmembers[3, :6] *= 0.25
    true = rng.dirichlet(np.ones(5) * 2.0, size=(11, 9))
    cube = true @ endmembers
    return cube, endmembers, true


class TestAgainstHostLsu:
    def test_winner_matches_host(self, problem):
        cube, endmembers, _ = problem
        host = classify_abundances(unmix_lsu(cube, endmembers))
        out = gpu_unmix_classify(cube, endmembers)
        assert (out.winner_index == host).mean() > 0.98

    def test_abundances_match_host(self, problem):
        cube, endmembers, _ = problem
        host = unmix_lsu(cube, endmembers)
        out = gpu_unmix_classify(cube, endmembers,
                                 return_abundances=True)
        np.testing.assert_allclose(out.abundances, host,
                                   rtol=5e-3, atol=5e-4)

    def test_winner_abundance_is_the_max(self, problem):
        cube, endmembers, _ = problem
        out = gpu_unmix_classify(cube, endmembers,
                                 return_abundances=True)
        np.testing.assert_allclose(out.winner_abundance,
                                   out.abundances.max(axis=-1),
                                   rtol=1e-6)

    def test_recovers_true_dominant_component(self, problem):
        cube, endmembers, true = problem
        out = gpu_unmix_classify(cube, endmembers)
        truth_winner = np.argmax(true, axis=-1)
        assert (out.winner_index == truth_winner).mean() > 0.95


class TestDeviceBehaviour:
    def test_abundances_none_by_default(self, problem):
        cube, endmembers, _ = problem
        assert gpu_unmix_classify(cube, endmembers).abundances is None

    def test_chunked_equals_unchunked(self, problem):
        cube, endmembers, _ = problem
        base = gpu_unmix_classify(cube, endmembers)
        tight = GEFORCE_7800GTX.with_(vram_bytes=32 * 1024)
        chunked = gpu_unmix_classify(cube, endmembers, spec=tight)
        assert chunked.chunk_count > 1
        np.testing.assert_array_equal(chunked.winner_index,
                                      base.winner_index)
        np.testing.assert_allclose(chunked.winner_abundance,
                                   base.winner_abundance, rtol=1e-6)

    def test_vram_released(self, problem):
        cube, endmembers, _ = problem
        device = VirtualGPU(GEFORCE_7800GTX)
        gpu_unmix_classify(cube, endmembers, device=device)
        assert device.vram.used == 0

    def test_counters_and_time(self, problem):
        cube, endmembers, _ = problem
        out = gpu_unmix_classify(cube, endmembers)
        assert out.modeled_time_s > 0
        assert out.counters["kernel_launches"] > 0

    def test_fusion_invariance(self, problem):
        cube, endmembers, _ = problem
        a = gpu_unmix_classify(cube, endmembers, fuse_groups=1)
        b = gpu_unmix_classify(cube, endmembers, fuse_groups=6)
        np.testing.assert_array_equal(a.winner_index, b.winner_index)

    def test_shape_validation(self, problem):
        cube, endmembers, _ = problem
        with pytest.raises(ShapeError):
            gpu_unmix_classify(cube[:, :, 0], endmembers)
        with pytest.raises(ShapeError):
            gpu_unmix_classify(cube, endmembers[:, :-1])
