"""Tests for target implantation and anomaly detection."""

import numpy as np
import pytest

from repro.core.detection import (
    DetectionCurve,
    detection_curve,
    mei_detector,
    rx_detector,
)
from repro.errors import ShapeError
from repro.hsi.targets import implant_targets


@pytest.fixture()
def background(rng):
    """A two-material natural background with mild noise."""
    a = np.linspace(0.2, 0.6, 12)
    b = np.linspace(0.6, 0.2, 12)
    weights = rng.uniform(0.3, 0.7, size=(40, 40, 1))
    cube = weights * a + (1 - weights) * b
    cube += rng.normal(0, 0.004, cube.shape)
    return np.clip(cube, 1e-3, None)


@pytest.fixture()
def target_spectrum():
    spectrum = np.full(12, 0.15)
    spectrum[3:6] = 0.9  # a sharp man-made feature
    return spectrum


class TestImplantTargets:
    def test_positions_and_abundance(self, background, target_spectrum, rng):
        planted = implant_targets(background, target_spectrum, count=5,
                                  abundance=0.6, rng=rng)
        assert planted.count == 5
        for y, x in planted.positions:
            expected = 0.4 * background[y, x] + 0.6 * target_spectrum
            np.testing.assert_allclose(planted.cube[y, x], expected)

    def test_background_not_mutated(self, background, target_spectrum, rng):
        original = background.copy()
        implant_targets(background, target_spectrum, count=3,
                        abundance=0.5, rng=rng)
        np.testing.assert_array_equal(background, original)

    def test_separation_respected(self, background, target_spectrum, rng):
        planted = implant_targets(background, target_spectrum, count=6,
                                  abundance=0.5, rng=rng,
                                  min_separation=10)
        pos = planted.positions
        for i in range(len(pos)):
            for j in range(i + 1, len(pos)):
                l1 = abs(pos[i, 0] - pos[j, 0]) + abs(pos[i, 1] - pos[j, 1])
                assert l1 >= 10

    def test_border_respected(self, background, target_spectrum, rng):
        planted = implant_targets(background, target_spectrum, count=4,
                                  abundance=0.5, rng=rng, border=6)
        assert planted.positions.min() >= 6
        assert planted.positions.max() < 34

    def test_mask_tolerance(self, background, target_spectrum, rng):
        planted = implant_targets(background, target_spectrum, count=2,
                                  abundance=0.5, rng=rng)
        assert planted.mask(0).sum() == 2
        assert planted.mask(1).sum() == 18  # two 3x3 boxes

    def test_impossible_placement(self, background, target_spectrum, rng):
        with pytest.raises(ValueError, match="could not place"):
            implant_targets(background, target_spectrum, count=100,
                            abundance=0.5, rng=rng, min_separation=20)

    def test_validation(self, background, target_spectrum, rng):
        with pytest.raises(ValueError):
            implant_targets(background, target_spectrum, count=1,
                            abundance=0.0, rng=rng)
        with pytest.raises(ShapeError):
            implant_targets(background, target_spectrum[:-1], count=1,
                            abundance=0.5, rng=rng)


class TestDetectors:
    @pytest.fixture()
    def planted(self, background, target_spectrum, rng):
        return implant_targets(background, target_spectrum, count=8,
                               abundance=0.6, rng=rng)

    def test_rx_scores_targets_high(self, planted):
        scores = rx_detector(planted.cube)
        target_scores = scores[planted.mask(0)]
        assert np.median(target_scores) > np.percentile(scores, 99)

    def test_mei_scores_targets_high(self, planted):
        scores = mei_detector(planted.cube)
        target_mean = scores[planted.mask(1)].mean()
        assert target_mean > 5 * scores.mean()

    def test_rx_nonnegative(self, background):
        assert np.all(rx_detector(background) >= 0)

    def test_rx_requires_cube(self):
        with pytest.raises(ShapeError):
            rx_detector(np.ones((4, 4)))


class TestDetectionCurve:
    def test_perfect_detector(self):
        scores = np.zeros((10, 10))
        mask = np.zeros((10, 10), dtype=bool)
        scores[2, 3] = scores[7, 7] = 1.0
        mask[2, 3] = mask[7, 7] = True
        curve = detection_curve(scores, mask, max_alarms=10)
        assert curve.recall[1] == 1.0  # both found within 2 alarms
        assert curve.recall_at(2) == 1.0

    def test_useless_detector_low_auc(self, rng):
        scores = rng.uniform(size=(50, 50))
        mask = np.zeros((50, 50), dtype=bool)
        mask[10, 10] = True
        curve = detection_curve(scores, mask, max_alarms=250)
        assert curve.auc < 0.5

    def test_rx_beats_chance_on_planted_scene(self, background,
                                              target_spectrum, rng):
        planted = implant_targets(background, target_spectrum, count=8,
                                  abundance=0.6, rng=rng)
        curve = detection_curve(rx_detector(planted.cube),
                                planted.mask(0), max_alarms=100)
        assert curve.recall_at(50) >= 0.9
        assert curve.auc > 0.8

    def test_empty_mask_rejected(self):
        with pytest.raises(ValueError):
            detection_curve(np.ones((4, 4)),
                            np.zeros((4, 4), dtype=bool))

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            detection_curve(np.ones((4, 4)),
                            np.zeros((4, 5), dtype=bool))

    def test_monotone_recall(self, rng):
        scores = rng.uniform(size=(20, 20))
        mask = rng.uniform(size=(20, 20)) > 0.9
        curve = detection_curve(scores, mask, max_alarms=100)
        assert np.all(np.diff(curve.recall) >= 0)
        assert isinstance(curve, DetectionCurve)
