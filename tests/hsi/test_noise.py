"""Tests for the sensor noise model."""

import numpy as np
import pytest

from repro.hsi import NoiseModel, aviris_bands


@pytest.fixture()
def bands():
    return aviris_bands(64)


class TestSnrProfile:
    def test_peak_near_800nm(self, bands):
        model = NoiseModel()
        snr = model.snr_profile(bands)
        peak_wl = bands.centers_nm[np.argmax(snr)]
        assert 700.0 <= peak_wl <= 900.0

    def test_bounds(self, bands):
        model = NoiseModel(peak_snr=200.0, edge_snr=50.0)
        snr = model.snr_profile(bands)
        assert np.all(snr >= 50.0 - 1e-9)
        assert np.all(snr <= 200.0 + 1e-9)

    def test_invalid_snr_rejected(self):
        with pytest.raises(ValueError):
            NoiseModel(peak_snr=0.0)

    def test_invalid_transmission_rejected(self):
        with pytest.raises(ValueError):
            NoiseModel(absorption_transmission=1.5)


class TestApply:
    def test_shape_and_positivity(self, bands, rng):
        cube = rng.uniform(0.1, 0.5, size=(8, 9, bands.count))
        out = NoiseModel().apply(cube, bands, rng)
        assert out.shape == cube.shape
        assert np.all(out > 0)

    def test_deterministic_given_seed(self, bands):
        cube = np.full((4, 4, bands.count), 0.3)
        a = NoiseModel().apply(cube, bands, np.random.default_rng(5))
        b = NoiseModel().apply(cube, bands, np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_bad_bands_attenuated(self, bands):
        cube = np.full((6, 6, bands.count), 0.4)
        out = NoiseModel(absorption_transmission=0.02).apply(
            cube, bands, np.random.default_rng(0))
        good_mean = out[:, :, bands.good].mean()
        bad_mean = out[:, :, ~bands.good].mean()
        assert bad_mean < 0.1 * good_mean

    def test_noise_scales_with_snr(self, bands):
        cube = np.full((32, 32, bands.count), 0.4)
        noisy_lo = NoiseModel(peak_snr=20, edge_snr=10).apply(
            cube, bands, np.random.default_rng(1))
        noisy_hi = NoiseModel(peak_snr=2000, edge_snr=1000).apply(
            cube, bands, np.random.default_rng(1))
        good = bands.good
        assert noisy_lo[:, :, good].std() > 5 * noisy_hi[:, :, good].std()

    def test_input_not_mutated(self, bands, rng):
        cube = rng.uniform(0.1, 0.5, size=(4, 4, bands.count))
        original = cube.copy()
        NoiseModel().apply(cube, bands, rng)
        np.testing.assert_array_equal(cube, original)

    def test_band_mismatch_rejected(self, bands, rng):
        with pytest.raises(ValueError):
            NoiseModel().apply(np.ones((4, 4, 3)), bands, rng)
