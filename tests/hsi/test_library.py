"""Tests for the synthetic spectral library."""

import numpy as np
import pytest

from repro.hsi import aviris_bands, build_default_library
from repro.hsi.library import (
    AbsorptionFeature,
    DEFAULT_MATERIALS,
    SpectralLibrary,
)


@pytest.fixture(scope="module")
def library():
    return build_default_library(aviris_bands(224))


class TestAbsorptionFeature:
    def test_transmission_bounds(self):
        feat = AbsorptionFeature(1450.0, 60.0, 0.5)
        wl = np.linspace(400, 2500, 300)
        t = feat.transmission(wl)
        assert np.all(t <= 1.0) and np.all(t >= 0.5 - 1e-12)

    def test_deepest_at_centre(self):
        feat = AbsorptionFeature(1000.0, 50.0, 0.3)
        wl = np.linspace(400, 2500, 500)
        t = feat.transmission(wl)
        assert wl[np.argmin(t)] == pytest.approx(1000.0, abs=5.0)

    def test_depth_out_of_range(self):
        with pytest.raises(ValueError):
            AbsorptionFeature(1000.0, 50.0, 1.2).transmission(
                np.array([1000.0]))


class TestDefaultLibrary:
    def test_all_materials_present(self, library):
        for material in DEFAULT_MATERIALS:
            assert material.name in library

    def test_spectra_positive(self, library):
        assert np.all(library.spectra > 0)

    def test_vegetation_red_edge(self, library):
        """Vegetation must jump across the 700 nm red edge."""
        veg = library.get("corn_mature")
        bands = library.bands
        red = veg[bands.nearest(670.0)]
        nir = veg[bands.nearest(850.0)]
        assert nir > 3.0 * red

    def test_vegetation_water_absorption(self, library):
        veg = library.get("trees")
        bands = library.bands
        shoulder = veg[bands.nearest(1280.0)]
        well = veg[bands.nearest(1450.0)]
        assert well < shoulder

    def test_water_dark_in_nir(self, library):
        lake = library.get("lake")
        bands = library.bands
        assert lake[bands.nearest(900.0)] < 0.02

    def test_soil_brighter_than_water(self, library):
        assert library.get("bare_soil").mean() > 10 * library.get("lake").mean()

    def test_unknown_material(self, library):
        with pytest.raises(KeyError, match="no material"):
            library.get("vibranium")

    def test_len(self, library):
        assert len(library) == len(DEFAULT_MATERIALS)


class TestLibraryOperations:
    def test_subset_bands(self, library):
        idx = library.bands.good_indices()
        sub = library.subset_bands(idx)
        assert sub.spectra.shape == (len(library), idx.size)
        np.testing.assert_array_equal(sub.get("hay"),
                                      library.get("hay")[idx])

    def test_inconsistent_shape_rejected(self):
        bands = aviris_bands(16)
        with pytest.raises(ValueError):
            SpectralLibrary(bands, ("a",), np.ones((2, 16)))

    def test_nonpositive_spectra_rejected(self):
        bands = aviris_bands(16)
        with pytest.raises(ValueError):
            SpectralLibrary(bands, ("a",), np.zeros((1, 16)))

    def test_evaluation_on_different_grids_consistent(self):
        """The same recipe on coarse and fine grids must agree where the
        grids coincide (interpolated continua, smooth features)."""
        coarse = build_default_library(aviris_bands(56))
        fine = build_default_library(aviris_bands(224))
        # 224 = 4*56 - 3... grids share endpoints; compare via nearest
        for name in ("bare_soil", "concrete"):
            c = coarse.get(name)
            f = fine.get(name)
            for i, wl in enumerate(coarse.bands.centers_nm):
                j = fine.bands.nearest(wl)
                assert c[i] == pytest.approx(f[j], rel=0.08)
