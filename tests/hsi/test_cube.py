"""Tests for the HyperCube container and its interleaves."""

import numpy as np
import pytest

from repro.errors import LayoutError, ShapeError
from repro.hsi import HyperCube, Interleave
from repro.hsi.cube import cube_from_bip


@pytest.fixture()
def bip_data(rng):
    return rng.uniform(0, 1, size=(6, 7, 5))  # lines, samples, bands


class TestInterleave:
    def test_parse_strings(self):
        assert Interleave.parse("bip") is Interleave.BIP
        assert Interleave.parse("BIL") is Interleave.BIL
        assert Interleave.parse("Bsq") is Interleave.BSQ

    def test_parse_passthrough(self):
        assert Interleave.parse(Interleave.BIL) is Interleave.BIL

    def test_parse_unknown(self):
        with pytest.raises(LayoutError, match="unknown interleave"):
            Interleave.parse("bsqq")


class TestConstruction:
    def test_geometry_bip(self, bip_data):
        cube = HyperCube(bip_data)
        assert (cube.lines, cube.samples, cube.bands) == (6, 7, 5)

    def test_geometry_bil(self, bip_data):
        cube = HyperCube(np.transpose(bip_data, (0, 2, 1)),
                         interleave="bil")
        assert (cube.lines, cube.samples, cube.bands) == (6, 7, 5)

    def test_geometry_bsq(self, bip_data):
        cube = HyperCube(np.transpose(bip_data, (2, 0, 1)),
                         interleave="bsq")
        assert (cube.lines, cube.samples, cube.bands) == (6, 7, 5)

    def test_rejects_non_3d(self):
        with pytest.raises(ShapeError):
            HyperCube(np.ones((3, 3)))

    def test_wavelength_length_checked(self, bip_data):
        with pytest.raises(ShapeError):
            HyperCube(bip_data, wavelengths_nm=np.arange(4.0))

    def test_size_accounting(self, bip_data):
        cube = HyperCube(bip_data.astype(np.float32))
        assert cube.nbytes == 6 * 7 * 5 * 4
        assert cube.size_mb == pytest.approx(cube.nbytes / 1e6)
        assert cube.pixel_count == 42


class TestLayoutConversions:
    @pytest.mark.parametrize("interleave", ["bip", "bil", "bsq"])
    def test_roundtrip_through_layout(self, bip_data, interleave):
        cube = HyperCube(bip_data)
        converted = cube.to(interleave)
        np.testing.assert_array_equal(converted.as_bip(), bip_data)
        assert converted.interleave is Interleave.parse(interleave)

    def test_as_bip_is_view_for_bip(self, bip_data):
        cube = HyperCube(bip_data)
        assert cube.as_bip() is cube.data or \
            cube.as_bip().base is bip_data or \
            np.shares_memory(cube.as_bip(), bip_data)

    def test_as_bip_view_for_bsq(self, bip_data):
        bsq = np.ascontiguousarray(np.transpose(bip_data, (2, 0, 1)))
        cube = HyperCube(bsq, interleave="bsq")
        assert np.shares_memory(cube.as_bip(), bsq)

    def test_as_layout_contiguous_copies(self, bip_data):
        cube = HyperCube(bip_data)
        out = cube.as_layout("bsq", contiguous=True)
        assert out.flags.c_contiguous
        assert out.shape == (5, 6, 7)


class TestAccess:
    def test_pixel_spectrum(self, bip_data):
        cube = HyperCube(bip_data)
        np.testing.assert_array_equal(cube.pixel(2, 3), bip_data[2, 3])

    def test_band_view(self, bip_data):
        cube = HyperCube(bip_data)
        np.testing.assert_array_equal(cube.band(4), bip_data[:, :, 4])

    def test_band_out_of_range(self, bip_data):
        cube = HyperCube(bip_data)
        with pytest.raises(IndexError):
            cube.band(5)

    def test_band_at_wavelength(self, bip_data):
        wl = np.array([400.0, 500.0, 600.0, 700.0, 800.0])
        cube = HyperCube(bip_data, wavelengths_nm=wl)
        index, band = cube.band_at_wavelength(612.0)
        assert index == 2
        np.testing.assert_array_equal(band, bip_data[:, :, 2])

    def test_band_at_wavelength_needs_metadata(self, bip_data):
        with pytest.raises(LayoutError):
            HyperCube(bip_data).band_at_wavelength(500.0)


class TestCrop:
    def test_crop_tuple(self, bip_data):
        cube = HyperCube(bip_data)
        cropped = cube.crop((1, 4), (2, 6))
        assert (cropped.lines, cropped.samples, cropped.bands) == (3, 4, 5)
        np.testing.assert_array_equal(cropped.as_bip(),
                                      bip_data[1:4, 2:6])

    def test_crop_slice_is_view(self, bip_data):
        cube = HyperCube(bip_data)
        cropped = cube.crop(slice(0, 2), slice(0, 2))
        assert np.shares_memory(cropped.as_bip(), bip_data)

    def test_empty_crop_rejected(self, bip_data):
        with pytest.raises(ShapeError):
            HyperCube(bip_data).crop((2, 2), (0, 3))

    def test_crop_keeps_wavelengths(self, bip_data):
        wl = np.linspace(400, 800, 5)
        cube = HyperCube(bip_data, wavelengths_nm=wl)
        np.testing.assert_array_equal(cube.crop((0, 2), (0, 2)).wavelengths_nm,
                                      wl)


def test_cube_from_bip_helper(bip_data):
    cube = cube_from_bip(bip_data, name="x")
    assert cube.name == "x"
    assert cube.interleave is Interleave.BIP
