"""Tests for ENVI-style cube I/O."""

import numpy as np
import pytest

from repro.errors import EnviFormatError
from repro.hsi import HyperCube
from repro.hsi.envi import (
    EnviHeader,
    Interleave,
    format_header,
    parse_header,
    read_cube,
    write_cube,
)


@pytest.fixture()
def cube(rng):
    return HyperCube(rng.uniform(0, 1, (5, 6, 4)).astype(np.float32),
                     wavelengths_nm=np.linspace(400, 700, 4),
                     name="testcube")


class TestRoundtrip:
    @pytest.mark.parametrize("interleave", ["bip", "bil", "bsq"])
    def test_roundtrip_interleaves(self, cube, interleave, tmp_path):
        path = str(tmp_path / "scene.raw")
        write_cube(cube.to(interleave), path)
        back = read_cube(path)
        np.testing.assert_allclose(back.as_bip(), cube.as_bip(), rtol=1e-6)
        assert back.interleave is Interleave.parse(interleave)

    @pytest.mark.parametrize("dtype", [np.uint8, np.int16, np.uint16,
                                       np.int32, np.float32, np.float64])
    def test_roundtrip_dtypes(self, rng, dtype, tmp_path):
        data = (rng.uniform(0, 100, (3, 4, 2))).astype(dtype)
        cube = HyperCube(data)
        path = str(tmp_path / "scene.raw")
        write_cube(cube, path)
        back = read_cube(path)
        assert back.data.dtype == np.dtype(dtype)
        np.testing.assert_array_equal(back.as_bip(), cube.as_bip())

    def test_wavelengths_roundtrip(self, cube, tmp_path):
        path = str(tmp_path / "scene.raw")
        write_cube(cube, path)
        back = read_cube(path)
        np.testing.assert_allclose(back.wavelengths_nm,
                                   cube.wavelengths_nm, atol=0.01)

    def test_name_carried_in_description(self, cube, tmp_path):
        path = str(tmp_path / "scene.raw")
        write_cube(cube, path)
        assert read_cube(path).name == "testcube"


class TestHeaderParsing:
    def test_minimal_header(self):
        header = parse_header(
            "ENVI\nsamples = 7\nlines = 5\nbands = 3\n"
            "data type = 4\ninterleave = bsq\n")
        assert (header.lines, header.samples, header.bands) == (5, 7, 3)
        assert header.dtype == np.float32
        assert header.file_shape() == (3, 5, 7)

    def test_missing_magic(self):
        with pytest.raises(EnviFormatError, match="magic"):
            parse_header("samples = 2\nlines = 2\nbands = 1\n")

    def test_missing_dimension(self):
        with pytest.raises(EnviFormatError, match="missing required"):
            parse_header("ENVI\nsamples = 2\nbands = 1\n")

    def test_nonpositive_dimension(self):
        with pytest.raises(EnviFormatError, match="positive"):
            parse_header("ENVI\nsamples = 0\nlines = 2\nbands = 1\n")

    def test_unsupported_dtype(self):
        with pytest.raises(EnviFormatError, match="data type"):
            parse_header("ENVI\nsamples = 2\nlines = 2\nbands = 1\n"
                         "data type = 6\n")

    def test_wavelength_block_multiline(self):
        header = parse_header(
            "ENVI\nsamples = 2\nlines = 2\nbands = 3\ndata type = 4\n"
            "wavelength = {400.0,\n 500.0, 600.0}\n")
        np.testing.assert_allclose(header.wavelengths_nm,
                                   [400.0, 500.0, 600.0])

    def test_wavelength_micrometers_converted(self):
        header = parse_header(
            "ENVI\nsamples = 2\nlines = 2\nbands = 2\ndata type = 4\n"
            "wavelength units = Micrometers\n"
            "wavelength = {0.4, 2.5}\n")
        np.testing.assert_allclose(header.wavelengths_nm, [400.0, 2500.0])

    def test_wavelength_count_mismatch(self):
        with pytest.raises(EnviFormatError, match="wavelengths"):
            parse_header("ENVI\nsamples = 2\nlines = 2\nbands = 3\n"
                         "data type = 4\nwavelength = {400.0, 500.0}\n")

    def test_unterminated_block(self):
        with pytest.raises(EnviFormatError, match="unterminated"):
            parse_header("ENVI\nsamples = 2\nlines = 2\nbands = 1\n"
                         "description = {oops\n")

    def test_bad_byte_order(self):
        with pytest.raises(EnviFormatError, match="byte order"):
            parse_header("ENVI\nsamples = 2\nlines = 2\nbands = 1\n"
                         "data type = 4\nbyte order = 7\n")

    def test_format_parse_roundtrip(self):
        header = EnviHeader(lines=3, samples=4, bands=2,
                            interleave=Interleave.BIL,
                            dtype=np.dtype(np.int16),
                            wavelengths_nm=np.array([500.0, 600.0]))
        again = parse_header(format_header(header))
        assert again.lines == 3 and again.samples == 4 and again.bands == 2
        assert again.interleave is Interleave.BIL
        assert again.dtype == np.int16


class TestMemoryMapped:
    def test_mmap_matches_eager(self, cube, tmp_path):
        path = str(tmp_path / "scene.raw")
        write_cube(cube, path)
        eager = read_cube(path)
        mapped = read_cube(path, mmap=True)
        np.testing.assert_array_equal(mapped.as_bip(), eager.as_bip())

    def test_mmap_is_backed_by_file(self, cube, tmp_path):
        path = str(tmp_path / "scene.raw")
        write_cube(cube, path)
        mapped = read_cube(path, mmap=True)
        base = mapped.data
        found = isinstance(base, np.memmap)
        while not found and getattr(base, "base", None) is not None:
            base = base.base
            found = isinstance(base, np.memmap)
        assert found

    def test_mmap_chunked_processing(self, tmp_path, rng):
        """The onboard workflow: mmap a cube from disk, stream chunks
        through the morphological stage, match the in-memory result."""
        from repro.core import mei_reference
        from repro.hsi.chunking import plan_chunks

        data = rng.uniform(0.05, 1.0, (16, 6, 5)).astype(np.float32)
        cube = HyperCube(data)
        path = str(tmp_path / "big.raw")
        write_cube(cube, path)
        mapped = read_cube(path, mmap=True)
        plan = plan_chunks(mapped, max_chunk_bytes=6 * 6 * 5 * 4, halo=1)
        assert len(plan) > 1
        out = np.empty((16, 6))
        for chunk in plan:
            part = mei_reference(np.asarray(chunk.extract(mapped.as_bip()),
                                            dtype=np.float64))
            out[chunk.core_start:chunk.core_stop] = chunk.core_of(part.mei)
        whole = mei_reference(data.astype(np.float64))
        np.testing.assert_allclose(out, whole.mei, rtol=1e-10)


class TestReadErrors:
    def test_missing_header(self, tmp_path):
        raw = tmp_path / "orphan.raw"
        raw.write_bytes(b"\x00" * 16)
        with pytest.raises(EnviFormatError, match="no header"):
            read_cube(str(raw))

    def test_size_mismatch(self, cube, tmp_path):
        path = str(tmp_path / "scene.raw")
        write_cube(cube, path)
        with open(path, "ab") as fh:
            fh.write(b"\x00\x00\x00\x00")
        with pytest.raises(EnviFormatError, match="elements"):
            read_cube(path)
