"""Tests for the additional scene presets and the AMC regimes they
represent."""

import numpy as np
import pytest

from repro.core import AMCConfig, run_amc
from repro.hsi.scenes import (
    COASTAL_CLASSES,
    MINIMAL_CLASSES,
    URBAN_CLASSES,
    generate_coastal_scene,
    generate_minimal_scene,
    generate_urban_scene,
)


class TestPresetsGenerate:
    def test_urban(self):
        scene = generate_urban_scene(48, 48, band_count=48, seed=2)
        assert scene.n_classes == len(URBAN_CLASSES) == 8
        assert scene.ground_truth.max() <= 8

    def test_coastal_water_dominates(self):
        scene = generate_coastal_scene(64, 64, band_count=48, seed=2)
        water = (scene.ground_truth == 1).mean()
        assert water > 0.25  # DeepWater has 4x area weight

    def test_minimal(self):
        scene = generate_minimal_scene()
        assert scene.n_classes == len(MINIMAL_CLASSES) == 4
        assert set(np.unique(scene.ground_truth)) <= {1, 2, 3, 4}

    def test_deterministic(self):
        a = generate_minimal_scene(seed=7)
        b = generate_minimal_scene(seed=7)
        np.testing.assert_array_equal(a.cube.data, b.cube.data)


class TestRegimes:
    def test_urban_regime_is_easy(self):
        """Pure, distinct classes: AMC must score very high."""
        scene = generate_urban_scene(64, 64, band_count=64, seed=3)
        result = run_amc(scene.cube, AMCConfig(n_classes=12),
                         ground_truth=scene.ground_truth,
                         class_names=scene.class_names)
        assert result.report.overall_accuracy > 85.0

    def test_coastal_regime_runs_clean(self):
        """Dark low-SNR water must not blow up the SID math (no NaNs,
        finite MEI, sane accuracy)."""
        scene = generate_coastal_scene(64, 64, band_count=64, seed=3)
        result = run_amc(scene.cube, AMCConfig(n_classes=10),
                         ground_truth=scene.ground_truth,
                         class_names=scene.class_names)
        assert np.isfinite(result.mei).all()
        assert result.report.overall_accuracy > 50.0

    def test_minimal_scene_classifies(self):
        scene = generate_minimal_scene(seed=5)
        result = run_amc(scene.cube, AMCConfig(n_classes=6),
                         ground_truth=scene.ground_truth,
                         class_names=scene.class_names)
        assert result.report.overall_accuracy > 80.0
