"""Tests for AVIRIS-like band metadata."""

import numpy as np
import pytest

from repro.hsi import AVIRIS_BAND_COUNT, BandSet, aviris_bands
from repro.hsi.bands import AVIRIS_RANGE_NM, WATER_ABSORPTION_WINDOWS_NM


class TestAvirisBands:
    def test_default_count(self):
        bands = aviris_bands()
        assert bands.count == AVIRIS_BAND_COUNT == 224

    def test_coverage(self):
        bands = aviris_bands()
        assert bands.centers_nm[0] == AVIRIS_RANGE_NM[0]
        assert bands.centers_nm[-1] == AVIRIS_RANGE_NM[1]

    def test_nominal_resolution_about_10nm(self):
        bands = aviris_bands()
        spacing = np.diff(bands.centers_nm)
        assert spacing[0] == pytest.approx(9.42, abs=0.05)

    def test_water_windows_marked_bad(self):
        bands = aviris_bands()
        for lo, hi in WATER_ABSORPTION_WINDOWS_NM:
            inside = (bands.centers_nm >= lo) & (bands.centers_nm <= hi)
            assert inside.any()
            assert not bands.good[inside].any()

    def test_good_band_count_plausible(self):
        # The literature keeps ~200-220 usable AVIRIS channels.
        bands = aviris_bands()
        assert 190 <= bands.good_count < 224

    def test_reduced_sensor_keeps_structure(self):
        bands = aviris_bands(64)
        assert bands.count == 64
        assert 0 < bands.good_count < 64

    def test_too_few_bands_rejected(self):
        with pytest.raises(ValueError):
            aviris_bands(1)


class TestBandSet:
    def test_nearest(self):
        bands = aviris_bands(64)
        idx = bands.nearest(587.0)
        assert abs(bands.centers_nm[idx] - 587.0) == \
            np.abs(bands.centers_nm - 587.0).min()

    def test_good_indices_sorted_subset(self):
        bands = aviris_bands(64)
        idx = bands.good_indices()
        assert np.all(np.diff(idx) > 0)
        assert bands.good[idx].all()

    def test_subset(self):
        bands = aviris_bands(32)
        sub = bands.subset(np.array([0, 5, 9]))
        assert sub.count == 3
        np.testing.assert_array_equal(sub.centers_nm,
                                      bands.centers_nm[[0, 5, 9]])

    def test_misaligned_arrays_rejected(self):
        with pytest.raises(ValueError):
            BandSet(np.array([400.0, 500.0]), np.array([10.0]),
                    np.array([True, True]))

    def test_descending_centres_rejected(self):
        with pytest.raises(ValueError, match="ascending"):
            BandSet(np.array([500.0, 400.0]), np.array([10.0, 10.0]),
                    np.array([True, True]))
