"""Tests for the spatial chunk planner (halo correctness is the crux)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StreamError
from repro.hsi import HyperCube, plan_chunks, plan_chunks_by_lines
from repro.hsi.chunking import Chunk


def _cube(lines=20, samples=8, bands=4, dtype=np.float32):
    return HyperCube(np.zeros((lines, samples, bands), dtype=dtype))


class TestChunkGeometry:
    def test_single_chunk_when_it_fits(self):
        plan = plan_chunks(_cube(), max_chunk_bytes=10 ** 9, halo=2)
        assert len(plan) == 1
        only = plan.chunks[0]
        assert only.ext_start == 0 and only.ext_stop == 20
        assert only.core_lines == 20

    def test_core_regions_tile_exactly(self):
        plan = plan_chunks(_cube(lines=23), halo=1,
                           max_chunk_bytes=8 * 8 * 4 * 4)  # 8 lines/chunk
        cores = [(c.core_start, c.core_stop) for c in plan]
        assert cores[0][0] == 0
        assert cores[-1][1] == 23
        for (_, stop), (start, _) in zip(cores, cores[1:]):
            assert stop == start

    def test_halo_present_on_interior_edges(self):
        plan = plan_chunks(_cube(lines=30), halo=2,
                           max_chunk_bytes=10 * 8 * 4 * 4)
        assert len(plan) > 1
        for chunk in plan.chunks[1:]:
            assert chunk.core_start - chunk.ext_start == 2
        for chunk in plan.chunks[:-1]:
            assert chunk.ext_stop - chunk.core_stop == 2

    def test_halo_clipped_at_image_borders(self):
        plan = plan_chunks(_cube(lines=30), halo=2,
                           max_chunk_bytes=10 * 8 * 4 * 4)
        assert plan.chunks[0].ext_start == 0
        assert plan.chunks[-1].ext_stop == 30

    def test_budget_too_small(self):
        with pytest.raises(StreamError, match="fits only"):
            plan_chunks(_cube(), halo=3, max_chunk_bytes=8 * 4 * 4 * 4)

    def test_negative_halo(self):
        with pytest.raises(StreamError):
            plan_chunks(_cube(), halo=-1, max_chunk_bytes=10 ** 6)

    def test_nonpositive_budget(self):
        with pytest.raises(StreamError):
            plan_chunks(_cube(), halo=0, max_chunk_bytes=0)

    def test_bytes_per_value_override(self):
        # Pretend every value becomes a 4-byte texel lane: fewer lines fit.
        small = plan_chunks(_cube(dtype=np.int16), halo=0,
                            max_chunk_bytes=8 * 4 * 10, bytes_per_value=4)
        large = plan_chunks(_cube(dtype=np.int16), halo=0,
                            max_chunk_bytes=8 * 4 * 10)
        assert len(small) > len(large)

    def test_max_ext_lines(self):
        plan = plan_chunks_by_lines(40, 8, 4, max_ext_lines=12, halo=2)
        assert plan.max_ext_lines() <= 12


class TestChunkSlicing:
    def test_extract_and_core_roundtrip(self):
        data = np.arange(30 * 4 * 2, dtype=np.float64).reshape(30, 4, 2)
        plan = plan_chunks_by_lines(30, 4, 2, max_ext_lines=11, halo=2)
        rebuilt = np.empty_like(data)
        for chunk in plan:
            ext = chunk.extract(data)
            rebuilt[chunk.core_start:chunk.core_stop] = chunk.core_of(ext)
        np.testing.assert_array_equal(rebuilt, data)

    def test_extract_is_view(self):
        data = np.zeros((30, 4, 2))
        chunk = Chunk(0, 5, 15, 7, 13)
        assert np.shares_memory(chunk.extract(data), data)

    def test_inconsistent_chunk_rejected(self):
        with pytest.raises(StreamError):
            Chunk(0, 10, 20, 5, 15)  # core starts before ext

    def test_chunk_properties(self):
        chunk = Chunk(1, 8, 20, 10, 18)
        assert chunk.ext_lines == 12
        assert chunk.core_lines == 8
        assert chunk.core_offset == 2


class TestPlanValidation:
    @given(lines=st.integers(1, 200), halo=st.integers(0, 3),
           max_ext=st.integers(1, 50))
    @settings(max_examples=120, deadline=None)
    def test_property_exact_coverage(self, lines, halo, max_ext):
        """Any accepted plan tiles the image exactly with in-bounds halos."""
        if max_ext < 2 * halo + 1 and max_ext < lines:
            with pytest.raises(StreamError):
                plan_chunks_by_lines(lines, 4, 2, max_ext_lines=max_ext,
                                     halo=halo)
            return
        plan = plan_chunks_by_lines(lines, 4, 2, max_ext_lines=max_ext,
                                    halo=halo)
        plan.validate()  # raises on any violation
        covered = sum(c.core_lines for c in plan)
        assert covered == lines
        for chunk in plan:
            assert chunk.ext_lines <= max(max_ext, lines)
