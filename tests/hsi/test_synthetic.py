"""Tests for the Indian-Pines-like scene generator."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.hsi import (
    INDIAN_PINES_CLASSES,
    SceneParams,
    generate_indian_pines_like,
    generate_scene,
)
from repro.hsi.synthetic import _purity_from_accuracy


class TestClassTable:
    def test_matches_paper_row_count(self):
        assert len(INDIAN_PINES_CLASSES) == 32  # Table 3 rows

    def test_every_class_names_a_material(self, session_scene):
        lib = session_scene.library
        for spec in INDIAN_PINES_CLASSES:
            assert spec.material in lib
            for mixer in spec.mixers:
                assert mixer in lib

    def test_paper_accuracies_recorded(self):
        by_name = {c.name: c.paper_accuracy for c in INDIAN_PINES_CLASSES}
        assert by_name["BareSoil"] == 98.05
        assert by_name["Buildings"] == 30.43
        assert by_name["Woods"] == 88.89

    def test_purity_monotone_in_accuracy(self):
        """Higher reported accuracy must map to higher purity."""
        assert _purity_from_accuracy(99.0) > _purity_from_accuracy(70.0) \
            > _purity_from_accuracy(30.0)

    def test_purity_calibration_midpoint(self):
        # 50% accuracy sits exactly at the decision boundary.
        assert _purity_from_accuracy(50.0) == pytest.approx(0.5, abs=1e-6)


class TestGeneration:
    def test_shapes(self, session_scene):
        scene = session_scene
        assert scene.ground_truth.shape == (48, 48)
        assert scene.cube.lines == 48 and scene.cube.samples == 48
        assert scene.abundance.shape == (48, 48)

    def test_bad_bands_dropped(self, session_scene):
        # 64-channel sensor keeps only good channels by default.
        assert session_scene.cube.bands == session_scene.bands.good_count \
            == session_scene.bands.count

    def test_keep_bad_bands_option(self):
        scene = generate_scene(SceneParams(lines=16, samples=16,
                                           band_count=32, seed=1,
                                           drop_bad_bands=False))
        assert scene.cube.bands == 32

    def test_all_pixels_labeled(self, session_scene):
        assert session_scene.ground_truth.min() >= 1
        assert session_scene.ground_truth.max() <= session_scene.n_classes

    def test_deterministic(self):
        a = generate_indian_pines_like(24, 24, band_count=32, seed=9)
        b = generate_indian_pines_like(24, 24, band_count=32, seed=9)
        np.testing.assert_array_equal(a.cube.data, b.cube.data)
        np.testing.assert_array_equal(a.ground_truth, b.ground_truth)

    def test_seed_changes_scene(self):
        a = generate_indian_pines_like(24, 24, band_count=32, seed=9)
        b = generate_indian_pines_like(24, 24, band_count=32, seed=10)
        assert not np.array_equal(a.ground_truth, b.ground_truth)

    def test_cube_positive_float32(self, session_scene):
        data = session_scene.cube.data
        assert data.dtype == np.float32
        assert np.all(data > 0)

    def test_class_coverage_on_large_scene(self):
        scene = generate_indian_pines_like(128, 128, band_count=32, seed=4)
        present = np.unique(scene.ground_truth)
        # Large scenes must realize the vast majority of the 32 classes.
        assert present.size >= 26

    def test_purity_reflects_class_spec(self):
        scene = generate_indian_pines_like(96, 96, band_count=32, seed=4)
        gt = scene.ground_truth
        names = scene.class_names
        pure = names.index("BareSoil") + 1
        mixed = names.index("Buildings") + 1
        if (gt == pure).any() and (gt == mixed).any():
            assert scene.abundance[gt == pure].mean() > \
                scene.abundance[gt == mixed].mean()

    def test_mixed_class_spectra_closer_to_background(self):
        """A low-purity class's pixels sit closer to its background
        material than a high-purity class's pixels do."""
        scene = generate_indian_pines_like(96, 96, band_count=64, seed=4)
        assert np.isfinite(scene.abundance).all()
        assert 0.0 < scene.abundance.min() and scene.abundance.max() <= 0.98

    def test_class_spec_lookup(self, session_scene):
        spec = session_scene.class_spec(1)
        assert spec.name == session_scene.class_names[0]

    def test_wavelengths_attached(self, session_scene):
        wl = session_scene.cube.wavelengths_nm
        assert wl is not None and wl.size == session_scene.cube.bands


class TestGeneratorFuzz:
    """Hypothesis: the generator never crashes and its invariants hold
    over randomized configurations."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(lines=st.integers(8, 40), samples=st.integers(8, 40),
           bands=st.integers(8, 48), seed=st.integers(0, 10 ** 6),
           jitter=st.floats(0.01, 0.3),
           illum=st.floats(0.0, 0.3))
    @settings(max_examples=25, deadline=None)
    def test_property_invariants(self, lines, samples, bands, seed,
                                 jitter, illum):
        scene = generate_scene(SceneParams(
            lines=lines, samples=samples, band_count=bands, seed=seed,
            purity_jitter=jitter, illumination_variation=illum,
            min_field=4))
        assert scene.ground_truth.shape == (lines, samples)
        assert scene.ground_truth.min() >= 1
        assert scene.ground_truth.max() <= len(scene.class_names)
        data = scene.cube.as_bip()
        assert np.isfinite(data).all()
        assert (data > 0).all()
        assert scene.cube.bands == scene.bands.count
        assert np.isfinite(scene.abundance).all()
        assert scene.abundance.min() > 0.0
        assert scene.abundance.max() <= 0.98 + 1e-6


class TestParamValidation:
    def test_too_small_scene(self):
        with pytest.raises(ShapeError):
            SceneParams(lines=2, samples=16)

    def test_too_few_bands(self):
        with pytest.raises(ShapeError):
            SceneParams(band_count=4)

    def test_empty_classes(self):
        with pytest.raises(ValueError):
            SceneParams(classes=())
