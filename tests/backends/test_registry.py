"""Tests for the morphological backend registry and custom backends."""

import numpy as np
import pytest

from repro.backends import (
    MorphologicalBackend,
    MorphologyResult,
    backend_names,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.core import AMCConfig, run_amc
from repro.core.mei import mei_reference
from repro.errors import StreamError, UnknownBackendError


class ShiftedReferenceBackend(MorphologicalBackend):
    """A recognisable custom backend: the reference stage with the MEI
    plane shifted by a constant (indices untouched, so the tail still
    classifies identically).  Module-level so worker processes can
    unpickle it."""

    name = "shifted"

    def run(self, bip, radius, *, spec=None, device=None):
        out = mei_reference(bip, radius)
        return MorphologyResult(mei=out.mei + 0.25,
                                erosion_index=out.erosion_index,
                                dilation_index=out.dilation_index)


@pytest.fixture()
def shifted_backend():
    backend = register_backend(ShiftedReferenceBackend())
    yield backend
    unregister_backend("shifted")


class TestRegistry:
    def test_builtins_registered(self):
        assert set(backend_names()) >= {"reference", "naive", "gpu"}

    def test_names_sorted(self):
        assert list(backend_names()) == sorted(backend_names())

    def test_unknown_backend_lists_registered_names(self):
        with pytest.raises(UnknownBackendError) as excinfo:
            get_backend("hexapod")
        message = str(excinfo.value)
        assert "hexapod" in message
        for name in backend_names():
            assert name in message

    def test_unknown_backend_is_value_and_stream_error(self):
        """Both historical contracts hold: AMCConfig callers catch
        ValueError, the parallel executor's callers catch StreamError."""
        with pytest.raises(ValueError):
            get_backend("hexapod")
        with pytest.raises(StreamError, match="backend"):
            get_backend("hexapod")

    def test_instances_pass_through(self):
        backend = get_backend("reference")
        assert get_backend(backend) is backend

    def test_register_requires_instance(self):
        with pytest.raises(TypeError, match="instance"):
            register_backend(ShiftedReferenceBackend)

    def test_register_requires_name(self):
        anonymous = ShiftedReferenceBackend()
        anonymous.name = ""
        with pytest.raises(ValueError, match="non-empty"):
            register_backend(anonymous)

    def test_duplicate_registration_refused(self, shifted_backend):
        with pytest.raises(ValueError, match="already registered"):
            register_backend(ShiftedReferenceBackend())
        replacement = register_backend(ShiftedReferenceBackend(),
                                       replace=True)
        assert get_backend("shifted") is replacement

    def test_unregister_unknown_is_noop(self):
        unregister_backend("never-existed")


class TestCustomBackendIntegration:
    def test_amcconfig_accepts_registered_name(self, shifted_backend):
        assert AMCConfig(backend="shifted").backend == "shifted"

    def test_amcconfig_rejects_unknown_name(self):
        with pytest.raises(ValueError, match="backend"):
            AMCConfig(backend="hexapod")

    def test_runs_through_run_amc(self, small_cube, shifted_backend):
        reference = run_amc(small_cube, AMCConfig(n_classes=3))
        shifted = run_amc(small_cube,
                          AMCConfig(n_classes=3, backend="shifted"))
        np.testing.assert_array_equal(shifted.mei, reference.mei + 0.25)
        np.testing.assert_array_equal(shifted.labels, reference.labels)

    def test_chunk_parallel_via_default_run_chunk(self, small_cube,
                                                  shifted_backend):
        """A custom backend that only implements run() is chunk-parallel
        for free through the base-class run_chunk."""
        serial = run_amc(small_cube,
                         AMCConfig(n_classes=3, backend="shifted"))
        parallel = run_amc(small_cube,
                           AMCConfig(n_classes=3, backend="shifted",
                                     n_workers=2))
        np.testing.assert_array_equal(parallel.mei, serial.mei)
        np.testing.assert_array_equal(parallel.labels, serial.labels)

    def test_cli_choices_follow_registry(self, shifted_backend):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["classify", "cube.raw", "--backend", "shifted"])
        assert args.backend == "shifted"

    def test_cli_rejects_unregistered_name(self, capsys):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["classify", "cube.raw", "--backend", "hexapod"])
        assert "invalid choice" in capsys.readouterr().err
