"""Tests for the chunk-parallel AMC morphological stage and run_amc
wiring."""

import numpy as np
import pytest

from repro.core import AMCConfig, run_amc
from repro.core.amc_gpu import gpu_morphological_stage
from repro.core.mei import mei_reference
from repro.core.naive import mei_naive
from repro.errors import ShapeError, StreamError
from repro.parallel import parallel_morphological_stage
from repro.profiling import Profiler


class TestParallelMorphologicalStage:
    @pytest.mark.parametrize("n_workers", [1, 2, 3])
    def test_reference_bit_identical(self, small_cube, n_workers):
        whole = mei_reference(small_cube, 1)
        mei, ero, dil, gpu_out = parallel_morphological_stage(
            small_cube, 1, backend="reference", n_workers=n_workers)
        np.testing.assert_array_equal(mei, whole.mei)
        np.testing.assert_array_equal(ero, whole.erosion_index)
        np.testing.assert_array_equal(dil, whole.dilation_index)
        assert gpu_out is None

    def test_reference_radius_two(self, small_cube):
        whole = mei_reference(small_cube, 2)
        mei, ero, dil, _ = parallel_morphological_stage(
            small_cube, 2, backend="reference", n_workers=2)
        np.testing.assert_array_equal(mei, whole.mei)
        np.testing.assert_array_equal(ero, whole.erosion_index)

    def test_naive_bit_identical(self, tiny_cube):
        whole = mei_naive(tiny_cube, 1)
        mei, ero, dil, _ = parallel_morphological_stage(
            tiny_cube, 1, backend="naive", n_workers=2)
        np.testing.assert_array_equal(mei, whole.mei)
        np.testing.assert_array_equal(ero, whole.erosion_index)
        np.testing.assert_array_equal(dil, whole.dilation_index)

    def test_gpu_bit_identical_and_accounted(self, small_cube):
        whole = gpu_morphological_stage(small_cube, 1)
        mei, ero, dil, gpu_out = parallel_morphological_stage(
            small_cube, 1, backend="gpu", n_workers=2)
        np.testing.assert_array_equal(mei, whole.mei)
        np.testing.assert_array_equal(ero, whole.erosion_index)
        np.testing.assert_array_equal(dil, whole.dilation_index)
        # accounting is summed across the per-chunk boards: more total
        # launches than the single-board run (halo work is redundant)
        assert gpu_out.chunk_count >= 2
        assert gpu_out.counters["kernel_launches"] \
            > whole.counters["kernel_launches"]
        assert gpu_out.modeled_time_s > 0.0
        assert gpu_out.time_by_kernel

    def test_more_chunks_than_workers(self, small_cube):
        whole = mei_reference(small_cube, 1)
        mei, _, _, _ = parallel_morphological_stage(
            small_cube, 1, backend="reference", n_workers=2, n_chunks=5)
        np.testing.assert_array_equal(mei, whole.mei)

    def test_profiler_records_chunks(self, small_cube):
        profiler = Profiler()
        parallel_morphological_stage(small_cube, 1, backend="reference",
                                     n_workers=2, profiler=profiler)
        records = profiler.chunk_records
        assert len(records) == 2
        assert sum(r.core_lines for r in records) == small_cube.shape[0]
        for r in records:
            assert r.halo == 1
            assert r.compute_s > 0.0

    def test_bad_backend_rejected(self, tiny_cube):
        with pytest.raises(StreamError, match="backend"):
            parallel_morphological_stage(tiny_cube, 1, backend="cuda")

    def test_bad_shape_rejected(self):
        with pytest.raises(ShapeError):
            parallel_morphological_stage(np.zeros((4, 4)), 1)


class TestRunAmcParallel:
    def test_reference_backend_identical(self, session_scene):
        scene = session_scene
        serial = run_amc(scene.cube, AMCConfig(n_classes=5),
                         ground_truth=scene.ground_truth)
        parallel = run_amc(scene.cube, AMCConfig(n_classes=5, n_workers=2),
                           ground_truth=scene.ground_truth)
        np.testing.assert_array_equal(parallel.mei, serial.mei)
        np.testing.assert_array_equal(parallel.labels, serial.labels)
        np.testing.assert_array_equal(parallel.abundances,
                                      serial.abundances)
        assert parallel.overall_accuracy == serial.overall_accuracy

    def test_gpu_backend_identical(self, small_cube):
        serial = run_amc(small_cube,
                         AMCConfig(n_classes=3, backend="gpu"))
        parallel = run_amc(small_cube,
                           AMCConfig(n_classes=3, backend="gpu",
                                     n_workers=2))
        np.testing.assert_array_equal(parallel.mei, serial.mei)
        np.testing.assert_array_equal(parallel.labels, serial.labels)
        assert parallel.gpu_output.modeled_time_s > 0.0

    def test_gpu_unmixing_identical_with_merged_accounting(self,
                                                           small_cube):
        config = dict(n_classes=3, backend="gpu", gpu_unmixing=True)
        serial = run_amc(small_cube, AMCConfig(**config))
        parallel = run_amc(small_cube, AMCConfig(**config, n_workers=2))
        np.testing.assert_array_equal(parallel.labels, serial.labels)
        np.testing.assert_allclose(parallel.abundances, serial.abundances)
        # merged accounting covers morphology (per-chunk boards) plus the
        # unmixing device: at least as many launches as serial end-to-end
        assert parallel.gpu_output.counters["kernel_launches"] \
            >= serial.gpu_output.counters["kernel_launches"]

    def test_config_validates_workers(self):
        with pytest.raises(ValueError, match="n_workers"):
            AMCConfig(n_workers=-1)

    def test_workers_zero_means_all_cores(self, tiny_cube):
        serial = run_amc(tiny_cube, AMCConfig(n_classes=2))
        auto = run_amc(tiny_cube, AMCConfig(n_classes=2, n_workers=0))
        np.testing.assert_array_equal(auto.labels, serial.labels)
