"""Tests for the worker-pool chunked executor (repro.parallel.pool)."""

import os

import numpy as np
import pytest

from repro import faults
from repro.errors import StreamError
from repro.faults import FaultInjector, FaultSpec
from repro.gpu import shaderir as ir
from repro.parallel import resolve_workers, run_chunked_parallel
from repro.parallel import pool as pool_mod
from repro.profiling import Profiler
from repro.resilience import RetryPolicy
from repro.stream import (
    CpuExecutor,
    GpuExecutor,
    StageGraph,
    Step,
    Stream,
    run_chunked,
)
from repro.stream.kernel import StreamKernel, stencil_sum


def _blur3():
    offsets = tuple((dy, dx) for dy in (-1, 0, 1) for dx in (-1, 0, 1))
    return stencil_sum("blur3", offsets)


@pytest.fixture()
def two_stage_stencil():
    """Two chained 3x3 stencils: total dependency radius 2."""
    return StageGraph("double-blur", inputs=("x",),
                      steps=(Step(_blur3(), {"a": "x"}, "once"),
                             Step(_blur3(), {"a": "once"}, "twice")),
                      outputs=("twice",))


class TestResolveWorkers:
    def test_zero_means_all_cores(self):
        assert resolve_workers(0) >= 1

    def test_positive_passthrough(self):
        assert resolve_workers(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(StreamError, match="n_workers"):
            resolve_workers(-1)


class TestBitIdentical:
    """Parallel results must equal serial results exactly."""

    @pytest.mark.parametrize("n_workers", [2, 3])
    @pytest.mark.parametrize("max_ext_lines", [9, 14])
    def test_cpu_executor(self, two_stage_stencil, rng, n_workers,
                          max_ext_lines):
        x = Stream.from_scalar("x", rng.uniform(size=(30, 7)))
        serial = run_chunked(two_stage_stencil, {"x": x}, CpuExecutor(),
                             max_ext_lines=max_ext_lines)
        parallel = run_chunked_parallel(
            two_stage_stencil, {"x": x}, CpuExecutor(),
            max_ext_lines=max_ext_lines, n_workers=n_workers)
        np.testing.assert_array_equal(parallel["twice"].data,
                                      serial["twice"].data)

    def test_gpu_executor(self, two_stage_stencil, rng):
        x = Stream.from_scalar("x", rng.uniform(size=(24, 6)))
        whole = GpuExecutor().run(two_stage_stencil, {"x": x})
        parallel = run_chunked_parallel(
            two_stage_stencil, {"x": x}, GpuExecutor(),
            max_ext_lines=10, n_workers=2)
        np.testing.assert_array_equal(parallel["twice"].data,
                                      whole["twice"].data)

    def test_multiple_outputs_stitched(self, rng):
        blur = _blur3()
        graph = StageGraph("multi", inputs=("x",),
                           steps=(Step(blur, {"a": "x"}, "a1"),
                                  Step(blur, {"a": "a1"}, "a2")),
                           outputs=("a1", "a2"))
        x = Stream.from_scalar("x", rng.uniform(size=(20, 5)))
        whole = CpuExecutor().run(graph, {"x": x})
        parallel = run_chunked_parallel(graph, {"x": x}, CpuExecutor(),
                                        max_ext_lines=8, n_workers=2)
        for name in ("a1", "a2"):
            np.testing.assert_array_equal(parallel[name].data,
                                          whole[name].data)

    def test_serial_n_workers_one(self, two_stage_stencil, rng):
        """n_workers=1 takes the in-process path, same results."""
        x = Stream.from_scalar("x", rng.uniform(size=(30, 7)))
        serial = run_chunked(two_stage_stencil, {"x": x}, CpuExecutor(),
                             max_ext_lines=9)
        parallel = run_chunked_parallel(
            two_stage_stencil, {"x": x}, CpuExecutor(),
            max_ext_lines=9, n_workers=1)
        np.testing.assert_array_equal(parallel["twice"].data,
                                      serial["twice"].data)


class TestRejection:
    def test_dependent_fetch_rejected(self):
        """Dependent-fetch graphs cannot be chunked — parallel included."""
        k = StreamKernel.from_expression(
            "dyn", ir.TexFetchDyn("a", ir.FragCoord()), inputs=("a",))
        graph = StageGraph("d", inputs=("x",),
                           steps=(Step(k, {"a": "x"}, "o"),),
                           outputs=("o",))
        x = Stream.zeros("x", 16, 4)
        with pytest.raises(StreamError, match="dependent"):
            run_chunked_parallel(graph, {"x": x}, CpuExecutor(),
                                 max_ext_lines=8, n_workers=2)

    def test_empty_inputs_rejected(self, two_stage_stencil):
        with pytest.raises(StreamError, match="at least one input"):
            run_chunked_parallel(two_stage_stencil, {}, CpuExecutor(),
                                 max_ext_lines=8, n_workers=2)

    def test_insufficient_budget_raises(self, two_stage_stencil, rng):
        x = Stream.from_scalar("x", rng.uniform(size=(30, 7)))
        with pytest.raises(StreamError):
            run_chunked_parallel(two_stage_stencil, {"x": x},
                                 CpuExecutor(), max_ext_lines=4,
                                 n_workers=2)


class TestFallback:
    def test_pool_unavailable_falls_back_to_serial(self, two_stage_stencil,
                                                   rng, monkeypatch):
        """A host without working pools still gets correct results."""
        def broken_pool(*args, **kwargs):
            raise OSError("no process spawning here")

        monkeypatch.setattr(pool_mod, "_make_pool", broken_pool)
        x = Stream.from_scalar("x", rng.uniform(size=(30, 7)))
        serial = run_chunked(two_stage_stencil, {"x": x}, CpuExecutor(),
                             max_ext_lines=9)
        parallel = run_chunked_parallel(
            two_stage_stencil, {"x": x}, CpuExecutor(),
            max_ext_lines=9, n_workers=4)
        np.testing.assert_array_equal(parallel["twice"].data,
                                      serial["twice"].data)

    def test_pool_unavailable_records_recovery_event(self, two_stage_stencil,
                                                     rng, monkeypatch):
        monkeypatch.setattr(
            pool_mod, "_make_pool",
            lambda *a, **k: (_ for _ in ()).throw(OSError("nope")))
        x = Stream.from_scalar("x", rng.uniform(size=(30, 7)))
        profiler = Profiler()
        run_chunked_parallel(two_stage_stencil, {"x": x}, CpuExecutor(),
                             max_ext_lines=9, n_workers=4,
                             profiler=profiler)
        events = [e for e in profiler.event_records
                  if e.kind == "pool_recovery"]
        assert len(events) == 1
        assert events[0].chunk_index == -1      # whole-pool failure
        assert "OSError" in events[0].detail


@pytest.fixture()
def _clean_faults():
    faults.uninstall()
    faults.set_attempt(0)
    yield
    faults.uninstall()
    faults.set_attempt(0)


class TestResilience:
    """Injected faults must never change results — only the schedule.

    The injector is installed in the parent; fork-based pool workers
    inherit it, so worker-side execution sees the same fault plan.
    """

    def _serial(self, graph, x):
        return run_chunked(graph, {"x": x}, CpuExecutor(),
                           max_ext_lines=9)["twice"].data

    def test_worker_crash_recovers_bit_identical(self, two_stage_stencil,
                                                 rng, _clean_faults):
        """A worker dying mid-task (os._exit) loses only its chunk."""
        x = Stream.from_scalar("x", rng.uniform(size=(30, 7)))
        serial = self._serial(two_stage_stencil, x)
        faults.install(FaultInjector(
            [FaultSpec(kind="worker_crash", index=0, attempt=0)]))
        profiler = Profiler()
        parallel = run_chunked_parallel(
            two_stage_stencil, {"x": x}, CpuExecutor(),
            max_ext_lines=9, n_workers=2, profiler=profiler,
            policy=RetryPolicy(chunk_timeout_s=2.0))
        np.testing.assert_array_equal(parallel["twice"].data, serial)
        assert any(e.kind == "pool_recovery" and e.chunk_index == 0
                   for e in profiler.event_records)
        recovered = [r for r in profiler.chunk_records if r.index == 0]
        assert recovered[0].worker == os.getpid()   # recomputed in-process
        assert recovered[0].retries >= 1

    def test_injected_timeout_recovers_bit_identical(self, two_stage_stencil,
                                                     rng, _clean_faults):
        """A stalled chunk trips the deadline and is recomputed."""
        x = Stream.from_scalar("x", rng.uniform(size=(30, 7)))
        serial = self._serial(two_stage_stencil, x)
        faults.install(FaultInjector(
            [FaultSpec(kind="timeout", index=1, attempt=0, sleep_s=20.0)]))
        profiler = Profiler()
        parallel = run_chunked_parallel(
            two_stage_stencil, {"x": x}, CpuExecutor(),
            max_ext_lines=9, n_workers=2, profiler=profiler,
            policy=RetryPolicy(chunk_timeout_s=1.0))
        np.testing.assert_array_equal(parallel["twice"].data, serial)
        assert any(e.kind == "pool_recovery" and e.chunk_index == 1
                   for e in profiler.event_records)

    def test_transient_fault_retried_worker_side(self, two_stage_stencil,
                                                 rng, _clean_faults):
        x = Stream.from_scalar("x", rng.uniform(size=(30, 7)))
        serial = self._serial(two_stage_stencil, x)
        faults.install(FaultInjector(
            [FaultSpec(kind="transient", index=2, attempt=0)]))
        profiler = Profiler()
        parallel = run_chunked_parallel(
            two_stage_stencil, {"x": x}, CpuExecutor(),
            max_ext_lines=9, n_workers=2, profiler=profiler,
            policy=RetryPolicy(max_retries=1))
        np.testing.assert_array_equal(parallel["twice"].data, serial)
        retried = [r for r in profiler.chunk_records if r.index == 2]
        assert retried[0].retries == 1
        assert retried[0].worker != os.getpid()     # stayed in the pool

    def test_transient_fault_retried_serially(self, two_stage_stencil,
                                              rng, _clean_faults):
        """The serial path runs the same retry loop in-process."""
        x = Stream.from_scalar("x", rng.uniform(size=(30, 7)))
        serial = self._serial(two_stage_stencil, x)
        faults.install(FaultInjector(
            [FaultSpec(kind="transient", index=2, attempt=0)]))
        parallel = run_chunked_parallel(
            two_stage_stencil, {"x": x}, CpuExecutor(),
            max_ext_lines=9, n_workers=1,
            policy=RetryPolicy(max_retries=1))
        np.testing.assert_array_equal(parallel["twice"].data, serial)

    def test_exhausted_retries_raise(self, two_stage_stencil, rng,
                                     _clean_faults):
        x = Stream.from_scalar("x", rng.uniform(size=(30, 7)))
        faults.install(FaultInjector(
            [FaultSpec(kind="transient", index=0, attempt=None)]))
        from repro.errors import TransientFaultError

        with pytest.raises(TransientFaultError):
            run_chunked_parallel(
                two_stage_stencil, {"x": x}, CpuExecutor(),
                max_ext_lines=9, n_workers=1,
                policy=RetryPolicy(max_retries=2))

    def test_oom_degrades_and_stays_bit_identical(self, two_stage_stencil,
                                                  rng, _clean_faults):
        """Injected OOM forces a smaller-chunk re-plan, same results."""
        x = Stream.from_scalar("x", rng.uniform(size=(30, 7)))
        serial = self._serial(two_stage_stencil, x)
        faults.install(FaultInjector(
            [FaultSpec(kind="gpu_oom", attempt=None, ext_lines_above=8)]))
        profiler = Profiler()
        parallel = run_chunked_parallel(
            two_stage_stencil, {"x": x}, CpuExecutor(),
            max_ext_lines=9, n_workers=1, profiler=profiler)
        np.testing.assert_array_equal(parallel["twice"].data, serial)
        degrades = [e for e in profiler.event_records
                    if e.kind == "oom_degrade"]
        assert len(degrades) == 1
        assert "9 -> 5" in degrades[0].detail   # halo 2: floor is 5

    def test_oom_below_floor_raises(self, two_stage_stencil, rng,
                                    _clean_faults):
        """Degradation bottoms out at the halo-imposed minimum."""
        from repro.errors import GpuOutOfMemoryError

        x = Stream.from_scalar("x", rng.uniform(size=(30, 7)))
        faults.install(FaultInjector(
            [FaultSpec(kind="gpu_oom", attempt=None, ext_lines_above=4)]))
        with pytest.raises(GpuOutOfMemoryError):
            run_chunked_parallel(
                two_stage_stencil, {"x": x}, CpuExecutor(),
                max_ext_lines=9, n_workers=1)


class TestProfiling:
    def test_one_record_per_chunk(self, two_stage_stencil, rng):
        x = Stream.from_scalar("x", rng.uniform(size=(30, 7)))
        profiler = Profiler()
        run_chunked_parallel(two_stage_stencil, {"x": x}, CpuExecutor(),
                             max_ext_lines=9, n_workers=2,
                             profiler=profiler)
        records = profiler.chunk_records
        assert len(records) == 6  # 30 lines / (9 - 2*2) core lines
        assert sorted(r.index for r in records) == list(range(6))
        assert sum(r.core_lines for r in records) == 30
        for r in records:
            assert r.ext_lines >= r.core_lines
            assert r.halo == 2
            assert r.wall_s >= 0.0

    def test_gpu_records_carry_transfer_split(self, two_stage_stencil, rng):
        x = Stream.from_scalar("x", rng.uniform(size=(24, 6)))
        profiler = Profiler()
        run_chunked_parallel(two_stage_stencil, {"x": x}, GpuExecutor(),
                             max_ext_lines=10, n_workers=2,
                             profiler=profiler)
        for r in profiler.chunk_records:
            assert r.upload_s > 0.0
            assert r.compute_s > 0.0
            assert r.download_s > 0.0

    def test_cpu_records_have_no_bus_time(self, two_stage_stencil, rng):
        x = Stream.from_scalar("x", rng.uniform(size=(30, 7)))
        profiler = Profiler()
        run_chunked_parallel(two_stage_stencil, {"x": x}, CpuExecutor(),
                             max_ext_lines=9, n_workers=1,
                             profiler=profiler)
        for r in profiler.chunk_records:
            assert r.upload_s == 0.0 and r.download_s == 0.0
            assert r.compute_s > 0.0
