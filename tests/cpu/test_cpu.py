"""Tests for the CPU baselines and their timing models."""

import numpy as np
import pytest

from repro.core import mei_reference
from repro.cpu import (
    GCC40,
    ICC90,
    PENTIUM4_NORTHWOOD,
    PRESCOTT_660,
    CompilerModel,
    cpu_morphological_stage,
    cpu_time_model,
)
from repro.cpu.spec import CpuSpec
from repro.errors import DeviceError, ShapeError


class TestSpecs:
    def test_paper_table2_values(self):
        assert PENTIUM4_NORTHWOOD.clock_hz == 2.8e9
        assert PENTIUM4_NORTHWOOD.year == 2003
        assert PENTIUM4_NORTHWOOD.l2_bytes == 512 * 1024
        assert PRESCOTT_660.clock_hz == 3.4e9
        assert PRESCOTT_660.l2_bytes == 2 * 1024 ** 2
        assert PRESCOTT_660.fsb_bandwidth == PENTIUM4_NORTHWOOD.fsb_bandwidth \
            == 6.4e9

    def test_compiler_models(self):
        assert not GCC40.vectorized
        assert ICC90.vectorized
        assert ICC90.flops_per_cycle(PENTIUM4_NORTHWOOD) \
            > GCC40.flops_per_cycle(PENTIUM4_NORTHWOOD)

    def test_invalid_spec(self):
        with pytest.raises(DeviceError):
            CpuSpec("x", 2000, clock_hz=0, fsb_bandwidth=1e9,
                    l2_bytes=1, memory_bytes=1)

    def test_with_override(self):
        fast = PENTIUM4_NORTHWOOD.with_(clock_hz=5e9)
        assert fast.clock_hz == 5e9 and fast.name == PENTIUM4_NORTHWOOD.name


class TestTimeModel:
    def test_roofline_max(self):
        t = cpu_time_model(1e9, 1e6, PENTIUM4_NORTHWOOD, GCC40)
        assert t["total_s"] == max(t["compute_s"], t["memory_s"])

    def test_vectorized_compute_faster(self):
        gcc = cpu_time_model(1e9, 0.0, PENTIUM4_NORTHWOOD, GCC40)
        icc = cpu_time_model(1e9, 0.0, PENTIUM4_NORTHWOOD, ICC90)
        assert icc["compute_s"] < gcc["compute_s"]

    def test_memory_bound_limits_vectorization_gain(self):
        """The paper's ~1.6x (not 4x) icc gain: with realistic traffic the
        vectorized build hits the FSB."""
        flops, traffic = 33_000.0, 124_000.0  # per pixel at N=216
        gcc = cpu_time_model(flops, traffic, PENTIUM4_NORTHWOOD, GCC40)
        icc = cpu_time_model(flops, traffic, PENTIUM4_NORTHWOOD, ICC90)
        gain = gcc["total_s"] / icc["total_s"]
        assert 1.2 < gain < 3.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            cpu_time_model(-1.0, 0.0, PENTIUM4_NORTHWOOD, GCC40)


class TestCpuMorphologicalStage:
    @pytest.fixture(scope="class")
    def cube(self):
        return np.random.default_rng(7).uniform(0.05, 1.0, (9, 8, 11))

    def test_scalar_build_matches_reference(self, cube):
        out = cpu_morphological_stage(cube, compiler=GCC40)
        ref = mei_reference(cube)
        np.testing.assert_allclose(out.morph.mei, ref.mei, rtol=1e-9,
                                   atol=1e-12)
        np.testing.assert_allclose(out.morph.cumulative, ref.cumulative,
                                   rtol=1e-12)
        # band-by-band accumulation can flip argmin on exact ties, so
        # demand agreement only where the decision is not a tie
        agree = (out.morph.erosion_index == ref.erosion_index).mean()
        assert agree > 0.97

    def test_simd_build_matches_reference(self, cube):
        out = cpu_morphological_stage(cube, compiler=ICC90)
        ref = mei_reference(cube)
        np.testing.assert_allclose(out.morph.mei, ref.mei, rtol=1e-12)

    def test_scalar_and_simd_agree(self, cube):
        scalar = cpu_morphological_stage(cube, implementation="scalar")
        simd = cpu_morphological_stage(cube, implementation="simd")
        np.testing.assert_allclose(scalar.morph.cumulative,
                                   simd.morph.cumulative, rtol=1e-12)

    def test_default_implementation_follows_build(self, cube):
        gcc = cpu_morphological_stage(cube, compiler=GCC40)
        icc = cpu_morphological_stage(cube, compiler=ICC90)
        assert gcc.compiler is GCC40 and icc.compiler is ICC90
        assert gcc.modeled_time_s > icc.modeled_time_s

    def test_prescott_gcc_close_to_northwood(self, cube):
        """The paper's 'below 10%' generation-over-generation claim."""
        p4 = cpu_morphological_stage(cube, spec=PENTIUM4_NORTHWOOD,
                                     compiler=GCC40)
        prescott = cpu_morphological_stage(cube, spec=PRESCOTT_660,
                                           compiler=GCC40)
        gain = p4.modeled_time_s / prescott.modeled_time_s
        assert 1.0 < gain < 1.10

    def test_modeled_time_is_roofline(self, cube):
        out = cpu_morphological_stage(cube)
        assert out.modeled_time_s == max(out.compute_time_s,
                                         out.memory_time_s)

    def test_invalid_implementation(self, cube):
        with pytest.raises(ValueError):
            cpu_morphological_stage(cube, implementation="avx512")

    def test_requires_3d(self):
        with pytest.raises(ShapeError):
            cpu_morphological_stage(np.ones((4, 4)))

    def test_workload_attached(self, cube):
        out = cpu_morphological_stage(cube)
        assert out.workload.pixels == 72
        assert out.workload.bands == 11
