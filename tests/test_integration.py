"""Whole-workflow integration test.

One scenario, end to end, the way a downstream user would chain the
library: generate a scene → write it to disk in ENVI format → reopen it
memory-mapped → run the full AMC pipeline on the GPU backend with
device-side unmixing → evaluate against ground truth → export every
artefact (maps, Cg kernels, device timeline).  Each step's output feeds
the next; nothing is mocked.
"""

import json
import os

import numpy as np
import pytest

from repro.core import AMCConfig, run_amc
from repro.gpu.cg import emit_cg
from repro.hsi import generate_minimal_scene
from repro.hsi.envi import read_cube, write_cube
from repro.viz import write_class_map_ppm, write_pgm


@pytest.fixture(scope="module")
def workdir(tmp_path_factory):
    return tmp_path_factory.mktemp("workflow")


@pytest.fixture(scope="module")
def scene():
    return generate_minimal_scene(40, 40, band_count=32, seed=77)


@pytest.fixture(scope="module")
def cube_on_disk(scene, workdir):
    path = str(workdir / "scene.raw")
    write_cube(scene.cube, path)
    return path


@pytest.fixture(scope="module")
def result(scene, cube_on_disk):
    cube = read_cube(cube_on_disk, mmap=True)
    return run_amc(cube, AMCConfig(n_classes=6, backend="gpu",
                                   gpu_unmixing=True),
                   ground_truth=scene.ground_truth,
                   class_names=scene.class_names)


class TestWorkflow:
    def test_disk_roundtrip_preserved_data(self, scene, cube_on_disk):
        reloaded = read_cube(cube_on_disk, mmap=True)
        np.testing.assert_array_equal(reloaded.as_bip(),
                                      scene.cube.as_bip())
        np.testing.assert_allclose(reloaded.wavelengths_nm,
                                   scene.cube.wavelengths_nm, atol=0.01)

    def test_classification_quality(self, result):
        assert result.report.overall_accuracy > 80.0
        assert result.report.kappa > 0.6

    def test_device_accounting_covers_both_stages(self, result):
        profile = result.gpu_output.time_by_kernel
        assert any(k.startswith("cross_") for k in profile)  # morphology
        assert "copy" in profile                             # unmixing
        assert result.gpu_output.modeled_time_s > 0

    def test_artefact_export(self, result, scene, workdir):
        mei_path = write_pgm(result.mei, str(workdir / "mei.pgm"))
        cls_path = write_class_map_ppm(result.labels,
                                       str(workdir / "classes.ppm"),
                                       n_classes=scene.n_classes)
        assert os.path.getsize(mei_path) > 40 * 40
        assert os.path.getsize(cls_path) > 3 * 40 * 40

    def test_cg_export_of_hot_kernel(self, result, workdir):
        """Export the Cg source of the pipeline's most expensive kernel."""
        from repro.core.amc_gpu import _kernels
        from repro.spectral.normalize import SpectralEpsilon

        profile = result.gpu_output.time_by_kernel
        hottest = max(profile, key=profile.get)
        widths = tuple(sorted({int(n.split("_w")[-1])
                               for n in profile if "_w" in n}))
        shaders = _kernels(1, SpectralEpsilon.get(), widths or (1,))
        src = emit_cg(shaders[hottest])
        path = workdir / "hottest.cg"
        path.write_text(src)
        assert hottest.replace("-", "_") in src
        assert src.count("{") == src.count("}")

    def test_timeline_export(self, scene, workdir):
        from repro.core.amc_gpu import gpu_morphological_stage
        from repro.gpu import VirtualGPU
        from repro.gpu.trace import export_chrome_trace

        device = VirtualGPU()
        gpu_morphological_stage(scene.cube.as_bip(), device=device)
        path = export_chrome_trace(device.counters,
                                   str(workdir / "timeline.json"))
        with open(path) as fh:
            trace = json.load(fh)
        assert trace["otherData"]["modeled_total_ms"] > 0
        assert len(trace["traceEvents"]) \
            == device.counters.kernel_launch_count \
            + len(device.counters.transfers)
