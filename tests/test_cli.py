"""Tests for the command-line interface (driven through main())."""

import os

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "x.raw"])
        assert args.lines == 128 and args.bands == 224

    def test_classify_backend_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["classify", "x.raw",
                                       "--backend", "cuda"])

    def test_bench_table_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--table", "3"])

    def test_classify_workers_default_serial(self):
        args = build_parser().parse_args(["classify", "x.raw"])
        assert args.workers == 1 and args.profile is None

    def test_classify_profile_flag_forms(self):
        bare = build_parser().parse_args(["classify", "x.raw", "--profile"])
        assert bare.profile == "-"
        pathed = build_parser().parse_args(
            ["classify", "x.raw", "--profile", "out.json"])
        assert pathed.profile == "out.json"


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "GeForce 7800 GTX" in out
        assert "Pentium 4" in out

    def test_bench(self, capsys):
        assert main(["bench", "--table", "5"]) == 0
        out = capsys.readouterr().out
        assert "Table 5" in out and "icc" in out
        assert "speedup" in out

    def test_generate_then_classify(self, tmp_path, capsys):
        path = str(tmp_path / "scene.raw")
        assert main(["generate", path, "--lines", "24", "--samples", "24",
                     "--bands", "32", "--seed", "3"]) == 0
        assert os.path.exists(path)
        assert os.path.exists(path + ".hdr")
        assert os.path.exists(path + ".gt.ppm")
        gt = np.load(path + ".gt.npy")
        assert gt.shape == (24, 24)

        assert main(["classify", path, "--classes", "6"]) == 0
        out = capsys.readouterr().out
        assert "overall accuracy" in out
        assert os.path.exists(path + ".mei.pgm")
        assert os.path.exists(path + ".classes.ppm")

    def test_classify_gpu_backend_reports_device_time(self, tmp_path,
                                                      capsys):
        path = str(tmp_path / "scene.raw")
        main(["generate", path, "--lines", "16", "--samples", "16",
              "--bands", "24", "--seed", "4"])
        assert main(["classify", path, "--classes", "4",
                     "--backend", "gpu"]) == 0
        out = capsys.readouterr().out
        assert "modeled GPU time" in out

    def test_classify_with_trace(self, tmp_path, capsys):
        import json

        path = str(tmp_path / "scene.raw")
        main(["generate", path, "--lines", "12", "--samples", "12",
              "--bands", "16", "--seed", "5"])
        trace_path = str(tmp_path / "timeline.json")
        assert main(["classify", path, "--classes", "3",
                     "--backend", "gpu", "--trace", trace_path]) == 0
        with open(trace_path) as fh:
            trace = json.load(fh)
        assert trace["traceEvents"]
        out = capsys.readouterr().out
        assert "device timeline" in out

    def test_trace_requires_gpu_backend(self, tmp_path, capsys):
        path = str(tmp_path / "scene.raw")
        main(["generate", path, "--lines", "12", "--samples", "12",
              "--bands", "16", "--seed", "5"])
        assert main(["classify", path, "--classes", "3",
                     "--trace", str(tmp_path / "t.json")]) == 2

    def test_classify_workers_with_profile_text(self, tmp_path, capsys):
        path = str(tmp_path / "scene.raw")
        main(["generate", path, "--lines", "24", "--samples", "16",
              "--bands", "24", "--seed", "6"])
        capsys.readouterr()
        assert main(["classify", path, "--classes", "4",
                     "--workers", "2", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "workers: 2" in out
        assert "morphology" in out
        assert "upload" in out          # per-chunk stream-phase table

    def test_classify_profile_json(self, tmp_path, capsys):
        import json

        path = str(tmp_path / "scene.raw")
        main(["generate", path, "--lines", "16", "--samples", "16",
              "--bands", "24", "--seed", "7"])
        profile_path = str(tmp_path / "profile.json")
        assert main(["classify", path, "--classes", "3",
                     "--backend", "gpu", "--workers", "2",
                     "--profile", profile_path]) == 0
        with open(profile_path) as fh:
            data = json.load(fh)
        assert data["meta"]["backend"] == "gpu"
        assert [s["name"] for s in data["stages"]] == [
            "morphology", "endmembers", "unmixing", "classification",
            "evaluation"]
        assert data["chunks"] and data["chunks"][0]["upload_s"] > 0
        out = capsys.readouterr().out
        assert "profile report" in out

    def test_classify_workers_matches_serial_outputs(self, tmp_path,
                                                     capsys):
        path = str(tmp_path / "scene.raw")
        main(["generate", path, "--lines", "20", "--samples", "16",
              "--bands", "24", "--seed", "8"])
        assert main(["classify", path, "--classes", "4"]) == 0
        serial = capsys.readouterr().out
        assert main(["classify", path, "--classes", "4",
                     "--workers", "3"]) == 0
        parallel = capsys.readouterr().out
        accuracy = [line for line in serial.splitlines()
                    if "overall accuracy" in line]
        assert accuracy and accuracy[0] in parallel

    def test_classify_without_ground_truth(self, tmp_path, capsys):
        from repro.hsi import HyperCube
        from repro.hsi.envi import write_cube

        rng = np.random.default_rng(0)
        cube = HyperCube(rng.uniform(0.1, 1.0, (12, 12, 16))
                         .astype(np.float32))
        path = str(tmp_path / "plain.raw")
        write_cube(cube, path)
        assert main(["classify", path, "--classes", "3"]) == 0
        out = capsys.readouterr().out
        assert "overall accuracy" not in out
        assert os.path.exists(path + ".classes.ppm")


def _write_nan_cube(tmp_path, name="broken.raw"):
    from repro.hsi import HyperCube
    from repro.hsi.envi import write_cube

    rng = np.random.default_rng(1)
    data = rng.uniform(0.1, 1.0, (12, 12, 16)).astype(np.float32)
    data[4, 4, 4] = np.nan
    path = str(tmp_path / name)
    write_cube(HyperCube(data), path)
    return path


class TestRobustnessFlags:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["classify", "x.raw"])
        assert args.retries == 0
        assert args.chunk_timeout_s is None
        assert args.on_error == "raise"
        assert args.path == ["x.raw"]

    def test_on_error_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["classify", "x.raw",
                                       "--on-error", "ignore"])

    def test_classify_with_retry_knobs(self, tmp_path, capsys):
        path = str(tmp_path / "scene.raw")
        main(["generate", path, "--lines", "16", "--samples", "12",
              "--bands", "16", "--seed", "9"])
        assert main(["classify", path, "--classes", "3", "--workers", "2",
                     "--retries", "1", "--chunk-timeout-s", "30"]) == 0
        out = capsys.readouterr().out
        assert "overall accuracy" in out

    def test_batch_classify_writes_all_outputs(self, tmp_path, capsys):
        paths = []
        for i in range(2):
            path = str(tmp_path / f"scene{i}.raw")
            main(["generate", path, "--lines", "14", "--samples", "12",
                  "--bands", "16", "--seed", str(20 + i)])
            paths.append(path)
        capsys.readouterr()
        assert main(["classify", *paths, "--classes", "3"]) == 0
        for path in paths:
            assert os.path.exists(path + ".mei.pgm")
            assert os.path.exists(path + ".classes.ppm")

    def test_batch_trace_rejected(self, tmp_path, capsys):
        assert main(["classify", "a.raw", "b.raw", "--classes", "3",
                     "--trace", str(tmp_path / "t.json")]) == 2
        assert "single cube" in capsys.readouterr().err

    def test_batch_on_error_skip(self, tmp_path, capsys):
        good = str(tmp_path / "good.raw")
        main(["generate", good, "--lines", "14", "--samples", "12",
              "--bands", "16", "--seed", "30"])
        bad = _write_nan_cube(tmp_path)
        capsys.readouterr()
        assert main(["classify", good, bad, "--classes", "3",
                     "--on-error", "skip"]) == 0
        captured = capsys.readouterr()
        assert "skipped" in captured.err
        assert "NonFiniteInputError" in captured.err
        assert os.path.exists(good + ".mei.pgm")
        assert not os.path.exists(bad + ".mei.pgm")

    def test_batch_on_error_collect_reports_failure(self, tmp_path,
                                                    capsys):
        good = str(tmp_path / "good.raw")
        main(["generate", good, "--lines", "14", "--samples", "12",
              "--bands", "16", "--seed", "31"])
        bad = _write_nan_cube(tmp_path)
        capsys.readouterr()
        assert main(["classify", good, bad, "--classes", "3",
                     "--on-error", "collect"]) == 0
        assert "failed" in capsys.readouterr().err

    def test_batch_all_failures_exit_nonzero(self, tmp_path, capsys):
        bad_a = _write_nan_cube(tmp_path, "a.raw")
        bad_b = _write_nan_cube(tmp_path, "b.raw")
        assert main(["classify", bad_a, bad_b, "--classes", "3",
                     "--on-error", "skip"]) == 1

    def test_batch_profile_reports_batch_errors(self, tmp_path, capsys):
        good = str(tmp_path / "good.raw")
        main(["generate", good, "--lines", "14", "--samples", "12",
              "--bands", "16", "--seed", "32"])
        bad = _write_nan_cube(tmp_path)
        capsys.readouterr()
        assert main(["classify", good, bad, "--classes", "3",
                     "--on-error", "skip", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "on_error: skip" in out
        assert "batch_error" in out


class TestServingCommands:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.socket == "/tmp/repro-amc.sock"
        assert args.workers == 2 and args.queue_size == 16
        assert args.cache_entries == 64 and args.cache_mb == 256

    def test_submit_parser_defaults(self):
        args = build_parser().parse_args(["submit", "x.raw"])
        assert args.path == "x.raw"
        assert not args.no_wait and not args.profile
        assert not args.shutdown

    def test_serve_submit_round_trip(self, tmp_path, capsys):
        """The worked CLI session from docs/serving.md, in-process: a
        cold submit executes, its duplicate is a cache hit, shutdown
        stops the server."""
        import threading
        import time as _time

        path = str(tmp_path / "scene.raw")
        main(["generate", path, "--lines", "16", "--samples", "16",
              "--bands", "24", "--seed", "41"])
        sock = str(tmp_path / "amc.sock")
        rc = {}
        server = threading.Thread(
            target=lambda: rc.update(serve=main(
                ["serve", "--socket", sock, "--workers", "1"])))
        server.start()
        try:
            for _ in range(200):
                if os.path.exists(sock):
                    break
                _time.sleep(0.05)
            capsys.readouterr()
            assert main(["submit", path, "--socket", sock,
                         "--classes", "4"]) == 0
            cold = capsys.readouterr().out
            assert "[executed" in cold
            assert "result sha256" in cold
            assert main(["submit", path, "--socket", sock,
                         "--classes", "4"]) == 0
            warm = capsys.readouterr().out
            assert "[cache]" in warm
        finally:
            assert main(["submit", "--shutdown", "--socket", sock]) == 0
            server.join(timeout=30)
        assert rc["serve"] == 0
        sha = [line for line in cold.splitlines() if "sha256" in line]
        assert sha and sha[0] in warm

    def test_submit_requires_path_unless_shutdown(self, capsys):
        assert main(["submit"]) == 2
        assert "path" in capsys.readouterr().err

    def test_durability_parser_defaults(self):
        serve = build_parser().parse_args(["serve"])
        assert serve.state_dir is None
        assert serve.watchdog_deadline_s is None
        submit = build_parser().parse_args(["submit", "x.raw"])
        assert submit.retry_budget_s == 0.0
        assert not submit.health
        serve = build_parser().parse_args(
            ["serve", "--state-dir", "/tmp/s",
             "--watchdog-deadline-s", "5"])
        assert serve.state_dir == "/tmp/s"
        assert serve.watchdog_deadline_s == 5.0
        submit = build_parser().parse_args(
            ["submit", "--health", "--retry-budget-s", "30"])
        assert submit.health and submit.retry_budget_s == 30.0

    def test_serve_durable_restart_and_health(self, tmp_path, capsys):
        """The crash-recovery walkthrough from docs/robustness.md,
        in-process: a durable server survives a restart (clean here;
        the SIGKILL variant is tests/serving/test_chaos_recovery.py),
        serves the old result from the disk tier, and answers
        --health with a JSON snapshot.  The late-started second server
        also exercises --retry-budget-s riding through connection
        errors."""
        import json as _json
        import threading
        import time as _time

        path = str(tmp_path / "scene.raw")
        main(["generate", path, "--lines", "16", "--samples", "16",
              "--bands", "24", "--seed", "41"])
        sock = str(tmp_path / "amc.sock")
        state = str(tmp_path / "state")

        def serve_in_thread():
            rc = {}
            thread = threading.Thread(
                target=lambda: rc.update(serve=main(
                    ["serve", "--socket", sock, "--workers", "1",
                     "--state-dir", state])))
            thread.start()
            for _ in range(200):
                if os.path.exists(sock):
                    break
                _time.sleep(0.05)
            return thread, rc

        server, rc = serve_in_thread()
        try:
            capsys.readouterr()
            assert main(["submit", path, "--socket", sock,
                         "--classes", "4"]) == 0
            cold = capsys.readouterr().out
            assert "[executed" in cold
            assert main(["submit", "--health", "--socket", sock]) == 0
            health = _json.loads(capsys.readouterr().out)
            assert health["journal"]["appended"] == 3
            assert health["cache"]["disk"]["insertions"] == 1
        finally:
            assert main(["submit", "--shutdown", "--socket", sock]) == 0
            server.join(timeout=30)
        assert rc["serve"] == 0

        # restart on the same state dir; the client outlives the gap
        # because its retry budget covers the connection errors
        submit_rc = {}
        client = threading.Thread(
            target=lambda: submit_rc.update(rc=main(
                ["submit", path, "--socket", sock, "--classes", "4",
                 "--retry-budget-s", "30"])))
        client.start()
        _time.sleep(0.3)                    # client retries into the void
        server, rc = serve_in_thread()
        try:
            client.join(timeout=30)
            assert submit_rc["rc"] == 0
        finally:
            assert main(["submit", "--shutdown", "--socket", sock]) == 0
            server.join(timeout=30)
        out = capsys.readouterr().out
        assert "[cache]" in out             # served from the disk tier
        sha_cold = [line for line in cold.splitlines()
                    if "sha256" in line]
        assert sha_cold and sha_cold[0] in out


class TestDetectReduceCommands:
    """The registry-sourced ``detect`` and ``reduce`` subcommands."""

    @pytest.fixture()
    def scene_path(self, tmp_path):
        path = str(tmp_path / "scene.raw")
        assert main(["generate", path, "--lines", "20", "--samples", "20",
                     "--bands", "24", "--seed", "17"]) == 0
        return path

    @staticmethod
    def _a_label(path):
        labels = np.load(path + ".gt.npy")
        values, counts = np.unique(labels[labels != 0],
                                   return_counts=True)
        return int(values[counts.argmax()])

    def test_algo_choices_come_from_registry(self):
        from repro.workloads import workload_names

        detect = build_parser().parse_args(["detect", "x.raw"])
        assert detect.algo == "sam"
        reduce_ = build_parser().parse_args(["reduce", "x.raw"])
        assert reduce_.algo == "pca"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["detect", "x.raw",
                                       "--algo", "pca"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["reduce", "x.raw",
                                       "--algo", "sam"])
        assert set(workload_names(kind="detection")) == {
            "sam", "cem", "rx"}

    def test_detect_sam_with_target_class(self, scene_path, capsys):
        label = self._a_label(scene_path)
        assert main(["detect", scene_path, "--algo", "sam",
                     "--target-class", str(label)]) == 0
        out = capsys.readouterr().out
        assert "score map" in out
        assert "detection AUC" in out
        assert os.path.exists(scene_path + ".sam.pgm")

    def test_detect_rx_needs_no_target(self, scene_path, capsys):
        assert main(["detect", scene_path, "--algo", "rx"]) == 0
        out = capsys.readouterr().out
        assert "score map" in out
        assert "detection AUC" not in out   # no mask, no curve
        assert os.path.exists(scene_path + ".rx.pgm")

    def test_detect_profile_labeled_by_workload(self, scene_path, capsys):
        label = self._a_label(scene_path)
        assert main(["detect", scene_path, "--algo", "cem",
                     "--target-class", str(label),
                     "--workers", "2", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "workload: cem" in out
        assert "statistics" in out and "scores" in out

    def test_detect_matched_filter_requires_target_class(self, scene_path,
                                                         capsys):
        assert main(["detect", scene_path, "--algo", "sam"]) == 2
        assert "--target-class" in capsys.readouterr().err

    def test_detect_missing_sidecar_is_an_error(self, tmp_path, capsys):
        bare = str(tmp_path / "bare.raw")
        main(["generate", bare, "--lines", "12", "--samples", "12",
              "--bands", "24", "--seed", "9"])
        os.remove(bare + ".gt.npy")
        capsys.readouterr()
        assert main(["detect", bare, "--algo", "sam",
                     "--target-class", "1"]) == 2
        assert "sidecar" in capsys.readouterr().err

    def test_detect_empty_class_is_an_error(self, scene_path, capsys):
        assert main(["detect", scene_path, "--algo", "sam",
                     "--target-class", "9999"]) == 2
        assert "9999" in capsys.readouterr().err

    def test_reduce_writes_components(self, scene_path, capsys):
        assert main(["reduce", scene_path, "--components", "4"]) == 0
        out = capsys.readouterr().out
        assert "reduced cube" in out and "-> 4 band(s)" in out
        assert "component variance" in out
        transformed = np.load(scene_path + ".pca.npy")
        assert transformed.shape == (20, 20, 4)
        assert os.path.exists(scene_path + ".pca1.pgm")

    def test_reduce_chunked_matches_serial(self, scene_path, capsys):
        assert main(["reduce", scene_path, "--components", "3"]) == 0
        serial = np.load(scene_path + ".pca.npy")
        assert main(["reduce", scene_path, "--components", "3",
                     "--workers", "2"]) == 0
        np.testing.assert_array_equal(serial,
                                      np.load(scene_path + ".pca.npy"))

    def test_submit_workload_flag_filters_params(self):
        args = build_parser().parse_args(
            ["submit", "x.raw", "--workload", "rx"])
        assert args.workload == "rx"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit", "x.raw",
                                       "--workload", "kmeans"])
