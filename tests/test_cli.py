"""Tests for the command-line interface (driven through main())."""

import os

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "x.raw"])
        assert args.lines == 128 and args.bands == 224

    def test_classify_backend_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["classify", "x.raw",
                                       "--backend", "cuda"])

    def test_bench_table_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--table", "3"])

    def test_classify_workers_default_serial(self):
        args = build_parser().parse_args(["classify", "x.raw"])
        assert args.workers == 1 and args.profile is None

    def test_classify_profile_flag_forms(self):
        bare = build_parser().parse_args(["classify", "x.raw", "--profile"])
        assert bare.profile == "-"
        pathed = build_parser().parse_args(
            ["classify", "x.raw", "--profile", "out.json"])
        assert pathed.profile == "out.json"


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "GeForce 7800 GTX" in out
        assert "Pentium 4" in out

    def test_bench(self, capsys):
        assert main(["bench", "--table", "5"]) == 0
        out = capsys.readouterr().out
        assert "Table 5" in out and "icc" in out
        assert "speedup" in out

    def test_generate_then_classify(self, tmp_path, capsys):
        path = str(tmp_path / "scene.raw")
        assert main(["generate", path, "--lines", "24", "--samples", "24",
                     "--bands", "32", "--seed", "3"]) == 0
        assert os.path.exists(path)
        assert os.path.exists(path + ".hdr")
        assert os.path.exists(path + ".gt.ppm")
        gt = np.load(path + ".gt.npy")
        assert gt.shape == (24, 24)

        assert main(["classify", path, "--classes", "6"]) == 0
        out = capsys.readouterr().out
        assert "overall accuracy" in out
        assert os.path.exists(path + ".mei.pgm")
        assert os.path.exists(path + ".classes.ppm")

    def test_classify_gpu_backend_reports_device_time(self, tmp_path,
                                                      capsys):
        path = str(tmp_path / "scene.raw")
        main(["generate", path, "--lines", "16", "--samples", "16",
              "--bands", "24", "--seed", "4"])
        assert main(["classify", path, "--classes", "4",
                     "--backend", "gpu"]) == 0
        out = capsys.readouterr().out
        assert "modeled GPU time" in out

    def test_classify_with_trace(self, tmp_path, capsys):
        import json

        path = str(tmp_path / "scene.raw")
        main(["generate", path, "--lines", "12", "--samples", "12",
              "--bands", "16", "--seed", "5"])
        trace_path = str(tmp_path / "timeline.json")
        assert main(["classify", path, "--classes", "3",
                     "--backend", "gpu", "--trace", trace_path]) == 0
        with open(trace_path) as fh:
            trace = json.load(fh)
        assert trace["traceEvents"]
        out = capsys.readouterr().out
        assert "device timeline" in out

    def test_trace_requires_gpu_backend(self, tmp_path, capsys):
        path = str(tmp_path / "scene.raw")
        main(["generate", path, "--lines", "12", "--samples", "12",
              "--bands", "16", "--seed", "5"])
        assert main(["classify", path, "--classes", "3",
                     "--trace", str(tmp_path / "t.json")]) == 2

    def test_classify_workers_with_profile_text(self, tmp_path, capsys):
        path = str(tmp_path / "scene.raw")
        main(["generate", path, "--lines", "24", "--samples", "16",
              "--bands", "24", "--seed", "6"])
        capsys.readouterr()
        assert main(["classify", path, "--classes", "4",
                     "--workers", "2", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "workers: 2" in out
        assert "morphology" in out
        assert "upload" in out          # per-chunk stream-phase table

    def test_classify_profile_json(self, tmp_path, capsys):
        import json

        path = str(tmp_path / "scene.raw")
        main(["generate", path, "--lines", "16", "--samples", "16",
              "--bands", "24", "--seed", "7"])
        profile_path = str(tmp_path / "profile.json")
        assert main(["classify", path, "--classes", "3",
                     "--backend", "gpu", "--workers", "2",
                     "--profile", profile_path]) == 0
        with open(profile_path) as fh:
            data = json.load(fh)
        assert data["meta"]["backend"] == "gpu"
        assert [s["name"] for s in data["stages"]] == [
            "morphology", "endmembers", "unmixing", "classification",
            "evaluation"]
        assert data["chunks"] and data["chunks"][0]["upload_s"] > 0
        out = capsys.readouterr().out
        assert "profile report" in out

    def test_classify_workers_matches_serial_outputs(self, tmp_path,
                                                     capsys):
        path = str(tmp_path / "scene.raw")
        main(["generate", path, "--lines", "20", "--samples", "16",
              "--bands", "24", "--seed", "8"])
        assert main(["classify", path, "--classes", "4"]) == 0
        serial = capsys.readouterr().out
        assert main(["classify", path, "--classes", "4",
                     "--workers", "3"]) == 0
        parallel = capsys.readouterr().out
        accuracy = [line for line in serial.splitlines()
                    if "overall accuracy" in line]
        assert accuracy and accuracy[0] in parallel

    def test_classify_without_ground_truth(self, tmp_path, capsys):
        from repro.hsi import HyperCube
        from repro.hsi.envi import write_cube

        rng = np.random.default_rng(0)
        cube = HyperCube(rng.uniform(0.1, 1.0, (12, 12, 16))
                         .astype(np.float32))
        path = str(tmp_path / "plain.raw")
        write_cube(cube, path)
        assert main(["classify", path, "--classes", "3"]) == 0
        out = capsys.readouterr().out
        assert "overall accuracy" not in out
        assert os.path.exists(path + ".classes.ppm")
