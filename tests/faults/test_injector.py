"""Tests for the deterministic fault injector (repro.faults)."""

import time

import pytest

from repro import faults
from repro.errors import (
    GpuOutOfMemoryError,
    StreamError,
    TransientFaultError,
    WorkerCrashError,
)
from repro.faults import FaultInjector, FaultSpec


@pytest.fixture(autouse=True)
def _clean_installation():
    """Every test starts and ends with no injector installed."""
    faults.uninstall()
    faults.set_attempt(0)
    yield
    faults.uninstall()
    faults.set_attempt(0)


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(StreamError, match="unknown fault kind"):
            FaultSpec(kind="meteor")

    def test_bad_probability_rejected(self):
        with pytest.raises(StreamError, match="probability"):
            FaultSpec(kind="transient", probability=1.5)

    def test_negative_sleep_rejected(self):
        with pytest.raises(StreamError, match="sleep_s"):
            FaultSpec(kind="timeout", sleep_s=-1)

    def test_matching_coordinates(self):
        spec = FaultSpec(kind="transient", site="chunk", index=2, attempt=0)
        assert spec.matches("chunk", 2, 0, None, seed=0)
        assert not spec.matches("chunk", 1, 0, None, seed=0)
        assert not spec.matches("chunk", 2, 1, None, seed=0)
        assert not spec.matches("cube", 2, 0, None, seed=0)

    def test_wildcards(self):
        spec = FaultSpec(kind="transient", index=None, attempt=None)
        for index in (0, 7):
            for attempt in (0, 3):
                assert spec.matches("chunk", index, attempt, None, seed=0)

    def test_ext_lines_threshold(self):
        spec = FaultSpec(kind="gpu_oom", attempt=None, ext_lines_above=10)
        assert spec.matches("chunk", 0, 0, 11, seed=0)
        assert not spec.matches("chunk", 0, 0, 10, seed=0)
        assert not spec.matches("chunk", 0, 0, None, seed=0)


class TestFiring:
    def test_transient_raises(self):
        injector = FaultInjector([FaultSpec(kind="transient", index=1)])
        injector.check("chunk", index=0)  # no match: silent
        with pytest.raises(TransientFaultError, match="chunk\\[1\\]"):
            injector.check("chunk", index=1)

    def test_attempt_keyed_fault_fires_once(self):
        injector = FaultInjector([FaultSpec(kind="transient", attempt=0)])
        with pytest.raises(TransientFaultError):
            injector.check("chunk", index=0, attempt=0)
        injector.check("chunk", index=0, attempt=1)  # retry succeeds

    def test_worker_crash_raises_outside_pool(self):
        """In a non-daemon process the crash surfaces as an exception."""
        injector = FaultInjector([FaultSpec(kind="worker_crash")])
        with pytest.raises(WorkerCrashError):
            injector.check("chunk", index=0)

    def test_timeout_sleeps_then_continues(self):
        injector = FaultInjector([FaultSpec(kind="timeout", sleep_s=0.05)])
        start = time.perf_counter()
        injector.check("chunk", index=0)  # returns after the stall
        assert time.perf_counter() - start >= 0.05

    def test_gpu_oom_carries_structured_bytes(self):
        injector = FaultInjector(
            [FaultSpec(kind="gpu_oom", attempt=None, ext_lines_above=8)])
        injector.check("chunk", index=0, ext_lines=8)  # under threshold
        with pytest.raises(GpuOutOfMemoryError) as excinfo:
            injector.check("chunk", index=0, ext_lines=16)
        assert excinfo.value.requested > excinfo.value.free
        assert excinfo.value.requested == 16 << 20


class TestDeterminism:
    def test_probability_is_scheduling_independent(self):
        spec = FaultSpec(kind="transient", attempt=None, probability=0.5)
        fired = [spec.matches("chunk", index, 0, None, seed=7)
                 for index in range(64)]
        again = [spec.matches("chunk", index, 0, None, seed=7)
                 for index in reversed(range(64))]
        assert fired == list(reversed(again))
        assert any(fired) and not all(fired)

    def test_different_seeds_differ(self):
        spec = FaultSpec(kind="transient", attempt=None, probability=0.5)
        a = [spec.matches("chunk", i, 0, None, seed=1) for i in range(64)]
        b = [spec.matches("chunk", i, 0, None, seed=2) for i in range(64)]
        assert a != b


class TestInstallation:
    def test_install_and_maybe_inject(self):
        faults.install(FaultInjector([FaultSpec(kind="transient")]))
        with pytest.raises(TransientFaultError):
            faults.maybe_inject("chunk", index=0)
        faults.uninstall()
        faults.maybe_inject("chunk", index=0)  # no injector: no-op

    def test_attempt_global(self):
        faults.install(FaultInjector([FaultSpec(kind="transient",
                                                attempt=1)]))
        faults.maybe_inject("chunk", index=0)  # attempt 0: no match
        faults.set_attempt(1)
        with pytest.raises(TransientFaultError):
            faults.maybe_inject("chunk", index=0)

    def test_json_round_trip(self):
        injector = FaultInjector(
            [FaultSpec(kind="gpu_oom", attempt=None, ext_lines_above=6),
             FaultSpec(kind="timeout", index=3, sleep_s=2.5)],
            seed=42)
        clone = FaultInjector.from_json(injector.to_json())
        assert clone.seed == 42
        assert clone.specs == injector.specs

    def test_env_var_configuration(self, monkeypatch):
        injector = FaultInjector([FaultSpec(kind="transient", index=0)],
                                 seed=9)
        monkeypatch.setenv(faults.ENV_VAR, injector.to_json())
        current = faults.current_injector()
        assert current.seed == 9
        with pytest.raises(TransientFaultError):
            faults.maybe_inject("chunk", index=0)
        monkeypatch.delenv(faults.ENV_VAR)
        assert faults.current_injector() is None

    def test_installed_takes_precedence_over_env(self, monkeypatch):
        monkeypatch.setenv(
            faults.ENV_VAR,
            FaultInjector([FaultSpec(kind="transient")], seed=1).to_json())
        faults.install(FaultInjector([], seed=2))
        assert faults.current_injector().seed == 2
