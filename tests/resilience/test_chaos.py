"""Chaos acceptance test: AMC under injected faults stays bit-identical.

ISSUE acceptance criterion: a chunk-parallel ``run_amc`` that suffers a
worker crash, a stalled chunk, and a simulated GPU OOM in one run must
still complete with output byte-for-byte identical to a fault-free
serial run, and the profiler report must show the retries and the
degradation.
"""

import hashlib

import numpy as np
import pytest

from repro import faults
from repro.core import AMCConfig, run_amc
from repro.faults import FaultInjector, FaultSpec
from repro.profiling import Profiler


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.uninstall()
    faults.set_attempt(0)
    yield
    faults.uninstall()
    faults.set_attempt(0)


def _sha256(array) -> str:
    return hashlib.sha256(np.ascontiguousarray(array).tobytes()).hexdigest()


class TestChaosAmc:
    def test_crash_timeout_and_oom_in_one_run(self, small_cube):
        """One run eats all three fault kinds and still matches serial."""
        serial = run_amc(small_cube, AMCConfig(n_classes=3))

        # small_cube is 10 lines; 2 workers -> 2 chunks of 5 core lines,
        # 6 extended lines each (radius-1 halo).  The OOM spec fires on
        # any chunk wider than 5 extended lines, so the first plan OOMs
        # and degrades to 2-core-line chunks (<= 4 extended lines); in
        # the degraded plan chunk 0's worker crashes and chunk 1 stalls
        # past the deadline, forcing in-process recovery of both.
        faults.install(FaultInjector([
            FaultSpec(kind="gpu_oom", attempt=None, ext_lines_above=5),
            FaultSpec(kind="worker_crash", index=0, attempt=0),
            FaultSpec(kind="timeout", index=1, attempt=0, sleep_s=30.0),
        ]))
        profiler = Profiler()
        chaos = run_amc(
            small_cube,
            AMCConfig(n_classes=3, n_workers=2, max_retries=1,
                      chunk_timeout_s=2.0),
            profiler=profiler)

        assert _sha256(chaos.labels) == _sha256(serial.labels)
        assert _sha256(chaos.mei) == _sha256(serial.mei)
        np.testing.assert_array_equal(chaos.abundances, serial.abundances)

        kinds = {event.kind for event in profiler.event_records}
        assert "oom_degrade" in kinds
        assert "pool_recovery" in kinds
        assert "retry" in kinds
        # the recovered chunks carry their extra attempts on the records
        assert any(record.retries >= 1
                   for record in profiler.chunk_records)

        report = profiler.report().to_text()
        assert "resilience events" in report
        assert "oom_degrade" in report
        assert "pool_recovery" in report

    def test_fault_free_run_records_no_events(self, small_cube):
        """No injector, no faults: the resilience layer stays silent."""
        profiler = Profiler()
        run_amc(small_cube,
                AMCConfig(n_classes=3, n_workers=2, max_retries=1,
                          chunk_timeout_s=30.0),
                profiler=profiler)
        assert profiler.event_records == []
        assert all(record.retries == 0
                   for record in profiler.chunk_records)
