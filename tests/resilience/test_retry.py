"""Tests for the retry/isolation primitives (repro.resilience)."""

import pytest

from repro import faults
from repro.errors import StreamError, TransientFaultError
from repro.resilience import (
    RetryPolicy,
    TaskOutcome,
    run_isolated,
    run_with_retry,
)


@pytest.fixture(autouse=True)
def _clean_attempt():
    faults.set_attempt(0)
    yield
    faults.set_attempt(0)


class TestRetryPolicy:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.max_retries == 0
        assert policy.chunk_timeout_s is None
        assert TransientFaultError in policy.retryable

    def test_negative_retries_rejected(self):
        with pytest.raises(StreamError, match="max_retries"):
            RetryPolicy(max_retries=-1)

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(StreamError, match="chunk_timeout_s"):
            RetryPolicy(chunk_timeout_s=0)


class TestRunWithRetry:
    def test_success_first_try(self):
        outcome = run_with_retry(lambda task: task * 2, 21)
        assert outcome == TaskOutcome(42, retries=0, recovered=False)

    def test_retries_transient_failures(self):
        calls = []

        def flaky(task):
            calls.append(task)
            if len(calls) < 3:
                raise TransientFaultError("not yet")
            return "done"

        outcome = run_with_retry(flaky, "t",
                                 policy=RetryPolicy(max_retries=2))
        assert outcome.value == "done"
        assert outcome.retries == 2
        assert calls == ["t", "t", "t"]

    def test_exhausted_retries_reraise_last(self):
        def always_fails(task):
            raise TransientFaultError("still broken")

        with pytest.raises(TransientFaultError, match="still broken"):
            run_with_retry(always_fails, None,
                           policy=RetryPolicy(max_retries=2))

    def test_non_retryable_propagates_immediately(self):
        calls = []

        def fails_hard(task):
            calls.append(task)
            raise ValueError("a real bug")

        with pytest.raises(ValueError):
            run_with_retry(fails_hard, None,
                           policy=RetryPolicy(max_retries=5))
        assert len(calls) == 1

    def test_publishes_attempt_numbers(self):
        seen = []

        def observe(task):
            seen.append(faults.current_attempt())
            if len(seen) < 3:
                raise TransientFaultError("again")
            return None

        run_with_retry(observe, None, policy=RetryPolicy(max_retries=2))
        assert seen == [0, 1, 2]
        assert faults.current_attempt() == 0  # reset after each attempt

    def test_attempt_base_shifts_numbering(self):
        seen = []

        def observe(task):
            seen.append(faults.current_attempt())
            return None

        run_with_retry(observe, None, attempt_base=3)
        assert seen == [3]


class TestRunIsolated:
    def test_success(self):
        value, error = run_isolated(lambda a, b=0: a + b, 1, b=2)
        assert (value, error) == (3, None)

    def test_captures_exception(self):
        def boom():
            raise KeyError("gone")

        value, error = run_isolated(boom)
        assert value is None
        assert isinstance(error, KeyError)

    def test_base_exceptions_propagate(self):
        def interrupt():
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_isolated(interrupt)
