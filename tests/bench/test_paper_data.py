"""Tests for the transcribed paper data and its derived ratios."""

import numpy as np
import pytest

from repro.bench.paper_data import (
    PAPER_PLATFORM_ORDER,
    PAPER_TABLE3_ACCURACY,
    PAPER_TABLE3_OVERALL,
    PAPER_TABLE4_GCC_MS,
    PAPER_TABLE5_ICC_MS,
    paper_scaling_slopes,
    paper_speedups,
)
from repro.hsi import INDIAN_PINES_CLASSES


class TestTable3Data:
    def test_32_classes(self):
        assert len(PAPER_TABLE3_ACCURACY) == 32

    def test_matches_class_specs(self):
        """The scene generator's metadata and the bench data must agree —
        they are transcriptions of the same table."""
        for spec in INDIAN_PINES_CLASSES:
            assert PAPER_TABLE3_ACCURACY[spec.name] == spec.paper_accuracy

    def test_overall_value(self):
        assert PAPER_TABLE3_OVERALL == 72.35

    def test_accuracies_in_percent_range(self):
        for value in PAPER_TABLE3_ACCURACY.values():
            assert 0.0 < value <= 100.0


class TestTables45Data:
    @pytest.mark.parametrize("table", [PAPER_TABLE4_GCC_MS,
                                       PAPER_TABLE5_ICC_MS])
    def test_six_sizes_four_platforms(self, table):
        assert sorted(table) == [68, 136, 205, 273, 410, 547]
        assert all(len(row) == len(PAPER_PLATFORM_ORDER)
                   for row in table.values())

    def test_gpu_columns_identical_between_tables(self):
        """The compiler only affects CPU columns; the paper's GPU columns
        repeat verbatim between Tables 4 and 5."""
        for size in PAPER_TABLE4_GCC_MS:
            assert PAPER_TABLE4_GCC_MS[size][2:] \
                == PAPER_TABLE5_ICC_MS[size][2:]

    def test_icc_faster_than_gcc_on_cpus(self):
        for size in PAPER_TABLE4_GCC_MS:
            assert PAPER_TABLE5_ICC_MS[size][0] < PAPER_TABLE4_GCC_MS[size][0]
            assert PAPER_TABLE5_ICC_MS[size][1] < PAPER_TABLE4_GCC_MS[size][1]

    def test_paper_speedup_summary(self):
        ratios = paper_speedups(PAPER_TABLE4_GCC_MS)
        # the paper's own table implies ~58x mean P4/7800 (text: "close
        # to 55")
        assert ratios["p4_over_7800"] == pytest.approx(58.6, abs=2.0)
        assert ratios["p4_over_prescott"] == pytest.approx(1.09, abs=0.02)

    def test_paper_scaling_slopes_mostly_linear(self):
        slopes = paper_scaling_slopes(PAPER_TABLE4_GCC_MS)
        # CPUs scale linearly (8.0x for 8x the data)...
        assert slopes["P4 C"] == pytest.approx(8.0, rel=0.02)
        assert slopes["Prescott"] == pytest.approx(8.0, rel=0.02)
        # ...and the GPUs almost (the FX5950 row has the paper's own
        # anomaly at 410 MB where time barely grows from 273 MB).
        assert 7.0 < slopes["7800 GTX"] < 8.5
        assert 7.0 < slopes["FX5950 U"] < 8.5

    def test_icc_gain_about_1_65(self):
        gains = [PAPER_TABLE4_GCC_MS[s][0] / PAPER_TABLE5_ICC_MS[s][0]
                 for s in PAPER_TABLE4_GCC_MS]
        assert np.mean(gains) == pytest.approx(1.65, abs=0.05)
