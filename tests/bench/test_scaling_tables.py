"""Tests for the size sweep and the table formatters."""

import pytest

from repro.bench import (
    format_series,
    format_table,
    paper_size_points,
    platform_matrix,
)
from repro.bench.scaling import PAPER_FULL_SCENE, SizePoint
from repro.cpu import GCC40


class TestSizePoints:
    def test_six_rows(self):
        points = paper_size_points()
        assert len(points) == 6

    def test_mb_column_matches_paper(self):
        """Sizes must land on the tables' 68/136/205/273/410/547 MB."""
        paper_mb = [68, 136, 205, 273, 410, 547]
        for point, expected in zip(paper_size_points(), paper_mb):
            assert point.size_mb == pytest.approx(expected, rel=0.02)

    def test_full_scene_geometry(self):
        last = paper_size_points()[-1]
        assert (last.lines, last.samples, last.bands) == PAPER_FULL_SCENE

    def test_monotone_sizes(self):
        points = paper_size_points()
        sizes = [p.size_mb for p in points]
        assert sizes == sorted(sizes)

    def test_size_point_pixels(self):
        point = SizePoint(1, lines=10, samples=20, bands=5)
        assert point.pixels == 200
        assert point.size_mb == pytest.approx(10 * 20 * 5 * 2 / 2 ** 20)


class TestPlatformMatrix:
    def test_columns_and_rows(self):
        points = paper_size_points()[:2]
        columns = platform_matrix(points, cpu_build=GCC40)
        assert set(columns) == {"P4 C", "Prescott", "FX5950 U", "7800 GTX"}
        assert all(len(v) == 2 for v in columns.values())

    def test_every_entry_positive(self):
        columns = platform_matrix(paper_size_points()[:2], cpu_build=GCC40)
        assert all(v > 0 for col in columns.values() for v in col)

    def test_rows_increase_with_size(self):
        columns = platform_matrix(paper_size_points(), cpu_build=GCC40)
        for col in columns.values():
            assert col == sorted(col)


class TestFormatters:
    def test_format_table(self):
        text = format_table("Table X", ["Size", "A", "B"],
                            [[68, 1.5, 2.0], [136, 3.0, 4.0]])
        assert "Table X" in text
        assert "68" in text and "136" in text
        lines = text.splitlines()
        assert len(lines) == 6  # title, rule, header, rule, 2 rows

    def test_format_table_row_width_checked(self):
        with pytest.raises(ValueError):
            format_table("T", ["A", "B"], [[1]])

    def test_format_series(self):
        text = format_series("Fig Y", "MB", [68, 136],
                             {"cpu": [1.0, 2.0], "gpu": [0.1, 0.2]})
        assert "Fig Y" in text and "cpu" in text and "gpu" in text

    def test_format_series_length_checked(self):
        with pytest.raises(ValueError):
            format_series("F", "x", [1, 2], {"s": [1.0]})
