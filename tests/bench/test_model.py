"""Tests for the analytic performance projection.

The critical property: the projection equals the executed simulator's
counters exactly (so paper-scale projections are audited extrapolation).
"""

import numpy as np
import pytest

from repro.bench import (
    launch_catalogue,
    paper_size_points,
    platform_matrix,
    project_cpu_time,
    project_gpu_time,
)
from repro.bench.scaling import speedup_summary
from repro.core.amc_gpu import gpu_morphological_stage
from repro.cpu import GCC40, ICC90, PENTIUM4_NORTHWOOD, PRESCOTT_660
from repro.gpu import GEFORCE_7800GTX, GEFORCE_FX5950U


class TestProjectionMatchesExecution:
    @pytest.mark.parametrize("shape,fuse", [((14, 13, 18), 6),
                                            ((10, 9, 7), 3),
                                            ((8, 8, 4), 1)])
    def test_counter_equality(self, shape, fuse):
        cube = np.random.default_rng(1).uniform(0.1, 1.0, shape)
        out = gpu_morphological_stage(cube, fuse_groups=fuse)
        proj = project_gpu_time(GEFORCE_7800GTX, *shape, fuse_groups=fuse)
        assert proj.launches == out.counters["kernel_launches"]
        assert proj.total_s == pytest.approx(out.modeled_time_s, rel=1e-12)
        assert proj.kernel_s == pytest.approx(out.counters["kernel_time_s"],
                                              rel=1e-12)

    def test_counter_equality_with_chunking(self):
        cube = np.random.default_rng(2).uniform(0.1, 1.0, (16, 10, 12))
        spec = GEFORCE_7800GTX.with_(vram_bytes=48 * 1024)
        out = gpu_morphological_stage(cube, spec=spec)
        proj = project_gpu_time(spec, 16, 10, 12)
        assert out.chunk_count == proj.chunks > 1
        assert proj.total_s == pytest.approx(out.modeled_time_s, rel=1e-12)

    def test_catalogue_structure(self):
        catalogue = launch_catalogue(bands=24, fuse_groups=6)
        names = [shader.name for shader, _ in catalogue]
        assert "bandsum_w6" in names
        assert "cross_0_1_w6" in names
        assert "mei_final" in names
        # 24 bands = 6 groups = one full fusion batch
        counts = {s.name: n for s, n in catalogue}
        assert counts["normalize"] == 6
        assert counts["cross_0_1_w6"] == 36


class TestScalingShape:
    def test_gpu_time_linear_in_lines(self):
        """At paper scale (where chunking amortizes launch overhead)
        doubling the image doubles the modeled time — the paper's
        "doubling the size doubles the execution time"."""
        t1 = project_gpu_time(GEFORCE_7800GTX, 307, 2166, 216).total_s
        t2 = project_gpu_time(GEFORCE_7800GTX, 614, 2166, 216).total_s
        assert t2 / t1 == pytest.approx(2.0, rel=0.05)

    def test_cpu_time_linear_in_pixels(self):
        a = project_cpu_time(PENTIUM4_NORTHWOOD, GCC40, 100, 100, 64)
        b = project_cpu_time(PENTIUM4_NORTHWOOD, GCC40, 200, 100, 64)
        assert b["total_s"] / a["total_s"] == pytest.approx(2.0, rel=1e-6)


class TestPaperRatios:
    """The headline performance claims of §4.3, as ratio bands."""

    @pytest.fixture(scope="class")
    def gcc_ratios(self):
        return speedup_summary(platform_matrix(paper_size_points(),
                                               cpu_build=GCC40))

    @pytest.fixture(scope="class")
    def icc_ratios(self):
        return speedup_summary(platform_matrix(paper_size_points(),
                                               cpu_build=ICC90))

    def test_gpu_beats_cpu_by_tens(self, gcc_ratios):
        # paper: "the speedup remains close to 55" (gcc)
        assert 25.0 < gcc_ratios["p4_over_7800"] < 70.0

    def test_icc_speedup_about_twenty(self, icc_ratios):
        # paper: "the Intel compiler reduces this value to 20"
        assert 12.0 < icc_ratios["p4_over_7800"] < 30.0

    def test_gpu_generation_gap(self, gcc_ratios):
        # paper: ~400% improvement FX5950 -> 7800 GTX
        assert 3.0 < gcc_ratios["fx5950_over_7800"] < 7.0

    def test_cpu_generation_gap_small(self, gcc_ratios):
        # paper: "below 10%" improvement Northwood -> Prescott
        assert 1.0 < gcc_ratios["p4_over_prescott"] < 1.10

    def test_old_gpu_still_beats_cpu(self, gcc_ratios):
        assert gcc_ratios["p4_over_fx5950"] > 3.0

    def test_icc_faster_than_gcc_but_not_4x(self):
        """Vectorization gains are capped by memory (the 1.65x effect)."""
        pts = paper_size_points()
        gcc = platform_matrix(pts, cpu_build=GCC40)["P4 C"]
        icc = platform_matrix(pts, cpu_build=ICC90)["P4 C"]
        gains = np.array(gcc) / np.array(icc)
        assert np.all(gains > 1.2) and np.all(gains < 3.0)
