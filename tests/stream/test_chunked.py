"""Tests for chunked stage-graph execution."""

import numpy as np
import pytest

from repro.errors import StreamError
from repro.gpu import shaderir as ir
from repro.stream import CpuExecutor, GpuExecutor, StageGraph, Step, Stream
from repro.stream.chunked import graph_halo, run_chunked
from repro.stream.kernel import StreamKernel, stencil_sum


def _blur3():
    offsets = tuple((dy, dx) for dy in (-1, 0, 1) for dx in (-1, 0, 1))
    return stencil_sum("blur3", offsets)


@pytest.fixture()
def two_stage_stencil():
    """Two chained 3x3 stencils: total dependency radius 2."""
    return StageGraph("double-blur", inputs=("x",),
                      steps=(Step(_blur3(), {"a": "x"}, "once"),
                             Step(_blur3(), {"a": "once"}, "twice")),
                      outputs=("twice",))


class TestGraphHalo:
    def test_chained_stencils_sum(self, two_stage_stencil):
        assert graph_halo(two_stage_stencil) == 2

    def test_pointwise_graph_zero(self):
        k = StreamKernel.from_expression(
            "dbl", ir.mul(ir.TexFetch("a"), 2.0), inputs=("a",))
        graph = StageGraph("p", inputs=("x",),
                           steps=(Step(k, {"a": "x"}, "o"),),
                           outputs=("o",))
        assert graph_halo(graph) == 0

    def test_dynamic_fetch_rejected(self):
        k = StreamKernel.from_expression(
            "dyn", ir.TexFetchDyn("a", ir.FragCoord()), inputs=("a",))
        graph = StageGraph("d", inputs=("x",),
                           steps=(Step(k, {"a": "x"}, "o"),),
                           outputs=("o",))
        with pytest.raises(StreamError, match="dependent"):
            graph_halo(graph)


class TestRunChunked:
    def test_matches_unchunked_cpu(self, two_stage_stencil, rng):
        x = Stream.from_scalar("x", rng.uniform(size=(30, 7)))
        whole = CpuExecutor().run(two_stage_stencil, {"x": x})
        chunked = run_chunked(two_stage_stencil, {"x": x}, CpuExecutor(),
                              max_ext_lines=9)
        np.testing.assert_array_equal(chunked["twice"].data,
                                      whole["twice"].data)

    def test_matches_unchunked_gpu(self, two_stage_stencil, rng):
        x = Stream.from_scalar("x", rng.uniform(size=(24, 6)))
        whole = GpuExecutor().run(two_stage_stencil, {"x": x})
        chunked = run_chunked(two_stage_stencil, {"x": x}, GpuExecutor(),
                              max_ext_lines=10)
        np.testing.assert_array_equal(chunked["twice"].data,
                                      whole["twice"].data)

    def test_single_chunk_when_budget_allows(self, two_stage_stencil, rng):
        x = Stream.from_scalar("x", rng.uniform(size=(10, 5)))
        out = run_chunked(two_stage_stencil, {"x": x}, CpuExecutor(),
                          max_ext_lines=100)
        whole = CpuExecutor().run(two_stage_stencil, {"x": x})
        np.testing.assert_array_equal(out["twice"].data,
                                      whole["twice"].data)

    def test_insufficient_budget_raises(self, two_stage_stencil, rng):
        x = Stream.from_scalar("x", rng.uniform(size=(30, 7)))
        with pytest.raises(StreamError):
            run_chunked(two_stage_stencil, {"x": x}, CpuExecutor(),
                        max_ext_lines=4)  # 2*halo+1 = 5 > 4

    def test_halo_override_too_small_differs(self, two_stage_stencil, rng):
        """An under-sized halo must produce wrong borders — demonstrating
        the halo is load-bearing, not decorative."""
        x = Stream.from_scalar("x", rng.uniform(size=(30, 7)))
        whole = CpuExecutor().run(two_stage_stencil, {"x": x})
        wrong = run_chunked(two_stage_stencil, {"x": x}, CpuExecutor(),
                            max_ext_lines=9, halo=0)
        assert not np.array_equal(wrong["twice"].data,
                                  whole["twice"].data)

    def test_empty_inputs_rejected(self, two_stage_stencil):
        with pytest.raises(StreamError, match="at least one input"):
            run_chunked(two_stage_stencil, {}, CpuExecutor(),
                        max_ext_lines=8)

    def test_multiple_outputs_stitched(self, rng):
        blur = _blur3()
        graph = StageGraph("multi", inputs=("x",),
                           steps=(Step(blur, {"a": "x"}, "a1"),
                                  Step(blur, {"a": "a1"}, "a2")),
                           outputs=("a1", "a2"))
        x = Stream.from_scalar("x", rng.uniform(size=(20, 5)))
        whole = CpuExecutor().run(graph, {"x": x})
        chunked = run_chunked(graph, {"x": x}, CpuExecutor(),
                              max_ext_lines=8)
        for name in ("a1", "a2"):
            np.testing.assert_array_equal(chunked[name].data,
                                          whole[name].data)
