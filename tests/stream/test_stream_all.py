"""Tests for the stream programming framework (Stream/Kernel/Graph/Executors)."""

import numpy as np
import pytest

from repro.errors import ShapeError, StreamError
from repro.gpu import GEFORCE_7800GTX, VirtualGPU
from repro.gpu import shaderir as ir
from repro.stream import (
    CpuExecutor,
    GpuExecutor,
    StageGraph,
    Step,
    Stream,
    StreamKernel,
)
from repro.stream.kernel import (
    map_binary,
    map_scale_bias,
    reduce_dot,
    stencil_sum,
)


class TestStream:
    def test_from_scalar_roundtrip(self, rng):
        image = rng.uniform(size=(4, 6)).astype(np.float32)
        stream = Stream.from_scalar("s", image)
        np.testing.assert_array_equal(stream.scalar(), image)
        assert stream.shape == (4, 6)

    def test_zeros(self):
        stream = Stream.zeros("z", 3, 5)
        assert np.all(stream.data == 0)

    def test_copy_independent(self):
        a = Stream.zeros("a", 2, 2)
        b = a.copy("b")
        b.data[...] = 1
        assert np.all(a.data == 0)
        assert b.name == "b"

    def test_needs_name(self):
        with pytest.raises(StreamError):
            Stream("", np.zeros((2, 2, 4), dtype=np.float32))

    def test_needs_float4(self):
        with pytest.raises(ShapeError):
            Stream("s", np.zeros((2, 2, 3), dtype=np.float32))

    def test_from_scalar_needs_2d(self):
        with pytest.raises(ShapeError):
            Stream.from_scalar("s", np.zeros(4))

    def test_zeros_bad_extent(self):
        with pytest.raises(ShapeError):
            Stream.zeros("z", 0, 4)


class TestStreamKernel:
    def test_from_expression(self):
        k = StreamKernel.from_expression(
            "k", ir.add(ir.TexFetch("a"), 1.0), inputs=("a",))
        assert k.name == "k"

    def test_inputs_must_cover_samplers(self):
        shader_body = ir.add(ir.TexFetch("a"), ir.TexFetch("b"))
        with pytest.raises(StreamError, match="cover"):
            from repro.gpu import FragmentShader
            StreamKernel(FragmentShader("k", shader_body,
                                        samplers=("a", "b")),
                         inputs=("a",))

    def test_standard_kernels_build(self):
        map_binary("add", "add")
        map_scale_bias("sb")
        reduce_dot("rd")
        stencil_sum("st", ((0, 0), (0, 1), (1, 0)))

    def test_stencil_needs_offsets(self):
        with pytest.raises(StreamError):
            stencil_sum("st", ())


class TestStageGraph:
    def _k(self):
        return map_binary("add", "add")

    def test_valid_graph(self):
        graph = StageGraph("g", inputs=("x", "y"),
                           steps=(Step(self._k(), {"a": "x", "b": "y"},
                                       "out"),),
                           outputs=("out",))
        assert graph.step_count() == 1
        assert graph.stream_names == ("x", "y", "out")

    def test_read_before_write(self):
        with pytest.raises(StreamError, match="before it exists"):
            StageGraph("g", inputs=("x",),
                       steps=(Step(self._k(), {"a": "x", "b": "ghost"},
                                   "out"),),
                       outputs=("out",))

    def test_single_assignment(self):
        k = self._k()
        with pytest.raises(StreamError, match="more than once"):
            StageGraph("g", inputs=("x", "y"),
                       steps=(Step(k, {"a": "x", "b": "y"}, "t"),
                              Step(k, {"a": "x", "b": "y"}, "t")),
                       outputs=("t",))

    def test_missing_output(self):
        with pytest.raises(StreamError, match="never produced"):
            StageGraph("g", inputs=("x", "y"),
                       steps=(Step(self._k(), {"a": "x", "b": "y"}, "t"),),
                       outputs=("nope",))

    def test_no_steps(self):
        with pytest.raises(StreamError, match="no steps"):
            StageGraph("g", inputs=("x",), steps=(), outputs=("x",))

    def test_step_binding_validation(self):
        with pytest.raises(StreamError, match="not bound"):
            Step(self._k(), {"a": "x"}, "out")
        with pytest.raises(StreamError, match="unknown kernel inputs"):
            Step(self._k(), {"a": "x", "b": "y", "c": "z"}, "out")

    def test_step_uniforms_validated(self):
        k = map_scale_bias("sb")
        with pytest.raises(StreamError, match="uniforms"):
            Step(k, {"a": "x"}, "out")  # scale/bias missing

    def test_producers(self):
        step = Step(self._k(), {"a": "x", "b": "y"}, "out")
        graph = StageGraph("g", inputs=("x", "y"), steps=(step,),
                           outputs=("out",))
        assert graph.producers()["out"] is step


@pytest.fixture()
def pipeline():
    """x -> double -> add original -> output (tests chaining)."""
    dbl = StreamKernel.from_expression(
        "dbl", ir.mul(ir.TexFetch("a"), 2.0), inputs=("a",))
    add = map_binary("add", "add")
    return StageGraph("p", inputs=("x",),
                      steps=(Step(dbl, {"a": "x"}, "x2"),
                             Step(add, {"a": "x2", "b": "x"}, "x3")),
                      outputs=("x3",))


class TestExecutors:
    def test_cpu_executor(self, pipeline, rng):
        x = Stream.from_scalar("x", rng.uniform(size=(4, 4)))
        out = CpuExecutor().run(pipeline, {"x": x})
        np.testing.assert_allclose(out["x3"].scalar(), 3 * x.scalar(),
                                   rtol=1e-6)

    def test_gpu_executor_matches_cpu(self, pipeline, rng):
        x = Stream.from_scalar("x", rng.uniform(size=(4, 4)))
        cpu = CpuExecutor().run(pipeline, {"x": x})
        gpu = GpuExecutor().run(pipeline, {"x": x.copy()})
        np.testing.assert_array_equal(cpu["x3"].data, gpu["x3"].data)

    def test_gpu_executor_frees_vram(self, pipeline, rng):
        device = VirtualGPU(GEFORCE_7800GTX)
        x = Stream.from_scalar("x", rng.uniform(size=(4, 4)))
        GpuExecutor(device).run(pipeline, {"x": x})
        assert device.vram.used == 0

    def test_gpu_executor_counts_launches(self, pipeline, rng):
        device = VirtualGPU(GEFORCE_7800GTX)
        x = Stream.from_scalar("x", rng.uniform(size=(4, 4)))
        GpuExecutor(device).run(pipeline, {"x": x})
        assert device.counters.kernel_launch_count == 2

    def test_missing_input_rejected(self, pipeline):
        with pytest.raises(StreamError, match="not provided"):
            CpuExecutor().run(pipeline, {})

    def test_extra_input_rejected(self, pipeline):
        x = Stream.zeros("x", 2, 2)
        with pytest.raises(StreamError, match="unexpected"):
            CpuExecutor().run(pipeline, {"x": x, "y": x.copy("y")})

    def test_shape_disagreement_rejected(self):
        add = map_binary("add", "add")
        graph = StageGraph("g", inputs=("x", "y"),
                           steps=(Step(add, {"a": "x", "b": "y"}, "o"),),
                           outputs=("o",))
        with pytest.raises(StreamError, match="disagree"):
            CpuExecutor().run(graph, {"x": Stream.zeros("x", 2, 2),
                                      "y": Stream.zeros("y", 3, 3)})

    def test_gpu_executor_frees_vram_on_failure(self, pipeline, rng,
                                                monkeypatch):
        """Failure injection: if a kernel blows up mid-graph, the GPU
        executor must still release every texture it allocated."""
        import repro.gpu.device as device_mod

        device = VirtualGPU(GEFORCE_7800GTX)
        calls = {"n": 0}
        real_execute = device_mod.execute

        def flaky(shader, height, width, textures, uniforms=None,
                  **kwargs):
            calls["n"] += 1
            if calls["n"] == 2:
                raise RuntimeError("injected kernel fault")
            return real_execute(shader, height, width, textures, uniforms)

        monkeypatch.setattr(device_mod, "execute", flaky)
        monkeypatch.setattr(device_mod, "execute_lazy", flaky)
        x = Stream.from_scalar("x", rng.uniform(size=(4, 4)))
        with pytest.raises(RuntimeError, match="injected"):
            GpuExecutor(device).run(pipeline, {"x": x})
        assert device.vram.used == 0

    def test_uniforms_flow_through(self, rng):
        sb = map_scale_bias("sb")
        graph = StageGraph(
            "g", inputs=("x",),
            steps=(Step(sb, {"a": "x"}, "o",
                        uniforms={"scale": np.float32(3.0),
                                  "bias": np.float32(-1.0)}),),
            outputs=("o",))
        x = Stream.from_scalar("x", rng.uniform(size=(3, 3)))
        out = CpuExecutor().run(graph, {"x": x})
        np.testing.assert_allclose(out["o"].scalar(),
                                   3 * x.scalar() - 1, rtol=1e-6)
