"""Tests: the declarative AMC stage graphs agree with the core math."""

import numpy as np
import pytest

from repro.core.mei import mei_reference, se_offsets
from repro.errors import StreamError
from repro.spectral import normalize_image, safe_log, sid_self_entropy
from repro.stream import CpuExecutor, GpuExecutor, Stream
from repro.stream.amc_stages import (
    build_cumulative_graph,
    build_normalization_graph,
    group_streams,
)
from repro.gpu.texture import unpack_bands


@pytest.fixture(scope="module")
def cube():
    return np.random.default_rng(55).uniform(0.05, 1.0, (8, 7, 10))


@pytest.fixture(scope="module")
def norm_outputs(cube):
    graph = build_normalization_graph(bands=10)
    inputs = group_streams(cube.astype(np.float32))
    inputs["zero"] = Stream.zeros("zero", 8, 7)
    return CpuExecutor().run(graph, inputs)


class TestNormalizationGraph:
    def test_total_matches_band_sum(self, cube, norm_outputs):
        expected = cube.sum(axis=2)
        got = norm_outputs["total"].scalar()
        np.testing.assert_allclose(got, expected, rtol=1e-5)

    def test_norm_streams_match_eq34(self, cube, norm_outputs):
        expected = normalize_image(cube)
        stack = [norm_outputs[f"norm{g}"].data for g in range(3)]
        got = unpack_bands(stack, 10)
        np.testing.assert_allclose(got, expected, rtol=1e-4, atol=1e-7)

    def test_log_streams(self, cube, norm_outputs):
        expected = safe_log(normalize_image(cube))
        stack = [norm_outputs[f"log{g}"].data for g in range(3)]
        got = unpack_bands(stack, 10)
        np.testing.assert_allclose(got, expected, rtol=1e-4, atol=1e-5)

    def test_entropy_matches(self, cube, norm_outputs):
        expected = sid_self_entropy(normalize_image(cube))
        got = norm_outputs["entropy"].scalar()
        np.testing.assert_allclose(got, expected, rtol=1e-4, atol=1e-6)

    def test_padded_lanes_stay_zero(self, norm_outputs):
        # 10 bands -> last group has 2 padded lanes, masked to zero
        assert np.all(norm_outputs["norm2"].data[:, :, 2:] == 0)

    def test_executors_agree(self, cube):
        graph = build_normalization_graph(bands=10)
        inputs = group_streams(cube.astype(np.float32))
        inputs["zero"] = Stream.zeros("zero", 8, 7)
        cpu = CpuExecutor().run(graph, inputs)
        gpu = GpuExecutor().run(graph, {k: s.copy()
                                        for k, s in inputs.items()})
        for name in ("total", "entropy", "norm0", "log2"):
            np.testing.assert_array_equal(cpu[name].data, gpu[name].data)

    def test_invalid_bands(self):
        with pytest.raises(StreamError):
            build_normalization_graph(bands=0)


class TestCumulativeGraph:
    def test_pair_sids_match_reference(self, cube, norm_outputs):
        from repro.core.mei import cumulative_distances

        pairs = ((0, 4), (4, 8), (2, 6))
        graph = build_cumulative_graph(bands=10, radius=1, pairs=pairs)
        inputs = {name: norm_outputs[name].copy(name)
                  for name in graph.inputs if name != "zero"}
        inputs["zero"] = Stream.zeros("zero", 8, 7)
        out = CpuExecutor().run(graph, inputs)

        normalized = normalize_image(cube)
        _, pair_maps = cumulative_distances(normalized, 1,
                                            return_pair_maps=True)
        for a, b in pairs:
            np.testing.assert_allclose(out[f"sid_{a}_{b}"].scalar(),
                                       pair_maps[(a, b)],
                                       rtol=1e-3, atol=1e-5)

    def test_full_pairs_reproduce_cumulative(self, cube, norm_outputs):
        graph = build_cumulative_graph(bands=10, radius=1)
        inputs = {name: norm_outputs[name].copy(name)
                  for name in graph.inputs if name != "zero"}
        inputs["zero"] = Stream.zeros("zero", 8, 7)
        out = CpuExecutor().run(graph, inputs)
        ref = mei_reference(cube)
        k_count = len(se_offsets(1))
        for k in range(k_count):
            np.testing.assert_allclose(out[f"accum{k}"].scalar(),
                                       ref.cumulative[:, :, k],
                                       rtol=2e-3, atol=1e-4)

    def test_invalid_pair_rejected(self):
        with pytest.raises(StreamError, match="invalid SE pair"):
            build_cumulative_graph(bands=10, radius=1, pairs=((3, 3),))
        with pytest.raises(StreamError, match="invalid SE pair"):
            build_cumulative_graph(bands=10, radius=1, pairs=((0, 9),))

    def test_graph_is_inspectable_data(self):
        graph = build_cumulative_graph(bands=10, radius=1,
                                       pairs=((0, 8),))
        # one cross chain (3 groups), one sid, two accums, two aliases
        assert graph.step_count() == 3 + 1 + 2 + 2
        assert "sid_0_8" in graph.outputs
