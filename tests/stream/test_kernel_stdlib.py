"""Tests for the standard kernel library (convolution, blur, sobel)."""

import numpy as np
import pytest
from scipy.ndimage import convolve as nd_convolve

from repro.errors import StreamError
from repro.stream import CpuExecutor, StageGraph, Step, Stream
from repro.stream.kernel import convolve2d, gaussian_blur, sobel_magnitude


def _run_kernel(kernel, image):
    graph = StageGraph("k", inputs=("a",),
                       steps=(Step(kernel, {"a": "a"}, "out"),),
                       outputs=("out",))
    stream = Stream.from_scalar("a", image.astype(np.float32))
    return CpuExecutor().run(graph, {"a": stream})["out"].scalar()


class TestConvolve2d:
    def test_matches_scipy_interior(self, rng):
        image = rng.uniform(size=(12, 14))
        weights = rng.uniform(-1, 1, size=(3, 3))
        got = _run_kernel(convolve2d("c", weights), image)
        want = nd_convolve(image, weights[::-1, ::-1], mode="nearest")
        np.testing.assert_allclose(got[1:-1, 1:-1], want[1:-1, 1:-1],
                                   rtol=1e-5, atol=1e-6)

    def test_identity_kernel(self, rng):
        image = rng.uniform(size=(6, 6))
        got = _run_kernel(convolve2d("id", [[0, 0, 0], [0, 1, 0],
                                            [0, 0, 0]]), image)
        np.testing.assert_allclose(got, image, rtol=1e-6)

    def test_zero_coefficients_skipped(self):
        kernel = convolve2d("sparse", [[0, 1, 0], [0, 0, 0], [0, 0, 0]])
        assert kernel.shader.stats.static_fetches == 1

    def test_even_extent_rejected(self):
        with pytest.raises(StreamError, match="odd"):
            convolve2d("bad", np.ones((2, 3)))

    def test_all_zero_rejected(self):
        with pytest.raises(StreamError, match="all zero"):
            convolve2d("bad", np.zeros((3, 3)))


class TestGaussianBlur:
    def test_preserves_mean_of_constant(self):
        got = _run_kernel(gaussian_blur("g", radius=2), np.full((9, 9), 3.0))
        np.testing.assert_allclose(got, 3.0, rtol=1e-5)

    def test_smooths_noise(self, rng):
        image = rng.normal(0, 1, size=(32, 32))
        got = _run_kernel(gaussian_blur("g", radius=2), image)
        assert got.std() < 0.5 * image.std()

    def test_radius_validation(self):
        with pytest.raises(StreamError):
            gaussian_blur("g", radius=0)


class TestSobel:
    def test_flat_image_zero(self):
        got = _run_kernel(sobel_magnitude("s"), np.full((8, 8), 2.0))
        np.testing.assert_allclose(got, 0.0, atol=1e-5)

    def test_vertical_edge_detected(self):
        image = np.zeros((10, 10))
        image[:, 5:] = 1.0
        got = _run_kernel(sobel_magnitude("s"), image)
        # response concentrated on the two columns around the edge
        assert got[:, 4:6].mean() > 10 * (got[:, :3].mean() + 1e-9)

    def test_nonnegative(self, rng):
        got = _run_kernel(sobel_magnitude("s"), rng.uniform(size=(9, 9)))
        assert np.all(got >= 0)
