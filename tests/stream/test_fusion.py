"""Tests for the pass-fusion compiler (repro.stream.optimize).

Contracts: fused graphs are bit-identical to unfused on both executors,
fusion blockers (multi-consumer, graph outputs, dependent fetches,
``max_group``) are honoured, the fused launch is cheaper in the cost
model while counting every instruction, the halo of a fused graph never
exceeds the unfused chain's, and the shared structural memo hoists
repeated subexpressions across fused parts.
"""

import numpy as np
import pytest

from repro.errors import ShaderValidationError, StreamError
from repro.gpu import GEFORCE_7800GTX, VirtualGPU
from repro.gpu import shaderir as ir
from repro.stream import (
    CpuExecutor,
    FusedStep,
    GpuExecutor,
    StageGraph,
    Step,
    Stream,
    StreamKernel,
    fuse_elementwise,
    graph_halo,
    optimize,
    run_chunked,
)
from repro.stream.kernel import map_binary, map_scale_bias, stencil_sum


def _scale(name):
    return map_scale_bias(name)


def _log_clamped(name):
    body = ir.log(ir.max_(ir.TexFetch("a"), 1e-6))
    return StreamKernel.from_expression(name, body, inputs=("a",))


def _chain_graph():
    """x -> scale/bias -> log -> stencil -> +x: a 4-step fusable chain."""
    st = stencil_sum("st", ((0, 0), (0, 1), (1, 0), (-1, 0), (0, -1)))
    return StageGraph(
        "chain", inputs=("x",),
        steps=(Step(_scale("sb"), {"a": "x"}, "t1",
                    uniforms={"scale": np.float32(2.0),
                              "bias": np.float32(0.5)}),
               Step(_log_clamped("lg"), {"a": "t1"}, "t2"),
               Step(st, {"a": "t2"}, "t3"),
               Step(map_binary("add", "add"), {"a": "t3", "b": "x"},
                    "out")),
        outputs=("out",))


@pytest.fixture()
def chain():
    return _chain_graph()


@pytest.fixture()
def x_stream(rng):
    return Stream.from_scalar("x", rng.uniform(size=(17, 13)))


class TestFuseElementwise:
    def test_chain_fuses_to_one_step(self, chain):
        fused = fuse_elementwise(chain)
        assert fused.step_count() == 1
        (step,) = fused.steps
        assert isinstance(step, FusedStep)
        assert step.kernel.fused_count == 4
        assert step.output == "out"
        assert step.kernel.external_inputs == ("x",)

    def test_zero_offset_intermediates_inlined(self, chain):
        """t1 (zero-offset consumer) inlines; t2 (stencil-read) and the
        final body survive as materialized parts."""
        (step,) = fuse_elementwise(chain).steps
        assert step.kernel.part_names == ("t2", "out")

    def test_cpu_bit_identical(self, chain, x_stream):
        ref = CpuExecutor().run(chain, {"x": x_stream})
        got = CpuExecutor().run(fuse_elementwise(chain), {"x": x_stream})
        np.testing.assert_array_equal(ref["out"].data, got["out"].data)

    def test_gpu_bit_identical_and_fewer_launches(self, chain, x_stream):
        oracle = VirtualGPU(GEFORCE_7800GTX, optimize="none")
        device = VirtualGPU(GEFORCE_7800GTX)
        ref = GpuExecutor(oracle).run(chain, {"x": x_stream})
        got = GpuExecutor(device).run(fuse_elementwise(chain),
                                      {"x": x_stream.copy()})
        np.testing.assert_array_equal(ref["out"].data, got["out"].data)
        assert oracle.counters.kernel_launch_count == 4
        assert device.counters.kernel_launch_count == 1

    def test_fusion_counters_recorded(self, chain, x_stream):
        device = VirtualGPU(GEFORCE_7800GTX)
        GpuExecutor(device).run(fuse_elementwise(chain), {"x": x_stream})
        assert device.counters.passes_fused == 3
        # 3 intermediate textures + the interpreter scratch
        assert device.counters.temporaries_elided == 4
        summary = device.counters.summary()
        assert summary["passes_fused"] == 3.0

    def test_fused_modeled_time_lower(self, chain, x_stream):
        oracle = VirtualGPU(GEFORCE_7800GTX, optimize="none")
        device = VirtualGPU(GEFORCE_7800GTX)
        GpuExecutor(oracle).run(chain, {"x": x_stream})
        GpuExecutor(device).run(fuse_elementwise(chain),
                                {"x": x_stream.copy()})
        assert device.counters.total_time_s < oracle.counters.total_time_s

    def test_fused_launch_counts_all_work(self, chain, x_stream):
        """The single launch record keeps every ALU instruction of the
        chain; only the fetches of *inlined* intermediates (t1, t3 —
        one each) disappear, because the value now stays in a register
        instead of round-tripping through a texture."""
        oracle = VirtualGPU(GEFORCE_7800GTX, optimize="none")
        device = VirtualGPU(GEFORCE_7800GTX)
        GpuExecutor(oracle).run(chain, {"x": x_stream})
        GpuExecutor(device).run(fuse_elementwise(chain),
                                {"x": x_stream.copy()})
        (fused_rec,) = device.counters.launches
        total_cycles = sum(r.cycles_per_fragment
                           for r in oracle.counters.launches)
        total_fetches = sum(r.static_fetches
                            for r in oracle.counters.launches)
        from repro.gpu.cost import OP_COSTS

        assert fused_rec.static_fetches == total_fetches - 2
        assert fused_rec.cycles_per_fragment == pytest.approx(
            total_cycles - 2 * OP_COSTS["tex"])

    def test_halo_preserved(self, chain):
        assert graph_halo(fuse_elementwise(chain)) == graph_halo(chain)

    def test_chunked_fused_matches_whole_unfused(self, chain, rng):
        x = Stream.from_scalar("x", rng.uniform(size=(23, 9)))
        whole = CpuExecutor().run(chain, {"x": x})
        fused = fuse_elementwise(chain)
        chunked = run_chunked(fused, {"x": x}, CpuExecutor(),
                              max_ext_lines=7)
        np.testing.assert_array_equal(whole["out"].data,
                                      chunked["out"].data)

    def test_multi_consumer_blocks_fusion(self):
        """An intermediate read twice must stay materialized."""
        dbl = StreamKernel.from_expression(
            "dbl", ir.mul(ir.TexFetch("a"), 2.0), inputs=("a",))
        add = map_binary("add", "add")
        graph = StageGraph(
            "g", inputs=("x",),
            steps=(Step(dbl, {"a": "x"}, "t"),
                   Step(add, {"a": "t", "b": "t"}, "u"),
                   Step(dbl, {"a": "t"}, "v"),
                   Step(add, {"a": "u", "b": "v"}, "out")),
            outputs=("out",))
        fused = fuse_elementwise(graph)
        # t has two consumers -> step 1 stands alone; u is only read by
        # the final add but v sits between them in program order.
        producers = fused.producers()
        assert not isinstance(producers["t"], FusedStep)

    def test_graph_output_blocks_fusion(self, chain):
        exposed = StageGraph(chain.name, inputs=chain.inputs,
                             steps=chain.steps,
                             outputs=("t2", "out"))
        fused = fuse_elementwise(exposed)
        # t2's name is part of the contract: the chain splits there.
        assert "t2" in fused.producers()
        assert fused.step_count() == 2

    def test_dynamic_fetch_blocks_fusion(self, chain):
        lookup = StreamKernel.from_expression(
            "lut", ir.TexFetchDyn("table", ir.TexFetch("a")),
            inputs=("a", "table"))
        graph = StageGraph(
            "g", inputs=("x", "table"),
            steps=(Step(_log_clamped("lg"), {"a": "x"}, "t"),
                   Step(lookup, {"a": "t", "table": "table"}, "out")),
            outputs=("out",))
        fused = fuse_elementwise(graph)
        assert fused.step_count() == 2

    def test_max_group_bound(self, chain):
        fused = fuse_elementwise(chain, max_group=2)
        assert fused.step_count() == 2
        assert all(s.kernel.fused_count == 2 for s in fused.steps)
        with pytest.raises(StreamError, match="max_group"):
            fuse_elementwise(chain, max_group=1)

    def test_uniform_conflict_renamed_and_dedup(self, x_stream):
        """Same uniform name, different values: the second gets a fresh
        slot; identical values share one."""
        graph = StageGraph(
            "g", inputs=("x",),
            steps=(Step(_scale("s1"), {"a": "x"}, "t",
                        uniforms={"scale": np.float32(2.0),
                                  "bias": np.float32(1.0)}),
                   Step(_scale("s2"), {"a": "t"}, "out",
                        uniforms={"scale": np.float32(3.0),
                                  "bias": np.float32(1.0)})),
            outputs=("out",))
        fused = fuse_elementwise(graph)
        (step,) = fused.steps
        assert set(step.uniforms) == {"scale", "scale_f1", "bias"}
        ref = CpuExecutor().run(graph, {"x": x_stream})
        got = CpuExecutor().run(fused, {"x": x_stream})
        np.testing.assert_array_equal(ref["out"].data, got["out"].data)

    def test_optimize_fuses_by_default(self, chain, x_stream):
        assert optimize(chain).step_count() == 1
        assert optimize(chain, fuse=False).step_count() == 4
        ref = CpuExecutor().run(optimize(chain, fuse=False),
                                {"x": x_stream})
        got = CpuExecutor().run(optimize(chain), {"x": x_stream})
        np.testing.assert_array_equal(ref["out"].data, got["out"].data)


class TestSubstitute:
    def test_rename_keeps_offsets(self):
        body = ir.add(ir.TexFetch("a", 1, -1), ir.TexFetch("b"))
        out = ir.substitute(body, {"a": ("rename", "stream")})
        fetches = [n for n in ir.walk(out) if isinstance(n, ir.TexFetch)]
        assert {f.sampler for f in fetches} == {"stream", "b"}
        (moved,) = [f for f in fetches if f.sampler == "stream"]
        assert (moved.dx, moved.dy) == (1, -1)

    def test_inline_zero_offset(self):
        inner = ir.mul(ir.TexFetch("x"), 2.0)
        out = ir.substitute(ir.log(ir.TexFetch("a")),
                            {"a": ("inline", inner)})
        samplers = {n.sampler for n in ir.walk(out)
                    if isinstance(n, ir.TexFetch)}
        assert samplers == {"x"}

    def test_inline_offset_fetch_rejected(self):
        inner = ir.mul(ir.TexFetch("x"), 2.0)
        with pytest.raises(ShaderValidationError, match="offset fetch"):
            ir.substitute(ir.TexFetch("a", 1, 0), {"a": ("inline", inner)})

    def test_inline_dependent_fetch_rejected(self):
        body = ir.TexFetchDyn("a", ir.TexFetch("c"))
        with pytest.raises(ShaderValidationError, match="dependent"):
            ir.substitute(body, {"a": ("inline", ir.TexFetch("x"))})

    def test_uniform_rename(self):
        body = ir.add(ir.Uniform("u"), ir.Uniform("v"))
        out = ir.substitute(body, uniform_map={"u": "w"})
        names = {n.name for n in ir.walk(out) if isinstance(n, ir.Uniform)}
        assert names == {"w", "v"}

    def test_untouched_tree_returned_as_is(self):
        body = ir.add(ir.TexFetch("a"), 1.0)
        assert ir.substitute(body, {"other": ("rename", "z")}) is body


class TestStructuralMemo:
    def test_equal_distinct_subtrees_fetch_once(self, rng, monkeypatch):
        """Two structurally equal (but distinct) offset fetches hit the
        texture unit once per launch — the id()-memo bug this release
        fixed."""
        from repro.gpu import interpreter

        calls = {"n": 0}
        real = interpreter._fetch_static

        def counting(texture, dx, dy, fast=False):
            calls["n"] += 1
            return real(texture, dx, dy, fast)

        monkeypatch.setattr(interpreter, "_fetch_static", counting)
        body = ir.add(ir.TexFetch("a", 1, 0), ir.TexFetch("a", 1, 0))
        kernel = StreamKernel.from_expression("twice", body, inputs=("a",))
        graph = StageGraph("g", inputs=("x",),
                           steps=(Step(kernel, {"a": "x"}, "out"),),
                           outputs=("out",))
        x = Stream.from_scalar("x", rng.uniform(size=(6, 6)))
        CpuExecutor().run(graph, {"x": x})
        assert calls["n"] == 1

    def test_hoisting_across_fused_parts(self, rng, monkeypatch):
        """A fetch shared by two fused members evaluates once per fused
        launch instead of once per original pass."""
        from repro.gpu import interpreter

        calls = {"n": 0}
        real = interpreter._fetch_static

        def counting(texture, dx, dy, fast=False):
            calls["n"] += 1
            return real(texture, dx, dy, fast)

        monkeypatch.setattr(interpreter, "_fetch_static", counting)
        shift = StreamKernel.from_expression(
            "shift", ir.TexFetch("a", 0, 1), inputs=("a",))
        mix = StreamKernel.from_expression(
            "mix", ir.add(ir.TexFetch("a"), ir.TexFetch("b", 0, 1)),
            inputs=("a", "b"))
        graph = StageGraph(
            "g", inputs=("x",),
            steps=(Step(shift, {"a": "x"}, "t"),
                   Step(mix, {"a": "t", "b": "x"}, "out")),
            outputs=("out",))
        x = Stream.from_scalar("x", rng.uniform(size=(6, 6)))
        fused = fuse_elementwise(graph)
        assert fused.step_count() == 1
        CpuExecutor().run(fused, {"x": x})
        # both members read x at (0, 1): one gather serves both parts
        assert calls["n"] == 1
