"""Tests for the stage-graph optimization passes."""

import numpy as np
import pytest

from repro.errors import StreamError
from repro.gpu import shaderir as ir
from repro.stream import CpuExecutor, StageGraph, Step, Stream, StreamKernel
from repro.stream.kernel import map_binary
from repro.stream.optimize import (
    collapse_copies,
    eliminate_dead_steps,
    optimize,
)


def _dbl():
    return StreamKernel.from_expression(
        "dbl", ir.mul(ir.TexFetch("a"), 2.0), inputs=("a",))


def _copy():
    return StreamKernel.from_expression(
        "cp", ir.TexFetch("a"), inputs=("a",))


def _alias():
    return StreamKernel.from_expression(
        "alias", ir.add(ir.TexFetch("a"), ir.vec4(0.0)), inputs=("a",))


@pytest.fixture()
def x(rng):
    return Stream.from_scalar("x", rng.uniform(size=(5, 5)))


class TestDeadStepElimination:
    def test_drops_unreachable_steps(self):
        graph = StageGraph(
            "g", inputs=("x",),
            steps=(Step(_dbl(), {"a": "x"}, "used"),
                   Step(_dbl(), {"a": "x"}, "wasted"),
                   Step(_dbl(), {"a": "wasted"}, "wasted2")),
            outputs=("used",))
        slim = eliminate_dead_steps(graph)
        assert slim.step_count() == 1
        assert slim.steps[0].output == "used"

    def test_keeps_transitive_dependencies(self):
        graph = StageGraph(
            "g", inputs=("x",),
            steps=(Step(_dbl(), {"a": "x"}, "mid"),
                   Step(_dbl(), {"a": "mid"}, "out")),
            outputs=("out",))
        assert eliminate_dead_steps(graph).step_count() == 2

    def test_all_dead_rejected(self):
        graph = StageGraph("g", inputs=("x", "y"),
                           steps=(Step(_dbl(), {"a": "x"}, "unused"),),
                           outputs=("y",))
        with pytest.raises(StreamError):
            eliminate_dead_steps(graph)


class TestCollapseCopies:
    def test_pure_copy_removed(self, x):
        graph = StageGraph(
            "g", inputs=("x",),
            steps=(Step(_copy(), {"a": "x"}, "c"),
                   Step(_dbl(), {"a": "c"}, "out")),
            outputs=("out",))
        slim = collapse_copies(graph)
        assert slim.step_count() == 1
        assert slim.steps[0].inputs == {"a": "x"}

    def test_add_zero_alias_removed(self, x):
        graph = StageGraph(
            "g", inputs=("x",),
            steps=(Step(_alias(), {"a": "x"}, "al"),
                   Step(_dbl(), {"a": "al"}, "out")),
            outputs=("out",))
        assert collapse_copies(graph).step_count() == 1

    def test_output_copies_kept(self, x):
        graph = StageGraph("g", inputs=("x",),
                           steps=(Step(_copy(), {"a": "x"}, "out"),),
                           outputs=("out",))
        assert collapse_copies(graph).step_count() == 1

    def test_chained_aliases_resolved(self, x):
        graph = StageGraph(
            "g", inputs=("x",),
            steps=(Step(_copy(), {"a": "x"}, "c1"),
                   Step(_alias(), {"a": "c1"}, "c2"),
                   Step(_dbl(), {"a": "c2"}, "out")),
            outputs=("out",))
        slim = collapse_copies(graph)
        assert slim.step_count() == 1
        assert slim.steps[0].inputs == {"a": "x"}

    def test_offset_fetch_not_a_copy(self, x):
        shift = StreamKernel.from_expression(
            "shift", ir.TexFetch("a", 1, 0), inputs=("a",))
        graph = StageGraph("g", inputs=("x",),
                           steps=(Step(shift, {"a": "x"}, "s"),
                                  Step(_dbl(), {"a": "s"}, "out")),
                           outputs=("out",))
        assert collapse_copies(graph).step_count() == 2


class TestSemanticsPreserved:
    def test_optimized_graph_same_outputs(self, x, rng):
        add = map_binary("add", "add")
        graph = StageGraph(
            "g", inputs=("x", "y"),
            steps=(Step(_copy(), {"a": "x"}, "cx"),
                   Step(_dbl(), {"a": "cx"}, "x2"),
                   Step(_dbl(), {"a": "y"}, "dead"),
                   Step(_alias(), {"a": "x2"}, "x2a"),
                   Step(add, {"a": "x2a", "b": "y"}, "out")),
            outputs=("out",))
        slim = optimize(graph)
        assert slim.step_count() < graph.step_count()
        inputs = {"x": x, "y": Stream.from_scalar(
            "y", rng.uniform(size=(5, 5)))}
        full = CpuExecutor().run(graph, inputs)
        opt = CpuExecutor().run(slim, inputs)
        np.testing.assert_array_equal(full["out"].data, opt["out"].data)

    def test_amc_cumulative_graph_shrinks(self):
        """The generated AMC cumulative graph contains alias copies —
        the optimizer must remove them without changing outputs."""
        from repro.stream.amc_stages import (
            build_cumulative_graph,
            build_normalization_graph,
            group_streams,
        )

        cube = np.random.default_rng(3).uniform(0.1, 1.0, (6, 6, 8))
        norm_graph = build_normalization_graph(bands=8)
        inputs = group_streams(cube.astype(np.float32))
        inputs["zero"] = Stream.zeros("zero", 6, 6)
        norm_out = CpuExecutor().run(norm_graph, inputs)

        graph = build_cumulative_graph(bands=8, pairs=((0, 8), (2, 6)))
        gi = {n: norm_out[n].copy(n) for n in graph.inputs if n != "zero"}
        gi["zero"] = Stream.zeros("zero", 6, 6)
        # a caller that only wants one SID map narrows the outputs; the
        # optimizer must then discard the other pair's whole chain
        narrowed = StageGraph(graph.name, inputs=graph.inputs,
                              steps=graph.steps, outputs=("sid_0_8",))
        slim = optimize(narrowed)
        assert slim.step_count() < narrowed.step_count()
        a = CpuExecutor().run(graph, gi)
        b = CpuExecutor().run(slim, {n: gi[n].copy(n) for n in gi})
        np.testing.assert_array_equal(a["sid_0_8"].data,
                                      b["sid_0_8"].data)