"""Workload-generic serving: distinct cache keys, admission checks,
per-workload digests, and mixed-workload traffic through one server.

The regression this file pins (the cache-key satellite): *two distinct
workloads submitted with the same cube never collide in the cache*,
because the workload name is part of :func:`job_key` and each key is
canonicalized through the workload's own declared parameter list.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.errors import NonFiniteInputError, UnknownWorkloadError
from repro.serving import AMCServer, job_key, result_digest, result_nbytes
from repro.serving import jobs as jobstates
from repro.workloads import get_workload


def _target_of(cube):
    return tuple(float(v) for v in np.asarray(cube).reshape(
        -1, np.asarray(cube).shape[-1])[:4].mean(axis=0))


class TestJobKeys:
    def test_distinct_workloads_distinct_keys(self, small_cube):
        """Same cube, same (empty) params — keys must never collide."""
        keys = {name: job_key(small_cube, workload=name)
                for name in ("amc", "rx", "pca")}
        assert len(set(keys.values())) == 3

    def test_same_math_different_workload_still_distinct(self, small_cube):
        """rx and pca both accept default params; identity must come
        from the workload name, not the param dict."""
        assert (job_key(small_cube, {}, workload="rx")
                != job_key(small_cube, {}, workload="pca"))

    def test_key_canonicalized_through_declared_params(self, small_cube):
        target = _target_of(small_cube)
        reference = job_key(small_cube, {"target": target}, workload="sam")
        # defaults filled in, knobs stripped, order irrelevant
        assert job_key(small_cube,
                       {"target": target, "regularization": 1e-6},
                       workload="sam") == reference
        assert job_key(small_cube,
                       {"n_workers": 4, "target": target,
                        "max_retries": 2},
                       workload="sam") == reference

    def test_target_changes_the_key(self, small_cube):
        target = _target_of(small_cube)
        shifted = tuple(v + 0.25 for v in target)
        assert (job_key(small_cube, {"target": target}, workload="sam")
                != job_key(small_cube, {"target": shifted},
                           workload="sam"))

    def test_workload_instance_accepted(self, small_cube):
        assert (job_key(small_cube, workload=get_workload("rx"))
                == job_key(small_cube, workload="rx"))

    def test_unknown_workload_rejected(self, small_cube):
        with pytest.raises(UnknownWorkloadError):
            job_key(small_cube, workload="kmeans")


class TestDigests:
    def test_detection_digest_covers_scores(self, small_cube):
        result = get_workload("rx").run(small_cube)
        digest = result_digest(result, workload="rx")
        assert len(digest) == 64
        assert digest == result_digest(result, workload="rx")
        assert result_nbytes(result,
                             workload="rx") == result.scores.nbytes

    def test_reduction_digest_is_shape_sensitive(self, small_cube):
        two = get_workload("pca").run(small_cube, {"n_components": 2})
        three = get_workload("pca").run(small_cube, {"n_components": 3})
        assert (result_digest(two, workload="pca")
                != result_digest(three, workload="pca"))


class TestServerWorkloads:
    def test_detection_job_cold_then_cache_hit(self, small_cube):
        target = _target_of(small_cube)

        async def scenario():
            async with AMCServer(workers=1) as server:
                cold = await server.wait((await server.submit(
                    small_cube, {"target": target},
                    workload="sam")).job_id)
                # different execution knobs, same request identity
                warm = await server.wait((await server.submit(
                    small_cube, {"target": target, "n_workers": 2},
                    workload="sam")).job_id)
            return server, cold, warm

        server, cold, warm = asyncio.run(scenario())
        assert cold.state == warm.state == jobstates.DONE
        assert not cold.from_cache
        assert warm.from_cache
        assert warm.result_sha256 == cold.result_sha256
        assert server.stats()["pipeline_runs"] == 1

    def test_status_reports_workload_name(self, small_cube):
        async def scenario():
            async with AMCServer(workers=1) as server:
                rx = await server.wait((await server.submit(
                    small_cube, workload="rx")).job_id)
                amc = await server.wait((await server.submit(
                    small_cube, {"n_classes": 3})).job_id)
            return rx, amc

        rx, amc = asyncio.run(scenario())
        assert rx.workload == "rx"
        assert amc.workload == "amc"

    def test_mixed_workloads_do_not_collide(self, small_cube):
        """One server, four workloads, one cube: four pipeline runs,
        four distinct digests."""
        target = _target_of(small_cube)

        async def scenario():
            async with AMCServer(workers=2) as server:
                jobs = [
                    await server.submit(small_cube, {"n_classes": 3}),
                    await server.submit(small_cube, {"target": target},
                                        workload="sam"),
                    await server.submit(small_cube, workload="rx"),
                    await server.submit(small_cube, {"n_components": 2},
                                        workload="pca"),
                ]
                done = [await server.wait(j.job_id) for j in jobs]
            return server, done

        server, done = asyncio.run(scenario())
        assert all(s.state == jobstates.DONE for s in done)
        assert not any(s.from_cache for s in done)
        digests = [s.result_sha256 for s in done]
        assert len(set(digests)) == 4
        assert server.stats()["pipeline_runs"] == 4

    def test_detection_result_matches_direct_run(self, small_cube):
        """Server-mediated execution is bit-identical to a direct run."""
        async def scenario():
            async with AMCServer(workers=1) as server:
                status = await server.wait((await server.submit(
                    small_cube, workload="rx")).job_id)
                return status, server.job(status.job_id).result

        status, via_server = asyncio.run(scenario())
        direct = get_workload("rx").run(small_cube)
        np.testing.assert_array_equal(via_server.scores, direct.scores)
        assert status.result_sha256 == result_digest(direct,
                                                     workload="rx")

    def test_profile_report_labeled_with_workload(self, small_cube):
        async def scenario():
            async with AMCServer(workers=1) as server:
                status = await server.wait((await server.submit(
                    small_cube, workload="rx")).job_id)
                return server.job(status.job_id)

        job = asyncio.run(scenario())
        assert job.report.meta["workload"] == "rx"
        assert [s.name for s in job.report.stages] == [
            "statistics", "scores", "evaluation"]

    def test_non_finite_cube_rejected_at_submit(self, small_cube):
        bad = np.array(small_cube, dtype=np.float64)
        bad[0, 0, 0] = np.nan

        async def scenario():
            async with AMCServer(workers=1) as server:
                with pytest.raises(NonFiniteInputError):
                    await server.submit(bad, workload="rx")
                with pytest.raises(NonFiniteInputError):
                    await server.submit(bad, {"n_classes": 3})
                return server.stats()

        stats = asyncio.run(scenario())
        assert stats["counters"]["submitted"] == 0
        assert stats["pipeline_runs"] == 0

    def test_unknown_workload_rejected_at_submit(self, small_cube):
        async def scenario():
            async with AMCServer(workers=1) as server:
                with pytest.raises(UnknownWorkloadError):
                    await server.submit(small_cube, workload="kmeans")

        asyncio.run(scenario())

    def test_default_params_do_not_leak_across_workloads(self, small_cube):
        """Server-level default params belong to the default workload
        only; a sam submission must not inherit AMC's n_classes."""
        target = _target_of(small_cube)

        async def scenario():
            async with AMCServer(workers=1,
                                 default_params={"n_classes": 3}) as server:
                amc = await server.wait((await server.submit(
                    small_cube)).job_id)
                sam = await server.wait((await server.submit(
                    small_cube, {"target": target},
                    workload="sam")).job_id)
            return amc, sam

        amc, sam = asyncio.run(scenario())
        assert amc.state == sam.state == jobstates.DONE

    def test_detection_ground_truth_scored(self, small_cube):
        target = _target_of(small_cube)
        mask = np.zeros(small_cube.shape[:2], dtype=bool)
        mask[:2, :2] = True

        async def scenario():
            async with AMCServer(workers=1) as server:
                status = await server.wait((await server.submit(
                    small_cube, {"target": target}, workload="sam",
                    ground_truth=mask)).job_id)
                return server.job(status.job_id).result

        result = asyncio.run(scenario())
        assert result.curve is not None
        assert 0.0 <= result.auc <= 1.0
