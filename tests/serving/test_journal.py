"""The write-ahead job journal: append/replay round trips, the torn-tail
crash signature, corruption refusal, compaction, and the payload spill.

The journal's contract is narrow and checkable: once ``append`` returns
the record is on disk; replay folds latest-state-wins per job; a torn
*final* line is the expected crash-mid-append signature (discarded,
flagged), while garbage earlier in the file is external damage and
refuses recovery loudly.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import faults
from repro.core import AMCConfig
from repro.errors import JournalCorruptError, TransientFaultError
from repro.faults import FaultInjector, FaultSpec
from repro.serving import JobJournal
from repro.serving import jobs as jobstates


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.uninstall()
    faults.set_attempt(0)
    yield
    faults.uninstall()
    faults.set_attempt(0)


@pytest.fixture()
def journal(tmp_path):
    return JobJournal(str(tmp_path / "state"))


def _lifecycle(journal, job_id, key, *states, **kw):
    for state in states:
        journal.append(state, job_id=job_id, key=key, workload="amc", **kw)


class TestReplay:
    def test_latest_state_wins_and_executions_are_counted(self, journal):
        _lifecycle(journal, 1, "k1", "queued", "running", "done")
        _lifecycle(journal, 2, "k2", "queued", "running")
        journal.append("queued", job_id=2, key="k2")   # watchdog requeue
        journal.append("running", job_id=2, key="k2", generation=1)
        journal.close()

        report = journal.replay()
        assert not report.torn_tail
        assert report.records == 7
        assert report.max_job_id == 2
        assert report.jobs[1].state == jobstates.DONE
        assert report.jobs[1].executions == 1
        assert report.jobs[2].state == jobstates.RUNNING
        assert report.jobs[2].executions == 2      # the durable ledger
        assert report.jobs[2].generation == 1
        assert report.by_state(jobstates.RUNNING) == [report.jobs[2]]

    def test_digest_and_error_round_trip(self, journal):
        journal.append("done", job_id=1, key="k1", digest="abc123")
        journal.append("failed", job_id=2, key="k2",
                       error="StuckJobError: no heartbeat")
        journal.close()
        report = journal.replay()
        assert report.jobs[1].digest == "abc123"
        assert report.jobs[2].error == "StuckJobError: no heartbeat"

    def test_empty_and_missing_journals_replay_clean(self, journal):
        assert journal.replay().jobs == {}

    def test_torn_final_line_is_discarded_not_fatal(self, journal):
        _lifecycle(journal, 1, "k1", "queued", "running")
        journal.close()
        with open(journal.path, "ab") as fh:     # simulate a torn append
            fh.write(b'{"v": 1, "seq": 3, "job_id": 1, "key": "k1", "sta')
        report = journal.replay()
        assert report.torn_tail
        assert report.jobs[1].state == jobstates.RUNNING

    def test_mid_file_garbage_refuses_recovery(self, journal):
        _lifecycle(journal, 1, "k1", "queued", "running", "done")
        journal.close()
        lines = open(journal.path, "rb").read().splitlines()
        lines[1] = b"!! not json !!"
        with open(journal.path, "wb") as fh:
            fh.write(b"\n".join(lines) + b"\n")
        with pytest.raises(JournalCorruptError, match="externally damaged"):
            journal.replay()

    def test_unknown_state_in_tail_counts_as_torn(self, journal):
        journal.append("queued", job_id=1, key="k1")
        journal.close()
        with open(journal.path, "ab") as fh:
            fh.write(json.dumps({"v": 1, "seq": 2, "job_id": 1,
                                 "key": "k1", "state": "zombie"}).encode()
                     + b"\n")
        report = journal.replay()
        assert report.torn_tail
        assert report.jobs[1].state == jobstates.QUEUED


class TestCompaction:
    def test_compact_folds_to_one_record_per_job(self, journal):
        _lifecycle(journal, 1, "k1", "queued", "running", "done")
        _lifecycle(journal, 2, "k2", "queued", "running")
        journal.close()
        report = journal.replay()
        assert journal.compact(report) == 2
        lines = open(journal.path, "rb").read().splitlines()
        assert len(lines) == 2
        compacted = journal.replay()
        assert {j.job_id: j.state for j in compacted.jobs.values()} == {
            1: jobstates.DONE, 2: jobstates.RUNNING}

    def test_appends_continue_after_compaction(self, journal):
        _lifecycle(journal, 1, "k1", "queued", "running", "done")
        journal.compact(journal.replay())
        journal.append("queued", job_id=2, key="k2")
        journal.close()
        report = journal.replay()
        assert set(report.jobs) == {1, 2}


class TestPayloadSpill:
    def test_spill_load_drop_round_trip(self, journal, small_cube):
        config = AMCConfig(n_classes=3)
        journal.spill_payload("k1", bip=small_cube, config=config,
                              workload="amc", class_names=("a", "b"))
        payload = journal.load_payload("k1")
        assert payload["workload"] == "amc"
        assert payload["config"] == config
        assert payload["class_names"] == ("a", "b")
        assert (payload["bip"] == small_cube).all()
        assert journal.stats()["spilled_payloads"] == 1
        assert journal.drop_payload("k1")
        assert journal.load_payload("k1") is None
        assert not journal.drop_payload("k1")

    def test_corrupt_payload_is_quarantined_not_trusted(self, journal):
        path = journal._payload_path("bad")
        with open(path, "wb") as fh:
            fh.write(b"\x80\x05 truncated garbage")
        assert journal.load_payload("bad") is None
        assert os.path.exists(path + ".quarantined")
        assert not os.path.exists(path)


class TestFaultSite:
    def test_journal_write_fault_surfaces_as_transient(self, journal):
        faults.install(FaultInjector([
            FaultSpec(kind="transient", site="journal_write", index=7,
                      attempt=None)]))
        with pytest.raises(TransientFaultError):
            journal.append("queued", job_id=7, key="k7")
        # other job ids are untouched
        journal.append("queued", job_id=8, key="k8")
        journal.close()
        assert set(journal.replay().jobs) == {8}
