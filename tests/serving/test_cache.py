"""Content addressing and the result cache.

The dedup guarantees of the serving layer rest entirely on the key:
two requests are one job exactly when :func:`job_key` says so.  These
tests pin the canonicalization rules (permuted/defaulted params hash
equal, execution knobs are excluded, any byte or result-affecting
parameter change separates keys) and the LRU/budget behaviour of
:class:`ResultCache`.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.core import AMCConfig
from repro.serving import (
    EXECUTION_KNOBS,
    ResultCache,
    canonical_params,
    canonical_params_json,
    job_key,
    result_nbytes,
)


class TestCanonicalization:
    def test_defaulted_forms_hash_equal(self, small_cube):
        """None, {}, a default-valued dict and a default AMCConfig are
        one job."""
        reference = job_key(small_cube)
        assert job_key(small_cube, {}) == reference
        assert job_key(small_cube, {"backend": "reference"}) == reference
        assert job_key(small_cube, AMCConfig()) == reference

    def test_param_order_is_irrelevant(self, small_cube):
        a = job_key(small_cube, {"n_classes": 4, "se_radius": 2})
        b = job_key(small_cube, {"se_radius": 2, "n_classes": 4})
        assert a == b

    def test_execution_knobs_do_not_change_the_key(self, small_cube):
        """n_workers/max_retries/chunk_timeout_s select a strategy, not
        a result — a parallel request must hit a serially-computed
        cache entry."""
        base = job_key(small_cube, {"n_classes": 4})
        assert job_key(small_cube, {"n_classes": 4,
                                    "n_workers": 4}) == base
        assert job_key(small_cube, {"n_classes": 4, "max_retries": 7,
                                    "chunk_timeout_s": 2.5}) == base

    def test_result_affecting_param_changes_the_key(self, small_cube):
        base = job_key(small_cube, {"n_classes": 4})
        assert job_key(small_cube, {"n_classes": 5}) != base
        assert job_key(small_cube, {"n_classes": 4,
                                    "unmixing": "lsu"}) != base

    def test_cube_bytes_change_the_key(self, small_cube):
        tweaked = small_cube.copy()
        tweaked[0, 0, 0] += 1e-6
        assert job_key(tweaked) != job_key(small_cube)

    def test_ground_truth_and_names_participate(self, small_cube):
        gt = np.zeros(small_cube.shape[:2], dtype=np.int32)
        base = job_key(small_cube)
        with_gt = job_key(small_cube, ground_truth=gt)
        assert with_gt != base
        assert job_key(small_cube, ground_truth=gt,
                       class_names=["a", "b"]) != with_gt

    def test_canonical_params_excludes_exactly_the_knobs(self):
        fields = canonical_params({"n_classes": 4})
        assert not EXECUTION_KNOBS & set(fields)
        assert fields["n_classes"] == 4
        assert "backend" in fields and "unmixing" in fields
        # deterministic JSON form: independent of input ordering
        assert (canonical_params_json({"n_classes": 4, "se_radius": 2})
                == canonical_params_json({"se_radius": 2, "n_classes": 4}))

    def test_invalid_params_fail_at_canonicalization(self):
        with pytest.raises(TypeError):
            canonical_params({"no_such_field": 1})


def _result(payload_bytes: int) -> SimpleNamespace:
    """An AMCResult-shaped stub whose retained size is controllable."""
    one = np.zeros(1, dtype=np.uint8)
    return SimpleNamespace(
        mei=np.zeros(payload_bytes, dtype=np.uint8),
        erosion_index=one, dilation_index=one, abundances=one,
        labels=one,
        endmembers=SimpleNamespace(spectra=one, normalized=one),
        endmember_labels=None)


class TestResultCache:
    def test_hit_miss_and_served_counters(self):
        cache = ResultCache(max_entries=4, max_bytes=1 << 20)
        assert cache.get("k") is None
        assert cache.put("k", _result(10), digest="d")
        entry = cache.get("k")
        assert entry is not None and entry.digest == "d"
        assert cache.get("k").served == 2
        assert cache.stats.as_dict() == {
            "hits": 2, "misses": 1, "evictions": 0,
            "insertions": 1, "oversize_skips": 0}

    def test_entry_budget_evicts_lru(self):
        cache = ResultCache(max_entries=2, max_bytes=1 << 20)
        cache.put("a", _result(10))
        cache.put("b", _result(10))
        cache.get("a")                      # refresh: b is now LRU
        cache.put("c", _result(10))
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats.evictions == 1

    def test_byte_budget_evicts_until_it_fits(self):
        # each _result(n) retains n + 6 bytes (six 1-byte side arrays)
        cache = ResultCache(max_entries=16, max_bytes=140)
        cache.put("a", _result(50))
        cache.put("b", _result(50))
        cache.put("c", _result(100))        # must evict both
        assert len(cache) == 1 and "c" in cache
        assert cache.stats.evictions == 2
        assert cache.current_bytes == 106

    def test_oversize_results_are_refused(self):
        cache = ResultCache(max_entries=4, max_bytes=64)
        assert not cache.put("huge", _result(1000))
        assert len(cache) == 0
        assert cache.stats.oversize_skips == 1

    def test_reinsert_refreshes_in_place(self):
        cache = ResultCache(max_entries=4, max_bytes=1 << 20)
        cache.put("k", _result(10))
        cache.put("k", _result(10))
        assert len(cache) == 1
        assert cache.stats.insertions == 2
        assert cache.stats.evictions == 0

    def test_result_nbytes_counts_array_payloads(self):
        assert result_nbytes(_result(100)) == 100 + 6
