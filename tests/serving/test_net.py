"""The unix-socket protocol: submit/status/wait/cancel/stats/shutdown
round trips, error shaping, and the cube-reference loading path.

The client half (:func:`repro.serving.request`) is blocking by design,
so the tests drive it through ``run_in_executor`` against an in-process
:class:`UnixSocketFrontend`.
"""

from __future__ import annotations

import asyncio
import os

import numpy as np
import pytest

from repro.hsi import SceneParams, generate_scene
from repro.hsi.envi import write_cube
from repro.serving import AMCServer, UnixSocketFrontend, request

PARAMS = {"n_classes": 3}


@pytest.fixture()
def scene_path(tmp_path):
    """A small on-disk ENVI scene with its ground-truth sidecar."""
    scene = generate_scene(SceneParams(lines=16, samples=16,
                                       band_count=24, seed=11,
                                       min_field=4))
    path = str(tmp_path / "scene.raw")
    write_cube(scene.cube, path)
    np.save(path + ".gt.npy", scene.ground_truth)
    return path


def _roundtrip(scene_path, tmp_path, requests):
    """Run ``requests`` (payload dicts) against a live frontend; return
    the response list."""
    sock = str(tmp_path / "amc.sock")

    async def scenario():
        loop = asyncio.get_running_loop()
        async with AMCServer(workers=1) as server:
            frontend = UnixSocketFrontend(server, sock)
            await frontend.start()
            try:
                responses = []
                for payload in requests:
                    responses.append(await loop.run_in_executor(
                        None, request, sock, payload))
                return server, responses
            finally:
                await frontend.stop()

    return asyncio.run(scenario())


class TestProtocol:
    def test_submit_wait_profile_and_outputs(self, scene_path, tmp_path):
        server, (response,) = _roundtrip(scene_path, tmp_path, [
            {"op": "submit", "cube": scene_path, "params": PARAMS,
             "wait": True, "profile": True, "write_outputs": True},
        ])
        assert response["ok"]
        job = response["job"]
        assert job["state"] == "done"
        assert job["result_sha256"]
        assert job["overall_accuracy"] is not None  # the gt sidecar loaded
        stages = [s["name"] for s in response["profile"]["stages"]]
        assert stages == ["morphology", "endmembers", "unmixing",
                          "classification", "evaluation"]
        assert os.path.exists(response["outputs"]["mei"])
        assert os.path.exists(response["outputs"]["classes"])

    def test_duplicate_submission_is_served_from_cache(self, scene_path,
                                                       tmp_path):
        server, (first, second) = _roundtrip(scene_path, tmp_path, [
            {"op": "submit", "cube": scene_path, "params": PARAMS},
            {"op": "submit", "cube": scene_path, "params": PARAMS},
        ])
        assert not first["job"]["from_cache"]
        assert second["job"]["from_cache"]
        assert (second["job"]["result_sha256"]
                == first["job"]["result_sha256"])
        assert server.pipeline_runs == 1

    def test_status_and_stats(self, scene_path, tmp_path):
        server, (submit, status, stats) = _roundtrip(scene_path, tmp_path, [
            {"op": "submit", "cube": scene_path, "params": PARAMS},
            {"op": "status", "job_id": 1},
            {"op": "stats"},
        ])
        assert status["job"]["state"] == "done"
        assert stats["stats"]["counters"]["completed"] == 1
        assert stats["stats"]["pipeline_runs"] == 1

    def test_errors_come_back_shaped_not_raised(self, scene_path,
                                                tmp_path):
        server, responses = _roundtrip(scene_path, tmp_path, [
            {"op": "frobnicate"},
            {"op": "status", "job_id": 42},
            {"op": "submit", "cube": scene_path,
             "params": {"no_such_field": 1}},
            {"op": "submit", "cube": str(tmp_path / "missing.raw")},
        ])
        unknown_op, missing_job, bad_params, missing_cube = responses
        assert not unknown_op["ok"] and "frobnicate" in unknown_op["message"]
        assert missing_job["error"] == "JobNotFoundError"
        assert bad_params["error"] == "TypeError"
        assert not missing_cube["ok"]

    def test_health_reports_every_subsystem(self, scene_path, tmp_path):
        server, (submit, health) = _roundtrip(scene_path, tmp_path, [
            {"op": "submit", "cube": scene_path, "params": PARAMS,
             "wait": True},
            {"op": "health"},
        ])
        assert submit["ok"] and health["ok"]
        snapshot = health["health"]
        assert snapshot["running"]
        assert snapshot["workers"] == 1
        assert snapshot["queue"]["depth"] == 0
        assert snapshot["counters"]["completed"] == 1
        assert snapshot["pipeline_runs"] == 1
        # no state_dir / watchdog on this server: reported, not omitted
        assert snapshot["journal"] is None
        assert snapshot["cache"]["disk"] is None
        assert snapshot["watchdog"] == {"enabled": False}

    def test_shutdown_request_releases_the_frontend(self, scene_path,
                                                    tmp_path):
        sock = str(tmp_path / "amc.sock")

        async def scenario():
            loop = asyncio.get_running_loop()
            async with AMCServer(workers=1) as server:
                frontend = UnixSocketFrontend(server, sock)
                await frontend.start()
                response = await loop.run_in_executor(
                    None, request, sock, {"op": "shutdown"})
                # returns promptly because the shutdown op set the event
                await asyncio.wait_for(frontend.serve_until_shutdown(),
                                       timeout=5.0)
                return response

        response = asyncio.run(scenario())
        assert response["ok"] and response["stopping"]
        assert not os.path.exists(sock)


class TestWorkloadRequests:
    """The ``workload`` and ``target_class`` wire fields."""

    def _a_label(self, scene_path):
        labels = np.load(scene_path + ".gt.npy")
        values, counts = np.unique(labels[labels != 0],
                                   return_counts=True)
        return int(values[counts.argmax()])

    def test_detection_submit_via_target_class(self, scene_path,
                                               tmp_path):
        """`target_class` turns the gt sidecar into a SAM request: the
        class mean becomes the target, its footprint the eval mask."""
        label = self._a_label(scene_path)
        server, (response,) = _roundtrip(scene_path, tmp_path, [
            {"op": "submit", "cube": scene_path, "workload": "sam",
             "target_class": label, "profile": True},
        ])
        job = response["job"]
        assert job["state"] == "done"
        assert job["workload"] == "sam"
        stages = [s["name"] for s in response["profile"]["stages"]]
        assert stages == ["statistics", "scores", "evaluation"]
        assert response["profile"]["meta"]["workload"] == "sam"

    def test_rx_needs_no_target_and_drops_label_sidecar(self, scene_path,
                                                        tmp_path):
        """An anomaly detector takes no target; the label-map sidecar
        must not leak into its evaluation."""
        server, (response,) = _roundtrip(scene_path, tmp_path, [
            {"op": "submit", "cube": scene_path, "workload": "rx"},
        ])
        assert response["job"]["state"] == "done"
        assert response["job"]["workload"] == "rx"
        result = server.job(response["job"]["job_id"]).result
        assert result.curve is None

    def test_distinct_workloads_distinct_cache_entries(self, scene_path,
                                                       tmp_path):
        server, (rx, pca) = _roundtrip(scene_path, tmp_path, [
            {"op": "submit", "cube": scene_path, "workload": "rx"},
            {"op": "submit", "cube": scene_path, "workload": "pca"},
        ])
        assert not rx["job"]["from_cache"]
        assert not pca["job"]["from_cache"]
        assert rx["job"]["result_sha256"] != pca["job"]["result_sha256"]
        assert server.pipeline_runs == 2

    def test_write_outputs_skipped_for_label_free_results(self, scene_path,
                                                          tmp_path):
        """Detection results carry no class map; the submit op must not
        try to render one."""
        server, (response,) = _roundtrip(scene_path, tmp_path, [
            {"op": "submit", "cube": scene_path, "workload": "rx",
             "write_outputs": True},
        ])
        assert response["job"]["state"] == "done"
        assert "outputs" not in response

    def test_target_class_errors_are_shaped(self, scene_path, tmp_path):
        """Missing sidecar / empty class come back as error responses."""
        bare = str(tmp_path / "bare.raw")
        scene = generate_scene(SceneParams(lines=12, samples=12,
                                           band_count=24, seed=5,
                                           min_field=4))
        write_cube(scene.cube, bare)   # no .gt.npy sidecar
        server, (no_sidecar, empty_class, unknown) = _roundtrip(
            scene_path, tmp_path, [
                {"op": "submit", "cube": bare, "workload": "sam",
                 "target_class": 1},
                {"op": "submit", "cube": scene_path, "workload": "sam",
                 "target_class": 9999},
                {"op": "submit", "cube": scene_path,
                 "workload": "kmeans"},
            ])
        assert not no_sidecar["ok"]
        assert "sidecar" in no_sidecar["message"]
        assert not empty_class["ok"]
        assert "9999" in empty_class["message"]
        assert not unknown["ok"]
        assert unknown["error"] == "UnknownWorkloadError"
