"""Client-side backoff: the retry loop around ``request``, driven by a
fake server, a recording sleep, and a virtual monotonic clock — no real
sockets and no real time.

The contract under test: busy responses and connection errors retry
with exponentially growing, hint-floored, jittered delays until the
monotonic budget cannot cover the next sleep; conclusive responses
(success or real errors) return immediately; budget 0 is bit-for-bit
the historical single-attempt behavior.
"""

from __future__ import annotations

import pytest

from repro.serving import backoff_delays, submit_with_retry

BUSY = {"ok": False, "error": "ServerBusyError", "message": "queue full",
        "retry_after_s": 0.5}
OK = {"ok": True, "job_id": 1}
SHAPE_ERROR = {"ok": False, "error": "ShapeError", "message": "not 3-D"}


class FakeServer:
    """Scripted responses; an exception instance in the script raises."""

    def __init__(self, *script):
        self.script = list(script)
        self.calls = 0

    def __call__(self, socket_path, payload, *, timeout_s=None):
        self.calls += 1
        outcome = self.script.pop(0) if self.script else OK
        if isinstance(outcome, Exception):
            raise outcome
        return outcome


class VirtualTime:
    """A monotonic clock that only sleep() advances."""

    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def clock(self):
        return self.now

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.now += seconds


def _submit(server, vt, **kw):
    return submit_with_retry("/none", {"op": "submit"},
                             request_fn=server, sleep=vt.sleep,
                             clock=vt.clock, **kw)


class TestConclusiveResponses:
    def test_success_returns_without_sleeping(self):
        server, vt = FakeServer(OK), VirtualTime()
        assert _submit(server, vt, retry_budget_s=60.0) == OK
        assert server.calls == 1
        assert vt.sleeps == []

    def test_real_errors_are_not_retried(self):
        """A ShapeError will not get better on attempt two."""
        server, vt = FakeServer(SHAPE_ERROR), VirtualTime()
        assert _submit(server, vt, retry_budget_s=60.0) == SHAPE_ERROR
        assert server.calls == 1
        assert vt.sleeps == []


class TestBudgetZero:
    def test_busy_returns_immediately(self):
        server, vt = FakeServer(BUSY), VirtualTime()
        response = _submit(server, vt)              # default budget 0
        assert response["retry_after_s"] == 0.5
        assert server.calls == 1 and vt.sleeps == []

    def test_connection_error_raises_immediately(self):
        server = FakeServer(ConnectionRefusedError("refused"))
        with pytest.raises(ConnectionRefusedError):
            _submit(server, VirtualTime())
        assert server.calls == 1

    def test_negative_budget_is_rejected(self):
        with pytest.raises(ValueError, match="retry_budget_s"):
            _submit(FakeServer(), VirtualTime(), retry_budget_s=-1.0)


class TestRetrying:
    def test_busy_then_ok_with_hint_floor(self):
        """One busy rejection: the single sleep sits at or above the
        server's hint, at or below the hint (jitter never exceeds 1)."""
        server, vt = FakeServer(BUSY, OK), VirtualTime()
        response = _submit(server, vt, retry_budget_s=60.0,
                           base_delay_s=0.25, jitter_seed=7)
        assert response == OK
        assert server.calls == 2
        [delay] = vt.sleeps
        # exponential term is 0.25 but the hint (0.5) floors it; jitter
        # then scales into [0.5, 1.0] of that
        assert 0.25 <= delay <= 0.5

    def test_restarting_server_is_ridden_out(self):
        """Connection errors retry under the same budget — a restart
        looks like refused connections until the socket re-binds."""
        server = FakeServer(ConnectionRefusedError("down"),
                            FileNotFoundError("no socket"), OK)
        vt = VirtualTime()
        response = _submit(server, vt, retry_budget_s=60.0,
                           jitter_seed=3)
        assert response == OK
        assert server.calls == 3
        assert len(vt.sleeps) == 2
        assert vt.sleeps[1] > vt.sleeps[0] * 0.5   # schedule still grows

    def test_budget_exhaustion_returns_last_busy_response(self):
        server, vt = FakeServer(BUSY, BUSY, BUSY, BUSY), VirtualTime()
        response = _submit(server, vt, retry_budget_s=1.0,
                           base_delay_s=0.4, jitter_seed=1)
        assert response["error"] == "ServerBusyError"
        # every sleep taken fit inside the budget
        assert sum(vt.sleeps) <= 1.0
        assert server.calls == len(vt.sleeps) + 1

    def test_budget_exhaustion_reraises_last_connection_error(self):
        server = FakeServer(*[ConnectionRefusedError(f"try {i}")
                              for i in range(10)])
        vt = VirtualTime()
        with pytest.raises(ConnectionRefusedError, match="try"):
            _submit(server, vt, retry_budget_s=1.0, base_delay_s=0.4,
                    jitter_seed=1)
        assert sum(vt.sleeps) <= 1.0

    def test_delays_grow_exponentially_and_cap(self):
        server = FakeServer(*([BUSY] * 8), OK)
        vt = VirtualTime()
        no_hint = dict(BUSY, retry_after_s=0.0)
        server.script = [no_hint] * 8 + [OK]
        _submit(server, vt, retry_budget_s=1000.0, base_delay_s=0.25,
                max_delay_s=2.0, jitter_seed=5)
        raw = [0.25 * 2.0 ** n for n in range(8)]
        for slept, expected in zip(vt.sleeps, raw):
            capped = min(expected, 2.0)
            assert capped * 0.5 <= slept <= capped


class TestBackoffDelays:
    def test_same_seed_same_schedule(self):
        kw = dict(base_delay_s=0.25, max_delay_s=10.0, attempts=6)
        first = backoff_delays(jitter_seed=42, **kw)
        second = backoff_delays(jitter_seed=42, **kw)
        assert first == second
        assert backoff_delays(jitter_seed=43, **kw) != first

    def test_schedule_matches_the_live_loop(self):
        """backoff_delays is the documented oracle for what a hintless
        retry loop sleeps."""
        server = FakeServer(*([dict(BUSY, retry_after_s=0.0)] * 4), OK)
        vt = VirtualTime()
        _submit(server, vt, retry_budget_s=1000.0, base_delay_s=0.25,
                max_delay_s=10.0, jitter_seed=42)
        assert vt.sleeps == backoff_delays(
            base_delay_s=0.25, max_delay_s=10.0, jitter_seed=42,
            attempts=4)

    def test_jitter_bounds(self):
        delays = backoff_delays(base_delay_s=1.0, max_delay_s=1.0,
                                jitter_seed=0, attempts=100)
        assert all(0.5 <= d <= 1.0 for d in delays)
