"""Restart recovery: journal replay recreates history, re-enqueues
interrupted jobs from their spilled payloads, and never re-executes
completed work — with results bit-identical to a crash-free run.

Crashes are simulated in-process by *not* stopping the first server
cleanly where noted (the journal is written ahead of every action, so
a dirty handle drop is exactly what a SIGKILL leaves behind; the true
process-kill path is ``test_chaos_recovery.py``).
"""

from __future__ import annotations

import asyncio

import pytest

from repro import faults
from repro.core import AMCConfig, run_amc
from repro.errors import InvalidCubeError
from repro.faults import FaultInjector, FaultSpec
from repro.serving import AMCServer, JobJournal, job_key, result_digest
from repro.serving import jobs as jobstates

PARAMS = {"n_classes": 3}


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.uninstall()
    faults.set_attempt(0)
    yield
    faults.uninstall()
    faults.set_attempt(0)


def _state(tmp_path):
    return str(tmp_path / "state")


class TestTerminalReplay:
    def test_done_jobs_replay_without_reexecution(self, small_cube,
                                                  tmp_path):
        async def first_life():
            async with AMCServer(workers=1,
                                 state_dir=_state(tmp_path)) as server:
                job = await server.submit(small_cube, PARAMS)
                await server.wait(job.job_id)
                return job.result_sha256

        async def second_life():
            async with AMCServer(workers=1,
                                 state_dir=_state(tmp_path)) as server:
                replayed = server.status(1)
                resubmit = await server.submit(small_cube, PARAMS)
                return server, replayed, resubmit

        digest = asyncio.run(first_life())
        server, replayed, resubmit = asyncio.run(second_life())

        assert replayed.state == jobstates.DONE
        assert replayed.recovered
        assert replayed.result_sha256 == digest
        # the resubmission is served from the disk tier: same digest,
        # promoted to memory, and the pipeline never ran
        assert resubmit.from_cache
        assert resubmit.result_sha256 == digest
        assert resubmit.job_id == 2              # ids continue past replay
        assert server.pipeline_runs == 0
        assert server.counters.disk_cache_hits == 1

    def test_failed_jobs_replay_as_history(self, small_cube, tmp_path):
        # an unrecovered crash (no retry budget) fails the job honestly
        faults.install(FaultInjector([
            FaultSpec(kind="worker_crash", site="job", index=1,
                      attempt=None)]))

        async def first_life():
            async with AMCServer(workers=1,
                                 state_dir=_state(tmp_path)) as server:
                job = await server.submit(small_cube, PARAMS)
                await server.wait(job.job_id)
                return server.status(job.job_id).error

        async def second_life():
            async with AMCServer(workers=1,
                                 state_dir=_state(tmp_path)) as server:
                return server.status(1)

        error = asyncio.run(first_life())
        replayed = asyncio.run(second_life())
        assert replayed.state == jobstates.FAILED
        assert replayed.recovered
        assert replayed.error == error


class TestInterruptedReplay:
    def _crash_with_inflight_job(self, cube, tmp_path, *,
                                 spill_payload=True):
        """Hand-write the journal a crashed server leaves behind: a job
        journaled queued+running whose execution never finished."""
        config = AMCConfig(**PARAMS)
        key = job_key(cube, config)
        journal = JobJournal(_state(tmp_path))
        if spill_payload:
            journal.spill_payload(key, bip=cube, config=config,
                                  workload="amc")
        journal.append("queued", job_id=3, key=key, workload="amc")
        journal.append("running", job_id=3, key=key, workload="amc")
        journal.close()
        return key

    def test_interrupted_job_reenqueues_and_completes(self, small_cube,
                                                      tmp_path):
        self._crash_with_inflight_job(small_cube, tmp_path)
        oneshot = result_digest(run_amc(small_cube, AMCConfig(**PARAMS)))

        async def recovered_life():
            async with AMCServer(workers=1,
                                 state_dir=_state(tmp_path)) as server:
                status = await server.wait(3)
                duplicate = await server.submit(small_cube, PARAMS)
                return server, status, duplicate

        server, status, duplicate = asyncio.run(recovered_life())
        assert status.state == jobstates.DONE
        assert status.recovered
        assert status.result_sha256 == oneshot
        assert server.counters.recovered == 1
        assert server.pipeline_runs == 1             # exactly once
        # the resubmission after recovery hits the caches, not the
        # pipeline — and new ids continue past the replayed one
        assert duplicate.from_cache or duplicate.coalesced
        assert duplicate.job_id == 4

    def test_interrupted_job_journal_ledger_shows_one_new_claim(
            self, small_cube, tmp_path):
        self._crash_with_inflight_job(small_cube, tmp_path)

        async def recovered_life():
            async with AMCServer(workers=1,
                                 state_dir=_state(tmp_path)) as server:
                await server.wait(3)
            return JobJournal(_state(tmp_path)).replay()

        report = asyncio.run(recovered_life())
        job = report.jobs[3]
        assert job.state == jobstates.DONE
        # compaction folded the crashed claim into one record; the
        # recovered execution added exactly one more
        assert job.executions == 2

    def test_lost_payload_fails_the_job_explicitly(self, small_cube,
                                                   tmp_path):
        self._crash_with_inflight_job(small_cube, tmp_path,
                                      spill_payload=False)

        async def recovered_life():
            async with AMCServer(workers=1,
                                 state_dir=_state(tmp_path)) as server:
                return server.status(3), server.counters.failed

        status, failed = asyncio.run(recovered_life())
        assert status.state == jobstates.FAILED
        assert status.recovered
        assert "payload lost" in status.error
        assert failed == 1

    def test_torn_journal_tail_does_not_block_startup(self, small_cube,
                                                      tmp_path):
        key = self._crash_with_inflight_job(small_cube, tmp_path)
        journal_path = JobJournal(_state(tmp_path)).path
        with open(journal_path, "ab") as fh:
            fh.write(b'{"v": 1, "seq": 3, "job_id": 3, "key": "' +
                     key.encode() + b'", "sta')

        async def recovered_life():
            async with AMCServer(workers=1,
                                 state_dir=_state(tmp_path)) as server:
                return await server.wait(3)

        assert asyncio.run(recovered_life()).state == jobstates.DONE


class TestAdmissionValidation:
    def test_zero_sized_cube_is_rejected_at_submit(self, tmp_path):
        import numpy as np

        empty = np.empty((0, 4, 5))

        async def scenario():
            async with AMCServer(workers=1) as server:
                with pytest.raises(InvalidCubeError, match="zero-sized"):
                    await server.submit(empty, PARAMS)
                return server.counters.submitted, len(server._jobs)

        submitted, jobs = asyncio.run(scenario())
        assert submitted == 0 and jobs == 0      # never occupied a slot

    @pytest.mark.parametrize("shape", [(0, 4, 5), (4, 0, 5), (4, 5, 0)])
    def test_any_zero_dimension_is_invalid(self, shape):
        import numpy as np

        from repro.workloads import get_workload

        with pytest.raises(InvalidCubeError, match=str(shape)):
            get_workload("amc").check_inputs(np.empty(shape))


class TestHealth:
    def test_health_snapshot_reports_every_subsystem(self, small_cube,
                                                     tmp_path):
        async def scenario():
            async with AMCServer(workers=1, state_dir=_state(tmp_path),
                                 watchdog_deadline_s=30.0) as server:
                job = await server.submit(small_cube, PARAMS)
                await server.wait(job.job_id)
                return server.health()

        health = asyncio.run(scenario())
        assert health["running"]
        assert health["queue"]["maxsize"] == 16
        assert health["journal"]["appended"] == 3    # queued/running/done
        assert health["journal"]["write_errors"] == 0
        assert health["cache"]["memory"]["insertions"] == 1
        assert health["cache"]["disk"]["insertions"] == 1
        assert health["watchdog"]["enabled"]
        assert health["pipeline_runs"] == 1
        assert health["counters"]["completed"] == 1

    def test_health_without_durable_tier(self, small_cube):
        async def scenario():
            async with AMCServer(workers=1) as server:
                return server.health()

        health = asyncio.run(scenario())
        assert health["journal"] is None
        assert health["cache"]["disk"] is None
        assert health["watchdog"] == {"enabled": False}
