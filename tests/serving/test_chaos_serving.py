"""Chaos acceptance for the serving layer: faults degrade one job, and
the results that do come out are bit-identical to one-shot runs.

The campaign stacks a worker crash at the job site (the serving
executor's own retry loop recovers it) with a GPU OOM at the chunk site
(the job runs chunk-parallel, so the degradation planner re-chunks
inside the attempt) — under concurrent submissions, one of them a
duplicate that must coalesce rather than re-execute.

The server runs one worker: the injector's attempt counter is a
process-wide global, so single-threaded serving keeps fault coordinates
deterministic.
"""

from __future__ import annotations

import asyncio

import pytest

from repro import faults
from repro.core import AMCConfig, run_amc
from repro.faults import FaultInjector, FaultSpec
from repro.serving import AMCServer, result_digest
from repro.serving import jobs as jobstates


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.uninstall()
    faults.set_attempt(0)
    yield
    faults.uninstall()
    faults.set_attempt(0)


def test_crash_and_oom_under_concurrent_submissions(small_cube):
    """Job 1 eats a crash (job-level retry) and an OOM (chunk-level
    degradation); job 2 runs clean; the duplicate of job 1 coalesces.
    Every produced result matches its fault-free one-shot digest."""
    chaotic_params = {"n_classes": 3, "n_workers": 2, "max_retries": 1,
                      "chunk_timeout_s": 5.0}
    clean_params = {"n_classes": 4}
    oneshot_chaotic = result_digest(run_amc(small_cube,
                                            AMCConfig(n_classes=3)))
    oneshot_clean = result_digest(run_amc(small_cube,
                                          AMCConfig(n_classes=4)))

    faults.install(FaultInjector([
        # first execution attempt of job 1 dies; the retry runs clean
        FaultSpec(kind="worker_crash", site="job", index=1, attempt=0),
        # any chunk wider than 5 extended lines OOMs -> the 2-worker
        # plan (6 ext lines on a 10-line cube) must degrade-replan
        FaultSpec(kind="gpu_oom", attempt=None, ext_lines_above=5),
    ]))

    async def scenario():
        async with AMCServer(workers=1) as server:
            chaotic, duplicate, clean = await asyncio.gather(
                server.submit(small_cube, chaotic_params),
                server.submit(small_cube, chaotic_params),
                server.submit(small_cube, clean_params))
            assert duplicate is chaotic
            await asyncio.gather(server.wait(chaotic.job_id),
                                 server.wait(clean.job_id))
            return server, chaotic, clean

    server, chaotic, clean = asyncio.run(scenario())

    assert chaotic.state == jobstates.DONE
    assert chaotic.retries == 1                  # the crash cost one retry
    assert chaotic.coalesced == 1
    assert chaotic.result_sha256 == oneshot_chaotic
    # the OOM recovery is visible in the surviving attempt's report
    assert any(e.kind == "oom_degrade" for e in chaotic.report.events)

    assert clean.state == jobstates.DONE
    assert clean.retries == 0
    assert clean.result_sha256 == oneshot_clean

    # two distinct keys -> exactly two pipeline executions, no more
    assert server.pipeline_runs == 2
    assert server.counters.coalesced == 1
    assert server.counters.failed == 0


def test_fault_exhaustion_fails_the_job_not_the_server(small_cube):
    """Retries exhausted -> FAILED with the error recorded; the cache
    holds nothing for that key, and a later clean run succeeds."""
    faults.install(FaultInjector([
        FaultSpec(kind="worker_crash", site="job", index=1, attempt=None),
    ]))

    async def scenario():
        async with AMCServer(workers=1) as server:
            doomed = await server.submit(
                small_cube, {"n_classes": 3, "max_retries": 2})
            status = await server.wait(doomed.job_id)
            assert status.state == jobstates.FAILED
            assert "WorkerCrashError" in status.error
            assert doomed.key not in server.cache
            # fault pinned to job_id 1: the resubmission executes clean
            fresh = await server.submit(
                small_cube, {"n_classes": 3, "max_retries": 2})
            final = await server.wait(fresh.job_id)
            return server, final

    server, final = asyncio.run(scenario())
    assert final.state == jobstates.DONE
    assert final.result_sha256 == result_digest(
        run_amc(small_cube, AMCConfig(n_classes=3)))
    assert server.counters.failed == 1
    assert server.counters.completed == 1
