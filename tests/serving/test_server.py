"""AMCServer behaviour: lifecycle, dedup, backpressure, isolation.

The acceptance criterion these tests own: *a duplicate submission
performs zero pipeline executions* — verified against the pipeline
run counter, not timing — *and returns a bit-identical result*
(sha256 equal to a one-shot :func:`run_amc` of the same request).

Tests drive the server with ``asyncio.run`` from synchronous test
functions (no async test plugin needed).
"""

from __future__ import annotations

import asyncio

import pytest

from repro import faults
from repro.core import AMCConfig, run_amc
from repro.errors import JobNotFoundError, ServerBusyError, ServerClosedError
from repro.faults import FaultInjector, FaultSpec
from repro.serving import AMCServer, result_digest
from repro.serving import jobs as jobstates


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.uninstall()
    faults.set_attempt(0)
    yield
    faults.uninstall()
    faults.set_attempt(0)


PARAMS = {"n_classes": 3}


async def _until_state(server, job_id, state, tries=200):
    for _ in range(tries):
        if server.status(job_id).state == state:
            return
        await asyncio.sleep(0.01)
    raise AssertionError(
        f"job {job_id} never reached {state!r} "
        f"(now {server.status(job_id).state!r})")


class TestLifecycle:
    def test_submit_requires_running_server(self, small_cube):
        async def scenario():
            server = AMCServer(workers=1)
            with pytest.raises(ServerClosedError):
                await server.submit(small_cube, PARAMS)

        asyncio.run(scenario())

    def test_job_reaches_done_with_report_and_digest(self, small_cube):
        async def scenario():
            async with AMCServer(workers=1) as server:
                job = await server.submit(small_cube, PARAMS)
                status = await server.wait(job.job_id)
            return server, status

        server, status = asyncio.run(scenario())
        assert status.state == jobstates.DONE
        assert not status.from_cache
        assert status.result_sha256
        # the per-job profile went through the standard pipeline path:
        # one record per stage, in order, with the job's identity in meta
        job = server.job(status.job_id)
        assert [s.name for s in job.report.stages] == [
            "morphology", "endmembers", "unmixing",
            "classification", "evaluation"]
        assert job.report.meta["job"] == status.job_id
        # terminal jobs drop their request payload
        assert job.bip is None

    def test_unknown_job_id_raises(self, small_cube):
        async def scenario():
            async with AMCServer(workers=1) as server:
                with pytest.raises(JobNotFoundError):
                    server.status(999)

        asyncio.run(scenario())


class TestDedup:
    def test_duplicates_cost_zero_extra_executions(self, small_cube):
        """3 concurrent identical + 1 later identical submission = one
        pipeline run; every result is bit-identical to one-shot
        run_amc."""
        oneshot = result_digest(run_amc(small_cube, AMCConfig(**PARAMS)))

        async def scenario():
            async with AMCServer(workers=2) as server:
                first = await server.submit(small_cube, PARAMS)
                second = await server.submit(small_cube, PARAMS)
                third = await server.submit(small_cube, PARAMS)
                # identical in-flight submissions coalesce to one Job
                assert second is first and third is first
                await server.wait(first.job_id)
                # the work is finished and cached: a fresh submission
                # is born done without touching the queue
                fourth = await server.submit(small_cube, PARAMS)
                assert fourth is not first
                assert fourth.state == jobstates.DONE
                assert fourth.from_cache
                return server, first, fourth

        server, first, fourth = asyncio.run(scenario())
        assert server.pipeline_runs == 1          # the acceptance gate
        assert first.coalesced == 2
        assert first.result_sha256 == oneshot
        assert fourth.result_sha256 == oneshot
        counters = server.counters
        assert counters.submitted == 4
        assert counters.coalesced == 2
        assert counters.cache_hits == 1
        assert counters.executed == 1

    def test_execution_knobs_hit_the_same_cache_entry(self, small_cube):
        """A parallel request is a cache hit for a serial result."""
        async def scenario():
            async with AMCServer(workers=1) as server:
                job = await server.submit(small_cube, PARAMS)
                await server.wait(job.job_id)
                knobbed = await server.submit(
                    small_cube, dict(PARAMS, n_workers=4, max_retries=5))
                return server, job, knobbed

        server, job, knobbed = asyncio.run(scenario())
        assert knobbed.from_cache
        assert knobbed.result_sha256 == job.result_sha256
        assert server.pipeline_runs == 1

    def test_distinct_params_do_not_dedup(self, small_cube):
        async def scenario():
            async with AMCServer(workers=1) as server:
                a = await server.submit(small_cube, {"n_classes": 3})
                b = await server.submit(small_cube, {"n_classes": 4})
                assert b is not a
                await server.wait(a.job_id)
                await server.wait(b.job_id)
                return server

        server = asyncio.run(scenario())
        assert server.pipeline_runs == 2


class TestBackpressureAndCancel:
    def test_full_queue_rejects_with_retry_hint(self, small_cube):
        """One worker stalled + queue of one = the third distinct job
        bounces with a load-proportional retry_after_s."""
        faults.install(FaultInjector([
            FaultSpec(kind="timeout", site="job", index=1, sleep_s=0.4),
        ]))

        async def scenario():
            async with AMCServer(workers=1, queue_size=1,
                                 estimated_job_s=2.0) as server:
                stalled = await server.submit(small_cube, {"n_classes": 3})
                await _until_state(server, stalled.job_id,
                                   jobstates.RUNNING)
                queued = await server.submit(small_cube, {"n_classes": 4})
                with pytest.raises(ServerBusyError) as excinfo:
                    await server.submit(small_cube, {"n_classes": 5})
                # depth 1 ahead + the rejected one, at 2 s per job
                assert excinfo.value.retry_after_s == pytest.approx(4.0)
                # the rejected submission left no job record behind
                assert {j.job_id for j in server.job_statuses()} == {
                    stalled.job_id, queued.job_id}
                await server.wait(stalled.job_id)
                await server.wait(queued.job_id)
                return server

        server = asyncio.run(scenario())
        assert server.counters.rejected == 1
        assert server.queue.rejected == 1

    def test_queued_job_can_be_cancelled(self, small_cube):
        faults.install(FaultInjector([
            FaultSpec(kind="timeout", site="job", index=1, sleep_s=0.4),
        ]))

        async def scenario():
            async with AMCServer(workers=1, queue_size=4) as server:
                stalled = await server.submit(small_cube, {"n_classes": 3})
                await _until_state(server, stalled.job_id,
                                   jobstates.RUNNING)
                queued = await server.submit(small_cube, {"n_classes": 4})
                status = await server.cancel(queued.job_id)
                assert status.state == jobstates.CANCELLED
                # cancelling a running job is a no-op, not an error
                still = await server.cancel(stalled.job_id)
                assert still.state == jobstates.RUNNING
                await server.wait(stalled.job_id)
                return server

        server = asyncio.run(scenario())
        assert server.counters.cancelled == 1
        assert server.pipeline_runs == 1      # the cancelled job never ran

    def test_failed_job_does_not_poison_the_server(self, small_cube):
        """A job that exhausts its retries fails alone; the next
        submission of the *same key* executes fresh (failures are not
        cached)."""
        faults.install(FaultInjector([
            FaultSpec(kind="transient", site="job", index=1, attempt=None),
        ]))

        async def scenario():
            async with AMCServer(workers=1) as server:
                doomed = await server.submit(
                    small_cube, dict(PARAMS, max_retries=1))
                status = await server.wait(doomed.job_id)
                assert status.state == jobstates.FAILED
                assert "TransientFaultError" in status.error
                # same key, next submission: the fault spec is pinned to
                # job_id 1, so this one runs clean
                retry = await server.submit(
                    small_cube, dict(PARAMS, max_retries=1))
                final = await server.wait(retry.job_id)
                assert final.state == jobstates.DONE
                return server

        server = asyncio.run(scenario())
        assert server.counters.failed == 1
        assert server.counters.completed == 1

    def test_stop_without_drain_cancels_queued_jobs(self, small_cube):
        faults.install(FaultInjector([
            FaultSpec(kind="timeout", site="job", index=1, sleep_s=0.4),
        ]))

        async def scenario():
            server = await AMCServer(workers=1, queue_size=4).start()
            stalled = await server.submit(small_cube, {"n_classes": 3})
            await _until_state(server, stalled.job_id, jobstates.RUNNING)
            queued = await server.submit(small_cube, {"n_classes": 4})
            await server.stop(drain=False)
            return server, stalled, queued

        server, stalled, queued = asyncio.run(scenario())
        assert stalled.state == jobstates.DONE       # running jobs finish
        assert queued.state == jobstates.CANCELLED
        assert server.pipeline_runs == 1
