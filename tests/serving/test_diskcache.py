"""The disk cache tier: sha-verified service, quarantine of damaged
entries, seq-ordered eviction, index persistence, and fault containment.

The tier's promise is that nothing corrupt is ever served: every load
recomputes the result digest from the loaded arrays through the
workload contract, and any mismatch/unpicklable/orphaned file lands in
``quarantine/`` (evidence kept) rather than being retried or deleted.
"""

from __future__ import annotations

import os

import pytest

from repro import faults
from repro.core import AMCConfig, run_amc
from repro.faults import FaultInjector, FaultSpec
from repro.serving import DiskCacheTier, result_digest


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.uninstall()
    faults.set_attempt(0)
    yield
    faults.uninstall()
    faults.set_attempt(0)


@pytest.fixture(scope="module")
def amc_result():
    import numpy as np

    cube = np.random.default_rng(12345).uniform(
        0.05, 1.0, size=(6, 5, 6))
    return run_amc(cube, AMCConfig(n_classes=3))


@pytest.fixture()
def tier(tmp_path):
    return DiskCacheTier(str(tmp_path / "cache"))


class TestRoundTrip:
    def test_put_get_verifies_digest(self, tier, amc_result):
        digest = result_digest(amc_result)
        assert tier.put("k1", amc_result, digest=digest)
        entry = tier.get("k1")
        assert entry is not None
        assert entry.digest == digest
        assert result_digest(entry.result) == digest
        assert tier.stats.hits == 1

    def test_unknown_key_is_a_plain_miss(self, tier):
        assert tier.get("nope") is None
        assert tier.stats.misses == 1
        assert tier.stats.quarantined == 0

    def test_index_survives_a_new_instance(self, tier, tmp_path,
                                           amc_result):
        tier.put("k1", amc_result, digest=result_digest(amc_result))
        reopened = DiskCacheTier(str(tmp_path / "cache"))
        assert "k1" in reopened
        entry = reopened.get("k1")
        assert entry is not None
        assert result_digest(entry.result) == result_digest(amc_result)


class TestQuarantine:
    def _entry_file(self, tier, key):
        return os.path.join(tier.directory, f"{key}.res")

    def test_digest_mismatch_is_quarantined_never_served(self, tier,
                                                         amc_result):
        # store under a digest the arrays cannot reproduce — the load
        # path must recompute, notice, and refuse to serve
        tier.put("k1", amc_result, digest="0" * 64)
        path = self._entry_file(tier, "k1")
        assert tier.get("k1") is None
        assert tier.stats.quarantined == 1
        assert not os.path.exists(path)
        assert os.path.exists(os.path.join(tier.quarantine_dir, "k1.res"))
        # quarantined means forgotten: the next lookup is a plain miss
        assert tier.get("k1") is None
        assert tier.stats.quarantined == 1

    def test_truncated_entry_is_quarantined(self, tier, amc_result):
        tier.put("k1", amc_result, digest=result_digest(amc_result))
        path = self._entry_file(tier, "k1")
        data = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(data[: len(data) // 3])
        assert tier.get("k1") is None
        assert tier.stats.quarantined == 1

    def test_orphan_files_are_quarantined_on_load(self, tier, tmp_path,
                                                  amc_result):
        with open(self._entry_file(tier, "orphan"), "wb") as fh:
            fh.write(b"no index entry owns me")
        reopened = DiskCacheTier(str(tmp_path / "cache"))
        assert "orphan" not in reopened
        assert reopened.stats.quarantined == 1


class TestBudget:
    def test_eviction_is_oldest_insertion_first(self, tmp_path,
                                                amc_result):
        tier = DiskCacheTier(str(tmp_path / "cache"), max_bytes=250)
        tier.put("k1", amc_result, digest=result_digest(amc_result),
                 nbytes=100)
        tier.put("k2", amc_result, digest=result_digest(amc_result),
                 nbytes=100)
        tier.put("k3", amc_result, digest=result_digest(amc_result),
                 nbytes=100)
        assert "k1" not in tier
        assert "k2" in tier and "k3" in tier
        assert tier.stats.evictions == 1

    def test_oversize_results_are_refused(self, tmp_path, amc_result):
        tier = DiskCacheTier(str(tmp_path / "cache"), max_bytes=10)
        assert not tier.put("k1", amc_result, nbytes=100)
        assert tier.stats.oversize_skips == 1
        assert len(tier) == 0


class TestFaultContainment:
    def test_disk_write_fault_is_counted_not_raised(self, tier,
                                                    amc_result):
        faults.install(FaultInjector([
            FaultSpec(kind="transient", site="cache_disk", index=None,
                      attempt=None)]))
        assert not tier.put("k1", amc_result)
        assert tier.stats.write_errors == 1
        assert "k1" not in tier

    def test_disk_read_fault_is_a_miss_not_quarantine(self, tier,
                                                      amc_result):
        tier.put("k1", amc_result, digest=result_digest(amc_result))
        faults.install(FaultInjector([
            FaultSpec(kind="transient", site="cache_disk", index=None,
                      attempt=None)]))
        assert tier.get("k1") is None
        assert tier.stats.quarantined == 0
        faults.uninstall()
        assert tier.get("k1") is not None    # the entry itself is fine
