"""The full crash drill: SIGKILL a real server process mid-job, restart
it on the same state directory, and hold it to the durability promises —
the interrupted job completes with a result sha256-identical to a
crash-free run, and the journal's execution ledger shows zero duplicate
pipeline executions.

Unlike ``test_recovery.py`` (which simulates crashes in-process), this
suite kills an actual ``repro serve`` subprocess with SIGKILL — no
atexit handlers, no flush, no goodbye — which is the strongest claim
the journal's fsync discipline can be tested against.  The in-flight
job is wedged deterministically with a ``REPRO_FAULTS`` timeout at the
``job`` site (60 s, far beyond the test), so the kill always lands
while the execution claim is journaled but unfinished.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.faults import FaultInjector, FaultSpec
from repro.hsi import SceneParams, generate_scene
from repro.hsi.envi import write_cube
from repro.serving import JobJournal, request
from repro.serving import jobs as jobstates

REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))
SRC = os.path.join(REPO_ROOT, "src")

#: One wedged first execution: the fault stalls job 1 inside the
#: executor long enough that SIGKILL always wins the race.
WEDGE = FaultInjector([FaultSpec(kind="timeout", site="job", index=1,
                                 attempt=None, sleep_s=60.0)])

SERVE_FLAGS = ["--workers", "1", "--classes", "3"]


@pytest.fixture()
def scene_path(tmp_path):
    scene = generate_scene(SceneParams(lines=16, samples=16,
                                       band_count=24, seed=11,
                                       min_field=4))
    path = str(tmp_path / "scene.raw")
    write_cube(scene.cube, path)
    return path


def _spawn_server(sock, state_dir=None, *, faults_json=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_FAULTS", None)
    if faults_json is not None:
        env["REPRO_FAULTS"] = faults_json
    argv = ["serve", "--socket", sock, *SERVE_FLAGS]
    if state_dir is not None:
        argv += ["--state-dir", state_dir]
    code = ("import sys\nfrom repro.cli import main\n"
            f"sys.exit(main({argv!r}))\n")
    return subprocess.Popen([sys.executable, "-c", code], env=env,
                            stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT)


def _request_when_up(sock, payload, *, budget_s=30.0):
    """One request, retrying connection errors while the server boots."""
    deadline = time.monotonic() + budget_s
    while True:
        try:
            return request(sock, payload, timeout_s=10.0)
        except OSError:
            if time.monotonic() > deadline:
                raise
            time.sleep(0.1)


def _wait_for_state(sock, job_id, states, *, budget_s=60.0):
    deadline = time.monotonic() + budget_s
    while True:
        response = _request_when_up(sock, {"op": "status",
                                           "job_id": job_id})
        if response.get("ok") and response["job"]["state"] in states:
            return response["job"]
        assert time.monotonic() < deadline, (
            f"job {job_id} never reached {states}: {response}")
        time.sleep(0.1)


def _shutdown(proc, sock):
    if proc.poll() is None:
        try:
            request(sock, {"op": "shutdown"}, timeout_s=10.0)
        except OSError:
            proc.kill()
        proc.wait(timeout=30.0)


class TestSigkillRecovery:
    def test_killed_server_recovers_without_duplicate_execution(
            self, scene_path, tmp_path):
        state = str(tmp_path / "state")
        sock = str(tmp_path / "amc.sock")
        submit = {"op": "submit", "cube": scene_path, "params": {},
                  "wait": False}

        # -- life 1: wedge job 1, journal it, SIGKILL mid-execution ----
        wedged = _spawn_server(sock, state, faults_json=WEDGE.to_json())
        try:
            response = _request_when_up(sock, submit)
            assert response["ok"] and response["job"]["job_id"] == 1
            _wait_for_state(sock, 1, {jobstates.RUNNING})
            os.kill(wedged.pid, signal.SIGKILL)
            wedged.wait(timeout=30.0)
        finally:
            if wedged.poll() is None:
                wedged.kill()
                wedged.wait(timeout=30.0)

        # the crash left an unfinished execution claim behind
        crash_report = JobJournal(state).replay()
        assert crash_report.jobs[1].state == jobstates.RUNNING
        assert crash_report.jobs[1].executions == 1

        # -- life 2: clean restart on the same state dir ---------------
        revived = _spawn_server(sock, state)
        try:
            job = _wait_for_state(sock, 1, {jobstates.DONE,
                                            jobstates.FAILED})
            assert job["state"] == jobstates.DONE
            assert job["recovered"]
            recovered_digest = job["result_sha256"]

            # resubmission is pure cache: same digest, no new execution
            duplicate = _request_when_up(
                sock, dict(submit, wait=True))["job"]
            assert duplicate["from_cache"]
            assert duplicate["result_sha256"] == recovered_digest
            assert duplicate["job_id"] == 2

            health = _request_when_up(sock, {"op": "health"})["health"]
            assert health["counters"]["recovered"] == 1
            assert health["pipeline_runs"] == 1
            assert health["journal"]["appended"] >= 2
        finally:
            _shutdown(revived, sock)

        # -- the durable run-count ledger ------------------------------
        # one claim died with the crash (compacted), one ran to DONE;
        # the cache-served resubmission added nothing
        final_report = JobJournal(state).replay()
        assert final_report.jobs[1].state == jobstates.DONE
        assert final_report.jobs[1].executions == 2
        assert 2 not in final_report.jobs      # job 2 never re-executed

        # -- the oracle: a crash-free server on a fresh state dir ------
        pristine_sock = str(tmp_path / "pristine.sock")
        pristine = _spawn_server(pristine_sock,
                                 str(tmp_path / "pristine-state"))
        try:
            oracle = _request_when_up(
                pristine_sock, dict(submit, wait=True))["job"]
            assert oracle["state"] == jobstates.DONE
        finally:
            _shutdown(pristine, pristine_sock)
        assert oracle["result_sha256"] == recovered_digest
