"""The stuck-job watchdog: heartbeat plumbing, per-workload deadlines,
rescue-by-requeue under the retry budget, and honest failure past it.

A wedge is simulated with a ``timeout`` fault at the
``heartbeat_stall`` site: the executor thread sleeps *between* its
heartbeat and the pipeline run, which is exactly what a stuck
uninterruptible call looks like from the event loop.  The generation
guard is what makes the rescue sound — the zombie attempt eventually
wakes up and reports, and its late outcome must be dropped, not
allowed to overwrite the rescued run.
"""

from __future__ import annotations

import asyncio

import pytest

from repro import faults
from repro.core import AMCConfig, run_amc
from repro.errors import ServingError, StuckJobError
from repro.faults import FaultInjector, FaultSpec
from repro.serving import AMCServer, Heartbeat, Watchdog, result_digest
from repro.serving import jobs as jobstates


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.uninstall()
    faults.set_attempt(0)
    yield
    faults.uninstall()
    faults.set_attempt(0)


def _stall(job_id, *, attempt, sleep_s=1.0):
    """Install a wedge: the executor stalls without beating."""
    faults.install(FaultInjector([
        FaultSpec(kind="timeout", site="heartbeat_stall", index=job_id,
                  attempt=attempt, sleep_s=sleep_s)]))


class TestHeartbeat:
    def test_beat_resets_the_age(self):
        heartbeat = Heartbeat()
        assert heartbeat.age() < 0.5
        heartbeat._last -= 10.0          # pretend 10 s of silence
        assert heartbeat.age() > 9.0
        heartbeat.beat()
        assert heartbeat.age() < 0.5

    def test_invalid_watchdog_parameters_are_rejected(self):
        with pytest.raises(ServingError, match="deadline_s"):
            Watchdog(None, deadline_s=0.0)
        with pytest.raises(ServingError, match="poll_s"):
            Watchdog(None, deadline_s=1.0, poll_s=-1.0)

    def test_workload_deadline_overrides_the_default(self):
        class _Workload:
            watchdog_deadline_s = 2.5

        class _Job:
            workload = _Workload()

        watchdog = Watchdog(None, deadline_s=30.0)
        assert watchdog.deadline_for(_Job()) == 2.5
        _Workload.watchdog_deadline_s = None
        assert watchdog.deadline_for(_Job()) == 30.0


class TestRescue:
    def test_stalled_job_is_requeued_and_completes(self, small_cube):
        """A wedge on generation 0 with one retry in the budget: the
        watchdog requeues, the rescue runs clean (attempt numbering is
        generation-disjoint, so the fault does not re-fire), and the
        zombie's late outcome is stale-dropped."""
        _stall(1, attempt=0, sleep_s=1.0)
        oneshot = result_digest(
            run_amc(small_cube, AMCConfig(n_classes=3)))

        async def scenario():
            async with AMCServer(workers=1, watchdog_deadline_s=0.15,
                                 watchdog_poll_s=0.05) as server:
                job = await server.submit(
                    small_cube, {"n_classes": 3, "max_retries": 1})
                status = await server.wait(job.job_id)
                # give the zombie attempt time to wake up and be dropped
                await asyncio.sleep(1.2)
                return server, job, status

        server, job, status = asyncio.run(scenario())
        assert status.state == jobstates.DONE
        assert status.result_sha256 == oneshot     # bit-identical rescue
        assert job.watchdog_requeues == 1
        assert job.generation == 1
        assert server.watchdog.requeued == 1
        assert server.watchdog.failed == 0
        assert server.counters.stale_drops == 1    # the zombie's outcome
        assert server.counters.completed == 1
        # the rescue is visible: a watchdog event rode into the report
        kinds = [e.kind for e in job.report.events]
        assert "watchdog" in kinds

    def test_budget_exhaustion_fails_with_stuck_job_error(self,
                                                          small_cube):
        """No retries in the budget: the watchdog must not loop — it
        fails the job with a diagnosis instead."""
        _stall(1, attempt=None, sleep_s=1.0)       # every attempt wedges

        async def scenario():
            async with AMCServer(workers=1, watchdog_deadline_s=0.15,
                                 watchdog_poll_s=0.05) as server:
                job = await server.submit(
                    small_cube, {"n_classes": 3, "max_retries": 0})
                status = await server.wait(job.job_id)
                await asyncio.sleep(1.2)
                return server, job, status

        server, job, status = asyncio.run(scenario())
        assert status.state == jobstates.FAILED
        assert isinstance(job.error, StuckJobError)
        assert "retry budget" in status.error
        assert server.watchdog.failed == 1
        assert server.watchdog.requeued == 0
        assert server.counters.failed == 1
        assert server.counters.stale_drops == 1

    def test_healthy_jobs_are_never_condemned(self, small_cube):
        """A generous deadline with a fast job: the watchdog polls but
        touches nothing."""
        async def scenario():
            async with AMCServer(workers=1, watchdog_deadline_s=30.0,
                                 watchdog_poll_s=0.01) as server:
                job = await server.submit(small_cube, {"n_classes": 3})
                status = await server.wait(job.job_id)
                return server, status

        server, status = asyncio.run(scenario())
        assert status.state == jobstates.DONE
        assert server.watchdog.requeued == 0
        assert server.watchdog.failed == 0
        assert server.counters.stale_drops == 0

    def test_watchdog_state_in_health(self, small_cube):
        _stall(1, attempt=0, sleep_s=1.0)

        async def scenario():
            async with AMCServer(workers=1, watchdog_deadline_s=0.15,
                                 watchdog_poll_s=0.05) as server:
                job = await server.submit(
                    small_cube, {"n_classes": 3, "max_retries": 1})
                await server.wait(job.job_id)
                await asyncio.sleep(1.2)
                return server.health()

        health = asyncio.run(scenario())
        watchdog = health["watchdog"]
        assert watchdog["enabled"]
        assert watchdog["deadline_s"] == 0.15
        assert watchdog["requeued"] == 1
        assert watchdog["events"] == 1
