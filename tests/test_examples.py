"""Integration tests: every example must run end-to-end.

Examples are part of the public deliverable; these tests execute each
one in-process (importing by path, calling ``main()``) with stdout
captured, so a regression anywhere in the stack that breaks a
documented workflow fails the suite.

They are the slowest tests in the suite (~1 min total on one core);
deselect with ``-m "not example"`` for quick iterations.
"""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "examples")

pytestmark = pytest.mark.example


def _run_example(name: str, argv: list[str] | None = None) -> None:
    path = os.path.join(EXAMPLES_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    old_argv = sys.argv
    try:
        sys.argv = [path] + (argv or [])
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.argv = old_argv


def test_quickstart(capsys):
    _run_example("quickstart")
    out = capsys.readouterr().out
    assert "Overall:" in out
    assert "kappa" in out


def test_indian_pines(capsys, tmp_path, monkeypatch):
    # keep it quick and keep outputs out of the repo
    monkeypatch.setattr("os.path.dirname", lambda p, _real=os.path.dirname:
                        str(tmp_path) if p.endswith("indian_pines.py")
                        else _real(p))
    _run_example("indian_pines", ["--size", "64", "--seed", "1"])
    out = capsys.readouterr().out
    assert "Fig 5(a)" in out
    assert "Overall:" in out


def test_onboard_gpu(capsys):
    _run_example("onboard_gpu")
    out = capsys.readouterr().out
    assert "chunks:" in out
    assert "chunked == unchunked MEI: True" in out


def test_stream_pipeline(capsys):
    _run_example("stream_pipeline")
    out = capsys.readouterr().out
    assert "agree bit-for-bit: True" in out


def test_target_detection(capsys):
    _run_example("target_detection")
    out = capsys.readouterr().out
    assert "area under curve" in out


def test_custom_scenes(capsys):
    _run_example("custom_scenes")
    out = capsys.readouterr().out
    assert "urban" in out and "coastal" in out
    assert "chunked (24-line budget) == whole-image: True" in out


def test_advanced_pipeline(capsys, tmp_path, monkeypatch):
    monkeypatch.setattr("os.path.dirname", lambda p, _real=os.path.dirname:
                        str(tmp_path) if p.endswith("advanced_pipeline.py")
                        else _real(p))
    _run_example("advanced_pipeline")
    out = capsys.readouterr().out
    assert "virtual dimensionality" in out
    assert "Cg fragment programs" in out


def test_serving_demo(capsys):
    _run_example("serving_demo")
    out = capsys.readouterr().out
    assert "identical submissions -> one job: True" in out
    assert "resubmission from cache: True, sha matches: True" in out
    assert "pipeline executions for 5 submissions: 2" in out


def test_detection_demo(capsys):
    _run_example("detection_demo")
    out = capsys.readouterr().out
    assert "SAM score map" in out and "RX score map" in out
    assert "area under detection curve" in out
    assert "registered workload" in out
