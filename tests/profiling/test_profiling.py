"""Tests for the profiling layer: records, reports, run_amc wiring."""

import json
import time

import numpy as np
import pytest

from repro.core import AMCConfig, run_amc
from repro.profiling import (
    ChunkRecord,
    ProfileReport,
    Profiler,
    StageRecord,
    profiled_stage,
)


def _chunk(index=0, **overrides):
    defaults = dict(index=index, core_lines=8, ext_lines=10, halo=1,
                    wall_s=0.25, upload_s=0.01, compute_s=0.2,
                    download_s=0.04, worker=1234)
    defaults.update(overrides)
    return ChunkRecord(**defaults)


class TestProfiler:
    def test_stage_records_in_order(self):
        profiler = Profiler()
        with profiler.stage("first"):
            pass
        with profiler.stage("second"):
            time.sleep(0.001)
        names = [s.name for s in profiler.stage_records]
        assert names == ["first", "second"]
        assert profiler.stage_records[1].wall_s > 0.0

    def test_stage_records_survive_exceptions(self):
        profiler = Profiler()
        with pytest.raises(RuntimeError):
            with profiler.stage("doomed"):
                raise RuntimeError("boom")
        assert [s.name for s in profiler.stage_records] == ["doomed"]

    def test_record_chunk(self):
        profiler = Profiler()
        profiler.record_chunk(_chunk())
        profiler.record_chunk(_chunk(index=1))
        assert [c.index for c in profiler.chunk_records] == [0, 1]

    def test_record_event(self):
        profiler = Profiler()
        profiler.record_event("retry", "chunk took 1 extra attempt", 3)
        profiler.record_event("oom_degrade", "max_ext_lines 12 -> 6")
        assert [e.kind for e in profiler.event_records] \
            == ["retry", "oom_degrade"]
        assert profiler.event_records[0].chunk_index == 3
        assert profiler.event_records[1].chunk_index == -1

    def test_profiled_stage_none_is_noop(self):
        with profiled_stage(None, "anything"):
            pass  # must not raise

    def test_profiled_stage_delegates(self):
        profiler = Profiler()
        with profiled_stage(profiler, "real"):
            pass
        assert profiler.stage_records[0].name == "real"


class TestProfileReport:
    @pytest.fixture()
    def report(self) -> ProfileReport:
        profiler = Profiler(meta={"backend": "gpu", "workers": 2})
        with profiler.stage("morphology"):
            pass
        with profiler.stage("unmixing"):
            pass
        profiler.record_chunk(_chunk())
        profiler.record_chunk(_chunk(index=1, worker=5678))
        return profiler.report()

    def test_shape(self, report):
        assert report.meta == {"backend": "gpu", "workers": 2}
        assert [s.name for s in report.stages] == ["morphology",
                                                   "unmixing"]
        assert len(report.chunks) == 2
        assert isinstance(report.stages[0], StageRecord)

    def test_total_wall(self, report):
        assert report.total_wall_s == pytest.approx(
            sum(s.wall_s for s in report.stages))

    def test_to_dict_keys(self, report):
        data = report.to_dict()
        assert set(data) == {"meta", "total_wall_s", "stages", "chunks",
                             "events"}
        assert set(data["chunks"][0]) == {
            "index", "core_lines", "ext_lines", "halo", "wall_s",
            "upload_s", "compute_s", "download_s", "worker", "retries"}
        assert set(data["stages"][0]) == {"name", "wall_s", "counters"}

    def test_json_round_trip(self, report):
        data = json.loads(report.to_json())
        assert data["meta"]["backend"] == "gpu"
        assert len(data["chunks"]) == 2
        assert data["chunks"][1]["worker"] == 5678

    def test_save(self, report, tmp_path):
        path = str(tmp_path / "profile.json")
        assert report.save(path) == path
        with open(path) as fh:
            assert json.load(fh)["total_wall_s"] >= 0.0

    def test_text_rendering(self, report):
        text = report.to_text()
        assert "morphology" in text
        assert "backend: gpu" in text
        assert "upload" in text and "download" in text
        assert "total" in text

    def test_empty_report_renders(self):
        report = Profiler().report()
        assert report.to_text() == "profile"
        assert report.total_wall_s == 0.0

    def test_events_serialize_and_render(self):
        profiler = Profiler()
        profiler.record_chunk(_chunk(retries=2))
        profiler.record_event("pool_recovery", "TimeoutError: lost", 1)
        report = profiler.report()
        data = report.to_dict()
        assert data["events"] == [{"kind": "pool_recovery",
                                   "detail": "TimeoutError: lost",
                                   "chunk_index": 1}]
        assert data["chunks"][0]["retries"] == 2
        text = report.to_text()
        assert "resilience events" in text
        assert "pool_recovery [chunk 1]: TimeoutError: lost" in text


class TestRunAmcProfiling:
    def test_stages_recorded(self, tiny_cube):
        profiler = Profiler()
        run_amc(tiny_cube, AMCConfig(n_classes=2), profiler=profiler)
        names = [s.name for s in profiler.stage_records]
        assert names == ["morphology", "endmembers", "unmixing",
                         "classification", "evaluation"]
        assert not profiler.chunk_records  # serial whole-image run

    def test_parallel_run_adds_chunk_records(self, small_cube):
        profiler = Profiler()
        run_amc(small_cube, AMCConfig(n_classes=2, n_workers=2),
                profiler=profiler)
        assert len(profiler.chunk_records) == 2
        assert sum(c.core_lines for c in profiler.chunk_records) \
            == small_cube.shape[0]

    def test_gpu_chunks_carry_modeled_split(self, small_cube):
        profiler = Profiler()
        run_amc(small_cube,
                AMCConfig(n_classes=2, backend="gpu", n_workers=2),
                profiler=profiler)
        for record in profiler.chunk_records:
            assert record.upload_s > 0.0
            assert record.compute_s > 0.0
            assert record.download_s > 0.0

    def test_results_unaffected_by_profiling(self, tiny_cube):
        bare = run_amc(tiny_cube, AMCConfig(n_classes=2))
        profiled = run_amc(tiny_cube, AMCConfig(n_classes=2),
                           profiler=Profiler())
        np.testing.assert_array_equal(bare.labels, profiled.labels)
