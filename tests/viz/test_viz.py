"""Tests for the PGM/PPM writers and ASCII renderer."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.viz import (
    class_palette,
    render_ascii,
    write_class_map_ppm,
    write_pgm,
    write_ppm,
)


def _read_pnm(path):
    with open(path, "rb") as fh:
        magic = fh.readline().strip()
        dims = fh.readline().split()
        maxval = int(fh.readline())
        data = fh.read()
    return magic, (int(dims[1]), int(dims[0])), maxval, data


class TestPgm:
    def test_header_and_payload(self, rng, tmp_path):
        image = rng.uniform(size=(6, 9))
        path = write_pgm(image, str(tmp_path / "x.pgm"))
        magic, shape, maxval, data = _read_pnm(path)
        assert magic == b"P5"
        assert shape == (6, 9)
        assert maxval == 255
        assert len(data) == 54

    def test_normalization_spans_range(self, tmp_path):
        image = np.linspace(0, 1, 100).reshape(10, 10)
        path = write_pgm(image, str(tmp_path / "x.pgm"))
        *_, data = _read_pnm(path)
        values = np.frombuffer(data, dtype=np.uint8)
        assert values.min() == 0 and values.max() == 255

    def test_constant_image(self, tmp_path):
        path = write_pgm(np.full((4, 4), 3.0), str(tmp_path / "c.pgm"))
        *_, data = _read_pnm(path)
        assert len(data) == 16  # must not crash on zero dynamic range

    def test_no_normalize_mode(self, tmp_path):
        image = np.full((2, 2), 7, dtype=np.uint8)
        path = write_pgm(image, str(tmp_path / "n.pgm"), normalize=False)
        *_, data = _read_pnm(path)
        assert set(data) == {7}

    def test_rejects_3d(self, tmp_path):
        with pytest.raises(ShapeError):
            write_pgm(np.zeros((2, 2, 3)), str(tmp_path / "x.pgm"))


class TestPpm:
    def test_roundtrip(self, rng, tmp_path):
        rgb = (rng.uniform(size=(5, 4, 3)) * 255).astype(np.uint8)
        path = write_ppm(rgb, str(tmp_path / "x.ppm"))
        magic, shape, _, data = _read_pnm(path)
        assert magic == b"P6"
        assert shape == (5, 4)
        np.testing.assert_array_equal(
            np.frombuffer(data, np.uint8).reshape(5, 4, 3), rgb)

    def test_rejects_bad_shape(self, tmp_path):
        with pytest.raises(ShapeError):
            write_ppm(np.zeros((4, 4, 4), dtype=np.uint8),
                      str(tmp_path / "x.ppm"))


class TestClassMap:
    def test_palette_distinct(self):
        palette = class_palette(32)
        assert palette.shape == (33, 3)
        assert np.array_equal(palette[0], [0, 0, 0])
        unique = {tuple(c) for c in palette}
        assert len(unique) >= 30  # golden-angle hues barely collide

    def test_write_class_map(self, tmp_path):
        labels = np.array([[0, 1], [2, 2]])
        path = write_class_map_ppm(labels, str(tmp_path / "c.ppm"))
        magic, shape, _, data = _read_pnm(path)
        assert magic == b"P6" and shape == (2, 2)
        rgb = np.frombuffer(data, np.uint8).reshape(2, 2, 3)
        assert np.array_equal(rgb[0, 0], [0, 0, 0])
        assert not np.array_equal(rgb[0, 1], rgb[1, 0])

    def test_out_of_range_labels(self, tmp_path):
        with pytest.raises(ValueError):
            write_class_map_ppm(np.array([[5]]), str(tmp_path / "c.ppm"),
                                n_classes=3)

    def test_palette_needs_classes(self):
        with pytest.raises(ValueError):
            class_palette(0)


class TestAscii:
    def test_gradient_orders_characters(self):
        art = render_ascii(np.linspace(0, 1, 64).reshape(8, 8),
                           max_width=8, max_height=8)
        lines = art.splitlines()
        assert len(lines) == 8
        assert lines[0][0] == " "  # darkest
        assert lines[-1][-1] == "@"  # brightest

    def test_downsampling_respects_budget(self, rng):
        art = render_ascii(rng.uniform(size=(100, 200)), max_width=40,
                           max_height=10)
        lines = art.splitlines()
        assert len(lines) <= 10
        assert max(len(line) for line in lines) <= 40

    def test_constant_image(self):
        art = render_ascii(np.zeros((4, 4)))
        assert set(art.replace("\n", "")) == {" "}

    def test_label_mode(self):
        art = render_ascii(np.array([[1, 2], [3, 10]]), labels=True)
        assert art.splitlines()[0] == "12"
        assert art.splitlines()[1] == "3a"

    def test_rejects_non_2d(self):
        with pytest.raises(ShapeError):
            render_ascii(np.zeros(4))
