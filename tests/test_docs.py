"""Docs-consistency gate: the checks of tools/check_docs.py run in CI.

The checker compares docs/api.md against a fresh render of
tools/gen_api_docs.py, verifies every public module is indexed, and
verifies every public package appears in docs/architecture.md — so a
new module or package cannot ship undocumented.
"""

import importlib.util
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _load_checker():
    path = os.path.join(REPO_ROOT, "tools", "check_docs.py")
    spec = importlib.util.spec_from_file_location("check_docs", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_docs", module)
    spec.loader.exec_module(module)
    return module


def test_docs_are_consistent():
    checker = _load_checker()
    problems = checker.run_checks()
    assert not problems, "\n".join(problems)


def test_checker_detects_missing_module(tmp_path, monkeypatch):
    """The gate actually gates: an unindexed module must be reported."""
    checker = _load_checker()
    monkeypatch.setattr(
        checker.gen_api_docs, "discover_modules",
        lambda: ["repro.not_a_real_module"])
    problems = checker.check_modules_indexed()
    assert problems and "not_a_real_module" in problems[0]
