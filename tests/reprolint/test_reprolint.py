"""The reprolint gate: every rule fires on its bad fixture, stays quiet
on its clean fixture, respects its allowed paths, and the whole repo
comes back clean.

Replaces ``tests/test_excepts_lint.py`` and ``tests/test_dispatch_lint.py``
(the two regex-era gates) with one parametrized suite over the fixture
mini-repo in ``tests/reprolint/fixtures/`` — laid out like a real
checkout (``src/repro/core/...``) so path scoping is exercised exactly
as in production.
"""

from __future__ import annotations

import importlib.util
import json
import os
import subprocess
import sys
import time

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))
if REPO_ROOT not in sys.path:
    sys.path.insert(0, REPO_ROOT)

from tools.reprolint import (ALL_RULES, Config, all_rules,  # noqa: E402
                             render_json, resolve_rules, run)

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "fixtures")

#: (rule id, bad fixture, expected finding lines, clean fixture).
RULE_CASES = [
    ("blanket-except",
     "src/repro/core/blanket_bad.py", [7, 11, 15],
     "src/repro/core/blanket_clean.py"),
    ("backend-dispatch",
     "src/repro/core/dispatch_bad.py", [5, 7],
     "src/repro/core/dispatch_clean.py"),
    ("workload-dispatch",
     "src/repro/core/workload_dispatch_bad.py", [5, 7, 9],
     "src/repro/core/workload_dispatch_clean.py"),
    ("pickle-safe-errors",
     "src/repro/core/pickle_bad.py", [11],
     "src/repro/core/pickle_clean.py"),
    ("no-unseeded-rng",
     "src/repro/core/rng_bad.py", [4, 10, 11, 12, 13],
     "src/repro/core/rng_clean.py"),
    ("no-wallclock-in-compute",
     "src/repro/core/wallclock_bad.py", [9, 10, 11, 12],
     "src/repro/core/wallclock_clean.py"),
    ("dtype-discipline",
     "src/repro/gpu/dtype_bad.py", [3, 9, 10],
     "src/repro/gpu/dtype_clean.py"),
    ("no-mutable-defaults",
     "src/repro/core/mutable_defaults_bad.py", [4, 9, 13, 17],
     "src/repro/core/mutable_defaults_clean.py"),
    ("no-blocking-call-in-async",
     "src/repro/serving/async_bad.py", [8, 9, 10, 14, 15],
     "src/repro/serving/async_clean.py"),
    ("durable-write",
     "src/repro/serving/durable_bad.py", [9, 14, 15, 19, 20, 21, 22],
     "src/repro/serving/durable_clean.py"),
]

#: (rule id, fixture inside the rule's allowed path).
ALLOWED_CASES = [
    ("blanket-except", "src/repro/resilience/blanket_allowed.py"),
    ("backend-dispatch", "src/repro/backends/dispatch_allowed.py"),
    ("workload-dispatch",
     "src/repro/workloads/workload_dispatch_allowed.py"),
    ("no-wallclock-in-compute",
     "src/repro/profiling/wallclock_allowed.py"),
    ("durable-write", "src/repro/serving/net.py"),
]


def lint_fixture(relpath, rule_id):
    """Findings of one rule on one fixture file, with scoping intact."""
    return run(paths=[relpath], root=FIXTURES, rules=[rule_id])


# --------------------------------------------------------------------------
# Per-rule gates


@pytest.mark.parametrize(
    "rule_id, bad, lines, clean", RULE_CASES,
    ids=[case[0] for case in RULE_CASES])
def test_rule_fires_on_bad_fixture(rule_id, bad, lines, clean):
    result = lint_fixture(bad, rule_id)
    assert [f.line for f in result.findings] == lines
    assert all(f.rule_id == rule_id for f in result.findings)
    assert all(f.path == bad for f in result.findings)


@pytest.mark.parametrize(
    "rule_id, bad, lines, clean", RULE_CASES,
    ids=[case[0] for case in RULE_CASES])
def test_rule_quiet_on_clean_fixture(rule_id, bad, lines, clean):
    result = lint_fixture(clean, rule_id)
    assert result.findings == []
    assert result.suppressed == []


@pytest.mark.parametrize("rule_id, allowed", ALLOWED_CASES,
                         ids=[case[0] for case in ALLOWED_CASES])
def test_rule_respects_allowed_paths(rule_id, allowed):
    result = lint_fixture(allowed, rule_id)
    assert result.findings == []


def test_config_allowlist_extends_rule_allowlist():
    """[tool.reprolint.allow] prefixes merge into a rule's own."""
    cfg = Config(allow={"blanket-except": ("src/repro/core",)})
    result = run(paths=["src/repro/core/blanket_bad.py"], root=FIXTURES,
                 rules=["blanket-except"], config=cfg)
    assert result.findings == []


# --------------------------------------------------------------------------
# Suppressions


def test_suppression_silences_exactly_the_named_rule():
    result = run(paths=["src/repro/core/suppressed.py"], root=FIXTURES)
    assert [(f.rule_id, f.line) for f in result.suppressed] == [
        ("blanket-except", 11), ("no-mutable-defaults", 15)]
    # the wrong-rule suppression on line 19 must not silence the finding
    assert [(f.rule_id, f.line) for f in result.findings] == [
        ("no-mutable-defaults", 19)]


def test_suppressions_counted_in_json_report():
    result = run(paths=["src/repro/core/suppressed.py"], root=FIXTURES)
    document = json.loads(render_json(result))
    assert document["suppressed_count"] == 2
    assert len(document["suppressed"]) == 2
    assert all(entry["suppressed"] for entry in document["suppressed"])
    assert {entry["rule"] for entry in document["suppressed"]} == {
        "blanket-except", "no-mutable-defaults"}
    assert set(document["findings"][0]) == {
        "rule", "path", "line", "col", "message", "suppressed"}


# --------------------------------------------------------------------------
# Whole-repo gate


def test_whole_repo_is_clean():
    """The acceptance gate: reprolint exits clean on this checkout."""
    result = run(root=REPO_ROOT)
    assert result.findings == [], "\n".join(
        f"{f.rule_id} {f.path}:{f.line}: {f.message}"
        for f in result.findings)
    assert result.files_scanned > 100


def test_whole_repo_run_is_fast():
    """AST cache + single walk keep the full run under the 5 s budget."""
    start = time.perf_counter()
    run(root=REPO_ROOT)
    assert time.perf_counter() - start < 5.0


def test_registry_has_all_rules():
    ids = [rule.rule_id for rule in all_rules()]
    assert len(ids) == len(set(ids))
    assert len(ids) >= 7
    assert set(ids) >= {case[0] for case in RULE_CASES}
    assert len(ALL_RULES) == len(ids)


def test_unknown_rule_id_fails_loudly():
    with pytest.raises(ValueError, match="unknown rule"):
        resolve_rules(["no-such-rule"])


def test_syntax_error_is_reported_not_raised(tmp_path):
    bad = tmp_path / "src" / "repro" / "core"
    bad.mkdir(parents=True)
    (bad / "broken.py").write_text("def oops(:\n")
    result = run(paths=["src/repro"], root=str(tmp_path))
    assert [f.rule_id for f in result.findings] == ["syntax-error"]


# --------------------------------------------------------------------------
# CLI and legacy wrappers


def _run_cli(*argv):
    return subprocess.run(
        [sys.executable, "-m", "tools.reprolint", *argv],
        cwd=REPO_ROOT, capture_output=True, text=True)


def test_cli_json_clean_on_repo():
    proc = _run_cli("--json")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    document = json.loads(proc.stdout)
    assert document["findings"] == []
    assert document["suppressed_count"] >= 10  # the audited src waivers


def test_cli_fails_on_fixture_tree():
    proc = _run_cli("--root", os.path.join("tests", "reprolint",
                                           "fixtures"))
    assert proc.returncode == 1
    assert "blanket-except" in proc.stdout


def test_cli_lists_rules():
    proc = _run_cli("--list-rules")
    assert proc.returncode == 0
    for rule_id, _, _, _ in RULE_CASES:
        assert rule_id in proc.stdout


def _load_wrapper(name):
    path = os.path.join(REPO_ROOT, "tools", f"{name}.py")
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault(name, module)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("wrapper, expected_file, expected_count", [
    ("check_excepts", "blanket_bad.py", 3),
    ("check_dispatch", "dispatch_bad.py", 2),
])
def test_legacy_wrappers_delegate(wrapper, expected_file, expected_count):
    """check_excepts/check_dispatch keep their scan() contract, now
    backed by the AST rules: real repo clean, fixture tree reported as
    path:line: text strings."""
    module = _load_wrapper(wrapper)
    assert module.scan() == []
    problems = module.scan(FIXTURES)
    assert len(problems) == expected_count
    assert all(expected_file in problem for problem in problems)
    first = problems[0]
    path_part, line_part, text = first.split(":", 2)
    assert path_part.endswith(expected_file)
    assert int(line_part) > 0
    assert text.strip()
