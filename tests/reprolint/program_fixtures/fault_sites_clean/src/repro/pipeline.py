"""Fixture execution path: one registered, documented, tested site."""

from repro.faults import maybe_inject


def run_chunk(index):
    maybe_inject("chunk", index=index)
