"""Fixture injector: registry, code, docs, and tests all agree."""

FAULT_SITES = {
    "chunk": "per-chunk worker entry",
}


def maybe_inject(site, *, index=None):
    pass
