from repro.faults.injector import FAULT_SITES, maybe_inject

__all__ = ["FAULT_SITES", "maybe_inject"]
