"""Fixture test file (not collected by pytest: no test_ prefix)."""

SPEC = dict(kind="transient", site="chunk", index=0)
