"""Fixture server: the job table is written from both sides, bare."""

import asyncio


class Server:
    def __init__(self):
        self._jobs = {}
        self._executor = None

    async def submit(self, job):
        self._jobs[job] = "queued"  # loop-side write
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor,
                                          self._execute, job)

    def _execute(self, job):
        self._record(job)

    def _record(self, job):
        self._jobs[job] = "done"  # thread-side write, same attribute
