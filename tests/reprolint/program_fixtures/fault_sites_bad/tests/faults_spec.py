"""Fixture test file (not collected by pytest: no test_ prefix): only
the chunk site is ever exercised."""

SPEC = dict(kind="transient", site="chunk", index=0)
