"""Fixture injector: a registry with one healthy and one rotten site."""

FAULT_SITES = {
    "chunk": "per-chunk worker entry",
    # "ghost" has no surviving call, no docs mention, and no test
    "ghost": "a site that rotted in the registry",
}


def maybe_inject(site, *, index=None):
    pass
