"""Fixture execution path with two bad maybe_inject calls."""

from repro.faults import maybe_inject

SITE = "computed"


def run_chunk(index):
    maybe_inject("chunk", index=index)
    maybe_inject("rogue", index=index)  # never registered
    maybe_inject(SITE, index=index)  # not statically auditable
