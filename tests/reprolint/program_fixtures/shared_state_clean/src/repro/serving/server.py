"""Fixture server: shared writes are lock-guarded, the rest stays on
one side of the loop/executor boundary."""

import asyncio
import threading


class Server:
    def __init__(self):
        self._jobs = {}
        self._log = []
        self._counter = 0
        self._lock = threading.Lock()
        self._executor = None

    async def submit(self, job):
        with self._lock:
            self._jobs[job] = "queued"  # guarded loop-side write
        self._counter += 1  # loop-side only: no lock needed
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor,
                                          self._execute, job)

    def _execute(self, job):
        self._log.append(job)  # thread-side only: no lock needed
        with self._lock:
            self._jobs[job] = "done"  # guarded thread-side write
