"""Fixture error hierarchy: everything defined (or re-exported) here."""


class ReproError(Exception):
    pass


class GoodError(ReproError):
    def __init__(self, message, *, detail=None):
        super().__init__(message, detail)
        self.detail = detail
