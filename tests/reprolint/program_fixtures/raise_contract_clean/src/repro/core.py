"""Fixture raise sites: all on contract."""

from repro.errors import GoodError, ReproError


def fine(x):
    if x < 0:
        raise GoodError("on contract", detail=x)
    if x == 0:
        raise ReproError("the base itself is on contract")
    raise NotImplementedError  # allowlisted builtin


def reraise(error):
    raise error  # bound-name re-raise: out of scope
