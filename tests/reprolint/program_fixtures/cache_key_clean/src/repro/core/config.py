"""Fixture config schema, one package away from its workloads."""

from dataclasses import dataclass


@dataclass(frozen=True)
class FooConfig:
    alpha: float = 1.0
    gamma: float = 0.5
    n_workers: int = 1
