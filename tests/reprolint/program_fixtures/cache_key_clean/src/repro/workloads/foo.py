"""Fixture workloads whose cache keys are sound both ways: an explicit
override that keys every result-affecting field, and the inherited
asdict-based canonicalization (sound by construction)."""

from repro.core.config import FooConfig
from repro.workloads.base import Workload


class FooWorkload(Workload):
    name = "foo"
    config_type = FooConfig

    def canonical_params(self, params):
        config = self.as_config(params)
        return {"alpha": config.alpha, "gamma": config.gamma}


class BarWorkload(Workload):
    name = "bar"
    config_type = FooConfig
    # inherits the asdict-based canonical_params from Workload
