"""Fixture workload with an unsound hand-written cache key."""

from repro.core.config import FooConfig
from repro.workloads.base import Workload


class FooWorkload(Workload):
    name = "foo"
    config_type = FooConfig
    # "turbo" is neither on the declared exclusion list nor a field
    execution_knobs = frozenset({"n_workers", "turbo"})

    def canonical_params(self, params):
        config = self.as_config(params)
        return {"alpha": config.alpha}  # gamma never keyed
