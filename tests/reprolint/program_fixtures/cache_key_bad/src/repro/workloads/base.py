"""Fixture workload contract (mirrors repro.workloads.base)."""

from dataclasses import asdict


class Workload:
    name = ""
    config_type = None
    execution_knobs = frozenset()

    def as_config(self, params):
        if params is None:
            return self.config_type()
        return self.config_type(**dict(params))

    def canonical_params(self, params):
        fields = asdict(self.as_config(params))
        return {name: value for name, value in sorted(fields.items())
                if name not in self.execution_knobs}
