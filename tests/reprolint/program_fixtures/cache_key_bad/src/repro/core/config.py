"""Fixture config schema, one package away from its workload."""

from dataclasses import dataclass


@dataclass(frozen=True)
class FooConfig:
    alpha: float = 1.0
    # the drift under test: a result-affecting field added to the
    # schema that the hand-written canonical_params never keys
    gamma: float = 0.5
    n_workers: int = 1
