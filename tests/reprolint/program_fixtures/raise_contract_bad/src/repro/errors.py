"""Fixture error hierarchy."""


class ReproError(Exception):
    pass


class GoodError(ReproError):
    pass
