"""Fixture module defining a ReproError subclass outside the errors
module — cross-module lineage the per-file pickle rule cannot see."""

from repro.errors import ReproError


class HiddenError(ReproError):
    def __init__(self, message, *, detail=None):
        super().__init__(message)
        self.detail = detail  # never pickled: not forwarded, no __reduce__
