"""Fixture raise sites: one of each contract violation."""

from repro.errors import GoodError
from repro.other import LocalError
from repro.shady import HiddenError


def builtin_raise(x):
    if x < 0:
        raise ValueError("negative")  # builtin, not on the allowlist


def off_contract(x):
    if x < 0:
        raise LocalError("not a ReproError")


def unexported(x):
    if x < 0:
        raise HiddenError("fine class, wrong home")


def suppressed(x):
    if x < 0:
        raise TypeError("waived")  # reprolint: disable=raise-contract


def fine(x):
    if x < 0:
        raise GoodError("on contract")
    if x == 0:
        raise NotImplementedError  # allowlisted builtin


def reraise(error):
    raise error  # bound-name re-raise: out of scope
