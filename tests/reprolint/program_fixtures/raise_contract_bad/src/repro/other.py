"""Fixture module with an off-contract exception class."""


class LocalError(Exception):
    pass
