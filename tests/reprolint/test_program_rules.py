"""The whole-program tier gate: each cross-module rule fires on its
bad mini-repo, stays quiet on its clean twin, attributes findings (and
suppressions) to the reported file/line, and the two-tier run stays
inside the <10 s budget on the real repo.

Each case under ``tests/reprolint/program_fixtures/<case>/`` is a
self-contained checkout — its own ``src/repro`` tree (some with their
own ``pyproject.toml``, ``docs/``, ``tests/``) — so import-chain
resolution, the pyproject option tables, and the docs/tests
cross-checks are exercised exactly as in production.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import time

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))
if REPO_ROOT not in sys.path:
    sys.path.insert(0, REPO_ROOT)

from tools.reprolint import all_rules, render_json, run  # noqa: E402
from tools.reprolint.program import get_index  # noqa: E402

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "program_fixtures")

PROGRAM_RULE_IDS = ("cache-key-soundness", "fault-site-registry",
                    "async-thread-shared-state", "raise-contract")

#: rule id -> (bad case, expected (path, line) findings, clean case).
PROGRAM_CASES = {
    "cache-key-soundness": (
        "cache_key_bad",
        [("src/repro/core/config.py", 11),
         ("src/repro/workloads/foo.py", 11),
         ("src/repro/workloads/foo.py", 11)],
        "cache_key_clean"),
    "fault-site-registry": (
        "fault_sites_bad",
        [("src/repro/faults/injector.py", 6),
         ("src/repro/faults/injector.py", 6),
         ("src/repro/faults/injector.py", 6),
         ("src/repro/pipeline.py", 10),
         ("src/repro/pipeline.py", 11)],
        "fault_sites_clean"),
    "async-thread-shared-state": (
        "shared_state_bad",
        [("src/repro/serving/server.py", 12),
         ("src/repro/serving/server.py", 21)],
        "shared_state_clean"),
    "raise-contract": (
        "raise_contract_bad",
        [("src/repro/core.py", 10),
         ("src/repro/core.py", 15),
         ("src/repro/core.py", 20),
         ("src/repro/shady.py", 8)],
        "raise_contract_clean"),
}


def lint_case(case, rule_id):
    return run(root=os.path.join(FIXTURES, case), rules=[rule_id])


# --------------------------------------------------------------------------
# Per-rule gates


@pytest.mark.parametrize("rule_id", PROGRAM_RULE_IDS)
def test_program_rule_fires_on_bad_fixture(rule_id):
    bad, expected, _ = PROGRAM_CASES[rule_id]
    result = lint_case(bad, rule_id)
    assert [(f.path, f.line) for f in result.findings] == expected
    assert all(f.rule_id == rule_id for f in result.findings)


@pytest.mark.parametrize("rule_id", PROGRAM_RULE_IDS)
def test_program_rule_quiet_on_clean_fixture(rule_id):
    _, _, clean = PROGRAM_CASES[rule_id]
    result = lint_case(clean, rule_id)
    assert result.findings == []


def test_findings_attribute_across_modules():
    """The unkeyed-field finding anchors at the *config schema* line,
    one package away from the workload whose canonicalization drops
    it — cross-module findings point where the fix goes."""
    result = lint_case("cache_key_bad", "cache-key-soundness")
    gamma = [f for f in result.findings if "'gamma'" in f.message]
    assert len(gamma) == 1
    assert gamma[0].path == "src/repro/core/config.py"
    assert "workloads/foo.py" in gamma[0].message  # names the consumer


def test_unkeyed_field_end_to_end(tmp_path):
    """The acceptance demo: take the clean mini-repo, add one
    result-affecting config field without keying it, and the lint
    fails on exactly that field."""
    root = tmp_path / "checkout"
    shutil.copytree(os.path.join(FIXTURES, "cache_key_clean"), root)
    config = root / "src" / "repro" / "core" / "config.py"
    config.write_text(config.read_text()
                      + "    smoothing: int = 2\n")
    result = run(root=str(root), rules=["cache-key-soundness"])
    assert [(f.path, "'smoothing'" in f.message)
            for f in result.findings] == [("src/repro/core/config.py",
                                           True)]


def test_execution_knob_exclusion_list_is_enforced():
    """A knob excluded in code but absent from the pyproject list is a
    finding; so is a knob that names no real field."""
    result = lint_case("cache_key_bad", "cache-key-soundness")
    messages = [f.message for f in result.findings]
    assert any("not on the declared exclusion list" in m
               for m in messages)
    assert any("no such field" in m for m in messages)


def test_fault_site_findings_name_each_surface():
    result = lint_case("fault_sites_bad", "fault-site-registry")
    messages = "\n".join(f.message for f in result.findings)
    assert "'rogue' is not registered" in messages
    assert "not a string literal" in messages
    assert "'ghost' has no surviving maybe_inject call" in messages
    assert "'ghost' is not mentioned in docs/robustness.md" in messages
    assert "no test under tests/ exercises fault site 'ghost'" in messages


def test_shared_state_accepts_locks_and_single_side():
    """The clean server mutates the shared table only under a lock and
    keeps the rest one-sided; the bad one differs only in the lock."""
    bad = lint_case("shared_state_bad", "async-thread-shared-state")
    assert all("_jobs" in f.message for f in bad.findings)
    clean = lint_case("shared_state_clean", "async-thread-shared-state")
    assert clean.findings == []


def test_shared_state_waiver_option(tmp_path):
    """A ``waive = ["Class.attr"]`` pyproject entry silences the rule
    for exactly that attribute."""
    root = tmp_path / "checkout"
    shutil.copytree(os.path.join(FIXTURES, "shared_state_bad"), root)
    (root / "pyproject.toml").write_text(
        '[tool.reprolint.rule.async-thread-shared-state]\n'
        'waive = ["Server._jobs"]\n')
    result = run(root=str(root), rules=["async-thread-shared-state"])
    assert result.findings == []


# --------------------------------------------------------------------------
# Suppression accounting and the JSON reporter under the program tier


def test_program_suppression_attributes_to_reported_line():
    """An inline disable on the *reported* line of a cross-module
    finding suppresses it — and it is counted, not dropped."""
    result = lint_case("raise_contract_bad", "raise-contract")
    assert [(f.rule_id, f.path, f.line, f.suppressed)
            for f in result.suppressed] == [
        ("raise-contract", "src/repro/core.py", 25, True)]
    # the suppressed finding is absent from the active list
    assert all(f.line != 25 for f in result.findings)


def test_program_findings_in_json_report():
    result = lint_case("raise_contract_bad", "raise-contract")
    document = json.loads(render_json(result))
    assert document["suppressed_count"] == 1
    assert [e["rule"] for e in document["suppressed"]] == [
        "raise-contract"]
    assert {e["rule"] for e in document["findings"]} == {
        "raise-contract"}
    assert {e["path"] for e in document["findings"]} == {
        "src/repro/core.py", "src/repro/shady.py"}
    assert set(document["findings"][0]) == {
        "rule", "path", "line", "col", "message", "suppressed"}


def test_cli_program_tier(tmp_path):
    proc = subprocess.run(
        [sys.executable, "-m", "tools.reprolint",
         "--root", os.path.join(FIXTURES, "raise_contract_bad"),
         "--rules", "raise-contract", "--json"],
        cwd=REPO_ROOT, capture_output=True, text=True)
    assert proc.returncode == 1
    document = json.loads(proc.stdout)
    assert len(document["findings"]) == 4
    assert document["suppressed_count"] == 1


# --------------------------------------------------------------------------
# Registry, scoping, budget


def test_program_rules_registered():
    by_id = {rule.rule_id: rule for rule in all_rules()}
    for rule_id in PROGRAM_RULE_IDS:
        assert rule_id in by_id
        assert by_id[rule_id].tier == "program"


def test_program_findings_respect_requested_paths():
    """Linting only tools/ must not surface src/-anchored program
    findings (the index still covers the whole program)."""
    root = os.path.join(FIXTURES, "raise_contract_bad")
    result = run(paths=["src/repro/shady.py"], root=root,
                 rules=["raise-contract"])
    assert [f.path for f in result.findings] == ["src/repro/shady.py"]


def test_index_is_memoized():
    root = os.path.join(FIXTURES, "raise_contract_bad")
    assert get_index(root) is get_index(root)


def test_two_tier_repo_run_within_budget():
    """The acceptance budget: per-file + whole-program tiers clean on
    the real repo in under 10 s."""
    start = time.perf_counter()
    result = run(root=REPO_ROOT)
    elapsed = time.perf_counter() - start
    assert result.findings == [], "\n".join(
        f"{f.rule_id} {f.path}:{f.line}" for f in result.findings)
    assert elapsed < 10.0
