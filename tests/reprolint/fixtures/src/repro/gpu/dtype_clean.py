"""Fixture: float32 discipline plus the annotation trap (0 findings)."""

import numpy as np


def pack(texels):
    return np.asarray(texels, dtype=np.float32)


def scale(value: float, gain: float = 2.0) -> float:
    # `float` as an annotation names a type; only float(...) casts fire.
    return np.float32(value) * np.float32(gain)
