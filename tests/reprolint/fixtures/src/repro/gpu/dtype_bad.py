"""Fixture: every widening-dtype form must fire (3 findings)."""

from numpy import float64

import numpy as np


def widen(texels):
    buffer = np.zeros((4, 4), dtype=np.float64)
    scalar = float(texels[0])
    return buffer, scalar, float64
