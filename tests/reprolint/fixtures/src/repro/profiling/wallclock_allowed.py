"""Fixture: the profiling layer may read the clock (0 findings)."""

import time


def measure(task):
    start = time.perf_counter()
    result = task()
    return result, time.perf_counter() - start
