"""Fixture: the workloads registry may compare names (0 findings)."""


def resolve(registry, workload):
    for name in registry:
        if name == workload:
            return registry[name]
    raise KeyError(workload)
