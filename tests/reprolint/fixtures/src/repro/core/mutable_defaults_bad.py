"""Fixture: every mutable-default form must fire (4 findings)."""


def append(item, log=[]):
    log.append(item)
    return log


def tally(counts={}):
    return counts


def collect(*, seen=set()):
    return seen


def fresh(buffer=list()):
    return buffer
