"""Fixture: specific excepts plus the regex false-positive traps.

A literal ``except Exception:`` in this docstring must not fire now
that the check reads the AST instead of the text.
"""

NOTE = "except Exception: inside a string is documentation, not code"
# a blanket except BaseException: in a comment alone is fine too


def careful():
    try:
        work()
    except (ValueError, OSError) as exc:
        raise RuntimeError("boom") from exc
    except KeyError:
        pass


def work():
    pass
