"""Fixture: backend string dispatch must fire (2 findings)."""


def pick(config, backend):
    if config.backend == "gpu":
        return 1
    if backend != "cpu":
        return 2
    return 0
