"""Fixture: immutable and sentinel defaults (0 findings)."""


def append(item, log=None):
    log = [] if log is None else log
    log.append(item)
    return log


def label(prefix="chunk", parts=(), flags=frozenset()):
    return prefix, parts, flags
