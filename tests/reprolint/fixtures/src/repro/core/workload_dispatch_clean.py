"""Fixture: workload-dispatch false-positive traps.

Historical note: code here once did ``workload == "amc"`` — mentioning
that in a docstring must not fire now that the check reads the AST.
"""

LEGEND = 'resolved via the registry, never algo == "sam" chains'
# workload != "rx" in a comment alone is fine


def pick(workload, kind, default_workload):
    if workload is default_workload:  # identity is fine, not a name test
        return 1
    if kind == "detection":  # capability fields may be compared
        return 2
    return 0
