"""Fixture: workload string dispatch must fire (3 findings)."""


def pick(job, workload, args):
    if job.workload == "amc":
        return 1
    if workload != "rx":
        return 2
    if args.algo == "sam":
        return 3
    return 0
