"""Fixture: inline suppressions (2 suppressed, 1 active finding).

The last function disables the *wrong* rule, so its mutable default
must still fire — a suppression silences exactly the named rule.
"""


def risky():
    try:
        work()
    except Exception:  # reprolint: disable=blanket-except — fixture
        raise


def tally(counts={}):  # reprolint: disable=no-mutable-defaults
    return counts


def nope(log=[]):  # reprolint: disable=blanket-except
    return log


def work():
    pass
