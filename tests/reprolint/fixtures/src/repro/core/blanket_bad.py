"""Fixture: every blanket except form must fire (3 findings)."""


def risky():
    try:
        work()
    except:
        pass
    try:
        work()
    except Exception as exc:
        del exc
    try:
        work()
    except (ValueError, BaseException):
        pass


def work():
    pass
