"""Fixture: every pickle-safe shape the rule must accept (0 findings)."""


class ReproError(Exception):
    """Local stand-in for the library's root error class."""


class ForwardedError(ReproError):
    """All extra state travels through super().__init__: clean."""

    def __init__(self, message, code):
        super().__init__(message, code)
        self.code = code


class StarForwardedError(ReproError):
    """Star-args forwarded wholesale: clean."""

    def __init__(self, *args):
        super().__init__(*args)


class ReducedError(ReproError):
    """Keyword-only state shipped by an explicit __reduce__: clean."""

    def __init__(self, message, *, free=None):
        super().__init__(message)
        self.free = free

    def __reduce__(self):
        return (self.__class__, self.args, {"free": self.free})

    def __setstate__(self, state):
        self.__dict__.update(state)


class PlainError(ReproError):
    """No __init__ at all: default pickling is fine."""


class NotOurError(ValueError):
    """Not ReproError-derived — outside the rule's hierarchy."""

    def __init__(self, message, *, detail=None):
        super().__init__(message)
        self.detail = detail
