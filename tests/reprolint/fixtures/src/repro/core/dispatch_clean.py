"""Fixture: dispatch false-positive traps.

Historical note: code here once did ``backend == "gpu"`` — mentioning
that in a docstring must not fire now that the check reads the AST.
"""

LEGEND = 'resolved via the registry, never backend == "naive" chains'
# backend != "cpu" in a comment alone is fine


def pick(name):
    if name == "gpu":  # comparing a non-backend name is allowed
        return 1
    return 0
