"""Fixture: every global-state RNG form must fire (5 findings)."""

import random
from random import shuffle

import numpy as np


def sample(n):
    np.random.seed(0)
    values = np.random.rand(n)
    rng = np.random.default_rng()
    jitter = random.random()
    shuffle(values)
    return values, rng, jitter
