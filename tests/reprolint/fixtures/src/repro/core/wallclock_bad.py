"""Fixture: every clock-read form must fire (4 findings)."""

import time
from datetime import datetime
from time import perf_counter


def stamp():
    started = time.time()
    ticks = time.monotonic_ns()
    elapsed = perf_counter() - started
    when = datetime.now()
    return started, ticks, elapsed, when
