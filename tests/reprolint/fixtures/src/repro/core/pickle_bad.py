"""Fixture: exception state that would not survive pickling (1 finding)."""


class ReproError(Exception):
    """Local stand-in for the library's root error class."""


class LossyError(ReproError):
    """Keyword-only state, not forwarded, no __reduce__: fires."""

    def __init__(self, message, *, requested=None):
        super().__init__(message)
        self.requested = requested


class DeepLossyError(LossyError):
    """Transitive subclass without __init__: default pickling is fine."""
