"""Fixture: explicit-Generator discipline (0 findings).

Mentioning ``np.random.seed`` in a docstring is documentation; only
the AST node fires.
"""

import numpy as np


def sample(n, rng: np.random.Generator):
    return rng.uniform(size=n)


def make_rng(seed):
    return np.random.default_rng(seed)


def split(rng: np.random.Generator, count):
    return [np.random.default_rng(s)
            for s in np.random.SeedSequence(42).spawn(count)]
