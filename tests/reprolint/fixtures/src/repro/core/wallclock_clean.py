"""Fixture: sleeping and naming clocks without reading them (0 findings).

Calling ``time.time()`` is forbidden in compute code — saying so in a
docstring is not.
"""

import time


def backoff(delay_s):
    time.sleep(delay_s)  # pausing does not read the clock


def describe():
    return "we never call time.perf_counter() here"
