"""Fixture: the backends registry may compare names (0 findings)."""


def resolve(config):
    if config.backend == "gpu":
        return "gpu-adapter"
    return "reference-adapter"
