"""Non-blocking counterparts: awaited calls, executor thunks, sync scopes."""

import asyncio
import time


async def poll(pool_queue, loop, worker_pool):
    await asyncio.sleep(0.5)
    item = await pool_queue.get()
    result = await loop.run_in_executor(None, worker_pool.get)
    return item, result


async def offload(loop):
    def blocking_thunk():
        time.sleep(0.5)
        return 42

    return await loop.run_in_executor(None, blocking_thunk)


def sync_path(worker_pool):
    time.sleep(0.1)
    return worker_pool.get()
