"""Fixture: raw filesystem mutation in the serving state layer."""

import os
import shutil
from os import unlink


def torn_journal_append(path, line):
    with open(path, "a") as fh:
        fh.write(line)


def torn_index_write(path, text, mode):
    open(path, mode="w").write(text)
    open(path, mode).write(text)


def bare_cleanup(path):
    os.unlink(path)
    os.replace(path, path + ".bak")
    unlink(path + ".old")
    shutil.rmtree(path + ".dir")


def read_only_is_fine(path):
    with open(path) as fh:
        return fh.read()
