"""Fixture: the transport module's socket-file unlink is exempt —
the listening socket is kernel-owned transport state, not durable job
state, so ``net.py`` sits on the rule's allowed list."""

import os


def remove_socket(socket_path):
    if os.path.exists(socket_path):
        os.unlink(socket_path)
