"""Fixture: serving state mutations routed through the atomic helpers."""

from repro.serving import durable


def durable_journal_append(fh, line):
    durable.append_line(fh, line)


def durable_index_write(path, payload):
    durable.atomic_write_json(path, payload)


def durable_cleanup(path):
    durable.remove(path)
    durable.rename(path, path + ".quarantined")


def reading_state(path):
    with open(path, "rb") as fh:
        return fh.read()
