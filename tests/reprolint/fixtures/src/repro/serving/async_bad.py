"""Blocking calls inside coroutines — every flagged line stalls the loop."""

import time
from time import sleep as snooze


async def poll_forever(worker_pool):
    time.sleep(0.5)
    snooze(0.1)
    return worker_pool.get()


async def drain(pool):
    pool.join()
    return pool.map(str, [1, 2, 3])
