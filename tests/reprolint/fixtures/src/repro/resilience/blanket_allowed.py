"""Fixture: the resilience layer may blanket-catch (0 findings)."""


def isolate(task):
    try:
        return task()
    except Exception as exc:
        return exc
