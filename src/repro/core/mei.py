"""Vectorized reference implementation of the morphological stage.

This module computes, for every pixel of a hyperspectral image:

1. the **cumulative SID distance** of every structuring-element neighbour
   (paper eq. 1),
2. the **extended erosion** (eq. 5, argmin of the cumulative distance)
   and **extended dilation** (eq. 6, argmax),
3. the **Morphological Eccentricity Index** — the SID between the
   dilation and erosion pixels (AMC step 2).

Semantics shared by all implementations in this library (reference, naive
oracle, GPU):

* the structuring element is the square of radius ``r`` —
  ``B = {-r..r} x {-r..r}``, ``(2r+1)^2`` elements (the paper uses 3x3,
  i.e. r = 1);
* out-of-image coordinates are **clamped to the edge**
  (replicate padding), matching the ``GL_CLAMP_TO_EDGE`` addressing the
  GPU kernels use;
* argmin/argmax break ties by the lowest neighbour index (row-major
  order of the SE).

The implementation evaluates one (H, W) SID map per *unordered pair* of
SE offsets via the cross-entropy decomposition with cached shifted
views — ``B^2 (B^2 - 1) / 2`` maps instead of the naive per-pixel
``O(B^4)`` loop — and reuses the pair maps again for the final MEI gather
so nothing is computed twice.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.errors import ShapeError
from repro.spectral.distances import sid_self_entropy
from repro.spectral.normalize import normalize_image, safe_log


@lru_cache(maxsize=64)
def se_offsets(radius: int) -> tuple[tuple[int, int], ...]:
    """Row-major offsets ``(dy, dx)`` of the square SE of a given radius.

    Index ``k`` of the returned tuple is the neighbour index used by the
    erosion/dilation maps of every implementation.
    """
    if radius < 0:
        raise ValueError(f"SE radius must be >= 0, got {radius}")
    return tuple((dy, dx)
                 for dy in range(-radius, radius + 1)
                 for dx in range(-radius, radius + 1))


def _clamped(arr: np.ndarray, dy: int, dx: int) -> np.ndarray:
    """``out[y, x] = arr[clamp(y + dy), clamp(x + dx)]`` (replicate)."""
    if dy == 0 and dx == 0:
        return arr
    h, w = arr.shape[:2]
    rows = np.clip(np.arange(h) + dy, 0, h - 1)
    cols = np.clip(np.arange(w) + dx, 0, w - 1)
    return arr[np.ix_(rows, cols)]


@dataclass(frozen=True)
class MorphologicalOutput:
    """Everything the morphological stage produces for one image.

    Attributes
    ----------
    mei:
        (H, W) morphological eccentricity index — SID between the
        dilation and erosion pixels of each neighbourhood.
    erosion_index / dilation_index:
        (H, W) SE-neighbour indices selected by eq. 5 / eq. 6 (row-major
        index into :func:`se_offsets`).
    cumulative:
        (H, W, K) cumulative distances, ``K = (2r+1)^2`` — kept because
        the ablation benches and the tests inspect them.
    radius:
        The SE radius used.
    """

    mei: np.ndarray
    erosion_index: np.ndarray
    dilation_index: np.ndarray
    cumulative: np.ndarray
    radius: int

    def erosion_offsets(self) -> np.ndarray:
        """(H, W, 2) array of (dy, dx) selected by the erosion."""
        offs = np.array(se_offsets(self.radius))
        return offs[self.erosion_index]

    def dilation_offsets(self) -> np.ndarray:
        """(H, W, 2) array of (dy, dx) selected by the dilation."""
        offs = np.array(se_offsets(self.radius))
        return offs[self.dilation_index]


def cumulative_distances(normalized: np.ndarray, radius: int = 1,
                         *, return_pair_maps: bool = False):
    """Cumulative SID distance of every SE neighbour at every pixel.

    Parameters
    ----------
    normalized:
        (H, W, N) image, pixel vectors already normalized to unit sum
        (eq. 3-4).  Use :func:`repro.spectral.normalize.normalize_image`.
    radius:
        SE radius (paper: 1, i.e. a 3x3 window).
    return_pair_maps:
        Also return the dict of per-pair SID maps keyed by ``(ka, kb)``
        with ``ka < kb`` — consumed by :func:`mei_reference` to avoid
        recomputation.

    Returns
    -------
    numpy.ndarray [, dict]
        (H, W, K) array where slot ``k`` holds
        ``D_B[f(x + a_k)] = sum_b SID(f(x + a_k), f(x + b))`` with all
        coordinates clamped to the image.
    """
    normalized = np.asarray(normalized, dtype=np.float64)
    if normalized.ndim != 3:
        raise ShapeError(f"expected (H, W, N), got ndim={normalized.ndim}")
    offsets = se_offsets(radius)
    k_count = len(offsets)
    h, w, _ = normalized.shape

    log_img = safe_log(normalized)
    entropy = sid_self_entropy(normalized)

    # Cache shifted views of p, log p and h per SE offset.
    shifted_p = [_clamped(normalized, dy, dx) for dy, dx in offsets]
    shifted_l = [_clamped(log_img, dy, dx) for dy, dx in offsets]
    shifted_h = [_clamped(entropy, dy, dx) for dy, dx in offsets]

    cumulative = np.zeros((h, w, k_count), dtype=np.float64)
    pair_maps: dict[tuple[int, int], np.ndarray] = {}
    for ka in range(k_count):
        pa, la, ha = shifted_p[ka], shifted_l[ka], shifted_h[ka]
        for kb in range(ka + 1, k_count):
            pb, lb, hb = shifted_p[kb], shifted_l[kb], shifted_h[kb]
            cross = np.einsum("ijk,ijk->ij", pa, lb) \
                + np.einsum("ijk,ijk->ij", pb, la)
            sid_map = np.maximum(ha + hb - cross, 0.0)
            cumulative[:, :, ka] += sid_map
            cumulative[:, :, kb] += sid_map
            if return_pair_maps:
                pair_maps[(ka, kb)] = sid_map
    if return_pair_maps:
        return cumulative, pair_maps
    return cumulative


def mei_reference(cube_bip: np.ndarray, radius: int = 1, *,
                  prenormalized: bool = False) -> MorphologicalOutput:
    """Full morphological stage on the CPU (vectorized reference).

    Parameters
    ----------
    cube_bip:
        (H, W, N) image cube; raw radiance unless ``prenormalized``.
    radius:
        SE radius.
    prenormalized:
        Skip eq. 3-4 normalization when the caller already applied it.

    Returns
    -------
    MorphologicalOutput
    """
    cube_bip = np.asarray(cube_bip)
    if cube_bip.ndim != 3:
        raise ShapeError(f"expected (H, W, N), got ndim={cube_bip.ndim}")
    normalized = cube_bip.astype(np.float64) if prenormalized \
        else normalize_image(cube_bip)

    cumulative, pair_maps = cumulative_distances(
        normalized, radius, return_pair_maps=True)
    erosion_index = np.argmin(cumulative, axis=2)
    dilation_index = np.argmax(cumulative, axis=2)

    # MEI(x) = SID(f(x + a_dil), f(x + a_ero)) — exactly the pair map of
    # the (erosion, dilation) index pair, gathered per pixel.
    h, w, k_count = cumulative.shape
    mei = np.zeros((h, w), dtype=np.float64)
    lo = np.minimum(erosion_index, dilation_index)
    hi = np.maximum(erosion_index, dilation_index)
    for ka in range(k_count):
        for kb in range(ka + 1, k_count):
            mask = (lo == ka) & (hi == kb)
            if mask.any():
                mei[mask] = pair_maps[(ka, kb)][mask]
    # Where erosion == dilation (flat neighbourhood), MEI is 0 already.
    return MorphologicalOutput(mei=mei, erosion_index=erosion_index,
                               dilation_index=dilation_index,
                               cumulative=cumulative, radius=radius)
