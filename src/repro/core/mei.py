"""Vectorized reference implementation of the morphological stage.

This module computes, for every pixel of a hyperspectral image:

1. the **cumulative SID distance** of every structuring-element neighbour
   (paper eq. 1),
2. the **extended erosion** (eq. 5, argmin of the cumulative distance)
   and **extended dilation** (eq. 6, argmax),
3. the **Morphological Eccentricity Index** — the SID between the
   dilation and erosion pixels (AMC step 2).

Semantics shared by all implementations in this library (reference, naive
oracle, GPU):

* the structuring element is the square of radius ``r`` —
  ``B = {-r..r} x {-r..r}``, ``(2r+1)^2`` elements (the paper uses 3x3,
  i.e. r = 1);
* out-of-image coordinates are **clamped to the edge**
  (replicate padding), matching the ``GL_CLAMP_TO_EDGE`` addressing the
  GPU kernels use;
* argmin/argmax break ties by the lowest neighbour index (row-major
  order of the SE).

Two execution strategies produce bit-identical results:

* ``method="shift"`` (the default) — the shift-reuse engine of
  :mod:`repro.core.pairreuse`: one full-image SID map per *unique
  offset difference* (``((4r+1)^2 - 1)/2`` maps), every pair map a
  shifted view plus a recomputed border band, and a lazy MEI gather
  over only the (erosion, dilation) pairs that occur;
* ``method="pairs"`` — the historical all-pairs loop, one full-image
  map per unordered SE-offset pair (``K(K-1)/2`` maps) via the
  cross-entropy decomposition; kept as the opt-out oracle the reuse
  path is pinned against.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.core.pairreuse import (PairReuseEngine, PairReuseStats,
                                  check_optimize, gather_mei)
from repro.core.shifts import clamped_shift
from repro.errors import ShapeError, ValidationError
from repro.spectral.distances import sid_self_entropy
from repro.spectral.normalize import normalize_image, safe_log

#: Execution strategies of :func:`cumulative_distances` /
#: :func:`mei_reference`.
MEI_METHODS = ("shift", "pairs")


@lru_cache(maxsize=64)
def se_offsets(radius: int) -> tuple[tuple[int, int], ...]:
    """Row-major offsets ``(dy, dx)`` of the square SE of a given radius.

    Index ``k`` of the returned tuple is the neighbour index used by the
    erosion/dilation maps of every implementation.
    """
    if radius < 0:
        raise ValidationError(f"SE radius must be >= 0, got {radius}")
    return tuple((dy, dx)
                 for dy in range(-radius, radius + 1)
                 for dx in range(-radius, radius + 1))


def _check_method(method: str) -> None:
    if method not in MEI_METHODS:
        raise ValidationError(
            f"method must be one of {MEI_METHODS}, got {method!r}")


@dataclass(frozen=True)
class MorphologicalOutput:
    """Everything the morphological stage produces for one image.

    Attributes
    ----------
    mei:
        (H, W) morphological eccentricity index — SID between the
        dilation and erosion pixels of each neighbourhood.
    erosion_index / dilation_index:
        (H, W) SE-neighbour indices selected by eq. 5 / eq. 6 (row-major
        index into :func:`se_offsets`).
    cumulative:
        (H, W, K) cumulative distances, ``K = (2r+1)^2`` — kept because
        the ablation benches and the tests inspect them.
    radius:
        The SE radius used.
    stats:
        :class:`~repro.core.pairreuse.PairReuseStats` of the shift-reuse
        engine when it ran (``method="shift"``), else ``None``.
    """

    mei: np.ndarray
    erosion_index: np.ndarray
    dilation_index: np.ndarray
    cumulative: np.ndarray
    radius: int
    stats: PairReuseStats | None = None

    def erosion_offsets(self) -> np.ndarray:
        """(H, W, 2) array of (dy, dx) selected by the erosion."""
        offs = np.array(se_offsets(self.radius))
        return offs[self.erosion_index]

    def dilation_offsets(self) -> np.ndarray:
        """(H, W, 2) array of (dy, dx) selected by the dilation."""
        offs = np.array(se_offsets(self.radius))
        return offs[self.dilation_index]


def _pair_maps_loop(normalized: np.ndarray, offsets, log_img: np.ndarray,
                    entropy: np.ndarray, *, keep_maps: bool):
    """The all-pairs loop: one cross-entropy evaluation per unordered
    SE-offset pair, with cached shifted views."""
    h, w, _ = normalized.shape
    k_count = len(offsets)
    shifted_p = [clamped_shift(normalized, dy, dx) for dy, dx in offsets]
    shifted_l = [clamped_shift(log_img, dy, dx) for dy, dx in offsets]
    shifted_h = [clamped_shift(entropy, dy, dx) for dy, dx in offsets]

    cumulative = np.zeros((h, w, k_count), dtype=np.float64)
    pair_maps: dict[tuple[int, int], np.ndarray] = {}
    for ka in range(k_count):
        pa, la, ha = shifted_p[ka], shifted_l[ka], shifted_h[ka]
        for kb in range(ka + 1, k_count):
            pb, lb, hb = shifted_p[kb], shifted_l[kb], shifted_h[kb]
            cross = np.einsum("ijk,ijk->ij", pa, lb) \
                + np.einsum("ijk,ijk->ij", pb, la)
            sid_map = np.maximum(ha + hb - cross, 0.0)
            cumulative[:, :, ka] += sid_map
            cumulative[:, :, kb] += sid_map
            if keep_maps:
                pair_maps[(ka, kb)] = sid_map
    return cumulative, pair_maps


def cumulative_distances(normalized: np.ndarray, radius: int = 1,
                         *, return_pair_maps: bool = False,
                         method: str = "shift", optimize: str = "fuse"):
    """Cumulative SID distance of every SE neighbour at every pixel.

    Parameters
    ----------
    normalized:
        (H, W, N) image, pixel vectors already normalized to unit sum
        (eq. 3-4).  Use :func:`repro.spectral.normalize.normalize_image`.
    radius:
        SE radius (paper: 1, i.e. a 3x3 window).
    return_pair_maps:
        Also return the dict of per-pair SID maps keyed by ``(ka, kb)``
        with ``ka < kb``.  On the shift path this materializes all
        ``K(K-1)/2`` maps (callers that only need the occurring pairs
        should use the engine's lazy :meth:`~repro.core.pairreuse.\
PairReuseEngine.pair_map` instead, as :func:`mei_reference` does).
    method:
        ``"shift"`` (default) evaluates one map per unique offset
        difference and shifts it into every pair (bit-identical);
        ``"pairs"`` runs the historical all-pairs loop.
    optimize:
        ``"fuse"`` (default) runs the shift engine's fused fast path
        (region accumulation, strided shifted copies); ``"none"``
        keeps the historical engine paths.  Byte-identical either way;
        ignored by ``method="pairs"``.

    Returns
    -------
    numpy.ndarray [, dict]
        (H, W, K) array where slot ``k`` holds
        ``D_B[f(x + a_k)] = sum_b SID(f(x + a_k), f(x + b))`` with all
        coordinates clamped to the image.
    """
    _check_method(method)
    check_optimize(optimize)
    normalized = np.asarray(normalized, dtype=np.float64)
    if normalized.ndim != 3:
        raise ShapeError(f"expected (H, W, N), got ndim={normalized.ndim}")
    offsets = se_offsets(radius)

    log_img = safe_log(normalized)
    entropy = sid_self_entropy(normalized)

    if method == "pairs":
        cumulative, pair_maps = _pair_maps_loop(
            normalized, offsets, log_img, entropy,
            keep_maps=return_pair_maps)
    else:
        engine = PairReuseEngine(normalized, offsets, log_img=log_img,
                                 entropy=entropy, optimize=optimize)
        cumulative = engine.accumulate_cumulative()
        pair_maps = {}
        if return_pair_maps:
            k_count = len(offsets)
            pair_maps = {(ka, kb): engine.pair_map(ka, kb)
                         for ka in range(k_count)
                         for kb in range(ka + 1, k_count)}
    if return_pair_maps:
        return cumulative, pair_maps
    return cumulative


def mei_reference(cube_bip: np.ndarray, radius: int = 1, *,
                  prenormalized: bool = False,
                  method: str = "shift", optimize: str = "fuse",
                  halo_margins: tuple[int, int] = (0, 0)
                  ) -> MorphologicalOutput:
    """Full morphological stage on the CPU (vectorized reference).

    Parameters
    ----------
    cube_bip:
        (H, W, N) image cube; raw radiance unless ``prenormalized``.
    radius:
        SE radius.
    prenormalized:
        Skip eq. 3-4 normalization when the caller already applied it.
    method:
        ``"shift"`` (default) runs the
        :class:`~repro.core.pairreuse.PairReuseEngine` fast path;
        ``"pairs"`` the all-pairs loop.  Bit-identical outputs either
        way.
    optimize:
        ``"fuse"`` (default) enables the engine's fused fast paths
        (region accumulation, strided shifted copies, the sorted MEI
        gather); ``"none"`` keeps the historical engine paths.
        Byte-identical either way; ignored by ``method="pairs"``.
    halo_margins:
        ``(top, bottom)`` rows that are this image's discarded chunk
        halo — a neighbouring chunk owns them.  On the fused path,
        border bands falling entirely inside a margin are skipped and
        counted as ``border_pixels_shared``; **the returned arrays are
        then only valid outside the margins** (the chunk stitcher
        discards the rest).  Must be ``(0, 0)`` — the default —
        everywhere else.

    Returns
    -------
    MorphologicalOutput
    """
    _check_method(method)
    check_optimize(optimize)
    cube_bip = np.asarray(cube_bip)
    if cube_bip.ndim != 3:
        raise ShapeError(f"expected (H, W, N), got ndim={cube_bip.ndim}")
    normalized = cube_bip.astype(np.float64) if prenormalized \
        else normalize_image(cube_bip)
    # normalize_image preserves float32 inputs; the reference pair maps
    # have always been computed in float64 (the historical cast at the
    # cumulative_distances entry), so cast *before* taking logs.
    normalized = np.asarray(normalized, dtype=np.float64)

    offsets = se_offsets(radius)
    k_count = len(offsets)
    log_img = safe_log(normalized)
    entropy = sid_self_entropy(normalized)

    engine: PairReuseEngine | None = None
    if method == "pairs":
        cumulative, pair_maps = _pair_maps_loop(
            normalized, offsets, log_img, entropy, keep_maps=True)

        def pair_map(ka: int, kb: int) -> np.ndarray:
            return pair_maps[(ka, kb)]
    else:
        engine = PairReuseEngine(normalized, offsets, log_img=log_img,
                                 entropy=entropy, optimize=optimize,
                                 halo_margins=halo_margins)
        cumulative = engine.accumulate_cumulative()
        pair_map = engine.pair_map

    erosion_index = np.argmin(cumulative, axis=2)
    dilation_index = np.argmax(cumulative, axis=2)

    # MEI(x) = SID(f(x + a_dil), f(x + a_ero)) — exactly the pair map of
    # the (erosion, dilation) index pair, gathered per pixel for the
    # pairs that actually occur.
    if engine is not None and optimize == "fuse":
        mei, gathered = engine.gather_mei_fast(erosion_index,
                                               dilation_index)
    else:
        mei, gathered = gather_mei(erosion_index, dilation_index,
                                   pair_map, k_count)
    stats = None
    if engine is not None:
        engine.count_mei_pairs(gathered)
        stats = engine.stats()
    return MorphologicalOutput(mei=mei, erosion_index=erosion_index,
                               dilation_index=dilation_index,
                               cumulative=cumulative, radius=radius,
                               stats=stats)
