"""Stream-based GPU implementation of the AMC morphological stage.

This is the implementation of paper Fig. 4, kernel for kernel:

1. **Stream uploading** — the cube is split into line-wise chunks sized
   to the board's VRAM (each chunk "incorporates all the spectral
   information on a localized spatial region", Fig. 3), band-packed into
   RGBA textures and uploaded.
2. **Normalization** — reduction kernels accumulate the per-pixel band
   sum across the texture stack (ping-pong targets), then per-group
   kernels divide and take logarithms (eqs. 3-4 plus the log stream the
   SID decomposition needs).
3. **Cumulative distance** — for every unordered pair of SE offsets, a
   chain of accumulation kernels computes the cross-entropy terms over
   the stack, a combine kernel produces the pair's SID map, and two
   accumulation kernels add it into the pair's two cumulative-distance
   streams (``accum_k`` in Fig. 4).
4. **Maximum and minimum** — a running-reduction kernel folds the K
   cumulative streams into a single RGBA state texture holding
   ``(max value, max index, min value, min index)`` per pixel, the classic
   GPGPU argmax/argmin encoding.
5. **Compute SID** — dependent texture fetches read the normalized and
   log spectra of the pixels the max/min stage selected (via a K x 1
   offset lookup texture) and evaluate their SID: the MEI.
6. **Stream downloading** — the MEI (and the argmin/argmax indices)
   are read back; chunk cores are stitched into the full-size outputs.

The arithmetic is float32 throughout — the precision of the fp30/G70
pipelines — so results match the float64 reference to float32 tolerance,
which the test-suite cross-checks enforce.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache

import numpy as np

from repro.core.mei import se_offsets
from repro.errors import ShapeError, StreamError
from repro.gpu import shaderir as ir
from repro.gpu.device import VirtualGPU
from repro.gpu.shader import FragmentShader
from repro.gpu.spec import GEFORCE_7800GTX, GpuSpec
from repro.gpu.texture import (
    CHANNELS,
    TEXEL_BYTES,
    Texture2D,
    band_group_count,
    group_masks,
    pack_bands,
)
from repro.hsi.chunking import ChunkPlan, plan_chunks_by_lines
from repro.spectral.normalize import SpectralEpsilon


def sum_time_dicts(a: dict[str, float],
                   b: dict[str, float]) -> dict[str, float]:
    """Key-wise sum of two counter/time dictionaries."""
    out = dict(a)
    for key, value in b.items():
        out[key] = out.get(key, 0.0) + value
    return out


@dataclass(frozen=True)
class GpuAmcOutput:
    """Results of the GPU morphological stage.

    ``modeled_time_s`` is the device time predicted by the cost model for
    the recorded kernel launches and transfers; ``counters`` is the full
    aggregate summary.
    """

    mei: np.ndarray
    erosion_index: np.ndarray
    dilation_index: np.ndarray
    radius: int
    chunk_count: int
    modeled_time_s: float
    counters: dict[str, float]
    time_by_kernel: dict[str, float]

    def with_accounting(self, counters, *, add: bool = False
                        ) -> "GpuAmcOutput":
        """A copy whose accounting is refreshed from a device's counters.

        Both tail-stage aggregation paths go through here:

        * ``add=False`` — ``counters`` belong to the *same* device that
          produced this output (e.g. serial morphology + GPU unmixing on
          one board), so the device totals already include this output's
          launches and simply replace the recorded accounting;
        * ``add=True`` — ``counters`` belong to a *separate* device
          (e.g. per-worker morphological boards plus a tail board), so
          its activity is summed into the existing accounting.
        """
        if add:
            modeled = self.modeled_time_s + counters.total_time_s
            summary = sum_time_dicts(self.counters, counters.summary())
            kernels = sum_time_dicts(self.time_by_kernel,
                                     counters.time_by_kernel())
        else:
            modeled = counters.total_time_s
            summary = counters.summary()
            kernels = counters.time_by_kernel()
        return replace(self, modeled_time_s=modeled, counters=summary,
                       time_by_kernel=kernels)


# --------------------------------------------------------------------------
# Kernel construction (cached per (radius, epsilon) configuration)
# --------------------------------------------------------------------------

def _x(e: ir.Expr) -> ir.Expr:
    return ir.Swizzle(e, "xxxx")


#: Texture image units a 2005-era fragment program can bind at once; the
#: fusion width of the reduction kernels is chosen against this limit.
MAX_TEXTURE_UNITS: int = 16


def _batches(groups: int, fuse: int) -> list[tuple[int, int]]:
    """Split ``groups`` band groups into (start, width) fusion batches."""
    if fuse < 1:
        raise StreamError(f"fuse width must be >= 1, got {fuse}")
    return [(start, min(fuse, groups - start))
            for start in range(0, groups, fuse)]


@lru_cache(maxsize=32)
def _kernels(radius: int, eps: float,
             widths: tuple[int, ...] = (1,)) -> dict[str, FragmentShader]:
    """Build every fragment program of the Fig. 4 pipeline.

    ``widths`` lists the fusion widths the reduction kernels are needed
    at: a width-w kernel binds w band-group textures (of each stream) and
    folds their contributions in a single pass, the way a real fp30
    implementation amortizes pass overheads until it runs out of texture
    units.
    """
    offsets = se_offsets(radius)
    shaders: dict[str, FragmentShader] = {}
    for w in widths:
        if w < 1:
            raise StreamError(f"fusion width must be >= 1, got {w}")
        if 3 + 2 * w > MAX_TEXTURE_UNITS:
            raise StreamError(
                f"fusion width {w} needs {3 + 2 * w} texture units; the "
                f"hardware has {MAX_TEXTURE_UNITS}")

    # --- normalization stage ---------------------------------------------
    # acc' = acc + sum_i dot(src_i, mask_i): band-sum reduction.
    for w in widths:
        body: ir.Expr = ir.TexFetch("acc")
        for i in range(w):
            body = ir.add(body, ir.dot4(ir.TexFetch(f"src{i}"),
                                        ir.Uniform(f"mask{i}")))
        shaders[f"bandsum_w{w}"] = FragmentShader(
            f"bandsum_w{w}", body,
            samplers=("acc", *(f"src{i}" for i in range(w))),
            uniforms=tuple(f"mask{i}" for i in range(w)))
    # norm = (src / total.x) * mask  — eq. 3-4 plus padded-lane zeroing.
    shaders["normalize"] = FragmentShader(
        "normalize",
        ir.mul(ir.div(ir.TexFetch("src"), _x(ir.TexFetch("total"))),
               ir.Uniform("mask")),
        samplers=("src", "total"), uniforms=("mask",))
    # logt = log(max(norm, eps)) — the log stream of the decomposition.
    shaders["logstream"] = FragmentShader(
        "logstream",
        ir.log(ir.max_(ir.TexFetch("norm"), ir.vec4(eps))),
        samplers=("norm",))
    # h' = h + sum_i dot(norm_i, logt_i): self-entropy reduction.
    for w in widths:
        body = ir.TexFetch("acc")
        for i in range(w):
            body = ir.add(body, ir.dot4(ir.TexFetch(f"norm{i}"),
                                        ir.TexFetch(f"logt{i}")))
        shaders[f"entropy_w{w}"] = FragmentShader(
            f"entropy_w{w}", body,
            samplers=("acc", *(f"norm{i}" for i in range(w)),
                      *(f"logt{i}" for i in range(w))))

    # --- cumulative distance stage -----------------------------------------
    # One cross-term accumulator (per fusion width) and one SID-map kernel
    # per unordered pair of SE offsets — the offsets are compile-time
    # constants of the fragment program, exactly like a #define'd Cg
    # kernel variant.
    k_count = len(offsets)
    for ka in range(k_count):
        ady, adx = offsets[ka]
        for kb in range(ka + 1, k_count):
            bdy, bdx = offsets[kb]
            for w in widths:
                body = ir.TexFetch("acc")
                for i in range(w):
                    body = ir.add(body, ir.add(
                        ir.dot4(ir.TexFetch(f"norm{i}", adx, ady),
                                ir.TexFetch(f"logt{i}", bdx, bdy)),
                        ir.dot4(ir.TexFetch(f"norm{i}", bdx, bdy),
                                ir.TexFetch(f"logt{i}", adx, ady))))
                shaders[f"cross_{ka}_{kb}_w{w}"] = FragmentShader(
                    f"cross_{ka}_{kb}_w{w}", body,
                    samplers=("acc", *(f"norm{i}" for i in range(w)),
                              *(f"logt{i}" for i in range(w))))
            # sid = max(h(x+a) + h(x+b) - cross, 0)
            shaders[f"sid_{ka}_{kb}"] = FragmentShader(
                f"sid_{ka}_{kb}",
                ir.max_(ir.sub(ir.add(ir.TexFetch("h", adx, ady),
                                      ir.TexFetch("h", bdx, bdy)),
                               ir.TexFetch("cross")),
                        ir.vec4(0.0)),
                samplers=("h", "cross"))
    # acc' = acc + value: adds a pair's SID map into a cumulative stream.
    shaders["accum"] = FragmentShader(
        "accum",
        ir.add(ir.TexFetch("acc"), ir.TexFetch("value")),
        samplers=("acc", "value"))
    # out = value: retires a ping-pong stream into a named texture.
    shaders["copy"] = FragmentShader(
        "copy", ir.TexFetch("value"), samplers=("value",))

    # --- maximum and minimum stage ----------------------------------------
    # state = (max value, max index, min value, min index); the first
    # cumulative stream initializes it, the rest fold in via CMP selects.
    first = _x(ir.TexFetch("d"))
    shaders["mm_init"] = FragmentShader(
        "mm_init",
        ir.Combine(first, ir.vec4(0.0), first, ir.vec4(0.0)),
        samplers=("d",))
    state = ir.TexFetch("state")
    value = _x(ir.TexFetch("d"))
    is_max = ir.cmp_gt(value, ir.Swizzle(state, "xxxx"))
    is_min = ir.cmp_gt(ir.Swizzle(state, "zzzz"), value)
    shaders["mm_step"] = FragmentShader(
        "mm_step",
        ir.Combine(
            ir.select(is_max, value, ir.Swizzle(state, "xxxx")),
            ir.select(is_max, ir.Uniform("kidx"), ir.Swizzle(state, "yyyy")),
            ir.select(is_min, value, ir.Swizzle(state, "zzzz")),
            ir.select(is_min, ir.Uniform("kidx"), ir.Swizzle(state, "wwww"))),
        samplers=("state", "d"), uniforms=("kidx",))

    # --- compute SID stage (dependent fetches) ------------------------------
    # The K x 1 lookup texture maps a neighbour index to its (dx, dy).
    coord_max = ir.add(ir.FragCoord(), ir.TexFetchDyn(
        "lut", ir.Combine(ir.Swizzle(ir.TexFetch("state"), "yyyy"),
                          ir.vec4(0.0), ir.vec4(0.0), ir.vec4(0.0))))
    coord_min = ir.add(ir.FragCoord(), ir.TexFetchDyn(
        "lut", ir.Combine(ir.Swizzle(ir.TexFetch("state"), "wwww"),
                          ir.vec4(0.0), ir.vec4(0.0), ir.vec4(0.0))))
    for w in widths:
        body = ir.TexFetch("acc")
        for i in range(w):
            body = ir.add(body, ir.add(
                ir.dot4(ir.TexFetchDyn(f"norm{i}", coord_max),
                        ir.TexFetchDyn(f"logt{i}", coord_min)),
                ir.dot4(ir.TexFetchDyn(f"norm{i}", coord_min),
                        ir.TexFetchDyn(f"logt{i}", coord_max))))
        shaders[f"mei_cross_w{w}"] = FragmentShader(
            f"mei_cross_w{w}", body,
            samplers=("acc", *(f"norm{i}" for i in range(w)),
                      *(f"logt{i}" for i in range(w)), "state", "lut"))
    shaders["mei_final"] = FragmentShader(
        "mei_final",
        ir.max_(ir.sub(ir.add(ir.TexFetchDyn("h", coord_max),
                              ir.TexFetchDyn("h", coord_min)),
                       ir.TexFetch("cross")),
                ir.vec4(0.0)),
        samplers=("h", "cross", "state", "lut"))
    return shaders


class _PingPong:
    """A pair of render targets alternating as source and destination —
    framebuffer-object ping-ponging."""

    def __init__(self, gpu: VirtualGPU, height: int, width: int, label: str):
        self._gpu = gpu
        self._a = gpu.create_target(height, width, label=f"{label}.a")
        self._b = gpu.create_target(height, width, label=f"{label}.b")

    @property
    def current(self) -> Texture2D:
        """The texture holding the latest result (bind as input)."""
        return self._a

    @property
    def target(self) -> Texture2D:
        """The texture to render into next."""
        return self._b

    def swap(self) -> None:
        self._a, self._b = self._b, self._a

    def free(self) -> None:
        self._gpu.free(self._a, self._b)


def _vram_chunk_plan(lines: int, samples: int, bands: int, radius: int,
                     spec: GpuSpec, *, vram_fraction: float) -> ChunkPlan:
    """Size chunks so the whole working set fits the board's VRAM.

    Per extended line the pipeline holds: the source stack, the
    normalized stack and the log stack (3G group textures), K cumulative
    streams, and ~10 scratch targets (sum/entropy/cross ping-pongs,
    max/min state, MEI).
    """
    groups = band_group_count(bands)
    k_count = (2 * radius + 1) ** 2
    textures_per_line = 3 * groups + k_count + 10
    bytes_per_line = samples * TEXEL_BYTES * textures_per_line
    budget = int(spec.vram_bytes * vram_fraction)
    max_ext = max(budget // bytes_per_line, 1)
    if max_ext < 2 * radius + 1:
        raise StreamError(
            f"{spec.name} VRAM ({spec.vram_bytes >> 20} MiB) cannot hold "
            f"even one {2 * radius + 1}-line window of a {samples}-sample, "
            f"{bands}-band image")
    return plan_chunks_by_lines(lines, samples, bands,
                                max_ext_lines=int(max_ext), halo=radius)


def gpu_morphological_stage(cube_bip: np.ndarray, radius: int = 1, *,
                            spec: GpuSpec = GEFORCE_7800GTX,
                            device: VirtualGPU | None = None,
                            vram_fraction: float = 0.85,
                            fuse_groups: int = 6) -> GpuAmcOutput:
    """Run stages 1-6 of the stream AMC pipeline on a virtual GPU.

    Parameters
    ----------
    cube_bip:
        (H, W, N) raw radiance cube (host memory).
    radius:
        SE radius (paper: 1 — a 3x3 window).
    spec:
        Board to simulate (ignored when ``device`` is given).
    device:
        Reuse an existing :class:`VirtualGPU` (its counters keep
        accumulating, which lets a caller time a whole workload).
    vram_fraction:
        Fraction of VRAM the chunk planner may use.
    fuse_groups:
        How many band groups the reduction kernels fold per pass (capped
        by the 16-texture-unit budget; 6 is the maximum for the widest
        kernel).  1 reproduces the unfused one-group-per-pass pipeline —
        the configuration the fusion ablation bench compares against.

    Returns
    -------
    GpuAmcOutput
    """
    cube_bip = np.asarray(cube_bip)
    if cube_bip.ndim != 3:
        raise ShapeError(f"expected (H, W, N), got ndim={cube_bip.ndim}")
    lines, samples, bands = cube_bip.shape
    gpu = device if device is not None else VirtualGPU(spec)
    eps = SpectralEpsilon.get()
    offsets = se_offsets(radius)
    k_count = len(offsets)
    masks = group_masks(bands)
    groups = band_group_count(bands)
    batches = _batches(groups, fuse_groups)
    widths = tuple(sorted({w for _, w in batches}))
    shaders = _kernels(radius, eps, widths)

    plan = _vram_chunk_plan(lines, samples, bands, radius, gpu.spec,
                            vram_fraction=vram_fraction)

    mei = np.empty((lines, samples), dtype=np.float32)
    erosion = np.empty((lines, samples), dtype=np.int64)
    dilation = np.empty((lines, samples), dtype=np.int64)

    start_time = gpu.counters.total_time_s

    # The offset lookup texture is tiny and persists across chunks.
    lut_img = np.zeros((1, k_count, CHANNELS), dtype=np.float32)
    for k, (dy, dx) in enumerate(offsets):
        lut_img[0, k, 0] = dx
        lut_img[0, k, 1] = dy
    lut = gpu.upload(lut_img, label="offset-lut")

    for chunk in plan:
        h = chunk.ext_lines
        w = samples
        # ---- stage 1: stream uploading --------------------------------
        src = [gpu.upload(t, label=f"src{g}")
               for g, t in enumerate(pack_bands(chunk.extract(cube_bip)))]

        # ---- stage 2: normalization ------------------------------------
        total = _PingPong(gpu, h, w, "bandsum")
        for start, width in batches:
            bindings = {"acc": total.current}
            uniforms = {}
            for i in range(width):
                bindings[f"src{i}"] = src[start + i]
                uniforms[f"mask{i}"] = masks[start + i]
            gpu.launch(shaders[f"bandsum_w{width}"], total.target,
                       bindings, uniforms)
            total.swap()
        norm = [gpu.create_target(h, w, label=f"norm{g}")
                for g in range(groups)]
        logt = [gpu.create_target(h, w, label=f"log{g}")
                for g in range(groups)]
        for g in range(groups):
            gpu.launch(shaders["normalize"], norm[g],
                       {"src": src[g], "total": total.current},
                       {"mask": masks[g]})
            gpu.launch(shaders["logstream"], logt[g], {"norm": norm[g]})
        gpu.free(*src)
        total.free()

        entropy = _PingPong(gpu, h, w, "entropy")
        for start, width in batches:
            bindings = {"acc": entropy.current}
            for i in range(width):
                bindings[f"norm{i}"] = norm[start + i]
                bindings[f"logt{i}"] = logt[start + i]
            gpu.launch(shaders[f"entropy_w{width}"], entropy.target,
                       bindings)
            entropy.swap()

        # ---- stage 3: cumulative distances -----------------------------
        cumulative = [gpu.create_target(h, w, label=f"accum{k}")
                      for k in range(k_count)]
        cum_scratch = gpu.create_target(h, w, label="accum-scratch")
        cross = _PingPong(gpu, h, w, "cross")
        sid_map = gpu.create_target(h, w, label="sidmap")
        for ka in range(k_count):
            for kb in range(ka + 1, k_count):
                # cross terms over the whole stack (ping-pong reduce)
                cross.current.data[...] = 0.0
                for start, width in batches:
                    bindings = {"acc": cross.current}
                    for i in range(width):
                        bindings[f"norm{i}"] = norm[start + i]
                        bindings[f"logt{i}"] = logt[start + i]
                    gpu.launch(shaders[f"cross_{ka}_{kb}_w{width}"],
                               cross.target, bindings)
                    cross.swap()
                gpu.launch(shaders[f"sid_{ka}_{kb}"], sid_map,
                           {"h": entropy.current, "cross": cross.current})
                # accumulate into both neighbours' cumulative streams
                for k in (ka, kb):
                    gpu.launch(shaders["accum"], cum_scratch,
                               {"acc": cumulative[k], "value": sid_map})
                    cumulative[k], cum_scratch = cum_scratch, cumulative[k]
        cross.free()
        gpu.free(sid_map, cum_scratch)

        # ---- stage 4: maximum and minimum ------------------------------
        state = _PingPong(gpu, h, w, "mmstate")
        gpu.launch(shaders["mm_init"], state.target, {"d": cumulative[0]})
        state.swap()
        for k in range(1, k_count):
            gpu.launch(shaders["mm_step"], state.target,
                       {"state": state.current, "d": cumulative[k]},
                       {"kidx": np.full(4, float(k), dtype=np.float32)})
            state.swap()
        gpu.free(*cumulative)

        # ---- stage 5: compute SID (the MEI) -----------------------------
        mei_cross = _PingPong(gpu, h, w, "meicross")
        for start, width in batches:
            bindings = {"acc": mei_cross.current, "state": state.current,
                        "lut": lut}
            for i in range(width):
                bindings[f"norm{i}"] = norm[start + i]
                bindings[f"logt{i}"] = logt[start + i]
            gpu.launch(shaders[f"mei_cross_w{width}"], mei_cross.target,
                       bindings)
            mei_cross.swap()
        mei_tex = gpu.create_target(h, w, label="mei")
        gpu.launch(shaders["mei_final"], mei_tex,
                   {"h": entropy.current, "cross": mei_cross.current,
                    "state": state.current, "lut": lut})
        mei_cross.free()

        # ---- stage 6: stream downloading --------------------------------
        state_host = gpu.download(state.current)
        mei_host = gpu.download_scalar(mei_tex)

        core = slice(chunk.core_start, chunk.core_stop)
        mei[core] = chunk.core_of(mei_host)
        dilation[core] = chunk.core_of(
            np.rint(state_host[:, :, 1]).astype(np.int64))
        erosion[core] = chunk.core_of(
            np.rint(state_host[:, :, 3]).astype(np.int64))

        gpu.free(*norm, *logt, mei_tex)
        entropy.free()
        state.free()

    gpu.free(lut)

    return GpuAmcOutput(
        mei=mei, erosion_index=erosion, dilation_index=dilation,
        radius=radius, chunk_count=len(plan),
        modeled_time_s=gpu.counters.total_time_s - start_time,
        counters=gpu.counters.summary(),
        time_by_kernel=gpu.counters.time_by_kernel())
