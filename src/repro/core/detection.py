"""Target/anomaly detection scores and detection-curve utilities.

Three detectors over the same interface (an (H, W) score map, higher =
more target-like / more anomalous), plus the curve machinery to compare
them:

* :func:`mei_detector` — the paper's MEI, used as an anomaly score (a
  man-made pixel makes its neighbourhood spectrally eccentric);
* :func:`rx_detector` — Reed-Xiaoli, the classical global benchmark:
  Mahalanobis distance of each pixel from the scene's mean spectrum
  under the scene covariance;
* :func:`cem_detector` — the constrained energy minimization matched
  filter: unit response on a known target spectrum, minimum output
  energy on the scene correlation;
* :func:`detection_curve` — recall as a function of the false-alarm
  budget, and the area under it, for scoring any detector against
  implanted-target ground truth.

Each detector is split into a *statistics* step (one global pass over
the scene: mean/covariance or correlation, inverted once) and a
*per-pixel kernel* that scores pixels against those fixed statistics.
The split is what makes the detectors chunk-parallel in
:mod:`repro.workloads`: statistics are computed once on the whole image,
then the kernel — per-pixel-independent by construction, evaluated with
non-optimized einsum so the reduction order is fixed — maps over line
chunks bit-identically to the whole-image call.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.mei import mei_reference
from repro.errors import ShapeError, ValidationError


def mei_detector(cube_bip: np.ndarray, radius: int = 1) -> np.ndarray:
    """Anomaly score = the morphological eccentricity index."""
    return mei_reference(cube_bip, radius).mei


def _as_cube(cube_bip: np.ndarray) -> np.ndarray:
    cube_bip = np.asarray(cube_bip, dtype=np.float64)
    if cube_bip.ndim != 3:
        raise ShapeError(f"expected (H, W, N), got {cube_bip.shape}")
    return cube_bip


def _ridge(matrix: np.ndarray, regularization: float) -> np.ndarray:
    """Add ``regularization * mean(diag)`` to the diagonal — keeps
    near-singular second-moment matrices invertible without visibly
    moving well-conditioned ones."""
    n = matrix.shape[0]
    return matrix + np.eye(n) * (regularization * np.trace(matrix) / n
                                 + 1e-300)


def rx_statistics(cube_bip: np.ndarray, *,
                  regularization: float = 1e-6
                  ) -> tuple[np.ndarray, np.ndarray]:
    """The RX detector's global statistics: ``(mean, inverse covariance)``.

    One pass over the whole scene; the inverse is materialized (rather
    than kept as a factorization) so the per-pixel kernel is a plain
    quadratic form with a deterministic evaluation order.
    """
    cube_bip = _as_cube(cube_bip)
    pixels = cube_bip.reshape(-1, cube_bip.shape[2])
    mean = pixels.mean(axis=0)
    centered = pixels - mean
    cov = centered.T @ centered / max(pixels.shape[0] - 1, 1)
    return mean, np.linalg.inv(_ridge(cov, regularization))


def rx_scores(cube_bip: np.ndarray, mean: np.ndarray,
              cov_inv: np.ndarray) -> np.ndarray:
    """The RX per-pixel kernel: Mahalanobis distance from ``mean``.

    Per-pixel independent (non-optimized einsum, fixed reduction
    order), so any line-chunked evaluation stitches bit-identically to
    the whole-image call.
    """
    centered = _as_cube(cube_bip) - mean
    scores = np.einsum("hwn,nm,hwm->hw", centered, cov_inv, centered)
    return np.maximum(scores, 0.0)


def rx_detector(cube_bip: np.ndarray, *,
                regularization: float = 1e-6) -> np.ndarray:
    """Reed-Xiaoli global anomaly score.

    ``score(x) = (x - mu)^T C^{-1} (x - mu)`` with the scene mean ``mu``
    and covariance ``C`` (ridge-regularized by ``regularization`` times
    the mean diagonal so near-singular covariances stay invertible).
    Composed from :func:`rx_statistics` + :func:`rx_scores` — the exact
    pair the chunk-parallel RX workload runs.
    """
    cube_bip = _as_cube(cube_bip)
    mean, cov_inv = rx_statistics(cube_bip, regularization=regularization)
    return rx_scores(cube_bip, mean, cov_inv)


def cem_statistics(cube_bip: np.ndarray, target: np.ndarray, *,
                   regularization: float = 1e-6) -> np.ndarray:
    """The CEM filter weights ``w = R^{-1} d / (d^T R^{-1} d)``.

    ``R`` is the scene's (ridge-regularized) correlation matrix and
    ``d`` the target spectrum; the filter responds with exactly 1.0 on
    ``d`` while minimizing output energy over the scene — the classic
    matched-filter construction of Harsanyi & Chang.
    """
    cube_bip = _as_cube(cube_bip)
    target = np.asarray(target, dtype=np.float64).reshape(-1)
    if target.shape[0] != cube_bip.shape[2]:
        raise ShapeError(
            f"target has {target.shape[0]} bands, cube has "
            f"{cube_bip.shape[2]}")
    pixels = cube_bip.reshape(-1, cube_bip.shape[2])
    corr = pixels.T @ pixels / max(pixels.shape[0], 1)
    solved = np.linalg.solve(_ridge(corr, regularization), target)
    return solved / float(target @ solved)


def cem_scores(cube_bip: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """The CEM per-pixel kernel: filter response ``w^T x``.

    Per-pixel independent (non-optimized einsum), so chunked evaluation
    is bit-identical to whole-image.
    """
    return np.einsum("hwn,n->hw", _as_cube(cube_bip), weights)


def cem_detector(cube_bip: np.ndarray, target: np.ndarray, *,
                 regularization: float = 1e-6) -> np.ndarray:
    """Constrained energy minimization target score.

    Parameters
    ----------
    cube_bip:
        (H, W, N) radiance cube.
    target:
        (N,) spectrum of the material to detect.
    regularization:
        Ridge factor on the scene correlation matrix.
    """
    cube_bip = _as_cube(cube_bip)
    weights = cem_statistics(cube_bip, target,
                             regularization=regularization)
    return cem_scores(cube_bip, weights)


@dataclass(frozen=True)
class DetectionCurve:
    """Recall vs false-alarm budget for one detector on one scene."""

    alarms: np.ndarray        # number of top-scored pixels inspected
    recall: np.ndarray        # fraction of targets hit at each budget
    auc: float                # normalized area under the curve

    def recall_at(self, budget: int) -> float:
        """Recall after inspecting the ``budget`` highest scores."""
        idx = np.searchsorted(self.alarms, budget, side="right") - 1
        return float(self.recall[max(idx, 0)])


def detection_curve(scores: np.ndarray, target_mask: np.ndarray, *,
                    max_alarms: int | None = None) -> DetectionCurve:
    """Score a detector against a ground-truth mask.

    Walks the score map in descending order; each connected hit of the
    (already tolerance-dilated) ``target_mask`` counts once per target
    *pixel* — pass a mask built with the tolerance you accept.

    Parameters
    ----------
    scores:
        (H, W) anomaly scores.
    target_mask:
        (H, W) boolean truth (e.g. ``ImplantedTargets.mask(1)``).
    max_alarms:
        Curve horizon (defaults to 10% of the scene).
    """
    scores = np.asarray(scores, dtype=np.float64)
    target_mask = np.asarray(target_mask, dtype=bool)
    if scores.shape != target_mask.shape or scores.ndim != 2:
        raise ShapeError(
            f"scores {scores.shape} and mask {target_mask.shape} must be "
            f"equal 2-D shapes")
    total_targets = int(target_mask.sum())
    if total_targets == 0:
        raise ValidationError("target mask is empty; nothing to detect")
    if max_alarms is None:
        max_alarms = max(scores.size // 10, 1)
    max_alarms = min(max_alarms, scores.size)

    order = np.argsort(scores, axis=None)[::-1][:max_alarms]
    hits = target_mask.ravel()[order]
    cumulative = np.cumsum(hits)
    alarms = np.arange(1, max_alarms + 1)
    recall = cumulative / total_targets
    auc = float(recall.mean())
    return DetectionCurve(alarms=alarms, recall=recall, auc=auc)
