"""Anomaly detection scores and detection-curve utilities.

Two detectors over the same interface (an (H, W) anomaly score map,
higher = more anomalous), plus the curve machinery to compare them:

* :func:`mei_detector` — the paper's MEI, used as an anomaly score (a
  man-made pixel makes its neighbourhood spectrally eccentric);
* :func:`rx_detector` — Reed-Xiaoli, the classical global benchmark:
  Mahalanobis distance of each pixel from the scene's mean spectrum
  under the scene covariance;
* :func:`detection_curve` — recall as a function of the false-alarm
  budget, and the area under it, for scoring either detector against
  implanted-target ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.mei import mei_reference
from repro.errors import ShapeError


def mei_detector(cube_bip: np.ndarray, radius: int = 1) -> np.ndarray:
    """Anomaly score = the morphological eccentricity index."""
    return mei_reference(cube_bip, radius).mei


def rx_detector(cube_bip: np.ndarray, *,
                regularization: float = 1e-6) -> np.ndarray:
    """Reed-Xiaoli global anomaly score.

    ``score(x) = (x - mu)^T C^{-1} (x - mu)`` with the scene mean ``mu``
    and covariance ``C`` (ridge-regularized by ``regularization`` times
    the mean diagonal so near-singular covariances stay invertible).
    """
    cube_bip = np.asarray(cube_bip, dtype=np.float64)
    if cube_bip.ndim != 3:
        raise ShapeError(f"expected (H, W, N), got {cube_bip.shape}")
    h, w, n = cube_bip.shape
    pixels = cube_bip.reshape(-1, n)
    mean = pixels.mean(axis=0)
    centered = pixels - mean
    cov = centered.T @ centered / max(pixels.shape[0] - 1, 1)
    cov = cov + np.eye(n) * (regularization * np.trace(cov) / n + 1e-300)
    solved = np.linalg.solve(cov, centered.T)         # (N, P)
    scores = np.einsum("pn,np->p", centered, solved)
    return np.maximum(scores, 0.0).reshape(h, w)


@dataclass(frozen=True)
class DetectionCurve:
    """Recall vs false-alarm budget for one detector on one scene."""

    alarms: np.ndarray        # number of top-scored pixels inspected
    recall: np.ndarray        # fraction of targets hit at each budget
    auc: float                # normalized area under the curve

    def recall_at(self, budget: int) -> float:
        """Recall after inspecting the ``budget`` highest scores."""
        idx = np.searchsorted(self.alarms, budget, side="right") - 1
        return float(self.recall[max(idx, 0)])


def detection_curve(scores: np.ndarray, target_mask: np.ndarray, *,
                    max_alarms: int | None = None) -> DetectionCurve:
    """Score a detector against a ground-truth mask.

    Walks the score map in descending order; each connected hit of the
    (already tolerance-dilated) ``target_mask`` counts once per target
    *pixel* — pass a mask built with the tolerance you accept.

    Parameters
    ----------
    scores:
        (H, W) anomaly scores.
    target_mask:
        (H, W) boolean truth (e.g. ``ImplantedTargets.mask(1)``).
    max_alarms:
        Curve horizon (defaults to 10% of the scene).
    """
    scores = np.asarray(scores, dtype=np.float64)
    target_mask = np.asarray(target_mask, dtype=bool)
    if scores.shape != target_mask.shape or scores.ndim != 2:
        raise ShapeError(
            f"scores {scores.shape} and mask {target_mask.shape} must be "
            f"equal 2-D shapes")
    total_targets = int(target_mask.sum())
    if total_targets == 0:
        raise ValueError("target mask is empty; nothing to detect")
    if max_alarms is None:
        max_alarms = max(scores.size // 10, 1)
    max_alarms = min(max_alarms, scores.size)

    order = np.argsort(scores, axis=None)[::-1][:max_alarms]
    hits = target_mask.ravel()[order]
    cumulative = np.cumsum(hits)
    alarms = np.arange(1, max_alarms + 1)
    recall = cumulative / total_targets
    auc = float(recall.mean())
    return DetectionCurve(alarms=alarms, recall=recall, auc=auc)
