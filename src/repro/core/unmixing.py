"""Linear spectral unmixing (AMC step 3, second half) and classification
(AMC step 4).

The linear mixture model writes every pixel as a non-negative combination
of endmember spectra: ``x = E^T a + n`` with ``E`` the (c, N) endmember
matrix.  Five estimators are provided, in increasing order of constraint
(and cost):

* :func:`unmix_lsu` — unconstrained least squares (one pseudo-inverse for
  the whole image; what a 2006 GPU implementation would realistically
  run, since it reduces to c dot products per pixel);
* :func:`unmix_sclsu` — sum-to-one constrained least squares (closed
  form via a Lagrange multiplier);
* :func:`unmix_nnls` — non-negativity constrained (active-set NNLS per
  pixel, CPU only);
* :func:`unmix_fcls` — fully constrained (non-negative + sum-to-one),
  implemented as NNLS on the augmented system, the standard FCLS trick;
* :func:`~repro.core.fnnls.unmix_fnnls` — the fast NNLS reformulation
  of Bro & De Jong (registered here as ``"fnnls"``): same constraint
  set as ``nnls``, but the active set runs on the precomputed c x c
  Gram system, removing the band dimension from the per-pixel cost.

Classification assigns each pixel the index of its largest abundance
(paper step 4).
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import nnls as _scipy_nnls

from repro.errors import ShapeError


def _check(pixels: np.ndarray, endmembers: np.ndarray) -> tuple[np.ndarray, np.ndarray, tuple[int, ...]]:
    """Validate shapes; returns (flat_pixels, endmembers, leading_shape)."""
    pixels = np.asarray(pixels, dtype=np.float64)
    endmembers = np.asarray(endmembers, dtype=np.float64)
    if endmembers.ndim != 2:
        raise ShapeError(f"endmembers must be (c, N), got {endmembers.shape}")
    if pixels.shape[-1] != endmembers.shape[1]:
        raise ShapeError(
            f"pixel bands {pixels.shape[-1]} != endmember bands "
            f"{endmembers.shape[1]}")
    c, n = endmembers.shape
    if c > n:
        raise ShapeError(
            f"more endmembers ({c}) than bands ({n}): the mixture model "
            f"is underdetermined")
    leading = pixels.shape[:-1]
    return pixels.reshape(-1, n), endmembers, leading


def unmix_lsu(pixels: np.ndarray, endmembers: np.ndarray) -> np.ndarray:
    """Unconstrained least-squares abundances.

    ``a = (E E^T)^{-1} E x`` for every pixel; the Gram inverse is
    factored once, so the per-pixel cost is a (c x N) mat-vec — the form
    the GPU extension stage evaluates with dot-product kernels.

    Parameters
    ----------
    pixels:
        (..., N) raw spectra (any leading shape).
    endmembers:
        (c, N) endmember matrix.

    Returns
    -------
    numpy.ndarray
        (..., c) abundance estimates (may be negative or exceed 1).
    """
    flat, endmembers, leading = _check(pixels, endmembers)
    gram = endmembers @ endmembers.T
    rhs = endmembers @ flat.T                       # (c, P)
    abundances = np.linalg.solve(gram, rhs).T       # (P, c)
    return abundances.reshape(*leading, -1)


def unmix_sclsu(pixels: np.ndarray, endmembers: np.ndarray) -> np.ndarray:
    """Sum-to-one constrained least squares (SCLSU).

    Closed form: project the unconstrained solution back onto the
    ``sum(a) = 1`` hyperplane along the Gram metric,
    ``a_s = a + G^{-1} 1 (1 - 1^T a) / (1^T G^{-1} 1)``.
    """
    flat, endmembers, leading = _check(pixels, endmembers)
    gram = endmembers @ endmembers.T
    gram_inv_ones = np.linalg.solve(gram, np.ones(len(endmembers)))
    denom = float(gram_inv_ones.sum())
    a = np.linalg.solve(gram, endmembers @ flat.T).T   # (P, c)
    deficit = 1.0 - a.sum(axis=1)
    a = a + np.outer(deficit / denom, gram_inv_ones)
    return a.reshape(*leading, -1)


def unmix_nnls(pixels: np.ndarray, endmembers: np.ndarray) -> np.ndarray:
    """Non-negativity constrained abundances (per-pixel active set).

    Orders of magnitude slower than the closed forms; intended for small
    images and for validating the cheaper estimators.
    """
    flat, endmembers, leading = _check(pixels, endmembers)
    design = endmembers.T                            # (N, c)
    out = np.empty((flat.shape[0], endmembers.shape[0]))
    for i, x in enumerate(flat):
        out[i], _ = _scipy_nnls(design, x)
    return out.reshape(*leading, -1)


def unmix_fcls(pixels: np.ndarray, endmembers: np.ndarray, *,
               delta: float = 1e3) -> np.ndarray:
    """Fully constrained (ANC + ASC) abundances.

    The sum-to-one constraint is folded into the NNLS system by appending
    a heavily weighted all-ones row (weight ``delta``) — the classic FCLS
    construction of Heinz & Chang.
    """
    flat, endmembers, leading = _check(pixels, endmembers)
    design = np.vstack([endmembers.T, delta * np.ones(len(endmembers))])
    out = np.empty((flat.shape[0], endmembers.shape[0]))
    for i, x in enumerate(flat):
        target = np.concatenate([x, [delta]])
        out[i], _ = _scipy_nnls(design, target)
    return out.reshape(*leading, -1)


def classify_abundances(abundances: np.ndarray) -> np.ndarray:
    """AMC step 4: label = argmax over the abundance vector.

    Parameters
    ----------
    abundances:
        (..., c) abundance estimates.

    Returns
    -------
    numpy.ndarray
        (...) int array of 0-based endmember indices.
    """
    abundances = np.asarray(abundances)
    if abundances.ndim < 1 or abundances.shape[-1] < 1:
        raise ShapeError("abundances must have a non-empty last axis")
    return np.argmax(abundances, axis=-1)


#: Name → unmixer mapping (``AMCConfig.unmixing`` choices); shared by
#: the config validation and the pipeline's unmixing stage.
UNMIXERS = {
    "lsu": unmix_lsu,
    "sclsu": unmix_sclsu,
    "nnls": unmix_nnls,
    "fcls": unmix_fcls,
}

# FNNLS lives in its own module (the algorithm is independent of the
# estimators above) but registers here so AMCConfig validation, the
# unmixing stage and the CLI pick it up like any other estimator.  The
# import sits below UNMIXERS because repro.core.fnnls defers its import
# of this module's _check — bottom placement keeps either import order
# working.
from repro.core.fnnls import unmix_fnnls  # noqa: E402

UNMIXERS["fnnls"] = unmix_fnnls
