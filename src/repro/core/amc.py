"""The full Automated Morphological Classification algorithm (paper §3.1).

:func:`run_amc` chains the four AMC steps over any registered
morphological backend:

1. morphological stage → MEI image (built-in backends: ``"reference"``
   vectorized CPU, ``"gpu"`` stream implementation on a virtual board,
   or ``"naive"`` loop oracle — see :mod:`repro.backends`);
2. endmember selection — the c highest-MEI pixels (with the diversity
   guards of :mod:`repro.core.endmembers`);
3. linear spectral unmixing → per-pixel abundances;
4. classification — argmax abundance, mapped to ground-truth labels when
   a ground truth is supplied (each endmember inherits the label of the
   pixel it came from).

Since the stage-pipeline refactor, :func:`run_amc` is a thin façade
over :mod:`repro.pipeline`: the steps are
:class:`~repro.pipeline.Stage` objects executed by the
:class:`~repro.pipeline.Pipeline` runner, and backends are resolved
through the :mod:`repro.backends` registry — results are identical to
the historical monolith (the pipeline test suite pins them
bit-for-bit).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.amc_gpu import GpuAmcOutput
from repro.core.endmembers import EndmemberSet
from repro.core.metrics import ClassificationReport
from repro.core.pairreuse import check_optimize
from repro.core.unmixing import UNMIXERS
from repro.errors import ShapeError, ValidationError
from repro.gpu.spec import GEFORCE_7800GTX, GpuSpec
from repro.hsi.cube import HyperCube
from repro.profiling.profiler import Profiler


@dataclass(frozen=True)
class AMCConfig:
    """Inputs of the AMC algorithm (paper: f, B, c) plus implementation
    knobs.

    Attributes
    ----------
    n_classes:
        c — how many endmembers / classes to extract.
    se_radius:
        Structuring-element radius (1 = the paper's 3x3 window).
    backend:
        Any name registered in :mod:`repro.backends` (built-in:
        "reference" | "gpu" | "naive").
    unmixing:
        "lsu" | "sclsu" | "nnls" | "fcls".
    gpu_spec:
        Board to simulate for the "gpu" backend.
    endmember_min_sid / endmember_min_spatial:
        Diversity guards for endmember selection.
    """

    n_classes: int = 30
    se_radius: int = 1
    backend: str = "reference"
    unmixing: str = "sclsu"
    gpu_spec: GpuSpec = field(default=GEFORCE_7800GTX)
    endmember_min_sid: float = 0.05
    endmember_min_spatial: int = 2
    #: "dilation" nominates the spectrally-purest pixel of each window
    #: (the AMEE rationale); "center" takes the literal top-MEI pixels.
    endmember_source: str = "dilation"
    #: Diversity strategy among the high-MEI candidates: "atgp" or "sid"
    #: (see :func:`repro.core.endmembers.select_endmembers`).
    endmember_strategy: str = "atgp"
    #: Spatial box radius for denoising candidate spectra.
    endmember_smooth_radius: int = 1
    #: Spatial box radius applied to pixels before unmixing (0 = none).
    #: AMC is a joint spatial/spectral technique; the window average is
    #: the simplest spatial regularization of the abundance estimate and
    #: roughly halves the classification noise on this generator.
    classify_smooth_radius: int = 1
    #: How endmembers are mapped to ground-truth classes when a ground
    #: truth is supplied: "position" labels each endmember with the class
    #: of the pixel it was extracted from; "majority" labels each
    #: endmember cluster with the majority ground-truth class among the
    #: pixels assigned to it (the standard unsupervised-classification
    #: evaluation protocol, robust when c exceeds the class count).
    label_mapping: str = "majority"
    #: On a backend whose device can run the tail (the built-in "gpu"),
    #: also run unmixing + argmax classification on the device (the
    #: extension stages of repro.core.unmix_gpu) — both stages then
    #: share one VirtualGPU, so the result's counters cover the whole
    #: algorithm.  Implies unconstrained LSU and no classify-time
    #: smoothing (the device path has neither).
    gpu_unmixing: bool = False
    #: Worker processes for the morphological stage (the runtime-dominant
    #: stage).  1 = serial (the default); N > 1 splits the image into
    #: halo-carrying line chunks executed by a process pool
    #: (:mod:`repro.parallel`), bit-identical to serial; 0 = one worker
    #: per CPU core.  With the "gpu" backend each worker simulates its
    #: own board and the accounting is summed.
    n_workers: int = 1
    #: Extra attempts each chunk of the parallel morphological stage may
    #: consume after its first (0 = fail fast).  Retries are safe — and
    #: bit-identical — because chunks are independent; see
    #: :mod:`repro.resilience`.
    max_retries: int = 0
    #: Per-chunk deadline (seconds) when collecting pool results.  None
    #: waits forever; a finite deadline is required to *detect* a worker
    #: that died mid-chunk (the pool silently drops its task), after
    #: which the chunk is recomputed in-process.
    chunk_timeout_s: float | None = None
    #: ``"fuse"`` (the default) runs every backend through its fused
    #: fast paths — the reference engine's region-wise accumulation and
    #: cross-chunk border sharing, the virtual board's composite
    #: evaluation with strided fetches and elided temporaries.
    #: ``"none"`` keeps the historical per-pass execution as the
    #: bit-identity oracle.  Results are byte-identical either way, so
    #: this is an execution knob (excluded from cache keys).
    optimize: str = "fuse"

    def __post_init__(self) -> None:
        check_optimize(self.optimize)
        if self.endmember_source not in ("dilation", "center"):
            raise ValidationError(
                f"endmember_source must be 'dilation' or 'center', got "
                f"{self.endmember_source!r}")
        if self.label_mapping not in ("majority", "position"):
            raise ValidationError(
                f"label_mapping must be 'majority' or 'position', got "
                f"{self.label_mapping!r}")
        # deferred import: repro.backends defers its implementation
        # imports, but validating here at construction keeps errors
        # early and lists whatever is registered *now*.
        from repro.backends import get_backend

        get_backend(self.backend)
        if self.unmixing not in UNMIXERS:
            raise ValidationError(
                f"unknown unmixing {self.unmixing!r}; pick from "
                f"{sorted(UNMIXERS)}")
        if self.n_classes < 1:
            raise ValidationError("n_classes must be >= 1")
        if self.se_radius < 1:
            raise ValidationError("se_radius must be >= 1")
        if self.n_workers < 0:
            raise ValidationError("n_workers must be >= 0 (0 = all cores)")
        if self.max_retries < 0:
            raise ValidationError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.chunk_timeout_s is not None and self.chunk_timeout_s <= 0:
            raise ValidationError(
                f"chunk_timeout_s must be positive, got "
                f"{self.chunk_timeout_s}")


@dataclass(frozen=True)
class AMCResult:
    """Everything AMC produces for one scene."""

    config: AMCConfig
    mei: np.ndarray
    erosion_index: np.ndarray
    dilation_index: np.ndarray
    endmembers: EndmemberSet
    abundances: np.ndarray          # (H, W, c)
    endmember_labels: np.ndarray | None   # (c,) 1-based, if ground truth
    labels: np.ndarray              # (H, W): 1-based class labels if
                                    # ground truth was given, else 1-based
                                    # endmember indices
    report: ClassificationReport | None
    gpu_output: GpuAmcOutput | None

    @property
    def overall_accuracy(self) -> float | None:
        """Overall accuracy (%) when a ground truth was supplied."""
        return None if self.report is None else self.report.overall_accuracy


def _as_bip(cube) -> np.ndarray:
    if isinstance(cube, HyperCube):
        return cube.as_bip()
    cube = np.asarray(cube)
    if cube.ndim != 3:
        raise ShapeError(f"cube must be 3-D (H, W, N), got {cube.shape}")
    return cube


def run_amc(cube, config: AMCConfig = AMCConfig(), *,
            ground_truth: np.ndarray | None = None,
            class_names: tuple[str, ...] | None = None,
            profiler: Profiler | None = None) -> AMCResult:
    """Run the complete AMC algorithm.

    Parameters
    ----------
    cube:
        A :class:`~repro.hsi.cube.HyperCube` or an (H, W, N) array of raw
        radiance.
    config:
        Algorithm inputs and backend selection.
    ground_truth:
        Optional (H, W) 1-based label map.  When given, endmembers are
        mapped to ground-truth classes and a
        :class:`~repro.core.metrics.ClassificationReport` is produced.
    class_names:
        Names for the report (defaults to "class-1"... when omitted).
    profiler:
        Optional :class:`~repro.profiling.Profiler`; receives one timed
        record per algorithm stage (morphology, endmembers, unmixing,
        classification, evaluation) and, on chunk-parallel runs, one
        record per chunk.

    Returns
    -------
    AMCResult
    """
    # import deferred: repro.pipeline sits above this package (it
    # composes core, backends and — through the morphology stage —
    # parallel); same pattern the monolith used for repro.parallel.
    from repro.pipeline import execute_amc

    return execute_amc(_as_bip(cube), config, ground_truth=ground_truth,
                       class_names=class_names, profiler=profiler)
