"""The full Automated Morphological Classification algorithm (paper §3.1).

:func:`run_amc` chains the four AMC steps over any of the three
morphological backends:

1. morphological stage → MEI image (backend: ``"reference"`` vectorized
   CPU, ``"gpu"`` stream implementation on a virtual board, or
   ``"naive"`` loop oracle);
2. endmember selection — the c highest-MEI pixels (with the diversity
   guards of :mod:`repro.core.endmembers`);
3. linear spectral unmixing → per-pixel abundances;
4. classification — argmax abundance, mapped to ground-truth labels when
   a ground truth is supplied (each endmember inherits the label of the
   pixel it came from).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.amc_gpu import GpuAmcOutput, gpu_morphological_stage
from repro.core.endmembers import (
    EndmemberSet,
    dilation_candidates,
    select_endmembers,
    smooth_cube,
)
from repro.core.mei import MorphologicalOutput, mei_reference
from repro.core.metrics import (
    ClassificationReport,
    evaluate_classification,
    map_endmembers_to_classes,
)
from repro.core.naive import mei_naive
from repro.core.unmix_gpu import gpu_unmix_classify
from repro.core.unmixing import (
    classify_abundances,
    unmix_fcls,
    unmix_lsu,
    unmix_nnls,
    unmix_sclsu,
)
from repro.errors import ShapeError
from repro.gpu.device import VirtualGPU
from repro.gpu.spec import GEFORCE_7800GTX, GpuSpec
from repro.hsi.cube import HyperCube
from repro.profiling.profiler import Profiler, profiled_stage

_UNMIXERS = {
    "lsu": unmix_lsu,
    "sclsu": unmix_sclsu,
    "nnls": unmix_nnls,
    "fcls": unmix_fcls,
}

_BACKENDS = ("reference", "gpu", "naive")


@dataclass(frozen=True)
class AMCConfig:
    """Inputs of the AMC algorithm (paper: f, B, c) plus implementation
    knobs.

    Attributes
    ----------
    n_classes:
        c — how many endmembers / classes to extract.
    se_radius:
        Structuring-element radius (1 = the paper's 3x3 window).
    backend:
        "reference" | "gpu" | "naive".
    unmixing:
        "lsu" | "sclsu" | "nnls" | "fcls".
    gpu_spec:
        Board to simulate for the "gpu" backend.
    endmember_min_sid / endmember_min_spatial:
        Diversity guards for endmember selection.
    """

    n_classes: int = 30
    se_radius: int = 1
    backend: str = "reference"
    unmixing: str = "sclsu"
    gpu_spec: GpuSpec = field(default=GEFORCE_7800GTX)
    endmember_min_sid: float = 0.05
    endmember_min_spatial: int = 2
    #: "dilation" nominates the spectrally-purest pixel of each window
    #: (the AMEE rationale); "center" takes the literal top-MEI pixels.
    endmember_source: str = "dilation"
    #: Diversity strategy among the high-MEI candidates: "atgp" or "sid"
    #: (see :func:`repro.core.endmembers.select_endmembers`).
    endmember_strategy: str = "atgp"
    #: Spatial box radius for denoising candidate spectra.
    endmember_smooth_radius: int = 1
    #: Spatial box radius applied to pixels before unmixing (0 = none).
    #: AMC is a joint spatial/spectral technique; the window average is
    #: the simplest spatial regularization of the abundance estimate and
    #: roughly halves the classification noise on this generator.
    classify_smooth_radius: int = 1
    #: How endmembers are mapped to ground-truth classes when a ground
    #: truth is supplied: "position" labels each endmember with the class
    #: of the pixel it was extracted from; "majority" labels each
    #: endmember cluster with the majority ground-truth class among the
    #: pixels assigned to it (the standard unsupervised-classification
    #: evaluation protocol, robust when c exceeds the class count).
    label_mapping: str = "majority"
    #: With the "gpu" backend, also run unmixing + argmax classification
    #: on the device (the extension stages of repro.core.unmix_gpu) —
    #: both stages then share one VirtualGPU, so the result's counters
    #: cover the whole algorithm.  Implies unconstrained LSU and no
    #: classify-time smoothing (the device path has neither).
    gpu_unmixing: bool = False
    #: Worker processes for the morphological stage (the runtime-dominant
    #: stage).  1 = serial (the default); N > 1 splits the image into
    #: halo-carrying line chunks executed by a process pool
    #: (:mod:`repro.parallel`), bit-identical to serial; 0 = one worker
    #: per CPU core.  With the "gpu" backend each worker simulates its
    #: own board and the accounting is summed.
    n_workers: int = 1

    def __post_init__(self) -> None:
        if self.endmember_source not in ("dilation", "center"):
            raise ValueError(
                f"endmember_source must be 'dilation' or 'center', got "
                f"{self.endmember_source!r}")
        if self.label_mapping not in ("majority", "position"):
            raise ValueError(
                f"label_mapping must be 'majority' or 'position', got "
                f"{self.label_mapping!r}")
        if self.backend not in _BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; pick from {_BACKENDS}")
        if self.unmixing not in _UNMIXERS:
            raise ValueError(
                f"unknown unmixing {self.unmixing!r}; pick from "
                f"{sorted(_UNMIXERS)}")
        if self.n_classes < 1:
            raise ValueError("n_classes must be >= 1")
        if self.se_radius < 1:
            raise ValueError("se_radius must be >= 1")
        if self.n_workers < 0:
            raise ValueError("n_workers must be >= 0 (0 = all cores)")


@dataclass(frozen=True)
class AMCResult:
    """Everything AMC produces for one scene."""

    config: AMCConfig
    mei: np.ndarray
    erosion_index: np.ndarray
    dilation_index: np.ndarray
    endmembers: EndmemberSet
    abundances: np.ndarray          # (H, W, c)
    endmember_labels: np.ndarray | None   # (c,) 1-based, if ground truth
    labels: np.ndarray              # (H, W): 1-based class labels if
                                    # ground truth was given, else 1-based
                                    # endmember indices
    report: ClassificationReport | None
    gpu_output: GpuAmcOutput | None

    @property
    def overall_accuracy(self) -> float | None:
        """Overall accuracy (%) when a ground truth was supplied."""
        return None if self.report is None else self.report.overall_accuracy


def _as_bip(cube) -> np.ndarray:
    if isinstance(cube, HyperCube):
        return cube.as_bip()
    cube = np.asarray(cube)
    if cube.ndim != 3:
        raise ShapeError(f"cube must be 3-D (H, W, N), got {cube.shape}")
    return cube


def run_amc(cube, config: AMCConfig = AMCConfig(), *,
            ground_truth: np.ndarray | None = None,
            class_names: tuple[str, ...] | None = None,
            profiler: Profiler | None = None) -> AMCResult:
    """Run the complete AMC algorithm.

    Parameters
    ----------
    cube:
        A :class:`~repro.hsi.cube.HyperCube` or an (H, W, N) array of raw
        radiance.
    config:
        Algorithm inputs and backend selection.
    ground_truth:
        Optional (H, W) 1-based label map.  When given, endmembers are
        mapped to ground-truth classes and a
        :class:`~repro.core.metrics.ClassificationReport` is produced.
    class_names:
        Names for the report (defaults to "class-1"... when omitted).
    profiler:
        Optional :class:`~repro.profiling.Profiler`; receives one timed
        record per algorithm stage (morphology, endmembers, unmixing,
        classification, evaluation) and, on chunk-parallel runs, one
        record per chunk.

    Returns
    -------
    AMCResult
    """
    bip = _as_bip(cube)

    # ---- steps 1-2: morphological stage -> MEI -------------------------
    gpu_output: GpuAmcOutput | None = None
    device: VirtualGPU | None = None
    with profiled_stage(profiler, "morphology"):
        if config.n_workers != 1:
            # chunk-parallel: the image splits into halo-carrying line
            # chunks executed by a process pool, bit-identical to serial
            # (import deferred: repro.parallel sits above this package).
            from repro.parallel import parallel_morphological_stage

            mei, ero, dil, gpu_output = parallel_morphological_stage(
                bip, config.se_radius, backend=config.backend,
                n_workers=config.n_workers, gpu_spec=config.gpu_spec,
                profiler=profiler)
            if config.backend == "gpu":
                mei = mei.astype(np.float64)
        elif config.backend == "reference":
            morph: MorphologicalOutput = mei_reference(bip, config.se_radius)
            mei, ero, dil = (morph.mei, morph.erosion_index,
                             morph.dilation_index)
        elif config.backend == "naive":
            morph = mei_naive(bip, config.se_radius)
            mei, ero, dil = (morph.mei, morph.erosion_index,
                             morph.dilation_index)
        else:
            device = VirtualGPU(config.gpu_spec)
            gpu_output = gpu_morphological_stage(bip, config.se_radius,
                                                 device=device)
            mei = gpu_output.mei.astype(np.float64)
            ero, dil = gpu_output.erosion_index, gpu_output.dilation_index

    # ---- step 3: endmembers + unmixing ----------------------------------
    with profiled_stage(profiler, "endmembers"):
        candidates = None
        if config.endmember_source == "dilation":
            candidates = dilation_candidates(mei, dil, config.se_radius)
        endmembers = select_endmembers(
            bip, mei, config.n_classes,
            strategy=config.endmember_strategy,
            min_sid=config.endmember_min_sid,
            min_spatial=config.endmember_min_spatial,
            candidates=candidates,
            smooth_radius=config.endmember_smooth_radius)
    if config.backend == "gpu" and config.gpu_unmixing:
        with profiled_stage(profiler, "unmixing"):
            if device is None:
                # the morphological stage ran on per-worker boards; the
                # tail gets its own device and the accounting is summed
                from repro.parallel import combine_gpu_accounting

                device = VirtualGPU(config.gpu_spec)
                unmix_out = gpu_unmix_classify(bip, endmembers.spectra,
                                               device=device,
                                               return_abundances=True)
                gpu_output = combine_gpu_accounting(gpu_output,
                                                    device.counters)
            else:
                unmix_out = gpu_unmix_classify(bip, endmembers.spectra,
                                               device=device,
                                               return_abundances=True)
                # refresh the aggregate accounting to cover both stages
                gpu_output = GpuAmcOutput(
                    mei=gpu_output.mei,
                    erosion_index=gpu_output.erosion_index,
                    dilation_index=gpu_output.dilation_index,
                    radius=gpu_output.radius,
                    chunk_count=gpu_output.chunk_count,
                    modeled_time_s=device.counters.total_time_s,
                    counters=device.counters.summary(),
                    time_by_kernel=device.counters.time_by_kernel())
            abundances = unmix_out.abundances.astype(np.float64)
            winner = unmix_out.winner_index
    else:
        with profiled_stage(profiler, "unmixing"):
            pixels = smooth_cube(bip, config.classify_smooth_radius) \
                if config.classify_smooth_radius > 0 else bip
            abundances = _UNMIXERS[config.unmixing](pixels,
                                                    endmembers.spectra)
        # ---- step 4: classification ---------------------------------------
        with profiled_stage(profiler, "classification"):
            winner = classify_abundances(abundances)  # 0-based endmember idx

    endmember_labels = None
    report = None
    with profiled_stage(profiler, "evaluation"):
        if ground_truth is not None:
            ground_truth = np.asarray(ground_truth)
            if ground_truth.shape != bip.shape[:2]:
                raise ShapeError(
                    f"ground truth {ground_truth.shape} does not match "
                    f"image {bip.shape[:2]}")
            endmember_labels = map_endmembers_to_classes(
                endmembers.positions, ground_truth)
            if config.label_mapping == "majority":
                for k in range(config.n_classes):
                    assigned = ground_truth[winner == k]
                    assigned = assigned[assigned >= 1]
                    if assigned.size:
                        values, counts = np.unique(assigned,
                                                   return_counts=True)
                        endmember_labels[k] = values[np.argmax(counts)]
            labels = endmember_labels[winner]
            n_classes = int(ground_truth.max())
            if class_names is None:
                class_names = tuple(f"class-{i + 1}"
                                    for i in range(n_classes))
            report = evaluate_classification(ground_truth, labels,
                                             class_names)
        else:
            labels = winner + 1

    return AMCResult(config=config, mei=mei, erosion_index=ero,
                     dilation_index=dil, endmembers=endmembers,
                     abundances=abundances,
                     endmember_labels=endmember_labels,
                     labels=labels, report=report, gpu_output=gpu_output)
