"""Shared clamp-to-edge shift addressing.

Every implementation in this library — the vectorized reference, the
CPU build models, the GPU fragment interpreter — reads neighbours with
**clamp-to-edge** (replicate) addressing, matching the
``GL_CLAMP_TO_EDGE`` texture mode the paper's Cg kernels rely on.  The
clipped index vectors that implement it used to be re-derived in three
places; this module is the single home.

Index vectors are cached per ``(extent, offset)`` and returned
read-only, so repeated fixed-offset fetches (the overwhelmingly common
case in the AMC kernels and in the shift-reuse engine of
:mod:`repro.core.pairreuse`) cost one fancy-indexing gather each and
never rebuild their index arithmetic.

The module sits below everything else in :mod:`repro.core` (it imports
only NumPy), so any layer — including :mod:`repro.gpu` — can use it
without import cycles.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np


@lru_cache(maxsize=1024)
def clamped_indices(extent: int, offset: int) -> np.ndarray:
    """Index vector ``i -> clamp(i + offset, 0, extent - 1)``.

    The returned array is cached and marked read-only; use it for fancy
    indexing, never mutate it.
    """
    indices = np.clip(np.arange(extent) + offset, 0, extent - 1)
    indices.setflags(write=False)
    return indices


def clamped_shift(arr: np.ndarray, dy: int, dx: int) -> np.ndarray:
    """``out[y, x] = arr[clamp(y + dy), clamp(x + dx)]`` (replicate).

    The zero shift returns ``arr`` itself (no copy); any other offset
    returns a fresh C-contiguous gather.  Works on (H, W) maps and
    (H, W, N) cubes alike — trailing axes ride along untouched.
    """
    if dy == 0 and dx == 0:
        return arr
    h, w = arr.shape[:2]
    rows = clamped_indices(h, dy)
    cols = clamped_indices(w, dx)
    return arr[np.ix_(rows, cols)]


def shifted_copy(arr: np.ndarray, dy: int, dx: int) -> np.ndarray:
    """:func:`clamped_shift` built from strided copies instead of a
    fancy-indexing gather.

    Produces the exact same values (copies of the same float64s, fresh
    C-contiguous output) — the interior is one basic-slice copy, the
    clamped edge bands are broadcast row/column replications — but runs
    several times faster on cube-sized arrays because nothing touches
    the fancy-indexing machinery.  Degenerate extents (images narrower
    than the shift, where no interior exists) fall back to the gather.
    """
    if dy == 0 and dx == 0:
        return arr
    h, w = arr.shape[:2]
    ry0, ry1 = max(0, -dy), h - max(0, dy)
    cx0, cx1 = max(0, -dx), w - max(0, dx)
    if ry0 >= ry1 or cx0 >= cx1:
        return clamped_shift(arr, dy, dx)
    out = np.empty(arr.shape, dtype=arr.dtype)
    out[ry0:ry1, cx0:cx1] = arr[ry0 + dy:ry1 + dy, cx0 + dx:cx1 + dx]
    # Rows that clamp: replicate the edge row across the middle columns.
    if dy > 0:
        out[ry1:h, cx0:cx1] = arr[h - 1:h, cx0 + dx:cx1 + dx]
    elif dy < 0:
        out[0:ry0, cx0:cx1] = arr[0:1, cx0 + dx:cx1 + dx]
    # Columns that clamp: the adjacent already-filled column holds
    # exactly arr[clamp(y + dy), edge] for every row — broadcast it.
    if dx > 0:
        out[:, cx1:w] = out[:, cx1 - 1:cx1]
    elif dx < 0:
        out[:, 0:cx0] = out[:, cx0:cx0 + 1]
    return out


def edge_rows(extent: int, offset: int) -> np.ndarray:
    """Row indices where ``row + offset`` falls outside ``[0, extent)``.

    These are exactly the rows on which clamp-to-edge addressing fires
    for a shift by ``offset`` — the border band the shift-reuse engine
    must recompute explicitly (at most ``|offset|`` rows, on the edge
    the shift points away from).
    """
    if offset > 0:
        return np.arange(max(extent - offset, 0), extent)
    if offset < 0:
        return np.arange(0, min(-offset, extent))
    return np.arange(0)
