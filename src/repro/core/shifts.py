"""Shared clamp-to-edge shift addressing.

Every implementation in this library — the vectorized reference, the
CPU build models, the GPU fragment interpreter — reads neighbours with
**clamp-to-edge** (replicate) addressing, matching the
``GL_CLAMP_TO_EDGE`` texture mode the paper's Cg kernels rely on.  The
clipped index vectors that implement it used to be re-derived in three
places; this module is the single home.

Index vectors are cached per ``(extent, offset)`` and returned
read-only, so repeated fixed-offset fetches (the overwhelmingly common
case in the AMC kernels and in the shift-reuse engine of
:mod:`repro.core.pairreuse`) cost one fancy-indexing gather each and
never rebuild their index arithmetic.

The module sits below everything else in :mod:`repro.core` (it imports
only NumPy), so any layer — including :mod:`repro.gpu` — can use it
without import cycles.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np


@lru_cache(maxsize=1024)
def clamped_indices(extent: int, offset: int) -> np.ndarray:
    """Index vector ``i -> clamp(i + offset, 0, extent - 1)``.

    The returned array is cached and marked read-only; use it for fancy
    indexing, never mutate it.
    """
    indices = np.clip(np.arange(extent) + offset, 0, extent - 1)
    indices.setflags(write=False)
    return indices


def clamped_shift(arr: np.ndarray, dy: int, dx: int) -> np.ndarray:
    """``out[y, x] = arr[clamp(y + dy), clamp(x + dx)]`` (replicate).

    The zero shift returns ``arr`` itself (no copy); any other offset
    returns a fresh C-contiguous gather.  Works on (H, W) maps and
    (H, W, N) cubes alike — trailing axes ride along untouched.
    """
    if dy == 0 and dx == 0:
        return arr
    h, w = arr.shape[:2]
    rows = clamped_indices(h, dy)
    cols = clamped_indices(w, dx)
    return arr[np.ix_(rows, cols)]


def edge_rows(extent: int, offset: int) -> np.ndarray:
    """Row indices where ``row + offset`` falls outside ``[0, extent)``.

    These are exactly the rows on which clamp-to-edge addressing fires
    for a shift by ``offset`` — the border band the shift-reuse engine
    must recompute explicitly (at most ``|offset|`` rows, on the edge
    the shift points away from).
    """
    if offset > 0:
        return np.arange(max(extent - offset, 0), extent)
    if offset < 0:
        return np.arange(0, min(-offset, extent))
    return np.arange(0)
