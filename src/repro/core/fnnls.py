"""Fast non-negative least squares (Bro & De Jong 1997).

:func:`unmix_nnls` solves each pixel with a full Lawson-Hanson active
set over the (N, c) design matrix — N-band QR work per pixel.  FNNLS is
the standard hyperspectral shortcut: precompute the c x c Gram matrix
``AtA = E E^T`` and the per-pixel cross products ``Atb = E x`` once,
then run the active-set iteration entirely in c-space.  For N >> c
(224 bands, tens of endmembers) that removes the band dimension from
the inner loop — the same reformulation the related unmixing codebases
ship as their default solver.

The solution is the *exact* NNLS optimum (the active-set method
converges to the KKT point, not an approximation), so
``unmix_fnnls`` agrees with :func:`~repro.core.unmixing.unmix_nnls`
to solver tolerance; the test suite pins both that agreement and the
residual optimality against an independent oracle.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError, ValidationError


def fnnls(AtA: np.ndarray, Atb: np.ndarray, *,
          max_iter: int | None = None,
          tolerance: float | None = None) -> np.ndarray:
    """Solve ``min ||Ax - b||`` s.t. ``x >= 0`` from normal-equation form.

    Parameters
    ----------
    AtA:
        (c, c) Gram matrix ``A^T A`` (symmetric positive semidefinite).
    Atb:
        (c,) cross-product vector ``A^T b``.
    max_iter:
        Safety bound on active-set iterations (default ``30 * c``, the
        customary Bro & De Jong limit).
    tolerance:
        Optimality threshold on the dual vector (default scales with
        ``AtA``'s magnitude, matching the reference algorithm).

    Returns
    -------
    numpy.ndarray
        (c,) non-negative solution.
    """
    AtA = np.asarray(AtA, dtype=np.float64)
    Atb = np.asarray(Atb, dtype=np.float64)
    if AtA.ndim != 2 or AtA.shape[0] != AtA.shape[1]:
        raise ShapeError(f"AtA must be square, got {AtA.shape}")
    if Atb.shape != (AtA.shape[0],):
        raise ShapeError(
            f"Atb must be ({AtA.shape[0]},), got {Atb.shape}")
    c = AtA.shape[0]
    if max_iter is None:
        max_iter = 30 * c
    elif max_iter < 1:
        raise ValidationError(f"max_iter must be >= 1, got {max_iter}")
    if tolerance is None:
        tolerance = 10 * np.finfo(np.float64).eps * \
            float(np.abs(AtA).sum(axis=0).max()) * c
    elif tolerance < 0:
        raise ValidationError(f"tolerance must be >= 0, got {tolerance}")

    passive = np.zeros(c, dtype=bool)     # the P set of Lawson-Hanson
    x = np.zeros(c)
    w = Atb - AtA @ x                     # dual / negative gradient
    iterations = 0
    while (not passive.all()) and np.any(w[~passive] > tolerance):
        candidates = np.where(~passive, w, -np.inf)
        passive[int(np.argmax(candidates))] = True
        # solve the unconstrained subproblem on the passive set
        s = np.zeros(c)
        idx = np.where(passive)[0]
        s[idx] = np.linalg.solve(AtA[np.ix_(idx, idx)], Atb[idx])
        while s[idx].min() <= 0:
            iterations += 1
            if iterations > max_iter:
                break
            # step back along x -> s until the first passive variable
            # hits zero, then drop it from the passive set
            blocking = idx[s[idx] <= 0]
            alpha = np.min(x[blocking] / (x[blocking] - s[blocking]))
            x = x + alpha * (s - x)
            passive[x <= tolerance] = False
            x[~passive] = 0.0
            s = np.zeros(c)
            idx = np.where(passive)[0]
            if idx.size == 0:
                break
            s[idx] = np.linalg.solve(AtA[np.ix_(idx, idx)], Atb[idx])
        x = s
        w = Atb - AtA @ x
        iterations += 1
        if iterations > max_iter:
            break
    return np.maximum(x, 0.0)


def unmix_fnnls(pixels: np.ndarray, endmembers: np.ndarray) -> np.ndarray:
    """Non-negativity constrained abundances via FNNLS.

    Same contract (and, to solver tolerance, same results) as
    :func:`~repro.core.unmixing.unmix_nnls`, but the active set runs on
    the precomputed c x c Gram system instead of the (N, c) design
    matrix — the per-pixel cost no longer depends on the band count.

    Parameters
    ----------
    pixels:
        (..., N) raw spectra (any leading shape).
    endmembers:
        (c, N) endmember matrix.

    Returns
    -------
    numpy.ndarray
        (..., c) non-negative abundance estimates.
    """
    # deferred import: repro.core.unmixing registers this function in
    # UNMIXERS at its module bottom, so a top-level import here would
    # be circular whichever module loads first.
    from repro.core.unmixing import _check

    flat, endmembers, leading = _check(pixels, endmembers)
    AtA = endmembers @ endmembers.T                   # (c, c)
    Atb_all = flat @ endmembers.T                     # (P, c)
    out = np.empty_like(Atb_all)
    for i, Atb in enumerate(Atb_all):
        out[i] = fnnls(AtA, Atb)
    return out.reshape(*leading, -1)
