"""The paper's primary contribution: Automated Morphological Classification.

The package provides three interchangeable implementations of the
morphological stage (cumulative SID distances, extended erosion/dilation,
MEI) plus the shared host-side tail (endmember selection, linear spectral
unmixing, classification):

* :mod:`~repro.core.mei` — the vectorized NumPy reference,
* :mod:`~repro.core.naive` — a transparent per-pixel loop oracle used by
  the test suite,
* :mod:`~repro.core.amc_gpu` — the stream-programming implementation of
  paper Fig. 4 running on :class:`~repro.gpu.device.VirtualGPU`,

all orchestrated by :func:`~repro.core.amc.run_amc` — since the
stage-pipeline refactor a façade over :mod:`repro.pipeline`, with the
implementations adapted and resolved through the :mod:`repro.backends`
registry.
"""

from repro.core.amc import AMCConfig, AMCResult, run_amc
from repro.core.amc_gpu import GpuAmcOutput, gpu_morphological_stage
from repro.core.endmembers import EndmemberSet, select_endmembers
from repro.core.mei import (
    MorphologicalOutput,
    cumulative_distances,
    mei_reference,
    se_offsets,
)
from repro.core.pairreuse import (
    PairReuseEngine,
    PairReuseStats,
    gather_mei,
    sum_reuse_counters,
    unique_difference_offsets,
)
from repro.core.shifts import clamped_indices, clamped_shift
from repro.core.metrics import (
    ClassificationReport,
    confusion_matrix,
    evaluate_classification,
    kappa_score,
)
from repro.core.morphology import (
    AmeeOutput,
    amee,
    extended_close,
    extended_dilate,
    extended_erode,
    extended_open,
)
from repro.core.naive import mei_naive
from repro.core.unmix_gpu import GpuUnmixOutput, gpu_unmix_classify
from repro.core.unmixing import (
    classify_abundances,
    unmix_fcls,
    unmix_lsu,
    unmix_nnls,
    unmix_sclsu,
)

__all__ = [
    "AMCConfig",
    "AMCResult",
    "AmeeOutput",
    "ClassificationReport",
    "EndmemberSet",
    "GpuAmcOutput",
    "GpuUnmixOutput",
    "MorphologicalOutput",
    "PairReuseEngine",
    "PairReuseStats",
    "amee",
    "clamped_indices",
    "clamped_shift",
    "classify_abundances",
    "confusion_matrix",
    "cumulative_distances",
    "evaluate_classification",
    "extended_close",
    "extended_dilate",
    "extended_erode",
    "extended_open",
    "gather_mei",
    "gpu_morphological_stage",
    "gpu_unmix_classify",
    "kappa_score",
    "mei_naive",
    "mei_reference",
    "run_amc",
    "se_offsets",
    "select_endmembers",
    "sum_reuse_counters",
    "unique_difference_offsets",
    "unmix_fcls",
    "unmix_lsu",
    "unmix_nnls",
    "unmix_sclsu",
]
