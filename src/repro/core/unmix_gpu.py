"""GPU unmixing and classification — the extension stages.

The paper's stream pipeline ends at the MEI download; AMC steps 3-4
(abundance estimation and per-pixel argmax) run on the host.  Both map
perfectly onto the same kernel shapes the morphological stage already
uses, so this module implements them as an optional device-side
extension:

* **Unmixing** (unconstrained LSU): with the endmember matrix ``E``
  (c, N), the abundance of endmember j at pixel x is ``(M x)_j`` with
  ``M = (E E^T)^{-1} E`` computed once on the host.  Per endmember this
  is a band reduction with *constant* per-band weights — exactly the
  ``bandsum`` kernel with the weight vec4s bound as uniforms, fused over
  band groups like every other reduction in the pipeline.
* **Classification** (step 4): an argmax fold over the c abundance
  streams using the same running ``(max value, max index)`` state
  encoding as the erosion/dilation stage.

The outputs match :func:`repro.core.unmixing.unmix_lsu` +
:func:`repro.core.unmixing.classify_abundances` to float32 tolerance
(enforced by ``tests/core/test_unmix_gpu.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.amc_gpu import _PingPong, _batches, _kernels
from repro.errors import ShapeError, StreamError
from repro.gpu.device import VirtualGPU
from repro.gpu.spec import GEFORCE_7800GTX, GpuSpec
from repro.gpu.texture import (
    CHANNELS,
    TEXEL_BYTES,
    band_group_count,
    pack_bands,
)
from repro.hsi.chunking import plan_chunks_by_lines
from repro.spectral.normalize import SpectralEpsilon


@dataclass(frozen=True)
class GpuUnmixOutput:
    """Device-side unmixing + classification results."""

    winner_index: np.ndarray        # (H, W) 0-based endmember index
    winner_abundance: np.ndarray    # (H, W) the winning abundance value
    abundances: np.ndarray | None   # (H, W, c) if requested
    chunk_count: int
    modeled_time_s: float
    counters: dict[str, float]


def _weight_uniforms(row: np.ndarray, start: int, width: int
                     ) -> dict[str, np.ndarray]:
    """Slice an M row into per-group vec4 mask uniforms (zero padded)."""
    uniforms = {}
    n = row.shape[0]
    for i in range(width):
        lo = (start + i) * CHANNELS
        chunk = np.zeros(CHANNELS, dtype=np.float32)
        take = max(min(CHANNELS, n - lo), 0)
        if take:
            chunk[:take] = row[lo:lo + take]
        uniforms[f"mask{i}"] = chunk
    return uniforms


def gpu_unmix_classify(cube_bip: np.ndarray, endmembers: np.ndarray, *,
                       spec: GpuSpec = GEFORCE_7800GTX,
                       device: VirtualGPU | None = None,
                       fuse_groups: int = 6,
                       vram_fraction: float = 0.85,
                       return_abundances: bool = False) -> GpuUnmixOutput:
    """Estimate LSU abundances and classify by argmax, on the device.

    Parameters
    ----------
    cube_bip:
        (H, W, N) raw radiance cube.
    endmembers:
        (c, N) endmember matrix (e.g. ``AMCResult.endmembers.spectra``).
    return_abundances:
        Also download every abundance stream (c extra transfers).

    Returns
    -------
    GpuUnmixOutput
    """
    cube_bip = np.asarray(cube_bip)
    endmembers = np.asarray(endmembers, dtype=np.float64)
    if cube_bip.ndim != 3:
        raise ShapeError(f"expected (H, W, N) cube, got {cube_bip.shape}")
    if endmembers.ndim != 2 or endmembers.shape[1] != cube_bip.shape[2]:
        raise ShapeError(
            f"endmembers {endmembers.shape} incompatible with cube bands "
            f"{cube_bip.shape[2]}")
    c = endmembers.shape[0]
    lines, samples, bands = cube_bip.shape

    # Host-side: the unmixing matrix M = (E E^T)^{-1} E, one row per
    # endmember (tiny: c x N).
    gram = endmembers @ endmembers.T
    unmix_matrix = np.linalg.solve(gram, endmembers).astype(np.float32)

    gpu = device if device is not None else VirtualGPU(spec)
    groups = band_group_count(bands)
    batches = _batches(groups, fuse_groups)
    widths = tuple(sorted({w for _, w in batches}))
    shaders = _kernels(1, SpectralEpsilon.get(), widths)

    # chunking: per extended line we hold the source stack, c abundance
    # streams (x2 for ping-pong) and the argmax state.
    textures_per_line = groups + 2 * c + 6
    budget = int(gpu.spec.vram_bytes * vram_fraction)
    max_ext = max(budget // (samples * TEXEL_BYTES * textures_per_line), 1)
    if max_ext < 1:
        raise StreamError(f"{gpu.spec.name} cannot hold one line of this "
                          f"unmixing working set")
    plan = plan_chunks_by_lines(lines, samples, bands,
                                max_ext_lines=int(max_ext), halo=0)

    winner_index = np.empty((lines, samples), dtype=np.int64)
    winner_abundance = np.empty((lines, samples), dtype=np.float32)
    abundances = (np.empty((lines, samples, c), dtype=np.float32)
                  if return_abundances else None)
    start_time = gpu.counters.total_time_s

    for chunk in plan:
        h, w = chunk.ext_lines, samples
        src = [gpu.upload(t, label=f"src{g}")
               for g, t in enumerate(pack_bands(chunk.extract(cube_bip)))]

        # --- abundance reduction per endmember -------------------------
        abundance_tex = []
        scratch = _PingPong(gpu, h, w, "abundance")
        for j in range(c):
            scratch.current.data[...] = 0.0
            for start, width in batches:
                bindings = {"acc": scratch.current}
                for i in range(width):
                    bindings[f"src{i}"] = src[start + i]
                gpu.launch(shaders[f"bandsum_w{width}"], scratch.target,
                           bindings,
                           _weight_uniforms(unmix_matrix[j], start, width))
                scratch.swap()
            final = gpu.create_target(h, w, label=f"abundance{j}")
            gpu.launch(shaders["copy"], final, {"value": scratch.current})
            abundance_tex.append(final)
        scratch.free()
        gpu.free(*src)

        # --- argmax fold (mm kernels, max half) -------------------------
        state = _PingPong(gpu, h, w, "argmax")
        gpu.launch(shaders["mm_init"], state.target,
                   {"d": abundance_tex[0]})
        state.swap()
        for j in range(1, c):
            gpu.launch(shaders["mm_step"], state.target,
                       {"state": state.current, "d": abundance_tex[j]},
                       {"kidx": np.full(4, float(j), dtype=np.float32)})
            state.swap()

        state_host = gpu.download(state.current)
        core = slice(chunk.core_start, chunk.core_stop)
        winner_abundance[core] = chunk.core_of(state_host[:, :, 0])
        winner_index[core] = chunk.core_of(
            np.rint(state_host[:, :, 1]).astype(np.int64))
        if abundances is not None:
            for j, tex in enumerate(abundance_tex):
                abundances[core, :, j] = chunk.core_of(
                    gpu.download_scalar(tex))
        gpu.free(*abundance_tex)
        state.free()

    return GpuUnmixOutput(
        winner_index=winner_index,
        winner_abundance=winner_abundance,
        abundances=abundances,
        chunk_count=len(plan),
        modeled_time_s=gpu.counters.total_time_s - start_time,
        counters=gpu.counters.summary())
