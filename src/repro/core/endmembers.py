"""Endmember selection from the MEI image (AMC step 3, first half).

The AMC algorithm selects *"the set of c pixel vectors in f with higher
associated score in the resulting MEI image"*.  Taking the literal top-c
pixels almost always yields duplicates — the highest MEI scores cluster
on the same anomalous patch — so, following the morphological
endmember-extraction practice of the paper's companion work ([10], [11]),
the selector walks candidates in descending MEI order and accepts a pixel
only if it is spectrally distinct (SID above a threshold) from every
already-accepted endmember, with an optional spatial separation guard.

If the guards exhaust the image before ``count`` endmembers are found the
thresholds are relaxed geometrically until the budget is met, so the
function always returns exactly ``count`` members for any non-degenerate
image.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from scipy.ndimage import uniform_filter

from repro.errors import ShapeError, ValidationError
from repro.spectral.distances import sid
from repro.spectral.normalize import normalize_spectra


def smooth_cube(cube_bip: np.ndarray, radius: int = 1) -> np.ndarray:
    """Spatially box-average each band over a (2r+1)^2 window.

    Endmember *candidate* spectra are read from single pixels, whose
    per-band noise can dominate spectral distances for dark materials
    (water).  Averaging the window the candidate was selected from is the
    standard denoising step; ``radius=0`` returns the input unchanged.
    """
    cube_bip = np.asarray(cube_bip, dtype=np.float64)
    if cube_bip.ndim != 3:
        raise ShapeError(f"cube must be (H, W, N), got {cube_bip.shape}")
    if radius < 0:
        raise ValidationError(f"radius must be >= 0, got {radius}")
    if radius == 0:
        return cube_bip
    size = 2 * radius + 1
    return uniform_filter(cube_bip, size=(size, size, 1), mode="nearest")


def dilation_candidates(mei: np.ndarray, dilation_index: np.ndarray,
                        radius: int) -> tuple[np.ndarray, np.ndarray]:
    """Endmember candidates from the dilation output.

    The extended dilation selects, in every neighbourhood, the pixel most
    spectrally distinct from its surroundings — under the linear mixture
    model that is the *purest* pixel of the window (the AMEE rationale of
    refs. [10]-[11]).  Each pixel x therefore nominates the pixel at
    ``x + offset[dilation_index(x)]`` with x's MEI score; nominations of
    the same pixel keep the highest score.

    Returns
    -------
    (positions, scores):
        (M, 2) unique candidate coordinates and their (M,) scores.
    """
    from repro.core.mei import se_offsets  # local import, avoids a cycle

    mei = np.asarray(mei, dtype=np.float64)
    dilation_index = np.asarray(dilation_index)
    if mei.shape != dilation_index.shape or mei.ndim != 2:
        raise ShapeError(
            f"mei {mei.shape} and dilation_index {dilation_index.shape} "
            f"must be equal 2-D shapes")
    h, w = mei.shape
    offs = np.asarray(se_offsets(radius))
    dy = offs[dilation_index, 0]
    dx = offs[dilation_index, 1]
    yy, xx = np.mgrid[0:h, 0:w]
    ty = np.clip(yy + dy, 0, h - 1).ravel()
    tx = np.clip(xx + dx, 0, w - 1).ravel()
    flat = ty * w + tx
    best = np.full(h * w, -np.inf)
    np.maximum.at(best, flat, mei.ravel())
    nominated = np.flatnonzero(np.isfinite(best))
    positions = np.column_stack(np.unravel_index(nominated, (h, w)))
    return positions, best[nominated]


@dataclass(frozen=True)
class EndmemberSet:
    """Selected endmembers and their provenance.

    Attributes
    ----------
    positions:
        (c, 2) array of (line, sample) coordinates.
    spectra:
        (c, N) raw spectra at those positions.
    normalized:
        (c, N) unit-sum spectra (for SID computations).
    scores:
        (c,) MEI score of each selected pixel.
    """

    positions: np.ndarray
    spectra: np.ndarray
    normalized: np.ndarray
    scores: np.ndarray

    def __len__(self) -> int:
        return self.positions.shape[0]


def select_endmembers(cube_bip: np.ndarray, mei: np.ndarray, count: int, *,
                      strategy: str = "atgp",
                      min_sid: float = 0.05, min_spatial: int = 2,
                      relax_factor: float = 0.5,
                      max_candidates: int | None = None,
                      candidates: tuple[np.ndarray, np.ndarray] | None = None,
                      smooth_radius: int = 1,
                      border: int | None = None,
                      ) -> EndmemberSet:
    """Pick ``count`` diverse high-MEI pixels as endmembers.

    Parameters
    ----------
    cube_bip:
        (H, W, N) raw cube.
    mei:
        (H, W) MEI scores from the morphological stage.
    count:
        Number of endmembers c (the AMC "number of classes" input).
    strategy:
        How diversity among the high-MEI candidates is enforced:

        * ``"atgp"`` (default) — orthogonal-projection selection: start
          from the top candidate, then repeatedly take the candidate
          whose spectrum has the largest residual against the subspace
          spanned by those already chosen.  Robust to per-pixel noise
          (a noisy duplicate of a chosen material has a small residual).
        * ``"sid"`` — greedy walk down the MEI ranking accepting
          candidates whose SID to every accepted endmember exceeds
          ``min_sid`` (with geometric relaxation when the image cannot
          supply ``count`` members under the guards).
    min_sid:
        Minimum SID between any two accepted endmembers.
    min_spatial:
        Minimum Chebyshev distance (pixels) between accepted endmembers —
        keeps a single anomalous blob from supplying several members.
    relax_factor:
        When a full pass cannot find enough members, both guards are
        multiplied by this factor and the scan restarts (repeatedly if
        needed, down to zero guards).
    max_candidates:
        Limit the scan to the top-k MEI pixels (defaults to all pixels).
    candidates:
        Optional explicit candidate pool as a (positions, scores) pair —
        e.g. the output of :func:`dilation_candidates`.  When omitted,
        every pixel is a candidate with its own MEI score.
    border:
        Exclude candidates within this many pixels of the image edge.
        Clamp-to-edge addressing makes border neighbourhoods
        self-referential, which turns border pixels into spurious
        high-residual outliers.  Defaults to ``smooth_radius + 1``.

    Raises
    ------
    ShapeError
        On inconsistent inputs.
    ValueError
        If ``count`` exceeds the number of pixels.
    """
    cube_bip = np.asarray(cube_bip)
    mei = np.asarray(mei, dtype=np.float64)
    if cube_bip.ndim != 3:
        raise ShapeError(f"cube must be (H, W, N), got {cube_bip.shape}")
    if mei.shape != cube_bip.shape[:2]:
        raise ShapeError(
            f"MEI shape {mei.shape} does not match cube {cube_bip.shape[:2]}")
    h, w, _ = cube_bip.shape
    if count < 1 or count > h * w:
        raise ValidationError(f"count must be in [1, {h * w}], got {count}")

    if border is None:
        border = smooth_radius + 1
    if candidates is None:
        cand_scores = mei.ravel()
        cand_flat = np.arange(h * w)
    else:
        positions, cand_scores = candidates
        positions = np.asarray(positions)
        cand_scores = np.asarray(cand_scores, dtype=np.float64)
        if positions.ndim != 2 or positions.shape[1] != 2 \
                or positions.shape[0] != cand_scores.shape[0]:
            raise ShapeError("candidates must be ((M, 2) positions, (M,) "
                             "scores)")
        cand_flat = positions[:, 0] * w + positions[:, 1]
    if border > 0 and h > 2 * border and w > 2 * border:
        cy = cand_flat // w
        cx = cand_flat % w
        keep = ((cy >= border) & (cy < h - border)
                & (cx >= border) & (cx < w - border))
        if keep.sum() >= count:
            cand_flat = cand_flat[keep]
            cand_scores = cand_scores[keep]
    rank = np.argsort(cand_scores, kind="stable")[::-1]
    if max_candidates is not None:
        rank = rank[:max_candidates]
    order = cand_flat[rank]
    coords = np.column_stack(np.unravel_index(order, mei.shape))

    flat = smooth_cube(cube_bip, smooth_radius).reshape(h * w, -1)
    normalized = normalize_spectra(flat)

    if strategy == "atgp":
        chosen = _select_atgp(flat[order], count)
        chosen = [int(order[i]) for i in chosen]
    elif strategy == "sid":
        chosen = _select_sid_walk(order, coords, normalized, count, w,
                                  min_sid, min_spatial, relax_factor)
    else:
        raise ValidationError(f"unknown strategy {strategy!r}; "
                         f"pick 'atgp' or 'sid'")

    idx = np.asarray(chosen)
    score_of = dict(zip(order.tolist(), cand_scores[rank].tolist()))
    positions = np.column_stack(np.unravel_index(idx, mei.shape))
    return EndmemberSet(positions=positions,
                        spectra=flat[idx],
                        normalized=normalized[idx],
                        scores=np.array([score_of[i] for i in chosen]))


def _select_atgp(spectra: np.ndarray, count: int) -> list[int]:
    """Orthogonal-projection (ATGP-style) selection over a ranked pool.

    ``spectra`` is (M, N) in descending candidate-score order; index 0 is
    always chosen first, then each round adds the candidate with maximum
    residual norm against the span of the chosen spectra.
    """
    m = spectra.shape[0]
    if count > m:
        raise ValidationError(f"pool of {m} candidates cannot supply {count} "
                         f"endmembers")
    chosen = [0]
    residual = spectra.copy()
    # Gram-Schmidt against each newly chosen spectrum, keeping all
    # candidate residuals up to date (one pass per selection).
    basis_vec = residual[0]
    for _ in range(1, count):
        norm = np.linalg.norm(basis_vec)
        if norm > 1e-12:
            q = basis_vec / norm
            residual -= np.outer(residual @ q, q)
        scores = np.einsum("ij,ij->i", residual, residual)
        scores[chosen] = -1.0
        nxt = int(np.argmax(scores))
        chosen.append(nxt)
        basis_vec = residual[nxt].copy()
    return chosen


def _select_sid_walk(order: np.ndarray, coords: np.ndarray,
                     normalized: np.ndarray, count: int, width: int,
                     min_sid: float, min_spatial: int,
                     relax_factor: float) -> list[int]:
    """Greedy guarded walk down the MEI ranking (the "sid" strategy)."""
    sid_guard = float(min_sid)
    spatial_guard = int(min_spatial)
    while True:
        chosen: list[int] = []
        chosen_norm: list[np.ndarray] = []
        for flat_idx, (y, x) in zip(order, coords):
            if len(chosen) == count:
                break
            cand = normalized[flat_idx]
            ok = True
            if spatial_guard > 0 and chosen:
                ys = np.array([c // width for c in chosen])
                xs = np.array([c % width for c in chosen])
                if np.min(np.maximum(np.abs(ys - y), np.abs(xs - x))) \
                        < spatial_guard:
                    ok = False
            if ok and sid_guard > 0 and chosen_norm:
                dists = sid(np.stack(chosen_norm), cand[None, :])
                if float(np.min(dists)) < sid_guard:
                    ok = False
            if ok:
                chosen.append(int(flat_idx))
                chosen_norm.append(cand)
        if len(chosen) == count:
            return chosen
        if sid_guard == 0.0 and spatial_guard == 0:
            # Guards fully relaxed and still short: the pool has fewer
            # distinct pixels than requested endmembers.
            raise ValidationError(
                f"could not find {count} endmembers even with guards "
                f"disabled (found {len(chosen)})")
        sid_guard = sid_guard * relax_factor if sid_guard > 1e-12 else 0.0
        spatial_guard = spatial_guard - 1 if spatial_guard > 0 else 0
