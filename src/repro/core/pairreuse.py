"""Shift-reuse evaluation of the cumulative-SID pair maps.

The vectorized reference evaluates one (H, W) SID map per *unordered
pair* of SE offsets — ``P = K(K-1)/2`` full-image band reductions (36 at
radius 1, 300 at radius 2, 1176 at radius 3).  But SID between two
shifted copies of the same image is **translation invariant**: with
``d = b - a``,

.. math::

    \\mathrm{SID}(f(x + a), f(x + b)) = D_d(x + a),
    \\qquad D_d(x) = \\mathrm{SID}(f(x), f(x + d)),

so every pair map is a shifted view of the single *difference map* of
its offset difference.  Only ``U = ((4r+1)^2 - 1)/2`` unique differences
exist (12 / 40 / 84 at radii 1 / 2 / 3) — a 3x-14x reduction in
full-image band reductions on the stage that dominates AMC runtime
(paper Tables 4-5), and exactly the "maximize computation reuse"
hand-tuning principle the paper applies to its CPU codes.

The identity breaks only where clamp-to-edge addressing fires: reading
``D_d`` at ``x + a`` replicates edge rows/columns, which is *not* what
the pair map does there.  Those border bands — at most ``|a_y|`` rows
and ``|a_x|`` columns, on the edges the base shift points away from —
are recomputed explicitly with the original per-pair arithmetic.  Every
per-pixel operation (cross-term ``einsum`` order, ``h(a) + h(b) -
cross`` association, the non-negativity clamp, the pair accumulation
order into ``cumulative``) matches the all-pairs reference exactly, so
results are **bit-identical** — the test suite pins sha256 equality
against both the naive oracle and pre-engine goldens.

Bit-identity has one sharp edge: ``np.einsum``'s band reduction is a
pure per-element function of the operand values *only across
C-contiguous operands* (verified by the test suite) — handing it a
non-contiguous view changes the inner loop and the rounding.  The
historical all-pairs loop gathers a fresh contiguous copy per non-zero
offset but passes the **original arrays through for the zero offset**,
and callers may hold non-contiguous cubes (band-sequential storage
viewed as BIP).  The engine therefore reduces over contiguous base
copies for every shifted pair; when the caller's arrays are themselves
non-contiguous, the ``K - 1`` pairs involving the zero offset take
:meth:`PairReuseEngine.pair_map`'s direct path, which reproduces the
historical operands exactly (for contiguous inputs — the common case —
the operand classes coincide and those pairs ride the reuse path
free: a zero base shift has no border band at all).

:class:`PairReuseEngine` is the workhorse;
:func:`repro.core.mei.cumulative_distances` and
:func:`~repro.core.mei.mei_reference` use it by default
(``method="shift"``), with the all-pairs loop kept as the opt-out
oracle (``method="pairs"``).  :func:`gather_mei` is the lazy MEI
gather shared by the reference and the CPU build models: instead of
looping all ``K(K-1)/2`` masks it materializes only the (erosion,
dilation) pairs that actually occur in the image.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

import numpy as np

from repro.core.shifts import clamped_indices, clamped_shift, shifted_copy
from repro.errors import ShapeError, ValidationError
from repro.spectral.distances import sid_self_entropy
from repro.spectral.normalize import safe_log

Offset = tuple[int, int]

#: Optimization levels shared by every layer that exposes the knob
#: (engine, :func:`repro.core.mei.mei_reference`, the workload configs):
#: ``"fuse"`` (default) enables the fused fast paths — strided shifted
#: copies, region-wise accumulation without per-pair map
#: materialization, the sorted MEI gather, and cross-chunk border
#: sharing; ``"none"`` is the bit-identical oracle that executes the
#: historical (post-shift-reuse) code paths unchanged.
OPTIMIZE_MODES = ("fuse", "none")


def check_optimize(optimize: str) -> None:
    """Validate an ``optimize`` knob value (shared by all layers)."""
    if optimize not in OPTIMIZE_MODES:
        raise ValidationError(
            f"optimize must be one of {OPTIMIZE_MODES}, got {optimize!r}")


def unique_difference_offsets(
        offsets: Iterable[Offset]) -> tuple[Offset, ...]:
    """The distinct ``b - a`` differences over all ordered pairs
    ``a < b`` of SE offsets, in first-encounter order.

    For the square SE of radius ``r`` (row-major
    :func:`~repro.core.mei.se_offsets`) the count is
    ``((4r+1)^2 - 1) / 2`` — every non-zero offset of the doubled
    window, halved because ``a < b`` makes each difference canonical.
    """
    offsets = tuple(offsets)
    seen: dict[Offset, None] = {}
    for ia, (ay, ax) in enumerate(offsets):
        for by, bx in offsets[ia + 1:]:
            seen.setdefault((by - ay, bx - ax), None)
    return tuple(seen)


@dataclass(frozen=True)
class PairReuseStats:
    """Observed reuse of one shift-reuse run.

    Attributes
    ----------
    pair_maps:
        Pair maps materialized (``K(K-1)/2`` for a full cumulative
        pass, plus any re-gathers for the MEI).
    difference_maps:
        Full-image evaluations actually paid — one band reduction per
        unique offset difference, plus one per direct zero-offset
        pair.  The all-pairs path would have paid one per pair map.
    direct_pairs:
        Pairs involving the zero SE offset that had to be evaluated
        directly with the historical operands because the input arrays
        were non-contiguous (see the module docstring); zero for
        contiguous inputs.
    border_pixels:
        Pixels recomputed in border-correction bands (where
        clamp-to-edge breaks translation invariance).
    total_pixels:
        ``H * W`` of the image, for normalizing ``border_pixels``.
    mei_pairs_gathered:
        Distinct (erosion, dilation) pairs the lazy MEI gather
        materialized (the mask loop would have scanned all pairs).
    border_pixels_shared:
        Border-band pixels whose recomputation was *elided* because the
        band lies entirely inside a declared halo margin — rows a
        neighbouring chunk owns, whose values the stitcher discards.
        Zero outside chunk-parallel runs.
    """

    pair_maps: int
    difference_maps: int
    border_pixels: int
    total_pixels: int
    mei_pairs_gathered: int = 0
    direct_pairs: int = 0
    border_pixels_shared: int = 0

    @property
    def reuse_ratio(self) -> float:
        """Pair maps served per full-image evaluation paid."""
        if self.difference_maps == 0:
            return 1.0
        return self.pair_maps / self.difference_maps

    def as_counters(self) -> dict[str, float]:
        """Plain-float counter dict for profiler stage records."""
        return {
            "pair_maps": float(self.pair_maps),
            "difference_maps": float(self.difference_maps),
            "direct_pairs": float(self.direct_pairs),
            "border_pixels": float(self.border_pixels),
            "border_pixels_shared": float(self.border_pixels_shared),
            "mei_pairs_gathered": float(self.mei_pairs_gathered),
            "reuse_ratio": self.reuse_ratio,
        }


def sum_reuse_counters(
        counter_dicts: Iterable[Mapping[str, float]]) -> dict[str, float]:
    """Sum per-chunk reuse counter dicts into one run-wide dict.

    Raw counters add; ``reuse_ratio`` is *recomputed* from the summed
    totals (a sum of ratios means nothing).
    """
    totals: dict[str, float] = {}
    for counters in counter_dicts:
        for key, value in counters.items():
            totals[key] = totals.get(key, 0.0) + float(value)
    if totals.get("difference_maps"):
        totals["reuse_ratio"] = (totals.get("pair_maps", 0.0)
                                 / totals["difference_maps"])
    return totals


class PairReuseEngine:
    """Materializes pair maps as shifted difference maps.

    Parameters
    ----------
    normalized:
        (H, W, N) float64 image, pixels normalized to unit sum.
    offsets:
        SE offsets in neighbour-index order
        (:func:`~repro.core.mei.se_offsets`).
    log_img / entropy:
        Optional precomputed ``safe_log(normalized)`` and
        ``sid_self_entropy(normalized)`` so callers that already hold
        them (the reference, the CPU build models) pay no re-log.
    optimize:
        ``"fuse"`` (default) routes :meth:`accumulate_cumulative`
        through the fused fast path — strided shifted copies, region
        adds that never materialize a per-pair map, a shared
        border-band cache — and enables :meth:`gather_mei_fast`;
        ``"none"`` executes the historical shift-reuse paths unchanged
        (the bit-identity oracle).  Both produce byte-identical output.
    halo_margins:
        ``(top, bottom)`` image rows that belong to a neighbouring
        chunk's core (this chunk's discarded halo).  Border bands that
        lie entirely inside a margin are skipped on the fused path —
        the neighbour computes those pixels once, inside its own
        interior — and counted as ``border_pixels_shared``.  The
        cumulative values of margin rows are then partial; callers must
        discard them (the chunk stitcher does).

    The engine caches one difference map per unique offset difference;
    :meth:`pair_map` then costs one (H, W) gather plus a border band.
    Pairs involving the zero offset are evaluated directly (and
    cached), reproducing the historical operands exactly — see the
    module docstring.  Treat returned maps as read-only.
    """

    def __init__(self, normalized: np.ndarray, offsets: Iterable[Offset],
                 *, log_img: np.ndarray | None = None,
                 entropy: np.ndarray | None = None,
                 optimize: str = "fuse",
                 halo_margins: tuple[int, int] = (0, 0)) -> None:
        check_optimize(optimize)
        normalized = np.asarray(normalized, dtype=np.float64)
        if normalized.ndim != 3:
            raise ShapeError(
                f"expected (H, W, N), got ndim={normalized.ndim}")
        # Raw arrays, whatever their layout: the zero-offset direct
        # path must hand einsum exactly what the all-pairs loop would.
        self._p_raw = normalized
        self._l_raw = safe_log(normalized) if log_img is None else log_img
        self._h = sid_self_entropy(normalized) if entropy is None \
            else entropy
        # Contiguous bases for the reuse path: einsum's band reduction
        # is per-element stable only across C-contiguous operands.
        self._p = np.ascontiguousarray(self._p_raw)
        self._l = np.ascontiguousarray(self._l_raw)
        # When the raw arrays were already contiguous the zero-offset
        # operands of the all-pairs loop are in the same operand class
        # as the reuse path's — no direct path needed.
        self._zero_reusable = (self._p is self._p_raw
                               and self._l is self._l_raw)
        self.offsets = tuple(offsets)
        self.optimize = optimize
        top_m, bottom_m = halo_margins
        if top_m < 0 or bottom_m < 0:
            raise ValidationError(
                f"halo_margins must be non-negative, got {halo_margins}")
        self._halo_margins = (int(top_m), int(bottom_m))
        h, w, _ = normalized.shape
        self._shape = (h, w)
        self._diff: dict[Offset, np.ndarray] = {}
        self._direct: dict[tuple[int, int], np.ndarray] = {}
        self._raw_shifted: dict[int, tuple] = {}
        self._bands: dict[tuple, tuple] = {}
        self._sid_bands: dict[tuple, np.ndarray] = {}
        # Cross-term scratch, reused across every difference map so the
        # inner loop allocates nothing but results.
        self._cross_a = np.empty((h, w), dtype=np.float64)
        self._cross_b = np.empty((h, w), dtype=np.float64)
        self._pair_maps = 0
        self._difference_maps = 0
        self._direct_pairs = 0
        self._border_pixels = 0
        self._border_shared = 0
        self._mei_pairs = 0

    def difference_map(self, d: Offset) -> np.ndarray:
        """``D_d(x) = SID(f(x), f(x + d))`` over the whole image
        (cached)."""
        cached = self._diff.get(d)
        if cached is not None:
            return cached
        dy, dx = d
        # shifted_copy produces byte-identical values in byte-identical
        # layout (fresh C-contiguous), just without the fancy-indexing
        # gather; the oracle keeps the historical gather.
        shift = shifted_copy if self.optimize == "fuse" else clamped_shift
        p_d = shift(self._p, dy, dx)
        l_d = shift(self._l, dy, dx)
        h_d = shift(self._h, dy, dx)
        # Same arithmetic as the all-pairs reference with a = 0, b = d:
        # cross = (p_a . l_b) + (p_b . l_a); sid = max(h_a + h_b -
        # cross, 0).
        np.einsum("ijk,ijk->ij", self._p, l_d, out=self._cross_a)
        np.einsum("ijk,ijk->ij", p_d, self._l, out=self._cross_b)
        np.add(self._cross_a, self._cross_b, out=self._cross_a)
        sid_map = np.add(self._h, h_d)
        np.subtract(sid_map, self._cross_a, out=sid_map)
        np.maximum(sid_map, 0.0, out=sid_map)
        self._diff[d] = sid_map
        self._difference_maps += 1
        return sid_map

    def _band(self, k: int, axis: int, lo: int, hi: int):
        """Cached contiguous gathers of (p, l, h) for SE offset ``k``
        over an output band: rows ``[lo, hi)`` x all columns
        (``axis=0``) or all rows x columns ``[lo, hi)`` (``axis=1``).

        Bands are tiny (at most ``radius`` lines), so caching them per
        (offset, band) keeps border correction off the hot path.
        """
        key = (k, axis, lo, hi)
        cached = self._bands.get(key)
        if cached is not None:
            return cached
        ky, kx = self.offsets[k]
        h, w = self._shape
        if axis == 0:
            rows = np.clip(np.arange(lo, hi) + ky, 0, h - 1)
            cols = clamped_indices(w, kx)
        else:
            rows = clamped_indices(h, ky)
            cols = np.clip(np.arange(lo, hi) + kx, 0, w - 1)
        idx = np.ix_(rows, cols)
        band = (self._p[idx], self._l[idx], self._h[idx])
        self._bands[key] = band
        return band

    def _recompute_band(self, pair_map: np.ndarray, ka: int, kb: int,
                        axis: int, lo: int, hi: int) -> None:
        """Overwrite one border band of ``pair_map`` with the exact
        per-pair arithmetic (where the shifted view is wrong)."""
        pa, la, ha = self._band(ka, axis, lo, hi)
        pb, lb, hb = self._band(kb, axis, lo, hi)
        cross = np.einsum("ijk,ijk->ij", pa, lb) \
            + np.einsum("ijk,ijk->ij", pb, la)
        sid_band = np.maximum(ha + hb - cross, 0.0)
        if axis == 0:
            pair_map[lo:hi, :] = sid_band
        else:
            pair_map[:, lo:hi] = sid_band
        self._border_pixels += sid_band.size

    def _sid_band(self, ka: int, kb: int, axis: int, lo: int,
                  hi: int) -> np.ndarray:
        """Cached SID values of one border band of pair ``(ka, kb)`` —
        the same arithmetic :meth:`_recompute_band` applies, kept as an
        array so the fused accumulate and the fused MEI gather share
        one evaluation per band."""
        key = (ka, kb, axis, lo, hi)
        cached = self._sid_bands.get(key)
        if cached is not None:
            return cached
        pa, la, ha = self._band(ka, axis, lo, hi)
        pb, lb, hb = self._band(kb, axis, lo, hi)
        cross = np.einsum("ijk,ijk->ij", pa, lb) \
            + np.einsum("ijk,ijk->ij", pb, la)
        sid_band = np.maximum(ha + hb - cross, 0.0)
        self._sid_bands[key] = sid_band
        self._border_pixels += sid_band.size
        return sid_band

    def _pair_regions(self, ka: int, kb: int):
        """Decompose pair ``(ka, kb)``'s map into its three disjoint
        regions without materializing it.

        Returns ``(base, (ry0, ry1, cx0, cx1), row_band, col_band)``:
        ``base`` is the difference map the interior region reads
        through the base shift; ``row_band`` / ``col_band`` are
        ``(lo, hi, values)`` for the recomputed border bands (``None``
        where no band exists — or where the band was elided because it
        lies inside a declared halo margin, which is counted in
        ``border_pixels_shared``).  Column bands take precedence over
        row bands at the corners, exactly like :meth:`pair_map`'s
        overwrite order.
        """
        ay, ax = self.offsets[ka]
        by, bx = self.offsets[kb]
        base = self.difference_map((by - ay, bx - ax))
        h, w = self._shape
        top_m, bottom_m = self._halo_margins
        ry0, ry1 = max(0, -ay), h - max(0, ay)
        cx0, cx1 = max(0, -ax), w - max(0, ax)
        row_band = None
        if ay > 0:
            lo, hi = max(0, ry1), h
        elif ay < 0:
            lo, hi = 0, min(ry0, h)
        else:
            lo = hi = 0
        if hi > lo:
            if ay > 0 and lo >= h - bottom_m:
                self._border_shared += (hi - lo) * w
            elif ay < 0 and hi <= top_m:
                self._border_shared += (hi - lo) * w
            else:
                row_band = (lo, hi, self._sid_band(ka, kb, 0, lo, hi))
        col_band = None
        if ax > 0:
            lo, hi = max(0, cx1), w
        elif ax < 0:
            lo, hi = 0, min(cx0, w)
        else:
            lo = hi = 0
        if hi > lo:
            col_band = (lo, hi, self._sid_band(ka, kb, 1, lo, hi))
        return base, (ry0, ry1, cx0, cx1), row_band, col_band

    def _direct_pair(self, ka: int, kb: int) -> np.ndarray:
        """One pair evaluated exactly as the all-pairs loop would
        (cached) — the zero-offset slot passes the raw arrays through
        to einsum, so the shifted-difference-map trick cannot reproduce
        its rounding when the caller's cube is non-contiguous."""
        cached = self._direct.get((ka, kb))
        if cached is not None:
            return cached
        pa, la, ha = self._raw_triplet(ka)
        pb, lb, hb = self._raw_triplet(kb)
        cross = np.einsum("ijk,ijk->ij", pa, lb) \
            + np.einsum("ijk,ijk->ij", pb, la)
        sid_map = np.maximum(ha + hb - cross, 0.0)
        self._direct[(ka, kb)] = sid_map
        self._difference_maps += 1
        self._direct_pairs += 1
        return sid_map

    def _raw_triplet(self, k: int):
        """Cached ``(p, l, h)`` raw-array shifts for the direct path —
        exactly the per-offset gathers the all-pairs loop holds."""
        cached = self._raw_shifted.get(k)
        if cached is not None:
            return cached
        dy, dx = self.offsets[k]
        triplet = tuple(clamped_shift(arr, dy, dx)
                        for arr in (self._p_raw, self._l_raw, self._h))
        self._raw_shifted[k] = triplet
        return triplet

    def pair_map(self, ka: int, kb: int) -> np.ndarray:
        """The (H, W) SID map of SE-offset pair ``(ka, kb)``,
        ``ka < kb``.

        The cached difference map copied through the base shift
        (interior: one basic-slice copy), with the border bands
        recomputed; on non-contiguous inputs, pairs involving the zero
        offset take the direct path.  Read-only: repeated calls may
        alias caches.
        """
        a = self.offsets[ka]
        b = self.offsets[kb]
        self._pair_maps += 1
        if not self._zero_reusable and (a == (0, 0) or b == (0, 0)):
            return self._direct_pair(ka, kb)
        base = self.difference_map((b[0] - a[0], b[1] - a[1]))
        ay, ax = a
        if ay == 0 and ax == 0:
            return base
        h, w = self._shape
        out = np.empty_like(base)
        # Interior — where the base shift stays in range and the
        # translation identity holds: a plain strided copy.
        ry0, ry1 = max(0, -ay), h - max(0, ay)
        cx0, cx1 = max(0, -ax), w - max(0, ax)
        if ry0 < ry1 and cx0 < cx1:
            out[ry0:ry1, cx0:cx1] = \
                base[ry0 + ay:ry1 + ay, cx0 + ax:cx1 + ax]
        # Border bands — clamp-to-edge broke the identity there.  The
        # bounds are clipped for images narrower than the shift, where
        # the whole extent is border.
        if ay > 0:
            self._recompute_band(out, ka, kb, 0, max(0, ry1), h)
        elif ay < 0:
            self._recompute_band(out, ka, kb, 0, 0, min(ry0, h))
        if ax > 0:
            self._recompute_band(out, ka, kb, 1, max(0, cx1), w)
        elif ax < 0:
            self._recompute_band(out, ka, kb, 1, 0, min(cx0, w))
        return out

    def accumulate_cumulative(self) -> np.ndarray:
        """(H, W, K) cumulative distances, accumulated pair by pair in
        the same lexicographic order (hence bit-identically) as the
        all-pairs reference.

        Accumulation runs in a (K, H, W) scratch so every add hits a
        contiguous slab; per-element float addition is layout-blind, so
        the transposed result is still bit-identical.

        On the fused path (``optimize="fuse"``) no per-pair map is
        materialized at all: each pair's three regions — interior
        (a strided slice of the cached difference map), row band, col
        band — are added straight into the scratch.  Every element
        still receives exactly one addition of exactly the same value
        per pair, in the same pair order, so the result is
        byte-identical to the materializing path.
        """
        h, w = self._shape
        k_count = len(self.offsets)
        scratch = np.zeros((k_count, h, w), dtype=np.float64)
        if self.optimize == "fuse":
            self._accumulate_fast(scratch)
        else:
            for ka in range(k_count):
                for kb in range(ka + 1, k_count):
                    sid_map = self.pair_map(ka, kb)
                    np.add(scratch[ka], sid_map, out=scratch[ka])
                    np.add(scratch[kb], sid_map, out=scratch[kb])
        return np.ascontiguousarray(scratch.transpose(1, 2, 0))

    def _accumulate_fast(self, scratch: np.ndarray) -> None:
        """Region-wise pair accumulation — the fused fast path."""
        h, w = self._shape
        k_count = len(self.offsets)
        for ka in range(k_count):
            a = self.offsets[ka]
            for kb in range(ka + 1, k_count):
                b = self.offsets[kb]
                self._pair_maps += 1
                if not self._zero_reusable and (a == (0, 0)
                                                or b == (0, 0)):
                    sid_map = self._direct_pair(ka, kb)
                    np.add(scratch[ka], sid_map, out=scratch[ka])
                    np.add(scratch[kb], sid_map, out=scratch[kb])
                    continue
                if a == (0, 0):
                    base = self.difference_map(b)
                    np.add(scratch[ka], base, out=scratch[ka])
                    np.add(scratch[kb], base, out=scratch[kb])
                    continue
                base, (ry0, ry1, cx0, cx1), row_band, col_band = \
                    self._pair_regions(ka, kb)
                ay, ax = a
                interior = None
                if ry0 < ry1 and cx0 < cx1:
                    interior = base[ry0 + ay:ry1 + ay, cx0 + ax:cx1 + ax]
                for k in (ka, kb):
                    tgt = scratch[k]
                    if interior is not None:
                        region = tgt[ry0:ry1, cx0:cx1]
                        np.add(region, interior, out=region)
                    if row_band is not None and cx0 < cx1:
                        lo, hi, values = row_band
                        region = tgt[lo:hi, cx0:cx1]
                        np.add(region, values[:, cx0:cx1], out=region)
                    if col_band is not None:
                        lo, hi, values = col_band
                        region = tgt[:, lo:hi]
                        np.add(region, values, out=region)

    def gather_mei_fast(self, erosion_index: np.ndarray,
                        dilation_index: np.ndarray
                        ) -> tuple[np.ndarray, int]:
        """Fused equivalent of :func:`gather_mei`: one stable argsort
        over the packed pair codes, then per-segment pointwise reads of
        the pair map's three regions — no per-code boolean mask scans
        and no materialized pair maps.

        Byte-identical to ``gather_mei(ero, dil, self.pair_map, K)``:
        every pixel receives exactly the value :meth:`pair_map` holds
        at that position (column bands take precedence at the corners,
        matching the overwrite order).
        """
        k_count = len(self.offsets)
        h, w = self._shape
        lo_idx = np.minimum(erosion_index, dilation_index)
        hi_idx = np.maximum(erosion_index, dilation_index)
        mei = np.zeros(lo_idx.shape, dtype=np.float64)
        codes = np.where(lo_idx != hi_idx, lo_idx * k_count + hi_idx, -1)
        flat_codes = codes.ravel()
        order = np.argsort(flat_codes, kind="stable")
        sorted_codes = flat_codes[order]
        uniq, starts = np.unique(sorted_codes, return_index=True)
        bounds = np.append(starts, len(sorted_codes))
        mei_flat = mei.ravel()
        gathered = 0
        for i, code in enumerate(uniq):
            if code < 0:
                continue
            seg = order[bounds[i]:bounds[i + 1]]
            ys, xs = np.divmod(seg, w)
            ka, kb = divmod(int(code), k_count)
            self._pair_maps += 1
            gathered += 1
            a = self.offsets[ka]
            b = self.offsets[kb]
            if not self._zero_reusable and (a == (0, 0) or b == (0, 0)):
                mei_flat[seg] = self._direct_pair(ka, kb)[ys, xs]
                continue
            if a == (0, 0):
                mei_flat[seg] = self.difference_map(b)[ys, xs]
                continue
            ay, ax = a
            base = self.difference_map((b[0] - ay, b[1] - ax))
            col_out = (xs + ax < 0) | (xs + ax >= w)
            row_out = (ys + ay < 0) | (ys + ay >= h)
            values = np.empty(len(seg), dtype=np.float64)
            inside = ~(col_out | row_out)
            if inside.any():
                values[inside] = base[ys[inside] + ay, xs[inside] + ax]
            row_only = row_out & ~col_out
            if row_only.any():
                if ay > 0:
                    blo, bhi = max(0, h - ay), h
                else:
                    blo, bhi = 0, min(-ay, h)
                band = self._sid_band(ka, kb, 0, blo, bhi)
                values[row_only] = band[ys[row_only] - blo, xs[row_only]]
            if col_out.any():
                if ax > 0:
                    blo, bhi = max(0, w - ax), w
                else:
                    blo, bhi = 0, min(-ax, w)
                band = self._sid_band(ka, kb, 1, blo, bhi)
                values[col_out] = band[ys[col_out], xs[col_out] - blo]
            mei_flat[seg] = values
        return mei, gathered

    def count_mei_pairs(self, gathered: int) -> None:
        """Record how many pairs the lazy MEI gather materialized."""
        self._mei_pairs += gathered

    def stats(self) -> PairReuseStats:
        """Freeze the engine's counters."""
        h, w = self._shape
        return PairReuseStats(pair_maps=self._pair_maps,
                              difference_maps=self._difference_maps,
                              border_pixels=self._border_pixels,
                              total_pixels=h * w,
                              mei_pairs_gathered=self._mei_pairs,
                              direct_pairs=self._direct_pairs,
                              border_pixels_shared=self._border_shared)


def gather_mei(erosion_index: np.ndarray, dilation_index: np.ndarray,
               pair_map: Callable[[int, int], np.ndarray],
               k_count: int) -> tuple[np.ndarray, int]:
    """Gather ``MEI(x) = SID(f(x + a_dil), f(x + a_ero))`` per pixel.

    Instead of scanning all ``K(K-1)/2`` masks, only the (lo, hi) index
    pairs that actually occur are materialized — found via
    :func:`numpy.unique` over the packed pair codes.  ``pair_map`` is
    any provider of the (H, W) SID map of an ordered pair ``ka < kb``
    (the shift-reuse engine, or a dict of precomputed maps).

    Returns the MEI map and the number of pairs materialized.  Pixels
    whose erosion and dilation coincide (flat neighbourhoods) keep
    MEI = 0.
    """
    lo = np.minimum(erosion_index, dilation_index)
    hi = np.maximum(erosion_index, dilation_index)
    mei = np.zeros(lo.shape, dtype=np.float64)
    codes = np.where(lo != hi, lo * k_count + hi, -1)
    gathered = 0
    for code in np.unique(codes):
        if code < 0:
            continue
        ka, kb = divmod(int(code), k_count)
        mask = codes == code
        mei[mask] = pair_map(ka, kb)[mask]
        gathered += 1
    return mei, gathered
