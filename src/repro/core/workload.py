"""Analytic operation/traffic counts of the AMC morphological stage.

The complexity the paper states — O(p_f x p_B x N) — is made concrete
here: exact flop, transcendental and memory-traffic counts per pixel for
the pair-map implementation every backend in this library uses.  The CPU
timing model consumes these directly; the GPU benchmarks validate their
own counters against the same expressions (a test asserts the two agree),
so the modeled milliseconds of Tables 4-5 all trace back to one audited
formula.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.errors import ValidationError


@dataclass(frozen=True)
class MorphologicalWorkload:
    """Work performed by the morphological stage on one image."""

    pixels: int
    bands: int
    se_size: int                 # K = (2r+1)^2
    flops: float                 # scalar single-precision flops
    transcendentals: float       # log evaluations
    traffic_bytes: float         # streaming memory traffic (float32)

    @property
    def pair_count(self) -> int:
        """Unordered SE-offset pairs evaluated per pixel."""
        return self.se_size * (self.se_size - 1) // 2


def morphological_workload(lines: int, samples: int, bands: int,
                           radius: int = 1) -> MorphologicalWorkload:
    """Count the work of the morphological stage.

    Per pixel, with K = (2r+1)^2 SE elements, P = K(K-1)/2 pairs and N
    bands:

    * normalization (eq. 3-4): N adds (band sum) + N divides + N clamps;
    * log stream: N logs (counted as transcendentals, plus N flops for
      the clamp);
    * self entropy: N multiplies + N adds;
    * each pair map: two N-band dot products of the cross terms (4N
      flops) plus ~6 flops of combination/accumulation;
    * erosion/dilation: 2K compares;
    * MEI: one more pair evaluation (4N + 6).

    Memory traffic counts every stream pass at float32 width with no
    cache reuse across pair passes — the pair maps sweep the whole image
    per pair, so for realistic image sizes each pass misses L2.  Per
    pixel: 4 N-float reads per pair (norm and log, two shifts each), plus
    8 N-float passes for normalization/log/entropy/MEI.
    """
    if lines < 1 or samples < 1 or bands < 1:
        raise ValidationError("lines, samples and bands must be >= 1")
    if radius < 0:
        raise ValidationError("radius must be >= 0")
    k = (2 * radius + 1) ** 2
    pairs = k * (k - 1) // 2
    pixels = lines * samples
    n = bands

    flops_per_pixel = (
        3 * n            # normalization
        + n              # clamp before log
        + 2 * n          # self entropy
        + pairs * (4 * n + 6)
        + 2 * k          # argmin/argmax folds
        + 4 * n + 6      # final MEI SID
    )
    transcendentals_per_pixel = n
    traffic_per_pixel = (pairs * 4 + 8) * n * 4  # bytes, float32

    return MorphologicalWorkload(
        pixels=pixels, bands=n, se_size=k,
        flops=float(pixels) * flops_per_pixel,
        transcendentals=float(pixels) * transcendentals_per_pixel,
        traffic_bytes=float(pixels) * traffic_per_pixel)
