"""Classification accuracy metrics (paper Table 3).

The paper reports per-class and overall accuracy against the Indian Pines
ground truth.  This module provides those plus the confusion matrix and
Cohen's kappa (the standard remote-sensing companion statistic), and the
endmember-to-class mapping needed to compare an unsupervised AMC labeling
with a supervised ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError


def confusion_matrix(truth: np.ndarray, predicted: np.ndarray,
                     n_classes: int) -> np.ndarray:
    """(n_classes, n_classes + 1) matrix, rows = truth, cols = prediction.

    Labels are 1-based; a truth label of 0 means "unlabeled" and the
    pixel is ignored.  Predictions outside [1, n_classes] (an
    unclassified / rejected pixel) land in the extra last column, so row
    sums always equal the number of ground-truth pixels of the class.
    """
    truth = np.asarray(truth).ravel()
    predicted = np.asarray(predicted).ravel()
    if truth.shape != predicted.shape:
        raise ShapeError(
            f"truth {truth.shape} and prediction {predicted.shape} differ")
    labeled = (truth >= 1) & (truth <= n_classes)
    t = truth[labeled] - 1
    p = predicted[labeled]
    p = np.where((p >= 1) & (p <= n_classes), p, n_classes + 1) - 1
    matrix = np.zeros((n_classes, n_classes + 1), dtype=np.int64)
    np.add.at(matrix, (t, p), 1)
    return matrix


@dataclass(frozen=True)
class ClassificationReport:
    """Per-class and overall accuracy of one classification run."""

    class_names: tuple[str, ...]
    matrix: np.ndarray
    per_class_accuracy: np.ndarray   # %, NaN for absent classes
    overall_accuracy: float          # %
    kappa: float

    def rows(self) -> list[tuple[str, float]]:
        """(name, accuracy%) rows in class order — Table 3's layout."""
        return list(zip(self.class_names,
                        (float(a) for a in self.per_class_accuracy)))

    def format_table(self) -> str:
        """Render the report in the layout of paper Table 3."""
        width = max(len(n) for n in self.class_names) + 2
        lines = [f"{'Class':<{width}}Accuracy (%)"]
        for name, acc in self.rows():
            val = "   --" if np.isnan(acc) else f"{acc:8.2f}"
            lines.append(f"{name:<{width}}{val}")
        lines.append(f"{'Overall:':<{width}}{self.overall_accuracy:8.2f}")
        return "\n".join(lines)


def kappa_score(matrix: np.ndarray) -> float:
    """Cohen's kappa from a confusion matrix.

    Accepts the (n, n+1) matrices of :func:`confusion_matrix` (the last
    column is the "rejected" bucket, which has no truth row and therefore
    contributes nothing to chance agreement).
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    n = matrix.shape[0]
    total = matrix.sum()
    if total == 0:
        return 0.0
    diag = matrix[np.arange(n), np.arange(n)].sum()
    po = diag / total
    row = matrix.sum(axis=1)
    col = matrix[:, :n].sum(axis=0)
    pe = float((row * col).sum()) / total ** 2
    if pe >= 1.0:
        return 0.0
    return (po - pe) / (1.0 - pe)


def evaluate_classification(truth: np.ndarray, predicted: np.ndarray,
                            class_names: tuple[str, ...]) -> ClassificationReport:
    """Build a :class:`ClassificationReport` for 1-based label maps."""
    n = len(class_names)
    matrix = confusion_matrix(truth, predicted, n)
    row_sums = matrix.sum(axis=1)
    with np.errstate(invalid="ignore", divide="ignore"):
        per_class = np.where(row_sums > 0,
                             100.0 * np.diag(matrix) / row_sums, np.nan)
    total = row_sums.sum()
    overall = 100.0 * np.trace(matrix) / total if total else 0.0
    return ClassificationReport(class_names=tuple(class_names),
                                matrix=matrix,
                                per_class_accuracy=per_class,
                                overall_accuracy=float(overall),
                                kappa=kappa_score(matrix))


def map_endmembers_to_classes(endmember_positions: np.ndarray,
                              ground_truth: np.ndarray) -> np.ndarray:
    """Label each endmember with the ground-truth class at its location.

    AMC is unsupervised: its classes are endmember indices.  To score
    against a labeled ground truth, each endmember inherits the label of
    the pixel it was extracted from — the weakest supervision that allows
    an accuracy number, and the convention the cluster-based AMC
    evaluations use.

    Returns a (c,) array of 1-based class labels.
    """
    positions = np.asarray(endmember_positions)
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise ShapeError(f"positions must be (c, 2), got {positions.shape}")
    return np.asarray(ground_truth)[positions[:, 0], positions[:, 1]].copy()
