"""Sequences of extended morphological transformations (paper ref. [11]).

The AMC paper uses a single erosion+dilation pass; its companion work
(Plaza et al., TGRS 2005 — the paper's ref. [11]) builds *sequences* of
the extended operators: openings and closings by reconstruction-style
composition, and the iterative AMEE endmember-extraction loop in which
the image is progressively replaced by its extended dilation while the
per-pixel MEI keeps the strongest response seen.  This module implements
those compositions on top of the same morphological engine, because any
real user of the library (and the paper's own future work) needs more
than one pass.

All operators are **value-preserving**: every output pixel vector is one
of the input pixel vectors of its neighbourhood (the operators *select*,
never synthesize) — a property the test suite checks explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.mei import mei_reference, se_offsets
from repro.errors import ShapeError, ValidationError


def _gather(cube_bip: np.ndarray, index_map: np.ndarray,
            radius: int) -> np.ndarray:
    """Replace each pixel with the SE neighbour its index map selects."""
    h, w, _ = cube_bip.shape
    offsets = np.asarray(se_offsets(radius))
    dy = offsets[index_map, 0]
    dx = offsets[index_map, 1]
    yy, xx = np.mgrid[0:h, 0:w]
    ty = np.clip(yy + dy, 0, h - 1)
    tx = np.clip(xx + dx, 0, w - 1)
    return cube_bip[ty, tx]


def extended_erode(cube_bip: np.ndarray, radius: int = 1) -> np.ndarray:
    """Extended erosion (eq. 5): each pixel becomes the spectrally most
    *central* pixel of its neighbourhood (minimum cumulative SID)."""
    cube_bip = np.asarray(cube_bip)
    if cube_bip.ndim != 3:
        raise ShapeError(f"expected (H, W, N), got {cube_bip.shape}")
    morph = mei_reference(cube_bip, radius)
    return _gather(cube_bip, morph.erosion_index, radius)


def extended_dilate(cube_bip: np.ndarray, radius: int = 1) -> np.ndarray:
    """Extended dilation (eq. 6): each pixel becomes the spectrally most
    *distinct* (purest, under linear mixing) pixel of its
    neighbourhood."""
    cube_bip = np.asarray(cube_bip)
    if cube_bip.ndim != 3:
        raise ShapeError(f"expected (H, W, N), got {cube_bip.shape}")
    morph = mei_reference(cube_bip, radius)
    return _gather(cube_bip, morph.dilation_index, radius)


def extended_open(cube_bip: np.ndarray, radius: int = 1) -> np.ndarray:
    """Extended opening: erosion followed by dilation.

    Suppresses isolated spectrally-distinct pixels (speckle/anomalies)
    while keeping extended pure regions."""
    return extended_dilate(extended_erode(cube_bip, radius), radius)


def extended_close(cube_bip: np.ndarray, radius: int = 1) -> np.ndarray:
    """Extended closing: dilation followed by erosion.

    Fills small spectrally-mixed gaps inside homogeneous regions."""
    return extended_erode(extended_dilate(cube_bip, radius), radius)


@dataclass(frozen=True)
class AmeeOutput:
    """Result of the iterative AMEE loop.

    Attributes
    ----------
    mei:
        (H, W) — per pixel, the *maximum* MEI response over iterations
        (ref. [11]'s competition rule).
    final_cube:
        The image after the last dilation step (progressively dominated
        by the purest pixels).
    iteration_mei:
        (iterations, H, W) per-iteration MEI maps.
    radius / iterations:
        The configuration used.
    """

    mei: np.ndarray
    final_cube: np.ndarray
    iteration_mei: np.ndarray
    radius: int
    iterations: int


def amee(cube_bip: np.ndarray, radius: int = 1, iterations: int = 3, *,
         backend: str = "reference") -> AmeeOutput:
    """Automated Morphological Endmember Extraction (iterative).

    Each iteration runs the morphological stage on the current image,
    keeps the strongest MEI seen per pixel, and replaces the image with
    its extended dilation — so pure pixels propagate outward and, over
    ``iterations`` passes, an SE of radius r effectively probes a
    neighbourhood of radius ``iterations * r`` at a fraction of the
    single-pass cost of that large SE.

    Parameters
    ----------
    cube_bip:
        (H, W, N) raw radiance cube.
    radius:
        SE radius per iteration.
    iterations:
        Number of erosion/dilation/MEI passes (>= 1).
    backend:
        Any backend registered in :mod:`repro.backends` (built-in:
        "reference" float64 CPU, "gpu" the stream pipeline per
        iteration on a virtual 7800 GTX — one device reused across
        iterations, the host performing only the dilation gather
        between passes — or the "naive" loop oracle).
    """
    cube_bip = np.asarray(cube_bip, dtype=np.float64)
    if cube_bip.ndim != 3:
        raise ShapeError(f"expected (H, W, N), got {cube_bip.shape}")
    if iterations < 1:
        raise ValidationError(f"iterations must be >= 1, got {iterations}")
    # deferred import keeps this module's import graph identical to the
    # pre-registry layering (backends defers core imports in turn)
    from repro.backends import get_backend

    impl = get_backend(backend)

    current = cube_bip
    best = None
    per_iteration = []
    device = None
    for _ in range(iterations):
        out = impl.run(current, radius, device=device)
        device = out.device          # device backends reuse one board
        mei_map = out.mei
        per_iteration.append(mei_map)
        best = mei_map if best is None else np.maximum(best, mei_map)
        current = _gather(current, out.dilation_index, radius)
    return AmeeOutput(mei=best, final_cube=current,
                      iteration_mei=np.stack(per_iteration),
                      radius=radius, iterations=iterations)
