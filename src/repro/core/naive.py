"""Per-pixel loop oracle for the morphological stage.

A deliberately unoptimized, transcription-of-the-equations implementation
used only by the test suite to validate the vectorized reference and the
GPU stream implementation on small images.  Every design shortcut is
avoided: for each pixel the full ``B^2 x B^2`` table of SIDs is evaluated
from the definition (eq. 2), summed into the cumulative distances
(eq. 1), reduced by argmin/argmax (eqs. 5-6), and the MEI is the SID
between the two selected pixels.

Runtime is O(H * W * B^4 * N); keep images tiny.
"""

from __future__ import annotations

import numpy as np

from repro.core.mei import MorphologicalOutput, se_offsets
from repro.errors import ShapeError
from repro.spectral.normalize import SpectralEpsilon, normalize_image


def _sid_scalar(p: np.ndarray, q: np.ndarray) -> float:
    """Eq. 2, straight from the definition."""
    eps = SpectralEpsilon.get()
    p = np.maximum(p, eps)
    q = np.maximum(q, eps)
    return float(np.sum(p * np.log(p / q)) + np.sum(q * np.log(q / p)))


def mei_naive(cube_bip: np.ndarray, radius: int = 1, *,
              prenormalized: bool = False) -> MorphologicalOutput:
    """Morphological stage computed by explicit loops (oracle)."""
    cube_bip = np.asarray(cube_bip)
    if cube_bip.ndim != 3:
        raise ShapeError(f"expected (H, W, N), got ndim={cube_bip.ndim}")
    normalized = cube_bip.astype(np.float64) if prenormalized \
        else normalize_image(cube_bip)
    h, w, _ = normalized.shape
    offsets = se_offsets(radius)
    k_count = len(offsets)

    cumulative = np.zeros((h, w, k_count), dtype=np.float64)
    erosion_index = np.zeros((h, w), dtype=np.int64)
    dilation_index = np.zeros((h, w), dtype=np.int64)
    mei = np.zeros((h, w), dtype=np.float64)

    def clamp(y: int, x: int) -> tuple[int, int]:
        return min(max(y, 0), h - 1), min(max(x, 0), w - 1)

    for y in range(h):
        for x in range(w):
            neighbours = [normalized[clamp(y + dy, x + dx)]
                          for dy, dx in offsets]
            for ka in range(k_count):
                total = 0.0
                for kb in range(k_count):
                    if ka != kb:
                        total += _sid_scalar(neighbours[ka], neighbours[kb])
                cumulative[y, x, ka] = total
            ero = int(np.argmin(cumulative[y, x]))
            dil = int(np.argmax(cumulative[y, x]))
            erosion_index[y, x] = ero
            dilation_index[y, x] = dil
            mei[y, x] = _sid_scalar(neighbours[dil], neighbours[ero])

    return MorphologicalOutput(mei=mei, erosion_index=erosion_index,
                               dilation_index=dilation_index,
                               cumulative=cumulative, radius=radius)
