"""Sub-pixel target implantation for detection experiments.

The paper's introduction motivates hyperspectral processing with
time-critical detection tasks (targets, threats, spills).  Evaluating a
detector needs scenes with *known* targets; this module plants them: a
chosen material is linearly mixed into isolated pixels at a controlled
sub-pixel abundance, and the ground-truth positions are returned so
detection curves can be scored.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError, ValidationError


@dataclass(frozen=True)
class ImplantedTargets:
    """The modified cube plus the implantation ground truth."""

    cube: np.ndarray          # (H, W, N) with targets mixed in
    positions: np.ndarray     # (count, 2) target (line, sample)
    abundance: float
    spectrum: np.ndarray      # (N,) the implanted material

    @property
    def count(self) -> int:
        return self.positions.shape[0]

    def mask(self, tolerance: int = 0) -> np.ndarray:
        """(H, W) boolean mask of targets, dilated by ``tolerance``
        pixels (Chebyshev) for scoring detectors whose response spreads
        onto neighbours."""
        h, w, _ = self.cube.shape
        out = np.zeros((h, w), dtype=bool)
        for y, x in self.positions:
            y0, y1 = max(0, y - tolerance), min(h, y + tolerance + 1)
            x0, x1 = max(0, x - tolerance), min(w, x + tolerance + 1)
            out[y0:y1, x0:x1] = True
        return out


def implant_targets(cube: np.ndarray, spectrum: np.ndarray, *,
                    count: int, abundance: float,
                    rng: np.random.Generator,
                    min_separation: int = 8,
                    border: int = 4) -> ImplantedTargets:
    """Mix ``spectrum`` into ``count`` isolated pixels of a copy of
    ``cube``.

    Parameters
    ----------
    cube:
        (H, W, N) background scene (not modified).
    spectrum:
        (N,) target material spectrum.
    count:
        Number of targets.
    abundance:
        Sub-pixel fraction of the target material in its pixel, in
        (0, 1].
    rng:
        Source of positions (pass a seeded generator for
        reproducibility).
    min_separation:
        Minimum L1 distance between targets (keeps detection events
        independent).
    border:
        Keep targets at least this far from the image edge.

    Raises
    ------
    ShapeError / ValueError
        On inconsistent arguments, or if the image cannot hold ``count``
        targets at the requested separation.
    """
    cube = np.asarray(cube, dtype=np.float64)
    spectrum = np.asarray(spectrum, dtype=np.float64)
    if cube.ndim != 3:
        raise ShapeError(f"cube must be (H, W, N), got {cube.shape}")
    if spectrum.shape != (cube.shape[2],):
        raise ShapeError(
            f"spectrum must have {cube.shape[2]} bands, got "
            f"{spectrum.shape}")
    if not 0.0 < abundance <= 1.0:
        raise ValidationError(f"abundance must be in (0, 1], got {abundance}")
    if count < 1:
        raise ValidationError(f"count must be >= 1, got {count}")
    h, w, _ = cube.shape
    if h <= 2 * border or w <= 2 * border:
        raise ValidationError(f"image {h}x{w} too small for border {border}")

    out = cube.copy()
    positions: list[tuple[int, int]] = []
    attempts = 0
    max_attempts = 1000 * count
    while len(positions) < count:
        attempts += 1
        if attempts > max_attempts:
            raise ValidationError(
                f"could not place {count} targets with separation "
                f"{min_separation} in a {h}x{w} image "
                f"(placed {len(positions)})")
        y = int(rng.integers(border, h - border))
        x = int(rng.integers(border, w - border))
        if any(abs(y - py) + abs(x - px) < min_separation
               for py, px in positions):
            continue
        out[y, x] = (1.0 - abundance) * out[y, x] + abundance * spectrum
        positions.append((y, x))
    return ImplantedTargets(cube=out, positions=np.asarray(positions),
                            abundance=float(abundance),
                            spectrum=spectrum)
