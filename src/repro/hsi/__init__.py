"""Hyperspectral imaging substrate.

Everything the AMC algorithm needs underneath it:

* :class:`~repro.hsi.cube.HyperCube` — the image-cube container with the
  three classic interleaves (BSQ/BIL/BIP) and zero-copy views.
* :mod:`~repro.hsi.bands` — AVIRIS-like band metadata (224 channels,
  0.4-2.5 um, 10 nm nominal resolution, water-absorption windows).
* :mod:`~repro.hsi.library` — a synthetic spectral library with
  parameterized absorption features, standing in for field/lab spectra.
* :mod:`~repro.hsi.synthetic` — the Indian-Pines-like scene generator
  (30 land-cover classes, linear mixing, sensor noise) used everywhere the
  paper uses the real AVIRIS scene (see DESIGN.md for the substitution
  argument).
* :mod:`~repro.hsi.envi` — minimal ENVI-style header + raw-binary I/O.
* :mod:`~repro.hsi.chunking` — the spatial chunk planner used when a cube
  exceeds the (virtual) GPU memory, with halos so morphological results
  are chunking-invariant.
"""

from repro.hsi.bands import AVIRIS_BAND_COUNT, BandSet, aviris_bands
from repro.hsi.chunking import Chunk, ChunkPlan, plan_chunks, plan_chunks_by_lines
from repro.hsi.cube import HyperCube, Interleave
from repro.hsi.library import SpectralLibrary, build_default_library
from repro.hsi.noise import NoiseModel
from repro.hsi.scenes import (
    generate_coastal_scene,
    generate_minimal_scene,
    generate_urban_scene,
)
from repro.hsi.targets import ImplantedTargets, implant_targets
from repro.hsi.synthetic import (
    INDIAN_PINES_CLASSES,
    SceneParams,
    SyntheticScene,
    generate_indian_pines_like,
    generate_scene,
)

__all__ = [
    "AVIRIS_BAND_COUNT",
    "BandSet",
    "Chunk",
    "ChunkPlan",
    "HyperCube",
    "INDIAN_PINES_CLASSES",
    "ImplantedTargets",
    "Interleave",
    "NoiseModel",
    "SceneParams",
    "SpectralLibrary",
    "SyntheticScene",
    "aviris_bands",
    "build_default_library",
    "generate_coastal_scene",
    "generate_indian_pines_like",
    "generate_minimal_scene",
    "generate_scene",
    "generate_urban_scene",
    "implant_targets",
    "plan_chunks",
    "plan_chunks_by_lines",
]
