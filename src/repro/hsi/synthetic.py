"""Synthetic Indian-Pines-like scene generation.

The paper evaluates on the AVIRIS Indian Pines scene: a mixed
agricultural/forest area imaged *early in the growing season*, so most
crop pixels are heavy soil/vegetation mixtures — that mixing is exactly
why Table 3's corn classes classify poorly while macroscopically pure
classes (BareSoil, Woods, Concrete/Asphalt) classify well.

The generator reproduces those mechanics, not the literal field map:

1. a procedural **class map** built by recursive binary-space
   partitioning of the image into agricultural fields, with overlaid
   structures (a road, a runway, a lake, a woods region, building lots);
2. a **linear mixture model** per pixel: each class owns a library
   material and a *purity*; the pixel spectrum is
   ``purity * endmember + (1 - purity) * background`` with per-pixel
   purity jitter and a smooth illumination gain field;
3. the **sensor model** of :mod:`repro.hsi.noise` (band-dependent SNR,
   water-absorption bad bands).

Purities are assigned from the accuracy the paper reports for each class
(low reported accuracy <=> heavily mixed class), so the *shape* of Table 3
is a consequence of the generator's physics rather than hard-coded
outputs.  The paper's accuracy values are carried on each class spec for
the EXPERIMENTS.md comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ShapeError, ValidationError
from repro.hsi.bands import BandSet, aviris_bands
from repro.hsi.cube import HyperCube, Interleave
from repro.hsi.library import SpectralLibrary, build_default_library
from repro.hsi.noise import NoiseModel


@dataclass(frozen=True)
class ClassSpec:
    """One ground-truth land-cover class.

    Attributes
    ----------
    name:
        Class label as printed in paper Table 3.
    material:
        Name of the owning endmember in the spectral library.
    mixers:
        Materials the class mixes with (background of the linear model).
    purity:
        Mean abundance of the owning endmember in this class's pixels.
    weight:
        Relative share of the scene area given to the class by the BSP
        field allocator (special structures override this).
    paper_accuracy:
        Classification accuracy (%) the paper reports for the class —
        reference data for EXPERIMENTS.md, never used by any algorithm.
    structure:
        ``None`` for ordinary BSP fields, or one of ``"road"``,
        ``"runway"``, ``"lake"``, ``"woods"``, ``"lots"`` for classes with
        dedicated geometry.
    """

    name: str
    material: str
    mixers: tuple[str, ...]
    purity: float
    weight: float
    paper_accuracy: float
    structure: str | None = None


#: Standard deviation of the per-pixel dominant-abundance distribution.
#: Must match :attr:`SceneParams.purity_jitter` for the calibration below
#: to hold.
_PURITY_SIGMA: float = 0.083


def _purity_from_accuracy(acc: float) -> float:
    """Map a paper-reported accuracy (%) to a mean endmember abundance.

    Under the single-competitor mixing model each pixel is
    ``a * endmember + (1 - a) * competitor`` with
    ``a ~ N(purity, sigma)``; an ideal abundance-argmax classifier is
    correct exactly when ``a > 0.5``, i.e. with probability
    ``Phi((purity - 0.5) / sigma)``.  Inverting that relation,
    ``purity = 0.5 + sigma * Phi^{-1}(acc)``, calibrates the *mixing
    physics* so that the paper's per-class accuracy is what an ideal
    pipeline would measure — the real pipeline then deviates through
    endmember-extraction quality, label collisions and sensor noise,
    which is precisely what EXPERIMENTS.md quantifies.
    """
    from scipy.special import ndtri

    quantile = min(max(acc / 100.0, 1e-4), 1 - 1e-4)
    return float(np.clip(0.5 + _PURITY_SIGMA * ndtri(quantile), 0.20, 0.97))


def _spec(name: str, material: str, acc: float, *, weight: float = 1.0,
          mixers: tuple[str, ...] = ("bare_soil",),
          structure: str | None = None) -> ClassSpec:
    return ClassSpec(name=name, material=material, mixers=mixers,
                     purity=_purity_from_accuracy(acc), weight=weight,
                     paper_accuracy=acc, structure=structure)


#: The ground-truth classes of paper Table 3 (32 rows), with the owning
#: material, mixing partners and paper accuracies.
INDIAN_PINES_CLASSES: tuple[ClassSpec, ...] = (
    _spec("BareSoil", "bare_soil", 98.05, weight=2.0, mixers=("soil_dark",)),
    _spec("Buildings", "roof_metal", 30.43, structure="lots",
          mixers=("concrete", "asphalt", "grass")),
    _spec("Concrete/Asphalt", "concrete", 96.24, structure="lots",
          mixers=("asphalt",)),
    _spec("Corn", "corn_mature", 99.37, weight=1.5),
    _spec("Corn?", "corn_mature", 86.77),
    _spec("Corn-EW", "corn_young", 37.01),
    _spec("Corn-NS", "corn_mature", 91.50),
    _spec("Corn-CleanTill", "corn_young", 65.39, weight=1.5),
    _spec("Corn-CleanTill-EW", "corn_young", 69.88, weight=1.5),
    _spec("Corn-CleanTill-NS", "corn_young", 71.64, weight=1.5),
    _spec("Corn-CleanTill-NS-Irrigated", "corn_mature", 60.91),
    _spec("Corn-CleanTilled-NS?", "corn_young", 70.27),
    _spec("Corn-MinTill", "corn_stressed", 79.71),
    _spec("Corn-MinTill-EW", "corn_stressed", 65.51),
    _spec("Corn-MinTill-NS", "corn_stressed", 69.57),
    _spec("Corn-NoTill", "corn_mature", 87.20, weight=1.5),
    _spec("Corn-NoTill-EW", "corn_young", 91.25),
    _spec("Corn-NoTill-NS", "corn_young", 44.64),
    _spec("Fescue", "grass", 42.37, mixers=("pasture", "bare_soil")),
    _spec("Grass", "grass", 70.15, weight=1.5),
    _spec("Grass/Trees", "grass", 51.30, mixers=("trees", "bare_soil")),
    _spec("Grass/Pasture-mowed", "pasture", 79.87),
    _spec("Grass/Pasture", "pasture", 66.40, mixers=("grass", "bare_soil")),
    _spec("Grass-runway", "gravel_runway", 60.53, structure="runway",
          mixers=("grass",)),
    _spec("Hay", "hay", 62.13, weight=1.5),
    _spec("Hay?", "hay", 61.98),
    _spec("Hay-Alfalfa", "alfalfa", 83.35, mixers=("hay",)),
    _spec("Lake", "lake", 83.41, structure="lake", mixers=("soil_dark",)),
    _spec("NotCropped", "bare_soil", 99.20, mixers=("grass",)),
    _spec("Oats", "oats", 78.04),
    _spec("Road", "asphalt", 86.60, structure="road",
          mixers=("gravel_runway",)),
    _spec("Woods", "trees", 88.89, structure="woods", weight=3.0),
)


@dataclass(frozen=True)
class SceneParams:
    """Knobs of the synthetic scene generator."""

    lines: int = 128
    samples: int = 128
    band_count: int = 224
    seed: int = 2006
    noise: NoiseModel = field(default_factory=NoiseModel)
    purity_jitter: float = 0.12      # per-pixel abundance sigma
    illumination_variation: float = 0.12
    min_field: int = 8               # BSP stops below this field size
    drop_bad_bands: bool = True      # discard water-absorption channels
    classes: tuple[ClassSpec, ...] = INDIAN_PINES_CLASSES

    def __post_init__(self) -> None:
        if self.lines < 4 or self.samples < 4:
            raise ShapeError("scene must be at least 4x4 pixels")
        if self.band_count < 8:
            raise ShapeError("scene needs at least 8 spectral bands")
        if not self.classes:
            raise ValidationError("at least one class is required")


@dataclass(frozen=True)
class SyntheticScene:
    """A generated scene: the cube plus everything tests need to verify it.

    Attributes
    ----------
    cube:
        The noisy radiance cube (BIP, float32 like the GPU path expects).
    ground_truth:
        (lines, samples) int array of 1-based class labels (every pixel is
        labeled; the paper's Fig. 5 ground truth is also dense).
    class_names:
        Names indexed by ``label - 1``.
    abundance:
        (lines, samples) float array — the true per-pixel abundance of the
        owning endmember (useful for analyses and tests of the mixing
        model).
    library / bands / params:
        The generating configuration.
    """

    cube: HyperCube
    ground_truth: np.ndarray
    class_names: tuple[str, ...]
    abundance: np.ndarray
    library: SpectralLibrary
    bands: BandSet
    params: SceneParams

    @property
    def n_classes(self) -> int:
        return len(self.class_names)

    def class_spec(self, label: int) -> ClassSpec:
        """The :class:`ClassSpec` for a 1-based label."""
        return self.params.classes[label - 1]


# --------------------------------------------------------------------------
# Class-map construction
# --------------------------------------------------------------------------

def _bsp_fields(lines: int, samples: int, min_field: int,
                rng: np.random.Generator) -> list[tuple[int, int, int, int]]:
    """Recursively split the image into agricultural-field rectangles.

    Returns a list of (row0, row1, col0, col1) half-open boxes covering
    the image exactly.
    """
    fields: list[tuple[int, int, int, int]] = []
    stack = [(0, lines, 0, samples)]
    while stack:
        r0, r1, c0, c1 = stack.pop()
        h, w = r1 - r0, c1 - c0
        splittable_h = h >= 2 * min_field
        splittable_w = w >= 2 * min_field
        if not splittable_h and not splittable_w:
            fields.append((r0, r1, c0, c1))
            continue
        # Keep splitting with high probability while fields are large;
        # fields near the minimum survive intact more often.
        area_ratio = (h * w) / float(max(min_field, 1) ** 2)
        if rng.random() > min(0.95, 0.30 + 0.10 * np.log2(max(area_ratio, 1.0))):
            fields.append((r0, r1, c0, c1))
            continue
        if splittable_h and (not splittable_w or
                             (h >= w or rng.random() < 0.5)):
            cut = int(rng.integers(r0 + min_field, r1 - min_field + 1))
            stack.append((r0, cut, c0, c1))
            stack.append((cut, r1, c0, c1))
        else:
            cut = int(rng.integers(c0 + min_field, c1 - min_field + 1))
            stack.append((r0, r1, c0, cut))
            stack.append((r0, r1, cut, c1))
    return fields


def _build_class_map(params: SceneParams,
                     rng: np.random.Generator) -> np.ndarray:
    """Assign a 1-based class label to every pixel."""
    lines, samples = params.lines, params.samples
    classes = params.classes
    labels = np.zeros((lines, samples), dtype=np.int32)

    field_classes = [i for i, c in enumerate(classes) if c.structure is None]
    weights = np.array([classes[i].weight for i in field_classes], float)
    weights /= weights.sum()

    # 1. ordinary fields.  The first pass deals one field to each class in
    # shuffled order so every class appears whenever there are enough
    # fields (the paper's ground truth covers all 30+ classes); remaining
    # fields are drawn by area weight.
    fields = _bsp_fields(lines, samples, params.min_field, rng)
    rng.shuffle(fields)
    coverage = list(field_classes)
    rng.shuffle(coverage)
    for k, (r0, r1, c0, c1) in enumerate(fields):
        if k < len(coverage):
            pick = coverage[k]
        else:
            pick = int(rng.choice(field_classes, p=weights))
        labels[r0:r1, c0:c1] = pick + 1

    # 2. structured overlays (later overlays win, as built things do)
    rr, cc = np.mgrid[0:lines, 0:samples]
    for i, spec in enumerate(classes):
        if spec.structure is None:
            continue
        if spec.structure == "woods":
            # A forested corner: everything beyond a wavy diagonal frontier.
            frontier = 0.72 + 0.06 * np.sin(cc / max(samples / 6.0, 1.0))
            mask = (rr / max(lines - 1, 1) + cc / max(samples - 1, 1) * 0.4) \
                > frontier * 1.15
        elif spec.structure == "lake":
            cy, cx = lines * 0.22, samples * 0.78
            ry, rx = max(lines * 0.08, 2.0), max(samples * 0.10, 2.0)
            mask = ((rr - cy) / ry) ** 2 + ((cc - cx) / rx) ** 2 <= 1.0
        elif spec.structure == "road":
            # A straight road crossing the scene diagonally, ~2 px wide.
            d = np.abs((cc - 0.15 * samples) - 0.9 * rr) / np.hypot(1.0, 0.9)
            mask = d <= max(1.0, min(lines, samples) / 96.0)
        elif spec.structure == "runway":
            r_mid = int(lines * 0.55)
            half = max(1, lines // 80)
            mask = (np.abs(rr - r_mid) <= half) & (cc > samples * 0.3) \
                & (cc < samples * 0.85)
        elif spec.structure == "lots":
            # A few small rectangular lots near the road corridor.
            mask = np.zeros_like(labels, dtype=bool)
            n_lots = max(2, (lines * samples) // 4096)
            for _ in range(n_lots):
                lr = int(rng.integers(0, max(lines - 6, 1)))
                lc = int(rng.integers(0, max(samples - 6, 1)))
                hh = int(rng.integers(3, max(min(10, lines - lr), 4)))
                ww = int(rng.integers(3, max(min(10, samples - lc), 4)))
                mask[lr:lr + hh, lc:lc + ww] = True
        else:  # pragma: no cover - guarded by ClassSpec construction
            raise ValidationError(f"unknown structure {spec.structure!r}")
        labels[mask] = i + 1

    assert labels.min() >= 1, "class map must label every pixel"
    return labels


# --------------------------------------------------------------------------
# Spectral synthesis
# --------------------------------------------------------------------------

def _smooth_field(shape: tuple[int, int], rng: np.random.Generator,
                  scale: float) -> np.ndarray:
    """A smooth multiplicative gain field in [1-scale, 1+scale].

    Built from a coarse random grid upsampled bilinearly — cheap, and
    smooth enough to mimic illumination/topography trends.
    """
    h, w = shape
    gh, gw = max(2, h // 32 + 2), max(2, w // 32 + 2)
    coarse = rng.uniform(-1.0, 1.0, size=(gh, gw))
    ry = np.linspace(0, gh - 1, h)
    rx = np.linspace(0, gw - 1, w)
    y0 = np.clip(ry.astype(int), 0, gh - 2)
    x0 = np.clip(rx.astype(int), 0, gw - 2)
    fy = (ry - y0)[:, None]
    fx = (rx - x0)[None, :]
    c00 = coarse[y0][:, x0]
    c01 = coarse[y0][:, x0 + 1]
    c10 = coarse[y0 + 1][:, x0]
    c11 = coarse[y0 + 1][:, x0 + 1]
    smooth = (c00 * (1 - fy) * (1 - fx) + c01 * (1 - fy) * fx
              + c10 * fy * (1 - fx) + c11 * fy * fx)
    return 1.0 + scale * smooth


def generate_scene(params: SceneParams) -> SyntheticScene:
    """Generate a full synthetic scene from the given parameters.

    Deterministic for a given ``params.seed``.
    """
    rng = np.random.default_rng(params.seed)
    bands = aviris_bands(params.band_count)
    library = build_default_library(bands)

    labels = _build_class_map(params, rng)
    lines, samples = labels.shape
    n = bands.count

    cube = np.empty((lines, samples, n), dtype=np.float64)
    abundance = np.empty((lines, samples), dtype=np.float64)

    # Each class perturbs its owning material with a small smooth,
    # class-unique spectral signature (amplitude ~3%).  Physically this
    # stands for the subtle canopy/tillage/moisture differences that
    # separate e.g. the Corn-CleanTill variants in the real scene: real
    # classes sharing a dominant material are *almost* but not exactly
    # identical spectrally, which is what makes them hard-but-not-
    # impossible for abundance-based classification.
    wl01 = (bands.centers_nm - bands.centers_nm[0]) \
        / max(bands.centers_nm[-1] - bands.centers_nm[0], 1.0)

    def class_signature(index: int) -> np.ndarray:
        phase = 2.399963 * index          # golden-angle spacing
        return 1.0 + 0.10 * (np.sin(2 * np.pi * (2.0 * wl01 + phase))
                             + 0.5 * np.sin(2 * np.pi * (5.0 * wl01
                                                         - 1.7 * phase)))

    for i, spec in enumerate(params.classes):
        mask = labels == i + 1
        count = int(mask.sum())
        if count == 0:
            continue
        own = library.get(spec.material) * class_signature(i)  # (N,)
        mixer_spectra = np.stack([library.get(m) for m in spec.mixers])
        # Per-pixel abundance of the owning endmember (see
        # _purity_from_accuracy for the calibration argument).
        a = rng.normal(spec.purity, params.purity_jitter, size=count)
        a = np.clip(a, 0.02, 0.98)
        # Every class mixes with ONE fixed background — the average of
        # its mixer materials — so each class spans a 2-D (endmember,
        # background) subspace.  Keeping the background fixed per class
        # (rather than drawn per pixel) is what lets a c-member endmember
        # extraction cover all classes: per-pixel competitor choice would
        # multiply the subspace count by the number of mixers.
        background = mixer_spectra.mean(axis=0)                 # (N,)
        cube[mask] = a[:, None] * own[None, :] \
            + (1.0 - a)[:, None] * background[None, :]
        abundance[mask] = a

    gain = _smooth_field((lines, samples), rng,
                         params.illumination_variation)
    cube *= gain[:, :, None]
    cube = params.noise.apply(cube, bands, rng)

    if params.drop_bad_bands:
        good = bands.good_indices()
        cube = cube[:, :, good]
        library = library.subset_bands(good)
        bands = library.bands

    hyper = HyperCube(cube.astype(np.float32), interleave=Interleave.BIP,
                      wavelengths_nm=bands.centers_nm,
                      name=f"synthetic-indian-pines-{params.seed}")
    names = tuple(c.name for c in params.classes)
    return SyntheticScene(cube=hyper, ground_truth=labels,
                          class_names=names, abundance=abundance,
                          library=library, bands=bands, params=params)


def generate_indian_pines_like(lines: int = 128, samples: int = 128, *,
                               band_count: int = 224, seed: int = 2006,
                               **kwargs) -> SyntheticScene:
    """Convenience wrapper: the default Indian-Pines-like configuration.

    The real scene is 614 x 2166 x 220 (~500 MB); the default here is a
    spatial reduction with the full spectral dimension, suitable for a
    single-core machine.  Pass larger ``lines``/``samples`` to approach
    the paper's sizes.
    """
    return generate_scene(SceneParams(lines=lines, samples=samples,
                                      band_count=band_count, seed=seed,
                                      **kwargs))
