"""Minimal ENVI-style I/O for hyperspectral cubes.

Real AVIRIS products ship as a raw binary file plus an ASCII ``.hdr``
describing shape, interleave, data type and wavelengths.  This module
implements the subset of the format the library needs: enough to round-trip
any :class:`~repro.hsi.cube.HyperCube` and to read headers produced by
common tooling (ENVI, GDAL, Spectral Python).

Only local files are touched — no network, matching the offline
environment this reproduction runs in.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.errors import EnviFormatError
from repro.hsi.cube import HyperCube, Interleave

#: ENVI "data type" codes <-> NumPy dtypes (the commonly used subset).
_ENVI_DTYPES: dict[int, np.dtype] = {
    1: np.dtype(np.uint8),
    2: np.dtype(np.int16),
    3: np.dtype(np.int32),
    4: np.dtype(np.float32),
    5: np.dtype(np.float64),
    12: np.dtype(np.uint16),
    13: np.dtype(np.uint32),
}
_DTYPE_CODES = {v: k for k, v in _ENVI_DTYPES.items()}

#: Axis order of the raw file for each interleave, as (slowest..fastest),
#: in terms of the (lines, samples, bands) triple.
_FILE_SHAPE = {
    Interleave.BIP: lambda l, s, b: (l, s, b),
    Interleave.BIL: lambda l, s, b: (l, b, s),
    Interleave.BSQ: lambda l, s, b: (b, l, s),
}


@dataclass(frozen=True)
class EnviHeader:
    """Parsed contents of an ENVI ``.hdr`` file (supported subset)."""

    lines: int
    samples: int
    bands: int
    interleave: Interleave
    dtype: np.dtype
    byte_order: int = 0  # 0 = little endian, 1 = big endian
    wavelengths_nm: np.ndarray | None = None
    description: str = ""

    def file_shape(self) -> tuple[int, int, int]:
        """Shape of the raw array as stored on disk."""
        return _FILE_SHAPE[self.interleave](self.lines, self.samples, self.bands)


def _tokenize_header(text: str) -> dict[str, str]:
    """Parse ``key = value`` lines, honouring ``{...}`` multi-line blocks."""
    if not text.lstrip().lower().startswith("envi"):
        raise EnviFormatError("not an ENVI header (missing 'ENVI' magic)")
    body = text.lstrip()[4:]
    fields: dict[str, str] = {}
    i = 0
    while i < len(body):
        eq = body.find("=", i)
        if eq < 0:
            break
        key = body[i:eq].strip().lower()
        j = eq + 1
        while j < len(body) and body[j] in " \t":
            j += 1
        if j < len(body) and body[j] == "{":
            end = body.find("}", j)
            if end < 0:
                raise EnviFormatError(f"unterminated '{{' in field {key!r}")
            value = body[j + 1:end]
            i = end + 1
        else:
            end = body.find("\n", j)
            end = len(body) if end < 0 else end
            value = body[j:end]
            i = end + 1
        if key:
            fields[key] = value.strip()
    return fields


def parse_header(text: str) -> EnviHeader:
    """Parse header text into an :class:`EnviHeader`."""
    fields = _tokenize_header(text)
    try:
        lines = int(fields["lines"])
        samples = int(fields["samples"])
        bands = int(fields["bands"])
    except KeyError as missing:
        raise EnviFormatError(f"header missing required field {missing}") from None
    except ValueError as bad:
        raise EnviFormatError(f"malformed dimension field: {bad}") from None
    if min(lines, samples, bands) <= 0:
        raise EnviFormatError("dimensions must be positive")

    code = int(fields.get("data type", 4))
    if code not in _ENVI_DTYPES:
        raise EnviFormatError(f"unsupported ENVI data type code {code}")
    interleave = Interleave.parse(fields.get("interleave", "bip"))
    byte_order = int(fields.get("byte order", 0))
    if byte_order not in (0, 1):
        raise EnviFormatError(f"byte order must be 0 or 1, got {byte_order}")

    wavelengths = None
    if "wavelength" in fields:
        try:
            wavelengths = np.array(
                [float(tok) for tok in fields["wavelength"].replace("\n", " ")
                 .split(",") if tok.strip()], dtype=np.float64)
        except ValueError as bad:
            raise EnviFormatError(f"malformed wavelength list: {bad}") from None
        if wavelengths.size != bands:
            raise EnviFormatError(
                f"{wavelengths.size} wavelengths for {bands} bands")
        units = fields.get("wavelength units", "nanometers").lower()
        if units.startswith("micro"):
            wavelengths = wavelengths * 1000.0
    return EnviHeader(lines=lines, samples=samples, bands=bands,
                      interleave=interleave, dtype=_ENVI_DTYPES[code],
                      byte_order=byte_order, wavelengths_nm=wavelengths,
                      description=fields.get("description", ""))


def format_header(header: EnviHeader) -> str:
    """Render an :class:`EnviHeader` back to ``.hdr`` text."""
    if header.dtype not in _DTYPE_CODES:
        raise EnviFormatError(f"dtype {header.dtype} has no ENVI code")
    out = [
        "ENVI",
        f"description = {{{header.description or 'repro hyperspectral cube'}}}",
        f"samples = {header.samples}",
        f"lines = {header.lines}",
        f"bands = {header.bands}",
        "header offset = 0",
        "file type = ENVI Standard",
        f"data type = {_DTYPE_CODES[header.dtype]}",
        f"interleave = {header.interleave.value}",
        f"byte order = {header.byte_order}",
    ]
    if header.wavelengths_nm is not None:
        wl = ", ".join(f"{w:.2f}" for w in header.wavelengths_nm)
        out.append("wavelength units = nanometers")
        out.append(f"wavelength = {{{wl}}}")
    return "\n".join(out) + "\n"


def write_cube(cube: HyperCube, path: str) -> tuple[str, str]:
    """Write a cube as ``path`` (raw binary) + ``path + '.hdr'``.

    Returns the (data_path, header_path) pair.
    """
    data = cube.as_layout(cube.interleave, contiguous=True)
    header = EnviHeader(lines=cube.lines, samples=cube.samples,
                        bands=cube.bands, interleave=cube.interleave,
                        dtype=data.dtype, byte_order=0,
                        wavelengths_nm=cube.wavelengths_nm,
                        description=cube.name)
    hdr_path = path + ".hdr"
    with open(hdr_path, "w", encoding="ascii") as fh:
        fh.write(format_header(header))
    data.astype(data.dtype.newbyteorder("<"), copy=False).tofile(path)
    return path, hdr_path


def read_cube(path: str, *, mmap: bool = False) -> HyperCube:
    """Read a cube written by :func:`write_cube` (or compatible tools).

    Parameters
    ----------
    path:
        The raw binary file; its header is found at ``path + '.hdr'`` or
        next to it with the extension replaced.
    mmap:
        Map the file instead of loading it — the cube's data becomes a
        read-only view backed by the page cache, so scenes larger than
        RAM can be processed chunk by chunk (pair naturally with
        :func:`repro.hsi.chunking.plan_chunks`, whose chunk extraction
        is a view and therefore touches only the mapped pages it needs).
    """
    hdr_path = path + ".hdr" if os.path.exists(path + ".hdr") else \
        os.path.splitext(path)[0] + ".hdr"
    if not os.path.exists(hdr_path):
        raise EnviFormatError(f"no header found for {path!r}")
    with open(hdr_path, "r", encoding="ascii", errors="replace") as fh:
        header = parse_header(fh.read())
    dtype = header.dtype.newbyteorder("<" if header.byte_order == 0 else ">")
    expected = header.lines * header.samples * header.bands
    if mmap:
        raw = np.memmap(path, dtype=dtype, mode="r")
    else:
        raw = np.fromfile(path, dtype=dtype)
    if raw.size != expected:
        raise EnviFormatError(
            f"file has {raw.size} elements, header implies {expected}")
    data = raw.reshape(header.file_shape())
    if not mmap:
        data = data.astype(header.dtype, copy=False)
    return HyperCube(data, interleave=header.interleave,
                     wavelengths_nm=header.wavelengths_nm,
                     name=header.description or os.path.basename(path))
