"""Spatial chunk planning for cubes larger than device memory.

Paper §3.2: *"In case of a target hyperspectral image that exceeds the
capacity of the GPU memory, we split it into multiple chunks made up of
entire pixel vectors, i.e. every chunk incorporates all the spectral
information on a localized spatial region."*

The subtlety the paper glosses over — and that any correct implementation
must handle — is that the morphological operations look at a
structuring-element neighbourhood around every pixel, so chunks must carry
a **halo** of ``se_radius`` pixels on each interior edge.  The planner
here produces chunks whose *core* regions tile the image exactly and whose
halo-extended regions provide the context erosion/dilation needs, making
chunked execution bit-identical to whole-image execution (a property test
enforces this).

Chunks are split along the *lines* axis only, preserving "entire pixel
vectors" and full image width per chunk, exactly as in Fig. 3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import StreamError
from repro.hsi.cube import HyperCube


@dataclass(frozen=True)
class Chunk:
    """One planned spatial chunk.

    The chunk's *extended* region is ``[ext_start, ext_stop)`` in image
    lines (core plus halos); the *core* region ``[core_start, core_stop)``
    is the part whose results are valid and get written to the output.
    ``core_offset`` locates the core inside the extended region.
    """

    index: int
    ext_start: int
    ext_stop: int
    core_start: int
    core_stop: int

    def __post_init__(self) -> None:
        if not (self.ext_start <= self.core_start < self.core_stop
                <= self.ext_stop):
            raise StreamError(
                f"inconsistent chunk geometry: ext=[{self.ext_start},"
                f"{self.ext_stop}) core=[{self.core_start},{self.core_stop})")

    @property
    def ext_lines(self) -> int:
        """Number of lines in the extended (halo-included) region."""
        return self.ext_stop - self.ext_start

    @property
    def core_lines(self) -> int:
        """Number of lines this chunk is responsible for in the output."""
        return self.core_stop - self.core_start

    @property
    def core_offset(self) -> int:
        """First core line, relative to the extended region's first line."""
        return self.core_start - self.ext_start

    @property
    def halo_margins(self) -> tuple[int, int]:
        """(top, bottom) halo heights of the extended region, in lines.

        These rows exist only as stencil context — a neighbouring chunk
        owns them and the stitcher discards them — so a backend that
        :attr:`~repro.backends.MorphologicalBackend.accepts_halo_margins`
        may skip work confined to them (cross-chunk shift-reuse)."""
        return (self.core_start - self.ext_start,
                self.ext_stop - self.core_stop)

    def extract(self, bip: np.ndarray) -> np.ndarray:
        """Slice the extended region out of a (lines, samples, bands) array
        (view, no copy)."""
        return bip[self.ext_start:self.ext_stop]

    def core_of(self, chunk_result: np.ndarray) -> np.ndarray:
        """Slice a per-chunk result (first axis = extended lines) down to
        the core region."""
        return chunk_result[self.core_offset:self.core_offset + self.core_lines]


@dataclass(frozen=True)
class ChunkPlan:
    """An ordered set of chunks covering an image exactly."""

    lines: int
    samples: int
    bands: int
    halo: int
    chunks: tuple[Chunk, ...]

    def __len__(self) -> int:
        return len(self.chunks)

    def __iter__(self):
        return iter(self.chunks)

    def validate(self) -> None:
        """Check exact coverage: cores tile [0, lines) without gaps or
        overlap, and every halo stays inside the image."""
        cursor = 0
        for chunk in self.chunks:
            if chunk.core_start != cursor:
                raise StreamError(
                    f"chunk {chunk.index} core starts at {chunk.core_start}, "
                    f"expected {cursor}")
            if chunk.ext_start < 0 or chunk.ext_stop > self.lines:
                raise StreamError(f"chunk {chunk.index} halo exceeds image")
            cursor = chunk.core_stop
        if cursor != self.lines:
            raise StreamError(f"chunks cover {cursor} of {self.lines} lines")

    def max_ext_lines(self) -> int:
        """Largest extended-chunk height — sizes the device allocation."""
        return max(c.ext_lines for c in self.chunks)


def plan_chunks_by_lines(lines: int, samples: int, bands: int, *,
                         max_ext_lines: int, halo: int) -> ChunkPlan:
    """Split an image by a direct cap on *extended* chunk height.

    Used by executors whose per-line device footprint is not simply
    ``samples * bands * itemsize`` (the GPU path holds several texture
    stacks per chunk); they compute the affordable extended height
    themselves and delegate the geometry here.
    """
    if halo < 0:
        raise StreamError(f"halo must be >= 0, got {halo}")
    if max_ext_lines >= lines:
        chunks = (Chunk(0, 0, lines, 0, lines),)
        plan = ChunkPlan(lines, samples, bands, halo, chunks)
        plan.validate()
        return plan
    core_lines = max_ext_lines - 2 * halo
    if core_lines < 1:
        raise StreamError(
            f"max_ext_lines={max_ext_lines} cannot fit one core line plus "
            f"halo={halo} on both sides")
    chunks: list[Chunk] = []
    start = 0
    index = 0
    while start < lines:
        core_stop = min(start + core_lines, lines)
        ext_start = max(start - halo, 0)
        ext_stop = min(core_stop + halo, lines)
        chunks.append(Chunk(index, ext_start, ext_stop, start, core_stop))
        start = core_stop
        index += 1
    plan = ChunkPlan(lines, samples, bands, halo, tuple(chunks))
    plan.validate()
    return plan


def plan_chunks(cube: HyperCube, *, max_chunk_bytes: int,
                halo: int, bytes_per_value: int | None = None) -> ChunkPlan:
    """Split a cube into line-wise chunks that fit a memory budget.

    Parameters
    ----------
    cube:
        The image to split.
    max_chunk_bytes:
        Memory available for one chunk's *input stream* on the device
        (the VRAM budget the executor grants to input textures).
    halo:
        Structuring-element radius; each chunk is extended this many lines
        into its neighbours (clipped at image borders).
    bytes_per_value:
        Defaults to the cube dtype's itemsize; override when the device
        stores values at a different width (the GPU path stores float32
        regardless of source dtype).

    Returns
    -------
    ChunkPlan
        A validated plan.  If the whole image fits, the plan has a single
        chunk with no halo slack.

    Raises
    ------
    StreamError
        If the budget cannot fit even one core line plus its halos.
    """
    if halo < 0:
        raise StreamError(f"halo must be >= 0, got {halo}")
    if max_chunk_bytes <= 0:
        raise StreamError("max_chunk_bytes must be positive")
    item = cube.data.dtype.itemsize if bytes_per_value is None else int(bytes_per_value)
    line_bytes = cube.samples * cube.bands * item
    budget_lines = int(max_chunk_bytes // line_bytes)
    if budget_lines < 2 * halo + 1:
        raise StreamError(
            f"budget of {max_chunk_bytes} bytes fits only {budget_lines} "
            f"lines; need at least {2 * halo + 1} (halo={halo}) — "
            f"increase the budget or reduce the halo")
    return plan_chunks_by_lines(cube.lines, cube.samples, cube.bands,
                                max_ext_lines=budget_lines, halo=halo)
