"""Additional scene presets beyond the Indian-Pines-like default.

The generator in :mod:`repro.hsi.synthetic` is fully table-driven; this
module provides two more class tables exercising different regimes of
the AMC algorithm, plus a tiny preset for documentation and tests:

* **urban** — few, spectrally distinct, macroscopically pure classes;
* **coastal** — a water-dominated scene with dark, low-SNR classes and
  heavily mixed shore classes (stresses the SID epsilon handling and
  the endmember denoising; accuracy stays high because the class
  *materials* remain distinct — the Indian Pines difficulty comes from
  near-duplicate materials, not from darkness or mixing alone);
* **minimal** — four classes, useful for doctests and quick examples.

Each preset is just ``generate_scene`` with a different
:class:`~repro.hsi.synthetic.ClassSpec` table — user code can build its
own tables the same way.
"""

from __future__ import annotations

from repro.hsi.synthetic import (
    ClassSpec,
    SceneParams,
    SyntheticScene,
    generate_scene,
)


def _spec(name: str, material: str, purity: float, *, weight: float = 1.0,
          mixers: tuple[str, ...] = ("bare_soil",),
          structure: str | None = None) -> ClassSpec:
    return ClassSpec(name=name, material=material, mixers=mixers,
                     purity=purity, weight=weight, paper_accuracy=0.0,
                     structure=structure)


#: Pure, well-separated classes: the regime where AMC shines.
URBAN_CLASSES: tuple[ClassSpec, ...] = (
    _spec("Concrete", "concrete", 0.92, weight=2.0, mixers=("asphalt",)),
    _spec("Asphalt", "asphalt", 0.90, weight=2.0, mixers=("concrete",)),
    _spec("MetalRoof", "roof_metal", 0.88, mixers=("concrete",),
          structure="lots"),
    _spec("Park", "grass", 0.85, weight=1.5, mixers=("trees",)),
    _spec("Trees", "trees", 0.90, mixers=("grass",), structure="woods"),
    _spec("BareLot", "bare_soil", 0.92, mixers=("gravel_runway",)),
    _spec("River", "lake", 0.90, structure="lake", mixers=("soil_dark",)),
    _spec("Road", "asphalt", 0.85, structure="road",
          mixers=("gravel_runway",)),
)

#: Dark, low-SNR water classes mixed with a bright shore.
COASTAL_CLASSES: tuple[ClassSpec, ...] = (
    _spec("DeepWater", "lake", 0.95, weight=4.0, mixers=("soil_dark",)),
    _spec("ShallowWater", "lake", 0.52, weight=2.0,
          mixers=("bare_soil",)),
    _spec("Sand", "gravel_runway", 0.90, weight=1.5,
          mixers=("bare_soil",)),
    _spec("Marsh", "pasture", 0.48, mixers=("lake", "soil_dark")),
    _spec("DuneGrass", "grass", 0.55, mixers=("gravel_runway",)),
    _spec("Jetty", "concrete", 0.85, structure="road",
          mixers=("lake",)),
)

#: Four classes for docs and quick tests.
MINIMAL_CLASSES: tuple[ClassSpec, ...] = (
    _spec("Soil", "bare_soil", 0.92, weight=2.0, mixers=("soil_dark",)),
    _spec("Crop", "corn_mature", 0.75, weight=2.0),
    _spec("Forest", "trees", 0.90, structure="woods"),
    _spec("Water", "lake", 0.90, structure="lake", mixers=("soil_dark",)),
)


def generate_urban_scene(lines: int = 96, samples: int = 96, *,
                         band_count: int = 128, seed: int = 11,
                         **kwargs) -> SyntheticScene:
    """An 8-class urban scene with high-purity classes."""
    return generate_scene(SceneParams(lines=lines, samples=samples,
                                      band_count=band_count, seed=seed,
                                      classes=URBAN_CLASSES, **kwargs))


def generate_coastal_scene(lines: int = 96, samples: int = 96, *,
                           band_count: int = 128, seed: int = 12,
                           **kwargs) -> SyntheticScene:
    """A water-dominated 6-class scene (dark-pixel stress test)."""
    return generate_scene(SceneParams(lines=lines, samples=samples,
                                      band_count=band_count, seed=seed,
                                      classes=COASTAL_CLASSES, **kwargs))


def generate_minimal_scene(lines: int = 48, samples: int = 48, *,
                           band_count: int = 32, seed: int = 13,
                           **kwargs) -> SyntheticScene:
    """A 4-class scene small enough for doctests and tutorials."""
    return generate_scene(SceneParams(lines=lines, samples=samples,
                                      band_count=band_count, seed=seed,
                                      classes=MINIMAL_CLASSES,
                                      min_field=8, **kwargs))
