"""AVIRIS-like spectral band metadata.

NASA/JPL's AVIRIS sensor covers 0.4-2.5 um with 224 channels at a nominal
10 nm spectral resolution (paper §1, ref. [4]).  In practice a handful of
channels fall inside strong atmospheric water-vapour absorption windows
(around 1.4 um and 1.9 um) and carry essentially no surface signal; most
published Indian Pines work drops them, which is why the paper's scene has
216-220 usable bands out of 224.

This module provides that metadata so the synthetic scene generator and
the examples can behave like code written against the real sensor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from repro.errors import ValidationError

#: Full AVIRIS channel count.
AVIRIS_BAND_COUNT: int = 224

#: Sensor coverage in nanometres.
AVIRIS_RANGE_NM: tuple[float, float] = (400.0, 2500.0)

#: Water-vapour absorption windows (nm) whose channels are conventionally
#: discarded: around 1.4 um and 1.9 um, plus the noisy long-wave tail.
WATER_ABSORPTION_WINDOWS_NM: tuple[tuple[float, float], ...] = (
    (1350.0, 1420.0),
    (1800.0, 1950.0),
    (2480.0, 2500.0),
)


@dataclass(frozen=True)
class BandSet:
    """Wavelength table for a sensor configuration.

    Attributes
    ----------
    centers_nm:
        Band-centre wavelengths, ascending, in nanometres.
    fwhm_nm:
        Full width at half maximum of each channel's response.
    good:
        Boolean mask, ``False`` for channels inside water-absorption
        windows.
    """

    centers_nm: np.ndarray
    fwhm_nm: np.ndarray
    good: np.ndarray

    def __post_init__(self) -> None:
        centers = np.asarray(self.centers_nm, dtype=np.float64)
        fwhm = np.asarray(self.fwhm_nm, dtype=np.float64)
        good = np.asarray(self.good, dtype=bool)
        if not (centers.shape == fwhm.shape == good.shape) or centers.ndim != 1:
            raise ValidationError("centers_nm, fwhm_nm and good must be 1-D and aligned")
        if centers.size >= 2 and not np.all(np.diff(centers) > 0):
            raise ValidationError("band centres must be strictly ascending")
        object.__setattr__(self, "centers_nm", centers)
        object.__setattr__(self, "fwhm_nm", fwhm)
        object.__setattr__(self, "good", good)

    @property
    def count(self) -> int:
        """Total number of channels."""
        return int(self.centers_nm.size)

    @property
    def good_count(self) -> int:
        """Number of channels outside absorption windows."""
        return int(self.good.sum())

    def good_indices(self) -> np.ndarray:
        """Indices of usable channels, ascending."""
        return np.flatnonzero(self.good)

    def subset(self, indices: np.ndarray) -> "BandSet":
        """Band set restricted to the given channel indices."""
        idx = np.asarray(indices, dtype=np.intp)
        return BandSet(self.centers_nm[idx], self.fwhm_nm[idx], self.good[idx])

    def nearest(self, wavelength_nm: float) -> int:
        """Index of the channel closest to a wavelength."""
        return int(np.argmin(np.abs(self.centers_nm - wavelength_nm)))


def aviris_bands(count: int = AVIRIS_BAND_COUNT) -> BandSet:
    """Build an AVIRIS-like :class:`BandSet`.

    Parameters
    ----------
    count:
        Number of channels spread uniformly over 0.4-2.5 um.  224 gives the
        genuine AVIRIS grid (~9.4 nm spacing); smaller counts produce a
        coarser sensor useful for fast tests while preserving the
        absorption-window structure.
    """
    if count < 2:
        raise ValidationError(f"a sensor needs at least 2 bands, got {count}")
    lo, hi = AVIRIS_RANGE_NM
    centers = np.linspace(lo, hi, count)
    spacing = (hi - lo) / (count - 1)
    fwhm = np.full(count, spacing * 1.05)
    good = np.ones(count, dtype=bool)
    for wlo, whi in WATER_ABSORPTION_WINDOWS_NM:
        good &= ~((centers >= wlo) & (centers <= whi))
    return BandSet(centers, fwhm, good)
