"""Synthetic spectral library.

The real experiments use field/lab reference spectra implicit in the
AVIRIS Indian Pines scene.  Offline we synthesize a spectral library whose
members have the gross features of the corresponding materials:

* **Vegetation** — chlorophyll absorption wells in the visible (~450 nm
  and ~670 nm), a sharp red edge near 700 nm, a high NIR plateau and leaf
  water absorption dips at ~970/1200/1450/1940 nm.  Crop variants differ
  in chlorophyll depth, red-edge position and water content, which is what
  distinguishes corn/grass/hay/oats spectra in practice.
* **Soil** — a smooth continuum rising with wavelength plus clay-mineral
  absorption near 2200 nm.
* **Man-made** (concrete, asphalt, roofs) — flat continua at different
  albedos with weak features.
* **Water** — low reflectance decaying rapidly through the NIR.

Every spectrum is built as ``continuum * prod(1 - depth_i *
gauss(center_i, width_i))`` evaluated on an arbitrary
:class:`~repro.hsi.bands.BandSet`, so the same library definition works
for the full 224-channel sensor and for the reduced sensors used in fast
tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import MaterialNotFoundError, ValidationError
from repro.hsi.bands import BandSet


@dataclass(frozen=True)
class AbsorptionFeature:
    """A Gaussian absorption well multiplied into a continuum."""

    center_nm: float
    width_nm: float
    depth: float  # in [0, 1); fraction of the continuum removed at centre

    def transmission(self, wavelengths_nm: np.ndarray) -> np.ndarray:
        """1 - depth * gaussian, evaluated per wavelength."""
        if not 0.0 <= self.depth < 1.0:
            raise ValidationError(f"depth must be in [0, 1), got {self.depth}")
        g = np.exp(-0.5 * ((wavelengths_nm - self.center_nm) / self.width_nm) ** 2)
        return 1.0 - self.depth * g


@dataclass(frozen=True)
class MaterialSpec:
    """Recipe for one library spectrum.

    ``continuum_nodes`` is a sparse list of (wavelength_nm, reflectance)
    control points; the continuum is a monotone-friendly piecewise-linear
    interpolation through them, which keeps synthetic spectra strictly
    positive and smooth at the 10 nm sampling of the sensor.
    """

    name: str
    continuum_nodes: tuple[tuple[float, float], ...]
    features: tuple[AbsorptionFeature, ...] = ()
    red_edge_nm: float | None = None      # sigmoid step for vegetation
    red_edge_rise: float = 0.0            # plateau added above the edge

    def evaluate(self, bands: BandSet) -> np.ndarray:
        """Reflectance spectrum (unit: reflectance in [0, ~1]) on a grid."""
        wl = bands.centers_nm
        nodes = np.asarray(self.continuum_nodes, dtype=np.float64)
        continuum = np.interp(wl, nodes[:, 0], nodes[:, 1])
        if self.red_edge_nm is not None:
            sigm = 1.0 / (1.0 + np.exp(-(wl - self.red_edge_nm) / 15.0))
            continuum = continuum + self.red_edge_rise * sigm
        spectrum = continuum
        for feat in self.features:
            spectrum = spectrum * feat.transmission(wl)
        return np.clip(spectrum, 1e-4, None)


# Leaf/canopy water absorption features shared by all green vegetation.
_VEG_WATER = (
    AbsorptionFeature(970.0, 35.0, 0.12),
    AbsorptionFeature(1200.0, 45.0, 0.18),
    AbsorptionFeature(1450.0, 60.0, 0.55),
    AbsorptionFeature(1940.0, 70.0, 0.65),
)


def _vegetation(name: str, *, chlorophyll: float, water_scale: float,
                nir: float, red_edge_nm: float = 705.0) -> MaterialSpec:
    """Parametric green-vegetation recipe.

    ``chlorophyll`` in [0,1] deepens the visible absorption wells,
    ``water_scale`` scales the SWIR water features, ``nir`` sets the NIR
    plateau height.
    """
    feats = [
        AbsorptionFeature(450.0, 40.0, 0.45 * chlorophyll + 0.2),
        AbsorptionFeature(670.0, 30.0, 0.60 * chlorophyll + 0.2),
    ]
    feats += [AbsorptionFeature(f.center_nm, f.width_nm,
                                min(f.depth * water_scale, 0.95))
              for f in _VEG_WATER]
    nodes = ((400.0, 0.06), (550.0, 0.12), (680.0, 0.06),
             (750.0, 0.08), (1300.0, 0.10), (2500.0, 0.05))
    return MaterialSpec(name, nodes, tuple(feats),
                        red_edge_nm=red_edge_nm, red_edge_rise=nir)


def _soil(name: str, *, albedo: float, clay: float) -> MaterialSpec:
    nodes = ((400.0, 0.08 * albedo), (900.0, 0.30 * albedo),
             (1600.0, 0.42 * albedo), (2500.0, 0.38 * albedo))
    feats = (AbsorptionFeature(2200.0, 60.0, clay),
             AbsorptionFeature(1900.0, 80.0, 0.10))
    return MaterialSpec(name, nodes, feats)


def _flat(name: str, *, albedo: float, tilt: float = 0.0) -> MaterialSpec:
    nodes = ((400.0, albedo * (1 - tilt)), (2500.0, albedo * (1 + tilt)))
    return MaterialSpec(name, nodes)


def _water(name: str) -> MaterialSpec:
    nodes = ((400.0, 0.08), (600.0, 0.06), (750.0, 0.02),
             (900.0, 0.008), (2500.0, 0.003))
    return MaterialSpec(name, nodes)


@dataclass(frozen=True)
class SpectralLibrary:
    """A named collection of reference spectra on a common band grid."""

    bands: BandSet
    names: tuple[str, ...]
    spectra: np.ndarray  # (len(names), bands.count) reflectance
    _index: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        spectra = np.asarray(self.spectra, dtype=np.float64)
        if spectra.shape != (len(self.names), self.bands.count):
            raise ValidationError(
                f"spectra shape {spectra.shape} inconsistent with "
                f"{len(self.names)} names x {self.bands.count} bands")
        if np.any(spectra <= 0):
            raise ValidationError("library spectra must be strictly positive")
        object.__setattr__(self, "spectra", spectra)
        self._index.update({n: i for i, n in enumerate(self.names)})

    def __len__(self) -> int:
        return len(self.names)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def get(self, name: str) -> np.ndarray:
        """Spectrum of a named material (1-D view)."""
        try:
            return self.spectra[self._index[name]]
        except KeyError:
            raise MaterialNotFoundError(f"no material {name!r} in library "
                           f"(have {sorted(self._index)})") from None

    def subset_bands(self, indices: np.ndarray) -> "SpectralLibrary":
        """Library restricted to a subset of channels (e.g. good bands)."""
        idx = np.asarray(indices, dtype=np.intp)
        return SpectralLibrary(self.bands.subset(idx), self.names,
                               self.spectra[:, idx])


#: Recipes for every distinct material used by the Indian-Pines-like scene.
DEFAULT_MATERIALS: tuple[MaterialSpec, ...] = (
    _soil("bare_soil", albedo=1.0, clay=0.25),
    _soil("soil_dark", albedo=0.6, clay=0.15),
    _vegetation("corn_mature", chlorophyll=0.9, water_scale=1.0, nir=0.42),
    _vegetation("corn_young", chlorophyll=0.55, water_scale=0.7, nir=0.30,
                red_edge_nm=700.0),
    _vegetation("corn_stressed", chlorophyll=0.40, water_scale=0.55,
                nir=0.24, red_edge_nm=695.0),
    _vegetation("grass", chlorophyll=0.75, water_scale=0.85, nir=0.36,
                red_edge_nm=708.0),
    _vegetation("pasture", chlorophyll=0.65, water_scale=0.8, nir=0.33),
    _vegetation("trees", chlorophyll=0.95, water_scale=1.1, nir=0.47,
                red_edge_nm=712.0),
    _vegetation("oats", chlorophyll=0.6, water_scale=0.75, nir=0.31,
                red_edge_nm=702.0),
    _vegetation("alfalfa", chlorophyll=0.8, water_scale=0.9, nir=0.38),
    MaterialSpec("hay", ((400.0, 0.12), (700.0, 0.28), (1300.0, 0.45),
                         (2500.0, 0.30)),
                 (AbsorptionFeature(1450.0, 60.0, 0.20),
                  AbsorptionFeature(1940.0, 70.0, 0.25),
                  AbsorptionFeature(2100.0, 70.0, 0.18))),  # dry residue/cellulose
    _flat("concrete", albedo=0.45, tilt=0.1),
    _flat("asphalt", albedo=0.09, tilt=0.25),
    _flat("roof_metal", albedo=0.30, tilt=-0.2),
    _water("lake"),
    _soil("gravel_runway", albedo=0.85, clay=0.08),
)


def build_default_library(bands: BandSet) -> SpectralLibrary:
    """Evaluate :data:`DEFAULT_MATERIALS` on a band grid."""
    names = tuple(m.name for m in DEFAULT_MATERIALS)
    spectra = np.stack([m.evaluate(bands) for m in DEFAULT_MATERIALS])
    return SpectralLibrary(bands, names, spectra)
