"""The hyperspectral image cube container.

An AVIRIS scene is a 3-D volume: *lines* (along-track), *samples*
(across-track) and *bands* (wavelength channels).  Remote-sensing formats
store it in one of three interleaves:

* **BIP** (band-interleaved-by-pixel): ``(lines, samples, bands)`` — the
  pixel vector is contiguous.  This is what the morphological algorithm
  wants, so it is the canonical in-memory layout here.
* **BIL** (band-interleaved-by-line): ``(lines, bands, samples)``.
* **BSQ** (band-sequential): ``(bands, lines, samples)`` — one full image
  per band, the natural layout for the GPU texture stack of paper Fig. 3.

:class:`HyperCube` wraps a NumPy array plus its interleave tag and converts
between layouts with transposes (views where NumPy allows it, explicit
copies only when the caller asks for contiguity — per the HPC guidance of
"use views, not copies").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import BandRangeError, LayoutError, ShapeError


class Interleave(enum.Enum):
    """Storage order of a hyperspectral cube."""

    BIP = "bip"  #: (lines, samples, bands)
    BIL = "bil"  #: (lines, bands, samples)
    BSQ = "bsq"  #: (bands, lines, samples)

    @classmethod
    def parse(cls, value: "Interleave | str") -> "Interleave":
        if isinstance(value, Interleave):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            raise LayoutError(f"unknown interleave {value!r}; "
                              f"expected one of bip/bil/bsq") from None


# Axis permutation that converts FROM the canonical BIP order
# (lines, samples, bands) TO each interleave.
_FROM_BIP_AXES = {
    Interleave.BIP: (0, 1, 2),
    Interleave.BIL: (0, 2, 1),
    Interleave.BSQ: (2, 0, 1),
}
# And the inverse: permutation converting an interleaved array back to BIP.
_TO_BIP_AXES = {
    Interleave.BIP: (0, 1, 2),
    Interleave.BIL: (0, 2, 1),
    Interleave.BSQ: (1, 2, 0),
}


@dataclass(frozen=True)
class HyperCube:
    """A hyperspectral image cube.

    Attributes
    ----------
    data:
        The raw 3-D array in the order declared by ``interleave``.
    interleave:
        How ``data``'s axes map to (lines, samples, bands).
    wavelengths_nm:
        Optional per-band centre wavelengths in nanometres (length =
        ``bands``).
    name:
        Human-readable scene identifier carried through I/O.
    """

    data: np.ndarray
    interleave: Interleave = Interleave.BIP
    wavelengths_nm: np.ndarray | None = None
    name: str = "unnamed"
    _bip_cache: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        data = np.asarray(self.data)
        if data.ndim != 3:
            raise ShapeError(f"a HyperCube is 3-D, got ndim={data.ndim}")
        object.__setattr__(self, "data", data)
        object.__setattr__(self, "interleave", Interleave.parse(self.interleave))
        if self.wavelengths_nm is not None:
            wl = np.asarray(self.wavelengths_nm, dtype=np.float64)
            if wl.ndim != 1 or wl.shape[0] != self.bands:
                raise ShapeError(
                    f"wavelengths_nm must be 1-D of length bands={self.bands}, "
                    f"got shape {wl.shape}")
            object.__setattr__(self, "wavelengths_nm", wl)

    # ----------------------------------------------------------- geometry
    @property
    def lines(self) -> int:
        """Along-track spatial extent (image height)."""
        return self.data.shape[_FROM_BIP_AXES[self.interleave].index(0)]

    @property
    def samples(self) -> int:
        """Across-track spatial extent (image width)."""
        return self.data.shape[_FROM_BIP_AXES[self.interleave].index(1)]

    @property
    def bands(self) -> int:
        """Number of spectral channels."""
        return self.data.shape[_FROM_BIP_AXES[self.interleave].index(2)]

    @property
    def pixel_count(self) -> int:
        """Number of spatial pixels (lines * samples)."""
        return self.lines * self.samples

    @property
    def nbytes(self) -> int:
        """Size of the raw cube in bytes."""
        return int(self.data.nbytes)

    @property
    def size_mb(self) -> float:
        """Size of the raw cube in (decimal) megabytes, as the paper
        reports its image sizes."""
        return self.nbytes / 1e6

    # ------------------------------------------------------------- layout
    def as_bip(self) -> np.ndarray:
        """Return a (lines, samples, bands) view of the cube.

        The result is a view (no copy) whenever the interleave permits;
        conversions from BIL/BSQ return transposed views.  Cached so that
        repeated calls on a frozen cube are free.
        """
        cached = self._bip_cache.get("bip")
        if cached is None:
            cached = np.transpose(self.data, _TO_BIP_AXES[self.interleave])
            self._bip_cache["bip"] = cached
        return cached

    def as_layout(self, interleave: Interleave | str, *,
                  contiguous: bool = False) -> np.ndarray:
        """Return the cube in the requested interleave.

        Parameters
        ----------
        interleave:
            Target layout.
        contiguous:
            When true, force a C-contiguous result (copying if needed) —
            required before handing a chunk to the raw-binary writer or
            the texture uploader.
        """
        target = Interleave.parse(interleave)
        out = np.transpose(self.as_bip(), _FROM_BIP_AXES[target])
        if contiguous:
            out = np.ascontiguousarray(out)
        return out

    def to(self, interleave: Interleave | str) -> "HyperCube":
        """Return a cube whose *storage* uses the given interleave."""
        target = Interleave.parse(interleave)
        return HyperCube(self.as_layout(target, contiguous=True),
                         interleave=target,
                         wavelengths_nm=self.wavelengths_nm,
                         name=self.name)

    # ------------------------------------------------------------- access
    def pixel(self, line: int, sample: int) -> np.ndarray:
        """Return the full spectrum of one pixel as a 1-D view."""
        return self.as_bip()[line, sample, :]

    def band(self, index: int) -> np.ndarray:
        """Return one spectral band as a (lines, samples) view."""
        if not 0 <= index < self.bands:
            raise BandRangeError(f"band {index} out of range [0, {self.bands})")
        return self.as_bip()[:, :, index]

    def band_at_wavelength(self, wavelength_nm: float) -> tuple[int, np.ndarray]:
        """Return (index, image) of the band nearest a wavelength.

        Used by the Figure-5 example to extract the 587 nm band.
        """
        if self.wavelengths_nm is None:
            raise LayoutError("cube carries no wavelength metadata")
        index = int(np.argmin(np.abs(self.wavelengths_nm - wavelength_nm)))
        return index, self.band(index)

    def crop(self, lines: slice | tuple[int, int],
             samples: slice | tuple[int, int]) -> "HyperCube":
        """Spatially crop the cube (view, no copy).

        Accepts slices or (start, stop) tuples.  Used by the scaling
        benchmarks, which — like the paper — test "cropped portions" of
        the full scene.
        """
        lsl = lines if isinstance(lines, slice) else slice(*lines)
        ssl = samples if isinstance(samples, slice) else slice(*samples)
        view = self.as_bip()[lsl, ssl, :]
        if view.size == 0:
            raise ShapeError("crop produced an empty cube")
        return HyperCube(view, interleave=Interleave.BIP,
                         wavelengths_nm=self.wavelengths_nm,
                         name=f"{self.name}[crop]")

    def with_data(self, data: np.ndarray) -> "HyperCube":
        """Return a new cube sharing this cube's metadata with new data
        (same interleave semantics, caller-supplied array)."""
        return HyperCube(data, interleave=Interleave.BIP,
                         wavelengths_nm=self.wavelengths_nm, name=self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"HyperCube({self.name!r}, lines={self.lines}, "
                f"samples={self.samples}, bands={self.bands}, "
                f"interleave={self.interleave.value}, "
                f"dtype={self.data.dtype}, {self.size_mb:.1f} MB)")


def cube_from_bip(array: np.ndarray, *, wavelengths_nm: np.ndarray | None = None,
                  name: str = "unnamed") -> HyperCube:
    """Convenience constructor for the common (lines, samples, bands) case."""
    return HyperCube(array, interleave=Interleave.BIP,
                     wavelengths_nm=wavelengths_nm, name=name)
