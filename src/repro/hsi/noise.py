"""Sensor noise model for synthetic scenes.

Real AVIRIS radiance carries band-dependent noise: the signal-to-noise
ratio peaks in the visible/NIR and collapses inside the water-vapour
absorption windows where almost no photons reach the sensor.  The model
here captures the two effects that matter for the reproduction:

* additive Gaussian noise with a per-band sigma derived from a target SNR
  profile, and
* signal suppression inside absorption windows (the "bad band" channels
  that Indian Pines pipelines discard).

The noise generator is fully deterministic given a seed, which the test
suite relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.hsi.bands import BandSet


@dataclass(frozen=True)
class NoiseModel:
    """Per-band additive noise + absorption-window attenuation.

    Attributes
    ----------
    peak_snr:
        SNR (linear, not dB) at the best band.  AVIRIS-class sensors reach
        several hundred; defaults to 300.
    edge_snr:
        SNR at the extreme ends of the spectral range.
    absorption_transmission:
        Multiplicative signal attenuation applied inside water-absorption
        windows (bad bands).  0.02 means 98% of the signal is lost there.
    """

    peak_snr: float = 300.0
    edge_snr: float = 60.0
    absorption_transmission: float = 0.02

    def __post_init__(self) -> None:
        if self.peak_snr <= 0 or self.edge_snr <= 0:
            raise ValidationError("SNR values must be positive")
        if not 0.0 <= self.absorption_transmission <= 1.0:
            raise ValidationError("absorption_transmission must lie in [0, 1]")

    def snr_profile(self, bands: BandSet) -> np.ndarray:
        """Per-band SNR: a smooth bump peaking near 800 nm."""
        wl = bands.centers_nm
        lo, hi = wl[0], wl[-1]
        # Raised-cosine bump centred at 800 nm, clamped to [edge, peak].
        centre = 800.0
        halfwidth = max(hi - centre, centre - lo)
        shape = 0.5 * (1.0 + np.cos(np.pi * np.clip(
            np.abs(wl - centre) / halfwidth, 0.0, 1.0)))
        return self.edge_snr + (self.peak_snr - self.edge_snr) * shape

    def apply(self, cube: np.ndarray, bands: BandSet,
              rng: np.random.Generator) -> np.ndarray:
        """Attenuate bad bands and add per-band Gaussian noise.

        ``cube`` is an (H, W, N) reflectance/radiance array; returns a new
        array of the same shape and dtype float64, strictly positive.
        """
        cube = np.asarray(cube, dtype=np.float64)
        if cube.ndim != 3 or cube.shape[2] != bands.count:
            raise ValidationError(
                f"cube shape {cube.shape} does not match {bands.count} bands")
        out = cube.copy()
        bad = ~bands.good
        if bad.any():
            out[:, :, bad] *= self.absorption_transmission
        snr = self.snr_profile(bands)
        mean_signal = out.mean(axis=(0, 1))  # per-band mean level
        sigma = np.where(mean_signal > 0, mean_signal / snr, 0.0)
        out += rng.standard_normal(out.shape) * sigma
        # Radiance cannot be negative; clip at a tiny positive floor so the
        # probability normalization downstream stays well defined.
        np.clip(out, 1e-6, None, out=out)
        return out
