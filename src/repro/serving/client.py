"""Client-side resilience: retry with exponential backoff and jitter.

The serving layer rejects at admission (``ServerBusyError`` +
``retry_after_s``) instead of queueing unboundedly — which moves the
waiting to the *client*, where it belongs.  This module is the client
half of that contract: :func:`submit_with_retry` wraps the blocking
:func:`~repro.serving.net.request` in the standard backoff loop,

* honoring the server's ``retry_after_s`` hint as a *floor* (the
  server knows its own queue depth; sleeping less just burns a
  connection on another rejection),
* growing an exponential delay above it (``base_delay_s * 2^attempt``,
  capped at ``max_delay_s``) so a persistently busy server sees
  geometrically thinning traffic,
* multiplying by deterministic jitter from a seeded
  ``np.random.Generator`` (uniform in [0.5, 1.0]) so a burst of
  rejected clients does not re-arrive in lockstep — the classic
  thundering-herd fix — while staying reproducible under the repo's
  no-unseeded-rng rule,
* bounding the whole affair by ``retry_budget_s`` of *monotonic* time
  (never the wall clock): when the budget cannot cover the next sleep,
  the last response (or connection error) is returned/raised as-is.

Connection errors (``OSError``: refused, socket file missing) are
retried under the same budget — that is exactly what a restarting
server looks like from outside, and riding through a restart is the
point of the durable serving tier.  Resubmission after a restart is
idempotent end to end: the journal replays interrupted jobs, the job
key is content-addressed, and a completed result is served from the
disk cache without re-execution.

``retry_budget_s=0`` (the default) performs exactly one attempt —
bit-for-bit the historical single-shot behavior.
"""

from __future__ import annotations

import time

import numpy as np

from repro.errors import ValidationError
from repro.serving.net import request

#: Jitter multiplier bounds: delays are scaled into [LOW, HIGH].
_JITTER_LOW = 0.5
_JITTER_HIGH = 1.0


def backoff_delays(*, base_delay_s: float, max_delay_s: float,
                   jitter_seed: int, attempts: int) -> list[float]:
    """The first ``attempts`` backoff delays, jittered, in seconds.

    Exposed for tests and docs: the exact sleep sequence a
    :func:`submit_with_retry` call with the same knobs would use
    against a server that never supplies a ``retry_after_s`` hint.
    """
    rng = np.random.default_rng(jitter_seed)
    delays = []
    for attempt in range(attempts):
        delay = min(max_delay_s, base_delay_s * (2.0 ** attempt))
        jitter = rng.uniform(_JITTER_LOW, _JITTER_HIGH)
        delays.append(delay * jitter)
    return delays


def submit_with_retry(socket_path: str, payload: dict, *,
                      retry_budget_s: float = 0.0,
                      base_delay_s: float = 0.25,
                      max_delay_s: float = 10.0,
                      jitter_seed: int = 0,
                      timeout_s: float | None = None,
                      request_fn=request, sleep=time.sleep,
                      clock=time.monotonic) -> dict:
    """Send ``payload`` with busy/connection retries under a time budget.

    Parameters
    ----------
    socket_path / payload / timeout_s:
        Forwarded to :func:`~repro.serving.net.request` per attempt.
    retry_budget_s:
        Total monotonic seconds the loop may spend (sleeps included).
        0 disables retrying entirely — one attempt, the historical
        behavior.
    base_delay_s / max_delay_s:
        The exponential schedule: attempt *n* waits
        ``min(max_delay_s, base_delay_s * 2^n)``, floored by the
        server's ``retry_after_s`` hint when one was sent, then
        jittered into [0.5, 1.0] of itself.
    jitter_seed:
        Seed of the jitter Generator — explicit, per the repo's
        determinism discipline; callers wanting decorrelated clients
        pass distinct seeds (the CLI uses the process id).
    request_fn / sleep / clock:
        Injection points for tests (a fake server, a recording sleep,
        a virtual clock).  Defaults are the real thing.

    Returns the first conclusive response: any success, or any error
    response that is neither busy nor a connection failure (a
    ``ShapeError`` will not get better on attempt two).  On budget
    exhaustion the last busy response is returned (so callers keep
    their exit-code branch on ``retry_after_s``) or the last connection
    error is re-raised.
    """
    if retry_budget_s < 0:
        raise ValidationError(
            f"retry_budget_s must be >= 0, got {retry_budget_s}")
    rng = np.random.default_rng(jitter_seed)
    deadline = clock() + retry_budget_s
    attempt = 0
    while True:
        last_error = None
        try:
            response = request_fn(socket_path, payload,
                                  timeout_s=timeout_s)
        except OSError as exc:
            # connection refused / socket missing: the server is down
            # or restarting — retryable, with no hint to honor
            if retry_budget_s == 0:
                raise
            last_error, hint = exc, 0.0
        else:
            if response.get("ok", False):
                return response
            hint = response.get("retry_after_s")
            if hint is None:
                return response     # a real error, not backpressure
            if retry_budget_s == 0:
                return response
        delay = min(max_delay_s, base_delay_s * (2.0 ** attempt))
        delay = max(delay, float(hint))
        delay *= rng.uniform(_JITTER_LOW, _JITTER_HIGH)
        if clock() + delay > deadline:
            # budget spent: surface the last outcome unchanged
            if last_error is not None:
                raise last_error
            return response
        sleep(delay)
        attempt += 1
