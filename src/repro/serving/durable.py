"""Atomic, fsync-disciplined file primitives for the durable serving
state (the job journal and the disk cache tier).

Crash safety here is a *protocol*, not a hope: every mutation of the
state directory goes through one of these helpers, each of which
guarantees that a reader after a crash sees either the old bytes or
the new bytes — never a torn file:

* whole-file writes go ``tmp file -> write -> flush -> fsync ->
  os.replace -> fsync(dir)``, so the rename is the commit point;
* journal appends go ``write line -> flush -> fsync``, so the only
  possible damage from a crash mid-append is a truncated *final* line,
  which replay detects and discards;
* deletes and renames fsync the containing directory, so a completed
  cleanup survives the crash that follows it.

The ``durable-write`` reprolint rule (``docs/static_analysis.md``)
enforces the protocol statically: no other module under
``repro.serving`` may call bare ``open(..., "w")`` / ``os.unlink`` /
``os.replace`` — state-directory mutations happen here or not at all.
"""

from __future__ import annotations

import json
import os


def ensure_dir(path: str) -> str:
    """Create ``path`` (and parents) if missing; returns it."""
    os.makedirs(path, exist_ok=True)
    return path


def fsync_dir(path: str) -> None:
    """fsync a directory so a rename/unlink inside it is durable."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_bytes(path: str, data: bytes) -> str:
    """Write ``data`` to ``path`` atomically (tmp + fsync + replace).

    The temporary file lives in the target directory (``os.replace``
    must not cross filesystems) and carries the pid so two processes
    sharing a state dir cannot collide mid-write.
    """
    directory = os.path.dirname(path) or "."
    tmp = os.path.join(directory,
                       f".{os.path.basename(path)}.{os.getpid()}.tmp")
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except OSError:
        # the commit never happened; leave no turd behind
        try:
            os.unlink(tmp)
        except FileNotFoundError:
            pass
        raise
    fsync_dir(directory)
    return path


def atomic_write_json(path: str, obj) -> str:
    """:func:`atomic_write_bytes` of ``obj`` as sorted, indented JSON."""
    text = json.dumps(obj, indent=2, sort_keys=True) + "\n"
    return atomic_write_bytes(path, text.encode("utf-8"))


def open_append(path: str):
    """Open ``path`` for durable appends (binary, created if missing)."""
    return open(path, "ab")


def append_line(fh, line: str) -> None:
    """Append one text line to an :func:`open_append` handle, durably.

    Flush + fsync before returning: once this call succeeds the record
    survives a crash; if the crash lands *inside* the call, at most the
    final line of the file is torn (the replay-tolerated case).
    """
    fh.write(line.encode("utf-8") + b"\n")
    fh.flush()
    os.fsync(fh.fileno())


def remove(path: str) -> bool:
    """Delete ``path`` durably (missing is fine); True when it existed."""
    try:
        os.unlink(path)
    except FileNotFoundError:
        return False
    fsync_dir(os.path.dirname(path) or ".")
    return True


def rename(src: str, dst: str) -> str:
    """Atomically move ``src`` over ``dst`` (the quarantine primitive)."""
    os.replace(src, dst)
    fsync_dir(os.path.dirname(dst) or ".")
    if os.path.dirname(src) != os.path.dirname(dst):
        fsync_dir(os.path.dirname(src) or ".")
    return dst
