"""AMC-as-a-service: an async job server with content-addressed caching.

The paper's canonical usage pattern is *recurrent*: the same scene
re-analyzed many times under varying parameters.  Everything below this
package is one-shot — :func:`~repro.core.amc.run_amc` and the batch
runner compute and exit.  This package is the serving layer that turns
the pipeline into a system:

* :class:`AMCServer` — the asyncio job server: bounded admission
  queue with reject-with-retry-after backpressure
  (:class:`AdmissionQueue`), in-flight request coalescing, an
  LRU+size-bounded content-addressed result cache
  (:class:`ResultCache`), job lifecycle tracking
  (``queued/running/done/failed/cancelled`` — :mod:`repro.serving.jobs`),
  and per-job profiler reports through the standard
  :mod:`repro.profiling` path.  Execution reuses one persistent
  :class:`~repro.pipeline.Pipeline` per worker thread and flows through
  :mod:`repro.resilience` unchanged, so faults degrade one job, never
  the server.
* :func:`job_key` / :func:`canonical_params` — the content-addressing
  discipline: ``sha256(cube bytes + canonicalized result-affecting
  params)``; N identical submissions cost one pipeline execution.
* :class:`UnixSocketFrontend` / :func:`request` — a stdlib JSON-lines
  transport behind ``repro serve`` / ``repro submit``.

See ``docs/serving.md`` for the architecture, the state machine, the
cache-key derivation rules and a worked CLI session.
"""

from repro.serving.api import (
    EXECUTION_KNOBS,
    as_config,
    canonical_params,
    canonical_params_json,
    job_key,
    result_digest,
    result_nbytes,
)
from repro.serving.cache import CacheEntry, CacheStats, ResultCache
from repro.serving.jobs import JOB_STATES, TERMINAL_STATES, Job, JobStatus
from repro.serving.net import UnixSocketFrontend, request
from repro.serving.queue import AdmissionQueue
from repro.serving.server import AMCServer, ServerCounters

__all__ = [
    "AMCServer",
    "AdmissionQueue",
    "CacheEntry",
    "CacheStats",
    "EXECUTION_KNOBS",
    "JOB_STATES",
    "Job",
    "JobStatus",
    "ResultCache",
    "ServerCounters",
    "TERMINAL_STATES",
    "UnixSocketFrontend",
    "as_config",
    "canonical_params",
    "canonical_params_json",
    "job_key",
    "request",
    "result_digest",
    "result_nbytes",
]
