"""AMC-as-a-service: an async job server with content-addressed caching.

The paper's canonical usage pattern is *recurrent*: the same scene
re-analyzed many times under varying parameters.  Everything below this
package is one-shot — :func:`~repro.core.amc.run_amc` and the batch
runner compute and exit.  This package is the serving layer that turns
the pipeline into a system:

* :class:`AMCServer` — the asyncio job server: bounded admission
  queue with reject-with-retry-after backpressure
  (:class:`AdmissionQueue`), in-flight request coalescing, an
  LRU+size-bounded content-addressed result cache
  (:class:`ResultCache`), job lifecycle tracking
  (``queued/running/done/failed/cancelled`` — :mod:`repro.serving.jobs`),
  and per-job profiler reports through the standard
  :mod:`repro.profiling` path.  Execution reuses one persistent
  :class:`~repro.pipeline.Pipeline` per worker thread and flows through
  :mod:`repro.resilience` unchanged, so faults degrade one job, never
  the server.
* :func:`job_key` / :func:`canonical_params` — the content-addressing
  discipline: ``sha256(cube bytes + canonicalized result-affecting
  params)``; N identical submissions cost one pipeline execution.
* :class:`UnixSocketFrontend` / :func:`request` — a stdlib JSON-lines
  transport behind ``repro serve`` / ``repro submit``.
* The durable tier (``state_dir``): a crash-safe write-ahead journal
  (:class:`JobJournal`) that replays on restart — interrupted jobs
  re-enqueue, finished ones are not re-executed — plus a sha-verified
  disk result cache (:class:`DiskCacheTier`) behind the memory tier.
* Self-healing: executor :class:`Heartbeat` timestamps watched by the
  :class:`Watchdog`, which requeues stuck jobs under their retry
  budget or fails them with ``StuckJobError``; and
  :func:`submit_with_retry`, the client-side backoff loop that rides
  through busy rejections and server restarts.

See ``docs/serving.md`` for the architecture, the state machine, the
cache-key derivation rules and a worked CLI session, and
``docs/robustness.md`` for the durability and recovery model.
"""

from repro.serving.api import (
    EXECUTION_KNOBS,
    as_config,
    canonical_params,
    canonical_params_json,
    job_key,
    result_digest,
    result_nbytes,
)
from repro.serving.cache import CacheEntry, CacheStats, ResultCache
from repro.serving.client import backoff_delays, submit_with_retry
from repro.serving.diskcache import DiskCacheStats, DiskCacheTier
from repro.serving.jobs import JOB_STATES, TERMINAL_STATES, Job, JobStatus
from repro.serving.journal import JobJournal, ReplayedJob, ReplayReport
from repro.serving.net import UnixSocketFrontend, request
from repro.serving.queue import AdmissionQueue
from repro.serving.server import AMCServer, ServerCounters
from repro.serving.watchdog import Heartbeat, Watchdog

__all__ = [
    "AMCServer",
    "AdmissionQueue",
    "CacheEntry",
    "CacheStats",
    "DiskCacheStats",
    "DiskCacheTier",
    "EXECUTION_KNOBS",
    "Heartbeat",
    "JOB_STATES",
    "Job",
    "JobJournal",
    "JobStatus",
    "ReplayReport",
    "ReplayedJob",
    "ResultCache",
    "ServerCounters",
    "TERMINAL_STATES",
    "UnixSocketFrontend",
    "Watchdog",
    "as_config",
    "backoff_delays",
    "canonical_params",
    "canonical_params_json",
    "job_key",
    "request",
    "result_digest",
    "result_nbytes",
    "submit_with_retry",
]
