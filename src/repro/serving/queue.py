"""Bounded admission queue: backpressure instead of unbounded latency.

A server that accepts every request melts down by queueing: once the
arrival rate exceeds service rate, latency grows without bound and
every client times out — the classic failure the admission-control
literature calls *congestion collapse*.  The serving layer therefore
bounds its queue and **rejects at admission** when full, telling the
client when to come back (:class:`~repro.errors.ServerBusyError`
carries ``retry_after_s``), rather than letting work pile up.

The retry hint is load-proportional, not clock-derived (the serving
layer, like the compute layers, reads no wall clock — the
``no-wallclock-in-compute`` lint holds here too): it is the number of
jobs ahead of the rejected one times the server's per-job cost
estimate.  Crude, but monotone in load, which is all a backoff loop
needs.
"""

from __future__ import annotations

import asyncio

from repro.errors import ServerBusyError, ServingError


class AdmissionQueue:
    """An :class:`asyncio.Queue` with reject-at-admission semantics.

    Parameters
    ----------
    maxsize:
        Jobs the queue holds before rejecting (>= 1).
    estimated_job_s:
        Per-job service-time estimate behind the ``retry_after_s``
        hint.
    """

    def __init__(self, maxsize: int = 16,
                 estimated_job_s: float = 1.0) -> None:
        if maxsize < 1:
            raise ServingError(f"maxsize must be >= 1, got {maxsize}")
        if estimated_job_s <= 0:
            raise ServingError(
                f"estimated_job_s must be positive, got {estimated_job_s}")
        self.maxsize = int(maxsize)
        self.estimated_job_s = float(estimated_job_s)
        self.rejected = 0
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=self.maxsize)

    def __len__(self) -> int:
        return self._queue.qsize()

    @property
    def depth(self) -> int:
        """Jobs currently waiting for a worker."""
        return self._queue.qsize()

    def retry_after_s(self) -> float:
        """The backpressure hint for a rejection issued now."""
        return (self.depth + 1) * self.estimated_job_s

    def admit(self, job) -> None:
        """Enqueue ``job`` or raise :class:`ServerBusyError`.

        Admission is synchronous (``put_nowait``): a full queue is a
        *decision point*, not something to await on — blocking the
        submitter is exactly the unbounded-latency failure mode the
        bound exists to prevent.
        """
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            self.rejected += 1
            hint = self.retry_after_s()
            raise ServerBusyError(
                f"job queue full ({self.maxsize} waiting); "
                f"retry in ~{hint:.1f}s",
                retry_after_s=hint) from None

    async def readmit(self, job) -> None:
        """Re-enqueue a job bypassing admission control.

        The watchdog-requeue and journal-replay paths: the job was
        *already admitted* once (and counted against the bound then),
        so bouncing it now would turn a rescue into a loss.  Awaits a
        free slot instead of rejecting — both callers run where a brief
        wait is acceptable (startup replay, the monitor task).
        """
        await self._queue.put(job)

    async def next_job(self):
        """Await the next admitted job (worker side)."""
        return await self._queue.get()

    async def put_sentinel(self) -> None:
        """Enqueue a ``None`` stop sentinel, bypassing admission.

        Shutdown must not be rejectable — this awaits a free slot
        instead of bouncing, which is safe because workers are still
        draining the queue while sentinels wait.
        """
        await self._queue.put(None)

    def task_done(self) -> None:
        """Mark one fetched job finished (pairs with :meth:`next_job`)."""
        self._queue.task_done()

    async def join(self) -> None:
        """Await until every admitted job has been marked done."""
        await self._queue.join()

    def drain(self) -> list:
        """Remove and return every waiting job (shutdown path)."""
        jobs = []
        while True:
            try:
                jobs.append(self._queue.get_nowait())
            except asyncio.QueueEmpty:
                return jobs
            self._queue.task_done()
