"""The stuck-job watchdog: heartbeats from executor threads, a monitor
task that notices when they stop, and requeue-or-fail recovery.

The resilience layer (PR 3) detects *dead* workers — a crashed pool
process surfaces as a lost task within one chunk deadline.  What it
cannot see is a *wedged* executor thread: a job stuck in an
uninterruptible call never returns, never raises, and silently eats
one of the server's worker slots forever.  The watchdog closes that
gap with the standard liveness idiom:

* every execution attempt owns a :class:`Heartbeat` — a thread-safe
  monotonic timestamp the executor thread refreshes at attempt
  boundaries (``time.monotonic``, never the wall clock: only *ages*
  are compared, so clock jumps cannot condemn a healthy job);
* the :class:`Watchdog` coroutine wakes every ``poll_s`` on the event
  loop and measures each RUNNING job's heartbeat age against its
  deadline (per-workload via
  :attr:`~repro.workloads.Workload.watchdog_deadline_s`, else the
  server default);
* a stuck job is **requeued** under its existing retry budget
  (``max_retries``) — its generation counter is bumped so the zombie
  attempt's eventual result is recognized as stale and dropped — or
  **failed** with :class:`~repro.errors.StuckJobError` once the budget
  is exhausted.  Either way a ``watchdog`` EventRecord lands in the
  profiler stream (merged into the job's final report and counted in
  ``health()``), so a rescue is visible, never silent.

Requeueing is safe for the same reason every other retry in this repo
is safe: execution is bit-identical across attempts, so a rescued
job's result is indistinguishable from a first-try one.  The
``heartbeat_stall`` fault site at the top of every attempt makes the
whole machine chaos-testable: a ``timeout`` fault there stalls the
executor *without* beating, which is exactly what a wedge looks like.
"""

from __future__ import annotations

import asyncio
import threading
import time

from repro.errors import ServingError
from repro.profiling.profiler import EventRecord


class Heartbeat:
    """A thread-safe liveness timestamp for one execution attempt.

    The executor thread calls :meth:`beat`; the event-loop watchdog
    calls :meth:`age`.  Monotonic time only — ages, not instants, are
    the observable.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._last = time.monotonic()

    def beat(self) -> None:
        """Refresh the timestamp (executor thread)."""
        with self._lock:
            self._last = time.monotonic()

    def age(self) -> float:
        """Seconds since the last beat (event-loop thread)."""
        with self._lock:
            return time.monotonic() - self._last


class Watchdog:
    """The monitor task over one server's RUNNING jobs.

    Parameters
    ----------
    server:
        The owning :class:`~repro.serving.server.AMCServer`; the
        watchdog reads its jobs table and calls back into
        ``server._rescue_stuck`` for the actual state surgery (all on
        the event-loop thread).
    deadline_s:
        Default heartbeat-age limit; a workload's
        ``watchdog_deadline_s`` attribute overrides it per job.
    poll_s:
        Monitor wake interval.
    """

    def __init__(self, server, *, deadline_s: float = 30.0,
                 poll_s: float = 0.5) -> None:
        if deadline_s <= 0:
            raise ServingError(
                f"deadline_s must be positive, got {deadline_s}")
        if poll_s <= 0:
            raise ServingError(f"poll_s must be positive, got {poll_s}")
        self.server = server
        self.deadline_s = float(deadline_s)
        self.poll_s = float(poll_s)
        self.requeued = 0
        self.failed = 0
        self.events: list[EventRecord] = []
        self._task: asyncio.Task | None = None

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        """Spawn the monitor coroutine on the running loop."""
        self._task = asyncio.create_task(self._monitor_loop(),
                                         name="serving-watchdog")

    async def stop(self) -> None:
        """Cancel and await the monitor coroutine."""
        if self._task is None:
            return
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:
            pass
        self._task = None

    # -- the monitor ------------------------------------------------------

    def deadline_for(self, job) -> float:
        """The heartbeat-age limit of one job (workload override wins)."""
        override = getattr(job.workload, "watchdog_deadline_s", None)
        return self.deadline_s if override is None else float(override)

    async def _monitor_loop(self) -> None:
        while True:
            await asyncio.sleep(self.poll_s)
            self.check_now()

    def check_now(self) -> list:
        """One monitor sweep (also callable directly from tests).

        Returns the jobs acted on this sweep.
        """
        rescued = []
        from repro.serving import jobs as jobstates

        for job in list(self.server._jobs.values()):
            if job.state != jobstates.RUNNING or job.heartbeat is None:
                continue
            age = job.heartbeat.age()
            deadline = self.deadline_for(job)
            if age <= deadline:
                continue
            requeued = self.server._rescue_stuck(job, age=age,
                                                 deadline=deadline)
            kind_detail = (
                f"job {job.job_id} heartbeat age {age:.2f}s exceeded "
                f"deadline {deadline:.2f}s; "
                + ("requeued" if requeued else "retry budget exhausted"))
            event = EventRecord(kind="watchdog", detail=kind_detail,
                                chunk_index=-1)
            self.events.append(event)
            job.events.append(event)
            if requeued:
                self.requeued += 1
            else:
                self.failed += 1
            rescued.append(job)
        return rescued

    def as_dict(self) -> dict[str, object]:
        """Monitor state for ``health()`` reports."""
        return {"enabled": True, "deadline_s": self.deadline_s,
                "poll_s": self.poll_s, "requeued": self.requeued,
                "failed": self.failed, "events": len(self.events)}
