"""The content-addressed result cache: LRU, size- and entry-bounded.

One entry per :func:`~repro.serving.api.job_key`; the value is the
finished :class:`~repro.core.amc.AMCResult` plus its frozen per-job
:class:`~repro.profiling.ProfileReport`.  Eviction is plain LRU over
two simultaneous budgets — entry count and retained bytes (the
ndarray payloads, measured by :func:`~repro.serving.api.result_nbytes`)
— because hyperspectral results are wildly size-skewed: one full-scene
result can weigh as much as a thousand thumbnails.

Every lookup and eviction is counted (:class:`CacheStats`), and the
counters flow into ``AMCServer.stats()`` so cache effectiveness is an
observable, not a guess.  The cache itself is not locked: the server
touches it only from the event-loop thread.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import ServingError
from repro.serving.api import result_nbytes


@dataclass
class CacheStats:
    """Lookup/eviction counters of one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    insertions: int = 0
    #: Results too large to ever fit the byte budget; refused, not
    #: cached (they would otherwise evict everything and still not fit).
    oversize_skips: int = 0

    def as_dict(self) -> dict[str, int]:
        """The counters as a plain dict (for ``stats()`` reports)."""
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions,
                "insertions": self.insertions,
                "oversize_skips": self.oversize_skips}


@dataclass(frozen=True)
class CacheEntry:
    """One cached job outcome: the result, its size, its profile."""

    result: object
    nbytes: int
    report: object = None
    #: Bit-identity fingerprint of the result (computed once, at
    #: insertion, so cache hits do not re-hash the arrays).
    digest: str | None = None
    #: How many times this entry has been served (diagnostic only).
    served: int = 0


class ResultCache:
    """LRU mapping ``job_key -> CacheEntry`` under entry/byte budgets.

    Parameters
    ----------
    max_entries:
        Entry-count budget (>= 1).
    max_bytes:
        Retained-payload budget; results larger than this on their own
        are refused (counted in ``stats.oversize_skips``).
    """

    def __init__(self, max_entries: int = 64,
                 max_bytes: int = 256 << 20) -> None:
        if max_entries < 1:
            raise ServingError(
                f"max_entries must be >= 1, got {max_entries}")
        if max_bytes < 1:
            raise ServingError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_entries = int(max_entries)
        self.max_bytes = int(max_bytes)
        self.stats = CacheStats()
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()
        self._bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    @property
    def current_bytes(self) -> int:
        """Retained payload bytes across all entries."""
        return self._bytes

    def get(self, key: str) -> CacheEntry | None:
        """The entry for ``key`` (refreshing its recency), else None.

        Counts a hit or a miss either way.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self._entries.move_to_end(key)
        entry = CacheEntry(entry.result, entry.nbytes, entry.report,
                           entry.digest, entry.served + 1)
        self._entries[key] = entry
        return entry

    def put(self, key: str, result, report=None,
            digest: str | None = None,
            nbytes: int | None = None) -> bool:
        """Insert a finished result; returns False when refused.

        A key already present is refreshed in place (content-addressed
        keys make the payload identical by construction).  Insertion
        evicts least-recently-used entries until both budgets hold.
        ``nbytes`` is the result's retained size per its workload's
        accounting; when omitted it is measured with the default (AMC)
        rule, which keeps historical call sites working.
        """
        if nbytes is None:
            nbytes = result_nbytes(result)
        if nbytes > self.max_bytes:
            self.stats.oversize_skips += 1
            return False
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= old.nbytes
        while self._entries and (
                len(self._entries) >= self.max_entries
                or self._bytes + nbytes > self.max_bytes):
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= evicted.nbytes
            self.stats.evictions += 1
        self._entries[key] = CacheEntry(result, nbytes, report, digest)
        self._bytes += nbytes
        self.stats.insertions += 1
        return True

    def as_dict(self) -> dict[str, object]:
        """Counters plus occupancy, for ``AMCServer.stats()``."""
        out: dict[str, object] = dict(self.stats.as_dict())
        out["entries"] = len(self._entries)
        out["bytes"] = self._bytes
        out["max_entries"] = self.max_entries
        out["max_bytes"] = self.max_bytes
        return out
