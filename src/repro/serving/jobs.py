"""Job lifecycle: states, the mutable job record, immutable snapshots.

A :class:`Job` is one unit of admitted work.  Its lifecycle is a small
state machine::

    submit ──► QUEUED ──► RUNNING ──► DONE
                  ▲  │        │   └─► FAILED
                  │  │        └─(watchdog requeue)─► QUEUED
                  │  └──► CANCELLED
            (journal replay re-enqueues queued/running jobs here)

plus one shortcut: a submission whose key is already cached is born
``DONE`` (``from_cache=True``) without ever entering the queue.  A
``RUNNING`` job cannot be cancelled by clients — the executor owns it
— but the *watchdog* may return it to ``QUEUED`` when its heartbeat
goes stale (the zombie attempt's eventual outcome is dropped by the
``generation`` guard), and the journal replay at startup re-enqueues
jobs that were queued or running when the process died.
``DONE``/``FAILED``/``CANCELLED`` are terminal.

Jobs are mutated only on the server's event-loop thread; everything a
client sees is an immutable :class:`JobStatus` snapshot (JSON-safe via
:meth:`JobStatus.to_dict`, which is what the socket protocol ships).
"""

from __future__ import annotations

import asyncio
from dataclasses import asdict, dataclass

from repro.errors import ServingError

#: Lifecycle states, in nominal order.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: Every valid job state.
JOB_STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)

#: States a job can never leave.
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})

#: Legal transitions of the state machine (from -> allowed to).
#: RUNNING -> QUEUED is the watchdog's requeue edge: a stuck job goes
#: back to the queue under a fresh generation.
_TRANSITIONS = {
    QUEUED: frozenset({RUNNING, CANCELLED}),
    RUNNING: frozenset({DONE, FAILED, QUEUED}),
}


@dataclass(frozen=True)
class JobStatus:
    """One immutable, JSON-safe view of a job.

    Attributes
    ----------
    job_id / key / state:
        Identity and lifecycle position (``key`` is the full
        content-addressed job key).
    from_cache:
        The result was served from the cache — no execution happened
        for this submission.
    coalesced:
        How many *extra* submissions were folded into this job while it
        was in flight (0 = unique).
    retries:
        Extra execution attempts the job consumed (resilience layer).
    error:
        ``"Type: message"`` for FAILED jobs, else None.
    result_sha256:
        Bit-identity fingerprint of the decision arrays
        (:func:`~repro.serving.api.result_digest`) for DONE jobs.
    overall_accuracy:
        Report accuracy (%) when a classify request carried a ground
        truth (detection/reduction jobs leave it None).
    workload:
        Registry name of the algorithm this job runs
        (:mod:`repro.workloads`).
    watchdog_requeues:
        How many times the watchdog rescued this job from a stalled
        executor (0 on the healthy path).
    recovered:
        The job was re-enqueued (or recreated terminal) by journal
        replay after a restart — it survived a process death.
    """

    job_id: int
    key: str
    state: str
    from_cache: bool = False
    coalesced: int = 0
    retries: int = 0
    error: str | None = None
    result_sha256: str | None = None
    overall_accuracy: float | None = None
    workload: str | None = None
    watchdog_requeues: int = 0
    recovered: bool = False

    def to_dict(self) -> dict:
        """Plain-data form (what the socket protocol serializes)."""
        return asdict(self)


class Job:
    """The server-side record of one admitted request.

    Holds the request payload (cube, params, ground truth), the
    lifecycle state, and — after completion — the result, the per-job
    :class:`~repro.profiling.ProfileReport` and the bit-identity
    digest.  ``done`` is an :class:`asyncio.Event` waiters block on.
    """

    def __init__(self, job_id: int, key: str, *, bip, config,
                 ground_truth=None, class_names=None,
                 workload=None, state: str = QUEUED) -> None:
        self.job_id = job_id
        self.key = key
        self.bip = bip
        self.config = config
        self.workload = workload    # Workload instance | None
        self.ground_truth = ground_truth
        self.class_names = class_names
        self.state = state
        self.from_cache = False
        self.coalesced = 0
        self.retries = 0
        self.result = None
        self.report = None          # ProfileReport | None
        self.error: Exception | str | None = None
        self.result_sha256: str | None = None
        self.done = asyncio.Event()
        #: Execution generation: bumped on every watchdog requeue, so
        #: a zombie attempt's late outcome is recognized as stale.
        self.generation = 0
        self.watchdog_requeues = 0
        #: Journal replay recreated/re-enqueued this job after a crash.
        self.recovered = False
        #: Liveness timestamp of the current attempt (set by the
        #: executor; None until the job first runs).
        self.heartbeat = None
        #: Watchdog EventRecords concerning this job, merged into its
        #: final profile report.
        self.events: list = []

    def transition(self, state: str) -> None:
        """Move to ``state``, enforcing the lifecycle machine."""
        allowed = _TRANSITIONS.get(self.state, frozenset())
        if state not in allowed:
            raise ServingError(
                f"job {self.job_id}: illegal transition "
                f"{self.state!r} -> {state!r}")
        self.state = state
        if state in TERMINAL_STATES:
            self.done.set()

    def serve_from_cache(self, entry) -> None:
        """Complete this job from a :class:`~repro.serving.cache.CacheEntry`.

        The one sanctioned bypass of :meth:`transition`: a cached key
        means the work already happened, so the job is born terminal
        without ever being queued or run.
        """
        self.state = DONE
        self.from_cache = True
        self.result = entry.result
        self.report = entry.report
        self.result_sha256 = entry.digest
        self.release_payload()
        self.done.set()

    def release_payload(self) -> None:
        """Drop the request cube once the job is terminal — the server
        keeps every job record for status queries, and retaining cubes
        would grow memory with history length."""
        self.bip = None
        self.ground_truth = None

    def status(self) -> JobStatus:
        """The current :class:`JobStatus` snapshot."""
        accuracy = None
        # not every workload's result carries a classification report
        # (detection and reduction results do not)
        report = getattr(self.result, "report", None)
        if report is not None:
            accuracy = float(report.overall_accuracy)
        error = None
        if isinstance(self.error, str):
            # journal replay recreates failed jobs from the recorded
            # "Type: message" text — the exception object is gone
            error = self.error
        elif self.error is not None:
            error = f"{type(self.error).__name__}: {self.error}"
        return JobStatus(
            job_id=self.job_id, key=self.key, state=self.state,
            from_cache=self.from_cache, coalesced=self.coalesced,
            retries=self.retries, error=error,
            result_sha256=self.result_sha256,
            overall_accuracy=accuracy,
            workload=None if self.workload is None else self.workload.name,
            watchdog_requeues=self.watchdog_requeues,
            recovered=self.recovered)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Job(id={self.job_id}, state={self.state}, "
                f"key={self.key[:12]}...)")
