"""The write-ahead job journal: every lifecycle transition on disk
before it is acted on, so a crashed server forfeits nothing.

One :class:`JobJournal` owns a state directory::

    <state_dir>/journal.jsonl     append-only JSON-lines transition log
    <state_dir>/payloads/<key>.req   spilled request payloads (pickle)

Each record is one JSON object per line — ``{"v": 1, "seq": n,
"job_id": ..., "key": ..., "state": "queued|running|done|failed|
cancelled", "workload": ..., "digest": ..., "error": ...,
"generation": ...}`` — appended with the fsync discipline of
:mod:`repro.serving.durable`: once :meth:`JobJournal.append` returns,
the transition survives a crash; a crash *during* an append can tear
only the final line, which :meth:`replay` detects and discards (it is
the expected crash signature, not corruption).

Replay folds the log into one :class:`ReplayedJob` per job id — the
latest state wins — and the server acts on the fold: jobs last seen
``queued``/``running`` lost their execution and are re-enqueued from
their spilled payload; ``done`` jobs are recreated terminal with their
recorded digest (the result itself lives in the disk cache tier, so no
re-execution happens); ``failed``/``cancelled`` jobs are recreated as
history.  The payload spill is what makes re-enqueueing *possible*:
the request cube never crosses the socket, so the journal keeps the
loaded bytes (content-addressed by job key) until the job reaches a
terminal state, then deletes them.

``running`` records double as the durable execution ledger: every
transition to ``running`` is one pipeline-execution claim, so "zero
duplicate executions across a crash" is checkable by counting them —
the cross-process extension of the in-process ``Pipeline.run_count``
ledger.

The ``journal_write`` fault site fires at the top of every append,
making journal I/O failures chaos-testable like any other fault.
"""

from __future__ import annotations

import json
import os
import pickle
from dataclasses import dataclass, field

from repro.errors import JournalCorruptError, ValidationError
from repro.faults import maybe_inject
from repro.serving import durable
from repro.serving import jobs as jobstates

#: Journal record schema version.
RECORD_VERSION = 1

#: File names inside a state directory.
JOURNAL_FILE = "journal.jsonl"
PAYLOAD_DIR = "payloads"


@dataclass(frozen=True)
class ReplayedJob:
    """The folded final state of one journaled job.

    ``executions`` counts the job's ``running`` records — its entries
    in the durable execution ledger.
    """

    job_id: int
    key: str
    state: str
    workload: str | None = None
    digest: str | None = None
    error: str | None = None
    generation: int = 0
    executions: int = 0


@dataclass
class ReplayReport:
    """What one :meth:`JobJournal.replay` found.

    ``torn_tail`` is True when the final line was truncated (the
    normal crash-mid-append signature, discarded without complaint);
    ``jobs`` maps job id -> :class:`ReplayedJob` in first-seen order.
    """

    jobs: dict[int, ReplayedJob] = field(default_factory=dict)
    records: int = 0
    torn_tail: bool = False

    @property
    def max_job_id(self) -> int:
        """Highest job id seen (0 on an empty journal)."""
        return max(self.jobs, default=0)

    def by_state(self, *states: str) -> list[ReplayedJob]:
        """Replayed jobs whose final state is one of ``states``."""
        return [job for job in self.jobs.values() if job.state in states]


class JobJournal:
    """Write-ahead transition log plus payload spill for one server.

    All methods run on the event-loop thread (the same discipline as
    the rest of the server state); the fsync cost per append is the
    durability price, measured by ``BENCH_recovery.json``.
    """

    def __init__(self, state_dir: str) -> None:
        self.state_dir = durable.ensure_dir(state_dir)
        self.path = os.path.join(state_dir, JOURNAL_FILE)
        self.payload_dir = durable.ensure_dir(
            os.path.join(state_dir, PAYLOAD_DIR))
        self._fh = None
        self._seq = 0
        self.appended = 0

    # -- appends ---------------------------------------------------------

    def append(self, state: str, *, job_id: int, key: str,
               workload: str | None = None, digest: str | None = None,
               error: str | None = None, generation: int = 0) -> None:
        """Durably record one lifecycle transition."""
        maybe_inject("journal_write", index=job_id)
        if self._fh is None:
            self._fh = durable.open_append(self.path)
        self._seq += 1
        record = {"v": RECORD_VERSION, "seq": self._seq,
                  "job_id": int(job_id), "key": key, "state": state,
                  "workload": workload, "generation": int(generation)}
        if digest is not None:
            record["digest"] = digest
        if error is not None:
            record["error"] = error
        durable.append_line(self._fh, json.dumps(record, sort_keys=True))
        self.appended += 1

    def close(self) -> None:
        """Close the append handle (reopened lazily on next append)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # -- replay & compaction ---------------------------------------------

    def replay(self) -> ReplayReport:
        """Fold the journal into per-job final states.

        A torn final line (crash mid-append) is discarded and flagged;
        unparseable records anywhere *before* the final one raise
        :class:`~repro.errors.JournalCorruptError` — that is external
        damage, not a crash signature, and recovery on top of it would
        be a guess.
        """
        report = ReplayReport()
        if not os.path.exists(self.path):
            return report
        with open(self.path, "rb") as fh:
            lines = fh.read().split(b"\n")
        if lines and lines[-1] == b"":
            lines.pop()
        for lineno, raw in enumerate(lines, start=1):
            try:
                record = json.loads(raw)
                job_id = int(record["job_id"])
                state = record["state"]
                if state not in jobstates.JOB_STATES:
                    raise ValidationError(f"unknown state {state!r}")
            except (ValueError, KeyError, TypeError) as exc:
                if lineno == len(lines):
                    report.torn_tail = True
                    break
                raise JournalCorruptError(
                    f"{self.path}:{lineno}: unreadable journal record "
                    f"({exc}) before the final line — the journal was "
                    f"externally damaged") from exc
            previous = report.jobs.get(job_id)
            executions = previous.executions if previous else 0
            if state == jobstates.RUNNING:
                executions += 1
            report.jobs[job_id] = ReplayedJob(
                job_id=job_id, key=record["key"], state=state,
                workload=record.get("workload"),
                digest=record.get("digest"),
                error=record.get("error"),
                generation=int(record.get("generation", 0)),
                executions=executions)
            report.records += 1
            self._seq = max(self._seq, int(record.get("seq", 0)))
        return report

    def compact(self, report: ReplayReport) -> int:
        """Rewrite the journal as one final-state record per job.

        Called after replay at startup: replay time is linear in
        journal length, so a long-lived server periodically folds its
        history.  Returns the number of records written.  The rewrite
        is a single atomic replace — a crash mid-compaction leaves the
        old journal intact.
        """
        self.close()
        lines = []
        for n, job in enumerate(sorted(report.jobs.values(),
                                       key=lambda j: j.job_id), start=1):
            record = {"v": RECORD_VERSION, "seq": n, "job_id": job.job_id,
                      "key": job.key, "state": job.state,
                      "workload": job.workload,
                      "generation": job.generation}
            if job.digest is not None:
                record["digest"] = job.digest
            if job.error is not None:
                record["error"] = job.error
            lines.append(json.dumps(record, sort_keys=True))
        durable.atomic_write_bytes(
            self.path, ("\n".join(lines) + "\n" if lines else "").encode())
        self._seq = len(lines)
        return len(lines)

    # -- payload spill ----------------------------------------------------

    def _payload_path(self, key: str) -> str:
        return os.path.join(self.payload_dir, f"{key}.req")

    def spill_payload(self, key: str, *, bip, config, workload: str,
                      ground_truth=None, class_names=None) -> str:
        """Persist one request's inputs so a crashed job can re-enqueue.

        Written *before* the job's first journal record, so a
        ``queued`` record always implies a loadable payload.
        """
        maybe_inject("journal_write", index=None)
        payload = {"v": RECORD_VERSION, "workload": workload,
                   "bip": bip, "config": config,
                   "ground_truth": ground_truth,
                   "class_names": class_names}
        return durable.atomic_write_bytes(
            self._payload_path(key),
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))

    def load_payload(self, key: str) -> dict | None:
        """The spilled request for ``key``, or None when missing/torn.

        A payload that fails to unpickle is quarantined (never trusted)
        and reported missing — the caller fails the job explicitly
        rather than re-running garbage.
        """
        path = self._payload_path(key)
        try:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        except FileNotFoundError:
            return None
        except (pickle.UnpicklingError, EOFError, ValueError,
                KeyError, AttributeError):
            durable.rename(path, path + ".quarantined")
            return None

    def drop_payload(self, key: str) -> bool:
        """Delete the spilled request once its job is terminal."""
        return durable.remove(self._payload_path(key))

    # -- observability ----------------------------------------------------

    def stats(self) -> dict:
        """Journal occupancy for ``health()``: length, lag, spill count."""
        try:
            size = os.path.getsize(self.path)
        except OSError:
            size = 0
        spilled = sum(1 for name in os.listdir(self.payload_dir)
                      if name.endswith(".req"))
        return {"path": self.path, "records": self._seq,
                "appended": self.appended, "bytes": size,
                "spilled_payloads": spilled}
