"""The persistent result-cache tier: spilled entries that survive a
server restart, sha-verified before they are ever served.

A :class:`DiskCacheTier` is the second tier behind the in-memory
:class:`~repro.serving.cache.ResultCache`: completed results are
written through to disk (one pickle file per content-addressed job
key, atomically via :mod:`repro.serving.durable`), and a memory miss
falls back here before anything executes.  Two disciplines make the
tier safe to trust after a crash:

* **Verification before service.**  Every entry carries the result
  digest from its workload contract
  (:func:`~repro.serving.api.result_digest`); on load the digest is
  *recomputed from the loaded arrays* and compared.  A mismatch — bit
  rot, a partial write that somehow survived the atomic protocol, a
  tampered file — is treated as a miss.
* **Quarantine, never deletion-and-hope.**  Corrupt or truncated
  files are renamed into ``quarantine/`` (keeping the evidence for a
  post-mortem) and dropped from the index; they are never served and
  never retried.

Eviction is oldest-first by insertion sequence under a byte budget;
the sequence lives in ``index.json`` (atomically rewritten per
mutation) so ordering survives restarts without reading file mtimes.
Disk failures never fail a job: a write error skips the spill
(counted), a read error is a miss.  The ``cache_disk`` fault site at
the top of both paths makes that claim chaos-testable.
"""

from __future__ import annotations

import os
import pickle

from dataclasses import dataclass

from repro.errors import ServingError, TransientFaultError, ValidationError
from repro.faults import maybe_inject
from repro.serving import durable
from repro.serving.cache import CacheEntry
from repro.workloads import get_workload

#: File name of the persisted eviction-order index.
INDEX_FILE = "index.json"

#: Subdirectory corrupt entries are moved into.
QUARANTINE_DIR = "quarantine"

#: Entry file suffix.
ENTRY_SUFFIX = ".res"


@dataclass
class DiskCacheStats:
    """Counters of one :class:`DiskCacheTier`."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    oversize_skips: int = 0
    #: Entries that failed verification on load and were quarantined.
    quarantined: int = 0
    #: Spills skipped because the disk write failed (jobs unaffected).
    write_errors: int = 0

    def as_dict(self) -> dict[str, int]:
        """The counters as a plain dict (for ``health()`` reports)."""
        return {"hits": self.hits, "misses": self.misses,
                "insertions": self.insertions,
                "evictions": self.evictions,
                "oversize_skips": self.oversize_skips,
                "quarantined": self.quarantined,
                "write_errors": self.write_errors}


class DiskCacheTier:
    """Persistent ``job_key -> result`` store under a byte budget.

    Parameters
    ----------
    directory:
        Where entries, the index and the quarantine live (created on
        demand).
    max_bytes:
        Retained-payload budget (the workload-accounted result bytes,
        same accounting as the memory tier).
    """

    def __init__(self, directory: str, max_bytes: int = 1 << 30) -> None:
        if max_bytes < 1:
            raise ServingError(f"max_bytes must be >= 1, got {max_bytes}")
        self.directory = durable.ensure_dir(directory)
        self.quarantine_dir = durable.ensure_dir(
            os.path.join(directory, QUARANTINE_DIR))
        self.max_bytes = int(max_bytes)
        self.stats = DiskCacheStats()
        self._index_path = os.path.join(directory, INDEX_FILE)
        self._index: dict[str, dict] = {}
        self._next_seq = 1
        self._load_index()

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: str) -> bool:
        return key in self._index

    @property
    def current_bytes(self) -> int:
        """Accounted payload bytes across all indexed entries."""
        return sum(entry["nbytes"] for entry in self._index.values())

    # -- the tier API -----------------------------------------------------

    def put(self, key: str, result, report=None,
            digest: str | None = None, nbytes: int | None = None,
            workload: str = "amc") -> bool:
        """Spill one finished result; returns False when refused.

        Never raises for I/O or injected disk faults — a job must not
        fail because its spill did (the result is already served from
        memory); the skip is counted in ``stats.write_errors``.
        """
        wl = get_workload(workload)
        if nbytes is None:
            nbytes = wl.result_nbytes(result)
        if nbytes > self.max_bytes:
            self.stats.oversize_skips += 1
            return False
        payload = {"v": 1, "workload": wl.name, "digest": digest,
                   "nbytes": int(nbytes), "result": result,
                   "report": report}
        try:
            maybe_inject("cache_disk", index=None)
            durable.atomic_write_bytes(
                self._entry_path(key),
                pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
        except (OSError, TransientFaultError):
            self.stats.write_errors += 1
            return False
        self._index[key] = {"nbytes": int(nbytes), "seq": self._next_seq,
                            "workload": wl.name, "digest": digest}
        self._next_seq += 1
        self._evict_to_budget()
        self._write_index()
        self.stats.insertions += 1
        return True

    def get(self, key: str) -> CacheEntry | None:
        """Load, verify and return one entry; None on miss/corruption.

        The digest is recomputed from the loaded decision arrays via
        the entry's own workload contract — a corrupt or truncated
        file is quarantined and can never be served.
        """
        meta = self._index.get(key)
        if meta is None:
            self.stats.misses += 1
            return None
        path = self._entry_path(key)
        try:
            maybe_inject("cache_disk", index=None)
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
            workload = payload["workload"]
            digest = payload["digest"]
            from repro.serving.api import result_digest

            recomputed = result_digest(payload["result"],
                                       workload=workload)
            if digest is not None and recomputed != digest:
                raise ValidationError(
                    f"digest mismatch: recorded {digest[:12]}..., "
                    f"recomputed {recomputed[:12]}...")
        except FileNotFoundError:
            self._forget(key)
            self.stats.misses += 1
            return None
        except TransientFaultError:
            self.stats.misses += 1
            return None
        except (OSError, pickle.UnpicklingError, EOFError, ValueError,
                KeyError, AttributeError, TypeError) as exc:
            self._quarantine(key, path, exc)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return CacheEntry(payload["result"], payload["nbytes"],
                          payload.get("report"), recomputed)

    def as_dict(self) -> dict[str, object]:
        """Counters plus occupancy, for ``health()`` reports."""
        out: dict[str, object] = dict(self.stats.as_dict())
        out["entries"] = len(self._index)
        out["bytes"] = self.current_bytes
        out["max_bytes"] = self.max_bytes
        return out

    # -- internals --------------------------------------------------------

    def _entry_path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}{ENTRY_SUFFIX}")

    def _quarantine(self, key: str, path: str, exc: Exception) -> None:
        """Move a bad entry out of service, keeping the evidence."""
        try:
            durable.rename(path, os.path.join(
                self.quarantine_dir, os.path.basename(path)))
        except OSError:
            pass
        self._forget(key)
        self.stats.quarantined += 1

    def _forget(self, key: str) -> None:
        if self._index.pop(key, None) is not None:
            self._write_index()

    def _evict_to_budget(self) -> None:
        while len(self._index) > 1 and self.current_bytes > self.max_bytes:
            oldest = min(self._index, key=lambda k: self._index[k]["seq"])
            self._index.pop(oldest)
            durable.remove(self._entry_path(oldest))
            self.stats.evictions += 1

    def _write_index(self) -> None:
        try:
            durable.atomic_write_json(
                self._index_path,
                {"v": 1, "next_seq": self._next_seq,
                 "entries": self._index})
        except OSError:
            self.stats.write_errors += 1

    def _load_index(self) -> None:
        """Rebuild the index from disk; entries without files are
        dropped, files without entries are quarantined (their ordering
        is unknown, so they cannot be trusted into the budget)."""
        try:
            with open(self._index_path, "rb") as fh:
                import json

                data = json.loads(fh.read())
            self._next_seq = int(data.get("next_seq", 1))
            entries = data.get("entries", {})
        except (OSError, ValueError):
            self._next_seq = 1
            entries = {}
        self._index = {
            key: meta for key, meta in entries.items()
            if os.path.exists(self._entry_path(key))}
        for name in sorted(os.listdir(self.directory)):
            if not name.endswith(ENTRY_SUFFIX):
                continue
            key = name[:-len(ENTRY_SUFFIX)]
            if key not in self._index:
                durable.rename(
                    os.path.join(self.directory, name),
                    os.path.join(self.quarantine_dir, name))
                self.stats.quarantined += 1
