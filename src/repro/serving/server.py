"""The hyperspectral job server: one event loop, a persistent worker
pool, a content-addressed cache, and the coalescer that ties them
together.

Architecture (see ``docs/serving.md`` for the full treatment)::

    submit ──► admission (bounded queue, reject-with-retry-after)
                  │
                  ├── key in flight?  ──► coalesce onto the live job
                  ├── key in cache?   ──► serve the cached result
                  ├── key on disk?    ──► verify sha, promote, serve
                  └── else ──► journal ──► queue ──► worker task
                                               │
                                               └─ executor thread
                                                  (persistent Pipeline,
                                                   heartbeats, retry
                                                   loop per attempt)

Every request is content-addressed (:func:`~repro.serving.api.job_key`)
before anything else happens, which is what makes the dedup layers —
in-flight coalescing, the memory cache, the disk tier — sound: N
identical submissions cost exactly one pipeline execution, whether
they arrive together (coalesced), spread over time (cached), or across
a server restart (disk tier + journal replay).

Durability (optional, enabled by ``state_dir``): every lifecycle
transition is appended to a write-ahead journal
(:class:`~repro.serving.journal.JobJournal`) before it is acted on,
request payloads are spilled so queued/running jobs survive a crash,
and completed results are written through to a sha-verified disk cache
tier (:class:`~repro.serving.diskcache.DiskCacheTier`).  On start the
journal is replayed: interrupted jobs re-enqueue from their spilled
payloads, completed jobs are recreated terminal without re-execution.
Journal/disk faults never fail a job — they degrade durability and are
counted (``journal_errors``, disk ``write_errors``), both visible in
:meth:`AMCServer.health`.

Self-healing: executor threads heartbeat through their job's
:class:`~repro.serving.watchdog.Heartbeat`; the
:class:`~repro.serving.watchdog.Watchdog` monitor requeues jobs whose
heartbeat goes stale (under the job's own retry budget, with a
``generation`` guard dropping the zombie attempt's late result) or
fails them with :class:`~repro.errors.StuckJobError` once the budget
is spent.

The server is workload-generic: each submission names a registered
:class:`~repro.workloads.Workload` (default ``"amc"``), which supplies
the config schema (invalid parameters fail at admission), the input
validation (non-finite or zero-sized cubes are rejected at submit
time, before they occupy a queue slot), the cache-key parameter list,
the pipeline the executor threads keep warm, and the result
digest/size accounting.  Execution rides the existing machinery
unchanged: jobs run through ``workload.run(...)`` on a long-lived
per-(thread, workload) :class:`~repro.pipeline.Pipeline` (the
``run_amc_batch`` reuse discipline), wrapped in the
:mod:`repro.resilience` retry loop, so a transient fault, a crashed
worker or a GPU OOM degrades *one job* — never the server.

Threading discipline: all server state (jobs table, coalescing map,
caches, journal, counters) is touched only from the event-loop thread;
executor threads see nothing but their job's payload, their heartbeat,
and their own pipelines.
"""

from __future__ import annotations

import asyncio
import os.path
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from threading import local

from repro.errors import (JobNotFoundError, ServerBusyError,
                          ServerClosedError, ServingError, StuckJobError,
                          TransientFaultError)
from repro.faults import maybe_inject
from repro.profiling.profiler import Profiler
from repro.resilience import RetryPolicy, run_isolated, run_with_retry
from repro.serving import jobs as jobstates
from repro.serving.api import job_key, result_digest
from repro.serving.cache import ResultCache
from repro.serving.diskcache import DiskCacheTier
from repro.serving.jobs import Job, JobStatus
from repro.serving.journal import JobJournal
from repro.serving.queue import AdmissionQueue
from repro.serving.watchdog import Heartbeat, Watchdog
from repro.workloads import get_workload


@dataclass
class ServerCounters:
    """Request-accounting counters of one :class:`AMCServer`.

    ``submitted`` counts every accepted ``submit`` call;
    ``coalesced`` + ``cache_hits`` + ``disk_cache_hits`` + ``executed``
    partition it (minus rejections, counted by the queue, and
    cancellations).  ``executed`` is jobs that reached a pipeline;
    ``completed``/``failed`` split their outcomes.  ``recovered`` is
    jobs journal replay re-enqueued after a restart; ``stale_drops``
    is zombie-attempt outcomes discarded by the generation guard.
    """

    submitted: int = 0
    coalesced: int = 0
    cache_hits: int = 0
    disk_cache_hits: int = 0
    rejected: int = 0
    executed: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    recovered: int = 0
    stale_drops: int = 0

    def as_dict(self) -> dict[str, int]:
        """The counters as a plain dict (for ``stats()`` reports)."""
        return {"submitted": self.submitted, "coalesced": self.coalesced,
                "cache_hits": self.cache_hits,
                "disk_cache_hits": self.disk_cache_hits,
                "rejected": self.rejected,
                "executed": self.executed, "completed": self.completed,
                "failed": self.failed, "cancelled": self.cancelled,
                "recovered": self.recovered,
                "stale_drops": self.stale_drops}


class AMCServer:
    """An asyncio job server for classify/detect requests.

    Parameters
    ----------
    workers:
        Concurrent executor threads (each owns one persistent
        pipeline).  Per-job chunk parallelism (``params["n_workers"]``)
        nests inside these as usual.
    queue_size:
        Admission bound — jobs waiting beyond the running ones before
        submissions are rejected with a retry-after hint.
    cache_entries / cache_bytes:
        Result-cache budgets (see
        :class:`~repro.serving.cache.ResultCache`).
    state_dir:
        Directory for the durable tier (write-ahead journal, payload
        spill, disk result cache).  ``None`` (the default) keeps the
        server fully in-memory — the historical behavior.
    disk_cache_bytes:
        Byte budget of the disk cache tier (with ``state_dir`` only).
    watchdog_deadline_s:
        Default heartbeat-age limit before a running job is considered
        stuck; ``None`` disables the watchdog monitor.
    watchdog_poll_s:
        Watchdog wake interval.
    default_workload:
        The workload submissions run when they name none — a
        :mod:`repro.workloads` registry name or instance (default
        ``"amc"``).
    default_params:
        Parameter defaults merged under each request's params *for the
        default workload* (a mapping of its config field overrides;
        requests naming a different workload take their params as-is —
        field names are not portable across config schemas).
    estimated_job_s:
        Per-job service-time estimate behind ``retry_after_s``.
    """

    def __init__(self, *, workers: int = 2, queue_size: int = 16,
                 cache_entries: int = 64, cache_bytes: int = 256 << 20,
                 state_dir: str | None = None,
                 disk_cache_bytes: int = 1 << 30,
                 watchdog_deadline_s: float | None = None,
                 watchdog_poll_s: float = 0.25,
                 default_workload="amc", default_params=None,
                 estimated_job_s: float = 1.0) -> None:
        if workers < 1:
            raise ServingError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.default_workload = get_workload(default_workload)
        self.default_params = dict(default_params or {})
        # validate defaults at build time, against the right schema
        self.default_workload.as_config(self.default_params)
        self.counters = ServerCounters()
        self.cache = ResultCache(max_entries=cache_entries,
                                 max_bytes=cache_bytes)
        self.queue = AdmissionQueue(maxsize=queue_size,
                                    estimated_job_s=estimated_job_s)
        self.journal: JobJournal | None = None
        self.disk_cache: DiskCacheTier | None = None
        if state_dir is not None:
            self.journal = JobJournal(state_dir)
            self.disk_cache = DiskCacheTier(
                os.path.join(state_dir, "cache"),
                max_bytes=disk_cache_bytes)
        self.watchdog: Watchdog | None = None
        if watchdog_deadline_s is not None:
            self.watchdog = Watchdog(self, deadline_s=watchdog_deadline_s,
                                     poll_s=watchdog_poll_s)
        #: Journal/spill appends that failed (durability degraded,
        #: jobs unaffected).
        self.journal_errors = 0
        self._jobs: dict[int, Job] = {}
        self._inflight: dict[str, Job] = {}
        self._next_id = 1
        self._running = False
        self._worker_tasks: list[asyncio.Task] = []
        self._requeue_tasks: set[asyncio.Task] = set()
        self._executor: ThreadPoolExecutor | None = None
        self._thread_state = local()
        #: Every pipeline any executor thread ever built — the ground
        #: truth for the zero-duplicate-execution acceptance check.
        self._pipelines: list = []

    # -- lifecycle -------------------------------------------------------

    @property
    def running(self) -> bool:
        """Whether the server is accepting submissions."""
        return self._running

    @property
    def pipeline_runs(self) -> int:
        """Total pipeline executions across every executor thread."""
        return sum(pipeline.run_count for pipeline in self._pipelines)

    async def start(self) -> "AMCServer":
        """Spawn the worker tasks and the executor; begin accepting.

        With a ``state_dir``, the journal is replayed first: jobs that
        were queued or running at crash time re-enqueue from their
        spilled payloads, completed jobs are recreated terminal (their
        results live in the disk tier — no re-execution), and the
        journal is compacted to one record per job.
        """
        if self._running:
            raise ServingError("server is already running")
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="amc-serve")
        if self.journal is not None:
            await self._recover()
        self._worker_tasks = [
            asyncio.create_task(self._worker_loop(), name=f"amc-worker-{i}")
            for i in range(self.workers)]
        if self.watchdog is not None:
            self.watchdog.start()
        self._running = True
        return self

    async def stop(self, *, drain: bool = True) -> None:
        """Stop accepting, finish work, shut the executor down.

        ``drain=True`` (default) completes every admitted job first;
        ``drain=False`` cancels the still-queued ones (running jobs
        always finish — the executor cannot abandon a thread safely).
        """
        if not self._running:
            return
        self._running = False
        if not drain:
            for job in self.queue.drain():
                if job is not None and job.state == jobstates.QUEUED:
                    self._cancel_queued(job)
        await self.queue.join()
        for _ in self._worker_tasks:
            await self.queue.put_sentinel()
        await asyncio.gather(*self._worker_tasks)
        self._worker_tasks = []
        if self.watchdog is not None:
            await self.watchdog.stop()
        for task in list(self._requeue_tasks):
            task.cancel()
        self._requeue_tasks.clear()
        if self.journal is not None:
            self.journal.close()
        self._executor.shutdown(wait=True)
        self._executor = None

    async def __aenter__(self) -> "AMCServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- the client-facing API -------------------------------------------

    async def submit(self, cube, params=None, *, workload=None,
                     ground_truth=None, class_names=None) -> Job:
        """Admit one request; returns its :class:`Job`.

        ``workload`` names the algorithm (registry name or instance;
        None = the server's default).  Dedup order: an identical
        in-flight job coalesces (the same Job object is returned, no
        new queue slot); an identical cached key — memory first, then
        the sha-verified disk tier — returns a job born ``done``;
        otherwise the request passes admission control — raising
        :class:`~repro.errors.ServerBusyError` when the queue is full
        — is journaled (when durable), and is queued.  Invalid
        parameters and non-finite or zero-sized cubes raise here, at
        admission, through the workload's own config schema and input
        validation.
        """
        if not self._running:
            raise ServerClosedError("server is not running")
        wl = (self.default_workload if workload is None
              else get_workload(workload))
        if wl is self.default_workload:
            merged = dict(self.default_params)
            if params is not None:
                merged.update(dict(params))
        else:
            # default_params speak the default workload's schema; a
            # request for another workload supplies its params whole
            merged = dict(params or {})
        config = wl.as_config(merged)
        bip = wl.check_inputs(cube)
        key = job_key(bip, config, ground_truth=ground_truth,
                      class_names=class_names, workload=wl)

        live = self._inflight.get(key)
        if live is not None:
            live.coalesced += 1
            self.counters.submitted += 1
            self.counters.coalesced += 1
            return live

        entry = self.cache.get(key)
        if entry is not None:
            job = self._new_job(key, bip=None, config=config, workload=wl)
            job.serve_from_cache(entry)
            self.counters.submitted += 1
            self.counters.cache_hits += 1
            return job

        if self.disk_cache is not None:
            entry = self.disk_cache.get(key)
            if entry is not None:
                # promote into the memory tier so the next hit is hot
                self.cache.put(key, entry.result, entry.report,
                               entry.digest, nbytes=entry.nbytes)
                job = self._new_job(key, bip=None, config=config,
                                    workload=wl)
                job.serve_from_cache(entry)
                self.counters.submitted += 1
                self.counters.disk_cache_hits += 1
                return job

        job = self._new_job(key, bip=bip, config=config, workload=wl,
                            ground_truth=ground_truth,
                            class_names=class_names)
        try:
            self.queue.admit(job)
        except ServerBusyError:
            del self._jobs[job.job_id]
            self.counters.rejected += 1
            raise
        self._inflight[key] = job
        self._spill_safe(job)
        self._journal_safe(jobstates.QUEUED, job)
        self.counters.submitted += 1
        return job

    def status(self, job_id: int) -> JobStatus:
        """The current snapshot of one job."""
        return self._job(job_id).status()

    def job(self, job_id: int) -> Job:
        """The live :class:`Job` record (in-process callers)."""
        return self._job(job_id)

    def job_statuses(self) -> list[JobStatus]:
        """Snapshots of every job this server has seen, by id."""
        return [job.status() for _, job in sorted(self._jobs.items())]

    async def wait(self, job_id: int) -> JobStatus:
        """Await a job's terminal state; returns the final snapshot."""
        job = self._job(job_id)
        await job.done.wait()
        return job.status()

    async def cancel(self, job_id: int) -> JobStatus:
        """Cancel a job if it is still queued.

        Running jobs are not interrupted (the executor owns them) and
        terminal jobs are left alone; either way the current snapshot
        is returned, so callers branch on ``.state``, not on errors.
        """
        job = self._job(job_id)
        if job.state == jobstates.QUEUED:
            self._cancel_queued(job)
        return job.status()

    def stats(self) -> dict:
        """One observable snapshot: counters, queue, cache, pipelines."""
        return {
            "running": self._running,
            "workers": self.workers,
            "jobs": len(self._jobs),
            "queue_depth": self.queue.depth,
            "queue_maxsize": self.queue.maxsize,
            "pipeline_runs": self.pipeline_runs,
            "counters": self.counters.as_dict(),
            "cache": self.cache.as_dict(),
        }

    def health(self) -> dict:
        """The self-diagnosis snapshot behind the ``health`` verb.

        Queue pressure, both cache tiers, journal occupancy and write
        errors, watchdog activity, and the heartbeat age of every
        running job — everything an operator (or a client backoff
        loop) needs to judge whether the server is healthy, loaded, or
        wedged.
        """
        running_jobs = [
            {"job_id": job.job_id,
             "generation": job.generation,
             "heartbeat_age_s": (None if job.heartbeat is None
                                 else round(job.heartbeat.age(), 3))}
            for job in self._jobs.values()
            if job.state == jobstates.RUNNING]
        return {
            "running": self._running,
            "workers": self.workers,
            "queue": {"depth": self.queue.depth,
                      "maxsize": self.queue.maxsize,
                      "rejected": self.queue.rejected,
                      "retry_after_s": self.queue.retry_after_s()},
            "journal": (None if self.journal is None
                        else dict(self.journal.stats(),
                                  write_errors=self.journal_errors)),
            "cache": {"memory": self.cache.as_dict(),
                      "disk": (None if self.disk_cache is None
                               else self.disk_cache.as_dict())},
            "watchdog": (self.watchdog.as_dict()
                         if self.watchdog is not None
                         else {"enabled": False}),
            "running_jobs": running_jobs,
            "pipeline_runs": self.pipeline_runs,
            "counters": self.counters.as_dict(),
        }

    # -- internals -------------------------------------------------------

    def _new_job(self, key: str, *, bip, config, workload,
                 ground_truth=None, class_names=None) -> Job:
        job = Job(self._next_id, key, bip=bip, config=config,
                  workload=workload, ground_truth=ground_truth,
                  class_names=class_names)
        self._jobs[job.job_id] = job
        self._next_id += 1
        return job

    def _job(self, job_id: int) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFoundError(f"no job with id {job_id}")
        return job

    def _cancel_queued(self, job: Job) -> None:
        job.transition(jobstates.CANCELLED)
        self._inflight.pop(job.key, None)
        job.release_payload()
        self._journal_safe(jobstates.CANCELLED, job)
        if self.journal is not None:
            self.journal.drop_payload(job.key)
        self.counters.cancelled += 1

    # -- durability ------------------------------------------------------

    def _journal_safe(self, state: str, job: Job, *,
                      digest: str | None = None,
                      error: str | None = None) -> None:
        """Append one transition; a journal fault degrades durability,
        never the job (counted, surfaced in ``health()``)."""
        if self.journal is None:
            return
        workload = None if job.workload is None else job.workload.name
        try:
            self.journal.append(state, job_id=job.job_id, key=job.key,
                                workload=workload, digest=digest,
                                error=error, generation=job.generation)
        except (TransientFaultError, OSError):
            self.journal_errors += 1

    def _spill_safe(self, job: Job) -> None:
        """Spill one request payload with the same containment."""
        if self.journal is None:
            return
        try:
            self.journal.spill_payload(
                job.key, bip=job.bip, config=job.config,
                workload=job.workload.name,
                ground_truth=job.ground_truth,
                class_names=job.class_names)
        except (TransientFaultError, OSError):
            self.journal_errors += 1

    async def _recover(self) -> None:
        """Replay the journal: recreate history, re-enqueue lost work."""
        report = self.journal.replay()
        if not report.jobs:
            return
        self.journal.compact(report)
        self._next_id = max(self._next_id, report.max_job_id + 1)
        for replayed in report.jobs.values():
            workload = (None if replayed.workload is None
                        else get_workload(replayed.workload))
            if replayed.state in jobstates.TERMINAL_STATES:
                job = Job(replayed.job_id, replayed.key, bip=None,
                          config=None, workload=workload,
                          state=replayed.state)
                job.recovered = True
                job.generation = replayed.generation
                job.result_sha256 = replayed.digest
                job.error = replayed.error
                job.done.set()
                self._jobs[job.job_id] = job
                continue
            # queued or running at crash time: the execution was lost
            payload = self.journal.load_payload(replayed.key)
            if payload is None:
                job = Job(replayed.job_id, replayed.key, bip=None,
                          config=None, workload=workload,
                          state=jobstates.FAILED)
                job.recovered = True
                job.error = ("ServingError: request payload lost or "
                             "corrupt — cannot replay the job")
                job.done.set()
                self._jobs[job.job_id] = job
                self._journal_safe(jobstates.FAILED, job,
                                   error=job.error)
                self.counters.failed += 1
                continue
            workload = get_workload(payload["workload"])
            job = Job(replayed.job_id, replayed.key, bip=payload["bip"],
                      config=payload["config"], workload=workload,
                      ground_truth=payload["ground_truth"],
                      class_names=payload["class_names"],
                      state=jobstates.QUEUED)
            job.recovered = True
            job.generation = replayed.generation
            self._jobs[job.job_id] = job
            self._inflight[job.key] = job
            await self.queue.readmit(job)
            self._journal_safe(jobstates.QUEUED, job)
            self.counters.recovered += 1

    # -- the watchdog's callback -----------------------------------------

    def _rescue_stuck(self, job: Job, *, age: float,
                      deadline: float) -> bool:
        """Requeue or fail one stuck job (event-loop thread only).

        Returns True when the job was requeued, False when its retry
        budget was exhausted and it was failed.  Either way the
        generation bump makes the zombie attempt's eventual outcome
        stale.
        """
        budget = getattr(job.config, "max_retries", 0) or 0
        job.generation += 1
        if job.watchdog_requeues >= budget:
            job.error = StuckJobError(
                f"job {job.job_id}: no heartbeat for {age:.2f}s "
                f"(deadline {deadline:.2f}s) and the retry budget "
                f"({budget}) is spent")
            job.transition(jobstates.FAILED)
            self._journal_safe(jobstates.FAILED, job,
                               error=f"StuckJobError: {job.error}")
            if self.journal is not None:
                self.journal.drop_payload(job.key)
            self._inflight.pop(job.key, None)
            job.release_payload()
            self.counters.failed += 1
            return False
        job.watchdog_requeues += 1
        job.transition(jobstates.QUEUED)
        self._journal_safe(jobstates.QUEUED, job)
        task = asyncio.create_task(self.queue.readmit(job),
                                   name=f"requeue-{job.job_id}")
        self._requeue_tasks.add(task)
        task.add_done_callback(self._requeue_tasks.discard)
        return True

    # -- execution -------------------------------------------------------

    async def _worker_loop(self) -> None:
        """One server worker: pull admitted jobs, run them off-loop."""
        loop = asyncio.get_running_loop()
        while True:
            job = await self.queue.next_job()
            try:
                if job is None:
                    return
                if job.state != jobstates.QUEUED:
                    continue  # cancelled (or watchdog-failed) while waiting
                job.transition(jobstates.RUNNING)
                job.heartbeat = Heartbeat()
                generation = job.generation
                self._journal_safe(jobstates.RUNNING, job)
                self.counters.executed += 1
                result, report, retries, error = await loop.run_in_executor(
                    self._executor, self._execute, job, generation)
                self._finish(job, generation, result, report, retries,
                             error)
            finally:
                self.queue.task_done()

    def _finish(self, job: Job, generation: int, result, report,
                retries, error) -> None:
        """Apply one execution outcome (event-loop thread only).

        The generation guard drops stale outcomes: if the watchdog
        requeued (or failed) the job while this attempt was wedged,
        the attempt's late result must not overwrite the rescue.
        """
        if job.state != jobstates.RUNNING or generation != job.generation:
            self.counters.stale_drops += 1
            return
        job.retries = retries
        if report is not None and job.events:
            report = replace(report,
                             events=report.events + tuple(job.events))
        job.report = report
        if error is None:
            job.result = result
            job.result_sha256 = result_digest(result, workload=job.workload)
            job.transition(jobstates.DONE)
            self.counters.completed += 1
            nbytes = job.workload.result_nbytes(result)
            self.cache.put(job.key, result, report, job.result_sha256,
                           nbytes=nbytes)
            self._journal_safe(jobstates.DONE, job,
                               digest=job.result_sha256)
            if self.disk_cache is not None:
                self.disk_cache.put(job.key, result, report,
                                    job.result_sha256, nbytes=nbytes,
                                    workload=job.workload.name)
        else:
            job.error = error
            job.transition(jobstates.FAILED)
            self.counters.failed += 1
            self._journal_safe(
                jobstates.FAILED, job,
                error=f"{type(error).__name__}: {error}")
        if self.journal is not None:
            self.journal.drop_payload(job.key)
        self._inflight.pop(job.key, None)
        job.release_payload()

    def _thread_pipeline(self, workload):
        """This executor thread's persistent pipeline for ``workload``
        (built once per thread and workload)."""
        pipelines = getattr(self._thread_state, "pipelines", None)
        if pipelines is None:
            pipelines = {}
            self._thread_state.pipelines = pipelines
        pipeline = pipelines.get(workload.name)
        if pipeline is None:
            pipeline = workload.build_pipeline()
            pipelines[workload.name] = pipeline
            self._pipelines.append(pipeline)
        return pipeline

    def _execute(self, job: Job, generation: int):
        """Run one job in an executor thread; never raises.

        Returns ``(result, report, retries, error)``.  Retries follow
        the job's own parameters (``max_retries`` /
        ``chunk_timeout_s``) through the standard
        :mod:`repro.resilience` loop; each attempt gets a fresh
        profiler so the surfaced report describes the successful
        attempt only, while the retry count records what recovery cost.

        Attempt numbering is generation-disjoint
        (``attempt_base = generation * (max_retries + 1)``), the same
        idiom the pool-recovery path uses: a fault pinned to attempt 0
        fires on the first generation only, so a watchdog-rescued job
        re-executes clean.  The heartbeat is refreshed at every
        attempt boundary; the ``heartbeat_stall`` fault site between
        the beat and the run is where chaos tests wedge the thread.
        """
        policy = RetryPolicy(max_retries=job.config.max_retries,
                             chunk_timeout_s=job.config.chunk_timeout_s)
        workload = job.workload
        pipeline = self._thread_pipeline(workload)
        heartbeat = job.heartbeat

        def attempt(_):
            heartbeat.beat()
            maybe_inject("heartbeat_stall", index=job.job_id)
            meta = {"job": job.job_id, "key": job.key[:12],
                    "workload": workload.name,
                    "workers": job.config.n_workers}
            backend = getattr(job.config, "backend", None)
            if backend is not None:
                meta["backend"] = backend
            profiler = Profiler(meta=meta)
            maybe_inject("job", index=job.job_id)
            result = workload.run(job.bip, job.config,
                                  ground_truth=job.ground_truth,
                                  class_names=job.class_names,
                                  profiler=profiler, pipeline=pipeline)
            heartbeat.beat()
            return result, profiler.report()

        outcome, error = run_isolated(
            run_with_retry, attempt, None, index=job.job_id,
            policy=policy,
            attempt_base=generation * (policy.max_retries + 1))
        if error is not None:
            return None, None, 0, error
        result, report = outcome.value
        return result, report, outcome.retries, None
