"""The hyperspectral job server: one event loop, a persistent worker
pool, a content-addressed cache, and the coalescer that ties them
together.

Architecture (see ``docs/serving.md`` for the full treatment)::

    submit ──► admission (bounded queue, reject-with-retry-after)
                  │
                  ├── key in flight?  ──► coalesce onto the live job
                  ├── key in cache?   ──► serve the cached result
                  └── else ──► queue ──► worker task ──► executor thread
                                               │
                                               └─ persistent Pipeline
                                                  (one per thread and
                                                   workload, reused
                                                   for life)

Every request is content-addressed (:func:`~repro.serving.api.job_key`)
before anything else happens, which is what makes the two dedup layers
— in-flight coalescing and the result cache — sound: N identical
submissions cost exactly one pipeline execution, whether they arrive
together (coalesced) or spread over time (cached).

The server is workload-generic: each submission names a registered
:class:`~repro.workloads.Workload` (default ``"amc"``), which supplies
the config schema (invalid parameters fail at admission), the input
validation (a non-finite cube is rejected at submit time, before it
occupies a queue slot), the cache-key parameter list, the pipeline the
executor threads keep warm, and the result digest/size accounting.
Execution rides the existing machinery unchanged: jobs run through
``workload.run(...)`` on a long-lived per-(thread, workload)
:class:`~repro.pipeline.Pipeline` (the ``run_amc_batch`` reuse
discipline), wrapped in the :mod:`repro.resilience` retry loop, so a
transient fault, a crashed worker or a GPU OOM degrades *one job* —
never the server.  Each job carries its own
:class:`~repro.profiling.Profiler` tagged with its workload name; the
frozen per-job report travels with the job (and with its cache entry),
so a cache hit still explains where its time originally went.

Threading discipline: all server state (jobs table, coalescing map,
cache, counters) is touched only from the event-loop thread; executor
threads see nothing but their job's payload and their own pipelines.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from threading import local

from repro.errors import (JobNotFoundError, ServerBusyError,
                          ServerClosedError, ServingError)
from repro.faults import maybe_inject
from repro.profiling.profiler import Profiler
from repro.resilience import RetryPolicy, run_isolated, run_with_retry
from repro.serving import jobs as jobstates
from repro.serving.api import job_key, result_digest
from repro.serving.cache import ResultCache
from repro.serving.jobs import Job, JobStatus
from repro.serving.queue import AdmissionQueue
from repro.workloads import get_workload


@dataclass
class ServerCounters:
    """Request-accounting counters of one :class:`AMCServer`.

    ``submitted`` counts every accepted ``submit`` call;
    ``coalesced`` + ``cache_hits`` + ``executed`` partition it (minus
    rejections, counted by the queue, and cancellations).  ``executed``
    is jobs that reached a pipeline; ``completed``/``failed`` split
    their outcomes.
    """

    submitted: int = 0
    coalesced: int = 0
    cache_hits: int = 0
    rejected: int = 0
    executed: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0

    def as_dict(self) -> dict[str, int]:
        """The counters as a plain dict (for ``stats()`` reports)."""
        return {"submitted": self.submitted, "coalesced": self.coalesced,
                "cache_hits": self.cache_hits, "rejected": self.rejected,
                "executed": self.executed, "completed": self.completed,
                "failed": self.failed, "cancelled": self.cancelled}


class AMCServer:
    """An asyncio job server for classify/detect requests.

    Parameters
    ----------
    workers:
        Concurrent executor threads (each owns one persistent
        pipeline).  Per-job chunk parallelism (``params["n_workers"]``)
        nests inside these as usual.
    queue_size:
        Admission bound — jobs waiting beyond the running ones before
        submissions are rejected with a retry-after hint.
    cache_entries / cache_bytes:
        Result-cache budgets (see
        :class:`~repro.serving.cache.ResultCache`).
    default_workload:
        The workload submissions run when they name none — a
        :mod:`repro.workloads` registry name or instance (default
        ``"amc"``).
    default_params:
        Parameter defaults merged under each request's params *for the
        default workload* (a mapping of its config field overrides;
        requests naming a different workload take their params as-is —
        field names are not portable across config schemas).
    estimated_job_s:
        Per-job service-time estimate behind ``retry_after_s``.
    """

    def __init__(self, *, workers: int = 2, queue_size: int = 16,
                 cache_entries: int = 64, cache_bytes: int = 256 << 20,
                 default_workload="amc", default_params=None,
                 estimated_job_s: float = 1.0) -> None:
        if workers < 1:
            raise ServingError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.default_workload = get_workload(default_workload)
        self.default_params = dict(default_params or {})
        # validate defaults at build time, against the right schema
        self.default_workload.as_config(self.default_params)
        self.counters = ServerCounters()
        self.cache = ResultCache(max_entries=cache_entries,
                                 max_bytes=cache_bytes)
        self.queue = AdmissionQueue(maxsize=queue_size,
                                    estimated_job_s=estimated_job_s)
        self._jobs: dict[int, Job] = {}
        self._inflight: dict[str, Job] = {}
        self._next_id = 1
        self._running = False
        self._worker_tasks: list[asyncio.Task] = []
        self._executor: ThreadPoolExecutor | None = None
        self._thread_state = local()
        #: Every pipeline any executor thread ever built — the ground
        #: truth for the zero-duplicate-execution acceptance check.
        self._pipelines: list = []

    # -- lifecycle -------------------------------------------------------

    @property
    def running(self) -> bool:
        """Whether the server is accepting submissions."""
        return self._running

    @property
    def pipeline_runs(self) -> int:
        """Total pipeline executions across every executor thread."""
        return sum(pipeline.run_count for pipeline in self._pipelines)

    async def start(self) -> "AMCServer":
        """Spawn the worker tasks and the executor; begin accepting."""
        if self._running:
            raise ServingError("server is already running")
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="amc-serve")
        self._worker_tasks = [
            asyncio.create_task(self._worker_loop(), name=f"amc-worker-{i}")
            for i in range(self.workers)]
        self._running = True
        return self

    async def stop(self, *, drain: bool = True) -> None:
        """Stop accepting, finish work, shut the executor down.

        ``drain=True`` (default) completes every admitted job first;
        ``drain=False`` cancels the still-queued ones (running jobs
        always finish — the executor cannot abandon a thread safely).
        """
        if not self._running:
            return
        self._running = False
        if not drain:
            for job in self.queue.drain():
                if job is not None and job.state == jobstates.QUEUED:
                    self._cancel_queued(job)
        await self.queue.join()
        for _ in self._worker_tasks:
            await self.queue.put_sentinel()
        await asyncio.gather(*self._worker_tasks)
        self._worker_tasks = []
        self._executor.shutdown(wait=True)
        self._executor = None

    async def __aenter__(self) -> "AMCServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- the client-facing API -------------------------------------------

    async def submit(self, cube, params=None, *, workload=None,
                     ground_truth=None, class_names=None) -> Job:
        """Admit one request; returns its :class:`Job`.

        ``workload`` names the algorithm (registry name or instance;
        None = the server's default).  Dedup order: an identical
        in-flight job coalesces (the same Job object is returned, no
        new queue slot); an identical cached key returns a job born
        ``done``; otherwise the request passes admission control —
        raising :class:`~repro.errors.ServerBusyError` when the queue
        is full — and is queued.  Invalid parameters and non-finite
        cubes raise here, at admission, through the workload's own
        config schema and input validation.
        """
        if not self._running:
            raise ServerClosedError("server is not running")
        wl = (self.default_workload if workload is None
              else get_workload(workload))
        if wl is self.default_workload:
            merged = dict(self.default_params)
            if params is not None:
                merged.update(dict(params))
        else:
            # default_params speak the default workload's schema; a
            # request for another workload supplies its params whole
            merged = dict(params or {})
        config = wl.as_config(merged)
        bip = wl.check_inputs(cube)
        key = job_key(bip, config, ground_truth=ground_truth,
                      class_names=class_names, workload=wl)

        live = self._inflight.get(key)
        if live is not None:
            live.coalesced += 1
            self.counters.submitted += 1
            self.counters.coalesced += 1
            return live

        entry = self.cache.get(key)
        if entry is not None:
            job = self._new_job(key, bip=None, config=config, workload=wl)
            job.serve_from_cache(entry)
            self.counters.submitted += 1
            self.counters.cache_hits += 1
            return job

        job = self._new_job(key, bip=bip, config=config, workload=wl,
                            ground_truth=ground_truth,
                            class_names=class_names)
        try:
            self.queue.admit(job)
        except ServerBusyError:
            del self._jobs[job.job_id]
            self.counters.rejected += 1
            raise
        self._inflight[key] = job
        self.counters.submitted += 1
        return job

    def status(self, job_id: int) -> JobStatus:
        """The current snapshot of one job."""
        return self._job(job_id).status()

    def job(self, job_id: int) -> Job:
        """The live :class:`Job` record (in-process callers)."""
        return self._job(job_id)

    def job_statuses(self) -> list[JobStatus]:
        """Snapshots of every job this server has seen, by id."""
        return [job.status() for _, job in sorted(self._jobs.items())]

    async def wait(self, job_id: int) -> JobStatus:
        """Await a job's terminal state; returns the final snapshot."""
        job = self._job(job_id)
        await job.done.wait()
        return job.status()

    async def cancel(self, job_id: int) -> JobStatus:
        """Cancel a job if it is still queued.

        Running jobs are not interrupted (the executor owns them) and
        terminal jobs are left alone; either way the current snapshot
        is returned, so callers branch on ``.state``, not on errors.
        """
        job = self._job(job_id)
        if job.state == jobstates.QUEUED:
            self._cancel_queued(job)
        return job.status()

    def stats(self) -> dict:
        """One observable snapshot: counters, queue, cache, pipelines."""
        return {
            "running": self._running,
            "workers": self.workers,
            "jobs": len(self._jobs),
            "queue_depth": self.queue.depth,
            "queue_maxsize": self.queue.maxsize,
            "pipeline_runs": self.pipeline_runs,
            "counters": self.counters.as_dict(),
            "cache": self.cache.as_dict(),
        }

    # -- internals -------------------------------------------------------

    def _new_job(self, key: str, *, bip, config, workload,
                 ground_truth=None, class_names=None) -> Job:
        job = Job(self._next_id, key, bip=bip, config=config,
                  workload=workload, ground_truth=ground_truth,
                  class_names=class_names)
        self._jobs[job.job_id] = job
        self._next_id += 1
        return job

    def _job(self, job_id: int) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFoundError(f"no job with id {job_id}")
        return job

    def _cancel_queued(self, job: Job) -> None:
        job.transition(jobstates.CANCELLED)
        self._inflight.pop(job.key, None)
        job.release_payload()
        self.counters.cancelled += 1

    async def _worker_loop(self) -> None:
        """One server worker: pull admitted jobs, run them off-loop."""
        loop = asyncio.get_running_loop()
        while True:
            job = await self.queue.next_job()
            try:
                if job is None:
                    return
                if job.state != jobstates.QUEUED:
                    continue  # cancelled while waiting
                job.transition(jobstates.RUNNING)
                self.counters.executed += 1
                result, report, retries, error = await loop.run_in_executor(
                    self._executor, self._execute, job)
                self._finish(job, result, report, retries, error)
            finally:
                self.queue.task_done()

    def _finish(self, job: Job, result, report, retries, error) -> None:
        """Apply one execution outcome (event-loop thread only)."""
        job.retries = retries
        job.report = report
        if error is None:
            job.result = result
            job.result_sha256 = result_digest(result, workload=job.workload)
            job.transition(jobstates.DONE)
            self.counters.completed += 1
            self.cache.put(job.key, result, report, job.result_sha256,
                           nbytes=job.workload.result_nbytes(result))
        else:
            job.error = error
            job.transition(jobstates.FAILED)
            self.counters.failed += 1
        self._inflight.pop(job.key, None)
        job.release_payload()

    def _thread_pipeline(self, workload):
        """This executor thread's persistent pipeline for ``workload``
        (built once per thread and workload)."""
        pipelines = getattr(self._thread_state, "pipelines", None)
        if pipelines is None:
            pipelines = {}
            self._thread_state.pipelines = pipelines
        pipeline = pipelines.get(workload.name)
        if pipeline is None:
            pipeline = workload.build_pipeline()
            pipelines[workload.name] = pipeline
            self._pipelines.append(pipeline)
        return pipeline

    def _execute(self, job: Job):
        """Run one job in an executor thread; never raises.

        Returns ``(result, report, retries, error)``.  Retries follow
        the job's own parameters (``max_retries`` /
        ``chunk_timeout_s``) through the standard
        :mod:`repro.resilience` loop; each attempt gets a fresh
        profiler so the surfaced report describes the successful
        attempt only, while the retry count records what recovery cost.
        """
        policy = RetryPolicy(max_retries=job.config.max_retries,
                             chunk_timeout_s=job.config.chunk_timeout_s)
        workload = job.workload
        pipeline = self._thread_pipeline(workload)

        def attempt(_):
            meta = {"job": job.job_id, "key": job.key[:12],
                    "workload": workload.name,
                    "workers": job.config.n_workers}
            backend = getattr(job.config, "backend", None)
            if backend is not None:
                meta["backend"] = backend
            profiler = Profiler(meta=meta)
            maybe_inject("job", index=job.job_id)
            result = workload.run(job.bip, job.config,
                                  ground_truth=job.ground_truth,
                                  class_names=job.class_names,
                                  profiler=profiler, pipeline=pipeline)
            return result, profiler.report()

        outcome, error = run_isolated(run_with_retry, attempt, None,
                                      index=job.job_id, policy=policy)
        if error is not None:
            return None, None, 0, error
        result, report = outcome.value
        return result, report, outcome.retries, None
