"""Request canonicalization and content-addressed job keys.

The serving layer dedupes work by *content*, not by reference: two
requests are the same job exactly when they would run the same bytes
through the same algorithm and parameters.  The key is therefore::

    sha256( cube dtype/shape header + cube bytes (C order)
          + ground-truth bytes (or absence marker)
          + class names
          + workload name
          + canonicalized result-affecting parameters )

Canonicalization delegates to the workload's declared parameter list
(:meth:`repro.workloads.Workload.canonical_params`): a parameter dict
is instantiated into the workload's config dataclass (so defaults are
filled in and values are validated *before* hashing), then serialized
field-by-field in sorted order minus the workload's declared execution
knobs.  Three consequences the tests pin:

* permuted or defaulted parameter dicts hash equal — ``{}``,
  ``{"backend": "reference"}`` and a fully spelled-out default config
  are one job;
* **execution knobs do not change the key.**  ``n_workers``,
  ``max_retries`` and ``chunk_timeout_s`` select *how* a result is
  computed, and the repo-wide bit-identity discipline guarantees they
  cannot change *what* is computed — so a 4-worker request is a cache
  hit for a result computed serially;
* **distinct workloads never collide.**  The workload name is a key
  section of its own, so ``rx`` and ``amc`` on the same cube are two
  jobs even where their parameter dicts render identically.

Every function takes ``workload=`` (name or instance, default
``"amc"`` for the historical call sites) and resolves it through
:func:`repro.workloads.get_workload` — never by comparing names.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np

from repro.core.amc import _as_bip
from repro.workloads import DEFAULT_EXECUTION_KNOBS, get_workload

#: Config fields that select an execution strategy, not a result.
#: Excluded from the cache key: every strategy is bit-identical (the
#: chunk-stitching and resilience guarantees), so caching across them
#: is sound.  (Alias of the workloads-layer constant; individual
#: workloads may declare more via ``Workload.execution_knobs``.)
EXECUTION_KNOBS = DEFAULT_EXECUTION_KNOBS


def as_config(params, *, workload="amc"):
    """Coerce ``params`` (None | mapping | config) to the workload's
    config dataclass.

    A mapping is splatted into the dataclass constructor, so unknown
    keys and invalid values fail here — at admission — rather than
    inside a worker.
    """
    return get_workload(workload).as_config(params)


def canonical_params(params, *, workload="amc") -> dict:
    """The result-affecting parameters of ``params``, as a plain dict.

    Fields are the workload's config fields minus its declared
    execution knobs; nested dataclasses (e.g. the AMC GPU spec)
    flatten to dicts, so the output is JSON-serializable and
    order-independent.
    """
    return get_workload(workload).canonical_params(params)


def canonical_params_json(params, *, workload="amc") -> str:
    """:func:`canonical_params` rendered as deterministic JSON."""
    return json.dumps(canonical_params(params, workload=workload),
                      sort_keys=True)


def _array_token(array: np.ndarray) -> bytes:
    """Dtype/shape header + raw bytes — the content identity of an array.

    ``tobytes()`` serializes in C order regardless of the array's
    memory layout, so BIL/BSQ views of the same scene address the same
    cache entry as their contiguous BIP form.
    """
    header = f"{array.dtype.str}:{array.shape}".encode()
    return header + b"|" + array.tobytes()


def job_key(cube, params=None, *, ground_truth=None,
            class_names=None, workload="amc") -> str:
    """The content-addressed key of one request (sha256 hex).

    ``cube`` is anything :func:`~repro.core.amc.run_amc` accepts (a
    :class:`~repro.hsi.cube.HyperCube` or an (H, W, N) array); the
    ground truth and class names participate because they change the
    produced labels/curves and report; the workload name separates
    algorithms, and ``params`` reaches the hash only through the
    workload's declared parameter list.
    """
    wl = get_workload(workload)
    digest = hashlib.sha256()
    digest.update(_array_token(_as_bip(cube)))
    digest.update(b"|gt|")
    if ground_truth is not None:
        digest.update(_array_token(np.asarray(ground_truth)))
    digest.update(b"|names|")
    digest.update(json.dumps(
        None if class_names is None else list(class_names)).encode())
    digest.update(b"|workload|")
    digest.update(wl.name.encode())
    digest.update(b"|params|")
    digest.update(canonical_params_json(params, workload=wl).encode())
    return digest.hexdigest()


def result_digest(result, *, workload="amc") -> str:
    """sha256 over the result's decision arrays (the workload's
    :meth:`~repro.workloads.Workload.result_arrays`, e.g. labels, MEI
    and abundances for AMC) — the bit-identity fingerprint served to
    clients and asserted by the acceptance tests."""
    digest = hashlib.sha256()
    for array in get_workload(workload).result_arrays(result):
        digest.update(_array_token(np.ascontiguousarray(array)))
    return digest.hexdigest()


def result_nbytes(result, *, workload="amc") -> int:
    """Approximate retained size of one cached result, in bytes.

    Counts the ndarray payloads the workload declares (the dataclass
    scaffolding around them is noise at cache-accounting scale).
    """
    return get_workload(workload).result_nbytes(result)
