"""Request canonicalization and content-addressed job keys.

The serving layer dedupes work by *content*, not by reference: two
requests are the same job exactly when they would run the same bytes
through the same algorithm parameters.  The key is therefore::

    sha256( cube dtype/shape header + cube bytes (C order)
          + ground-truth bytes (or absence marker)
          + class names
          + canonicalized result-affecting parameters )

Canonicalization reuses the :class:`~repro.core.amc.AMCConfig`
dataclass as the single source of truth: a parameter dict is
instantiated into a config (so defaults are filled in and values are
validated *before* hashing), then serialized field-by-field in sorted
order.  Two consequences the tests pin:

* permuted or defaulted parameter dicts hash equal — ``{}``,
  ``{"backend": "reference"}`` and a fully spelled-out default config
  are one job;
* **execution knobs do not change the key.**  ``n_workers``,
  ``max_retries`` and ``chunk_timeout_s`` select *how* a result is
  computed, and the repo-wide bit-identity discipline guarantees they
  cannot change *what* is computed — so a 4-worker request is a cache
  hit for a result computed serially.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict

import numpy as np

from repro.core.amc import AMCConfig, AMCResult, _as_bip

#: Config fields that select an execution strategy, not a result.
#: Excluded from the cache key: every strategy is bit-identical (the
#: chunk-stitching and resilience guarantees), so caching across them
#: is sound.
EXECUTION_KNOBS = frozenset({"n_workers", "max_retries", "chunk_timeout_s"})


def as_config(params) -> AMCConfig:
    """Coerce ``params`` (None | mapping | AMCConfig) to an AMCConfig.

    A mapping is splatted into the dataclass constructor, so unknown
    keys and invalid values fail here — at admission — rather than
    inside a worker.
    """
    if params is None:
        return AMCConfig()
    if isinstance(params, AMCConfig):
        return params
    return AMCConfig(**dict(params))


def canonical_params(params) -> dict:
    """The result-affecting parameters of ``params``, as a plain dict.

    Fields are the :class:`AMCConfig` fields minus
    :data:`EXECUTION_KNOBS`; nested dataclasses (the GPU spec) flatten
    to dicts, so the output is JSON-serializable and order-independent.
    """
    fields = asdict(as_config(params))
    return {name: value for name, value in sorted(fields.items())
            if name not in EXECUTION_KNOBS}


def canonical_params_json(params) -> str:
    """:func:`canonical_params` rendered as deterministic JSON."""
    return json.dumps(canonical_params(params), sort_keys=True)


def _array_token(array: np.ndarray) -> bytes:
    """Dtype/shape header + raw bytes — the content identity of an array.

    ``tobytes()`` serializes in C order regardless of the array's
    memory layout, so BIL/BSQ views of the same scene address the same
    cache entry as their contiguous BIP form.
    """
    header = f"{array.dtype.str}:{array.shape}".encode()
    return header + b"|" + array.tobytes()


def job_key(cube, params=None, *, ground_truth=None,
            class_names=None) -> str:
    """The content-addressed key of one classify request (sha256 hex).

    ``cube`` is anything :func:`~repro.core.amc.run_amc` accepts (a
    :class:`~repro.hsi.cube.HyperCube` or an (H, W, N) array); the
    ground truth and class names participate because they change the
    produced labels and report.
    """
    digest = hashlib.sha256()
    digest.update(_array_token(_as_bip(cube)))
    digest.update(b"|gt|")
    if ground_truth is not None:
        digest.update(_array_token(np.asarray(ground_truth)))
    digest.update(b"|names|")
    digest.update(json.dumps(
        None if class_names is None else list(class_names)).encode())
    digest.update(b"|params|")
    digest.update(canonical_params_json(params).encode())
    return digest.hexdigest()


def result_digest(result: AMCResult) -> str:
    """sha256 over the result's decision arrays (labels, MEI,
    abundances) — the bit-identity fingerprint served to clients and
    asserted by the acceptance tests."""
    digest = hashlib.sha256()
    for array in (result.labels, result.mei, result.abundances):
        digest.update(_array_token(np.ascontiguousarray(array)))
    return digest.hexdigest()


def result_nbytes(result: AMCResult) -> int:
    """Approximate retained size of one cached result, in bytes.

    Counts the ndarray payloads (the dataclass scaffolding around them
    is noise at cache-accounting scale).
    """
    arrays = [result.mei, result.erosion_index, result.dilation_index,
              result.abundances, result.labels,
              result.endmembers.spectra, result.endmembers.normalized]
    if result.endmember_labels is not None:
        arrays.append(result.endmember_labels)
    return int(sum(np.asarray(a).nbytes for a in arrays))
