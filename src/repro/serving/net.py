"""A unix-socket front end for :class:`~repro.serving.server.AMCServer`.

Transport: newline-delimited JSON over a unix domain socket — one
request object per line, one response object per line, stdlib only.
The cube itself never crosses the wire: requests carry a *cube
reference* (an ENVI path the server loads, with its ``.gt.npy`` ground
truth sidecar when present), which is the right shape for a local
service fronting multi-hundred-MB scenes.  Content addressing happens
server-side over the loaded bytes, so two paths to identical content
still dedupe.

Operations::

    {"op": "submit", "cube": PATH, "params": {...}, "wait": true,
     "workload": "amc", "target_class": null,
     "profile": false, "write_outputs": false}
    {"op": "status" | "wait" | "cancel", "job_id": N, "profile": false}
    {"op": "stats"}
    {"op": "health"}
    {"op": "shutdown"}

``workload`` names any registered algorithm (default: the server's
default workload).  ``target_class`` adapts the label-map sidecar to
detection: the target spectrum (for workloads that require one)
becomes the mean of that class's pixels, and the evaluation mask
becomes that class's footprint.  Without ``target_class``, the sidecar
is forwarded only to classify workloads — a label map is not a
detection mask.

Responses are ``{"ok": true, ...}`` or ``{"ok": false, "error": TYPE,
"message": ...}`` — a full queue answers ``error="ServerBusyError"``
with a ``retry_after_s`` hint, the wire form of backpressure.

:func:`request` is the matching blocking client (used by ``repro
submit``); it is deliberately synchronous — clients are ordinary
processes, and only the *server* lives on an event loop.
"""

from __future__ import annotations

import asyncio
import json
import os
import socket

import numpy as np

from repro.errors import ReproError, ServerBusyError
from repro.serving.server import AMCServer
from repro.workloads import get_workload

#: Protocol operations the front end understands.
OPS = ("submit", "status", "wait", "cancel", "stats", "health",
       "shutdown")

#: Exception classes a request handler converts into error responses
#: (anything else is a server bug and should surface loudly).
_REQUEST_ERRORS = (ReproError, ValueError, KeyError, TypeError, OSError)


def _error_response(exc: Exception) -> dict:
    response = {"ok": False, "error": type(exc).__name__,
                "message": str(exc)}
    if isinstance(exc, ServerBusyError):
        response["retry_after_s"] = exc.retry_after_s
    return response


class UnixSocketFrontend:
    """Serve one :class:`AMCServer` on a unix domain socket.

    The front end owns only transport concerns (framing, request
    parsing, response shaping, the shutdown signal); every decision
    about jobs belongs to the server object, which is equally usable
    in-process without this class (see ``examples/serving_demo.py``).
    """

    def __init__(self, server: AMCServer, socket_path: str) -> None:
        self.server = server
        self.socket_path = socket_path
        self._listener: asyncio.AbstractServer | None = None
        self._shutdown = asyncio.Event()

    async def start(self) -> "UnixSocketFrontend":
        """Bind the socket and begin accepting connections."""
        self._listener = await asyncio.start_unix_server(
            self._handle_connection, path=self.socket_path)
        return self

    async def serve_until_shutdown(self) -> None:
        """Block until a ``shutdown`` request arrives, then close."""
        await self._shutdown.wait()
        await self.stop()

    async def stop(self) -> None:
        """Close the listener and remove the socket file."""
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
            self._listener = None
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)

    # -- connection handling ---------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                try:
                    payload = json.loads(line)
                    response = await self._dispatch(payload)
                except json.JSONDecodeError as exc:
                    response = _error_response(exc)
                except _REQUEST_ERRORS as exc:
                    response = _error_response(exc)
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
        except (asyncio.CancelledError, ConnectionResetError):
            # Loop teardown after a shutdown request cancels handlers
            # still parked in readline(); that is a clean exit, not an
            # error worth a traceback.
            pass
        finally:
            writer.close()

    async def _dispatch(self, payload: dict) -> dict:
        op = payload.get("op")
        if op not in OPS:
            raise ReproError(f"unknown op {op!r}; expected one of {OPS}")
        if op == "submit":
            return await self._op_submit(payload)
        if op == "stats":
            return {"ok": True, "stats": self.server.stats()}
        if op == "health":
            return {"ok": True, "health": self.server.health()}
        if op == "shutdown":
            self._shutdown.set()
            return {"ok": True, "stopping": True}
        job_id = int(payload["job_id"])
        if op == "wait":
            status = await self.server.wait(job_id)
        elif op == "cancel":
            status = await self.server.cancel(job_id)
        else:
            status = self.server.status(job_id)
        return self._job_response(job_id, status,
                                  with_profile=payload.get("profile", False))

    async def _op_submit(self, payload: dict) -> dict:
        path = payload["cube"]
        loop = asyncio.get_running_loop()
        cube, ground_truth = await loop.run_in_executor(
            None, _load_scene, path)
        workload = payload.get("workload")
        wl = (self.server.default_workload if workload is None
              else get_workload(workload))
        params, ground_truth = _adapt_request(
            wl, cube, ground_truth, payload.get("params"),
            payload.get("target_class"))
        job = await self.server.submit(cube, params, workload=wl,
                                       ground_truth=ground_truth)
        if payload.get("wait", True):
            await self.server.wait(job.job_id)
        if (payload.get("write_outputs", False)
                and job.result is not None
                and hasattr(job.result, "labels")):
            outputs = await loop.run_in_executor(
                None, _write_outputs, job.result, path)
        else:
            outputs = None
        response = self._job_response(
            job.job_id, job.status(),
            with_profile=payload.get("profile", False))
        if outputs is not None:
            response["outputs"] = outputs
        return response

    def _job_response(self, job_id: int, status,
                      with_profile: bool) -> dict:
        response = {"ok": True, "job": status.to_dict()}
        if with_profile:
            report = self.server.job(job_id).report
            response["profile"] = (None if report is None
                                   else report.to_dict())
        return response


def _adapt_request(workload, cube, ground_truth, params, target_class):
    """Shape a wire request's sidecar for its workload.

    ``target_class`` turns the label-map sidecar into detection
    inputs: the class's mean spectrum becomes the target parameter
    (when the workload requires one) and its footprint becomes the
    evaluation mask.  Without it, the sidecar is forwarded only to
    classify workloads — every other kind interprets ground truth
    differently (or not at all), and a label map is neither.
    """
    if target_class is None:
        if ground_truth is not None and workload.kind != "classify":
            ground_truth = None
        return params, ground_truth
    if ground_truth is None:
        raise ReproError(
            f"target_class={target_class} needs a ground-truth sidecar "
            f"(<cube>.gt.npy) to derive the target from")
    from repro.core.amc import _as_bip

    mask = np.asarray(ground_truth) == int(target_class)
    if not mask.any():
        raise ReproError(f"ground truth has no pixels of class "
                         f"{int(target_class)}")
    if workload.requires_target:
        params = dict(params or {})
        spectrum = _as_bip(cube)[mask].mean(axis=0)
        params.setdefault("target", tuple(float(v) for v in spectrum))
    return params, mask


def _load_scene(path: str):
    """Load an ENVI cube plus its optional ``.gt.npy`` sidecar."""
    from repro.hsi.envi import read_cube

    cube = read_cube(path)
    try:
        ground_truth = np.load(path + ".gt.npy")
    except FileNotFoundError:
        ground_truth = None
    return cube, ground_truth


def _write_outputs(result, path: str) -> dict:
    """Write the MEI image and class map next to the cube (server side)."""
    from repro.viz import write_class_map_ppm, write_pgm

    return {
        "mei": write_pgm(result.mei, path + ".mei.pgm"),
        "classes": write_class_map_ppm(
            result.labels, path + ".classes.ppm",
            n_classes=int(result.labels.max())),
    }


# -- the blocking client -------------------------------------------------


def request(socket_path: str, payload: dict,
            timeout_s: float | None = None) -> dict:
    """Send one request to a serving socket; return the response dict.

    The client half of the protocol: connect, write one JSON line,
    read one JSON line.  ``timeout_s`` bounds the whole exchange
    (``None`` waits as long as the job runs — submit-and-wait on a
    cold cube legitimately takes a while).
    """
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(timeout_s)
        sock.connect(socket_path)
        sock.sendall(json.dumps(payload).encode() + b"\n")
        chunks = []
        while True:
            chunk = sock.recv(1 << 16)
            if not chunk:
                break
            chunks.append(chunk)
            if chunk.endswith(b"\n"):
                break
    raw = b"".join(chunks)
    if not raw:
        raise ReproError(f"server at {socket_path} closed the connection "
                         f"without responding")
    return json.loads(raw)
