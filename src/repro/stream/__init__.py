"""The stream programming model (paper §2).

The paper abstracts the GPU as a *stream processor*: data lives in
ordered collections (**streams**), computation happens in **kernels**
whose semantics "must not depend on the order in which output elements
are produced", and applications are **chains** of kernels (Brook [1] is
the canonical formulation).  This package provides that model as a
first-class, backend-independent API:

* :class:`~repro.stream.stream.Stream` — a named, typed 2-D collection
  of float4 records;
* :class:`~repro.stream.kernel.StreamKernel` — a fragment program plus
  its binding signature;
* :class:`~repro.stream.graph.StageGraph` — a DAG of kernel applications
  with named intermediate streams, validated for acyclicity and
  dangling references;
* :mod:`~repro.stream.executor` — executors that run a graph either on
  the CPU directly (:class:`~repro.stream.executor.CpuExecutor`) or on a
  :class:`~repro.gpu.device.VirtualGPU`
  (:class:`~repro.stream.executor.GpuExecutor`), where streams become
  textures and kernel applications become render-to-texture passes.

The hand-tuned AMC implementation of :mod:`repro.core.amc_gpu`
specializes this model (managing its own ping-pongs and fusion); the
framework here is the general-purpose surface a user of the library
builds *other* hyperspectral pipelines with — see
``examples/stream_pipeline.py``.
"""

from repro.stream.chunked import graph_halo, plan_stream_chunks, run_chunked
from repro.stream.executor import CpuExecutor, GpuExecutor
from repro.stream.graph import FusedStep, StageGraph, Step
from repro.stream.kernel import FusedKernel, StreamKernel
from repro.stream.optimize import fuse_elementwise, optimize
from repro.stream.stream import Stream

__all__ = [
    "CpuExecutor",
    "FusedKernel",
    "FusedStep",
    "GpuExecutor",
    "StageGraph",
    "Step",
    "Stream",
    "StreamKernel",
    "fuse_elementwise",
    "graph_halo",
    "optimize",
    "plan_stream_chunks",
    "run_chunked",
]
