"""Stream kernels: fragment programs with a stream-level signature.

A :class:`StreamKernel` wraps a validated
:class:`~repro.gpu.shader.FragmentShader` and names which of its samplers
are stream inputs (the uniforms pass through).  The order-independence
requirement of the stream model — *"their semantic must not depend on the
order in which output elements are produced"* — is structural here: the
shader IR has no way to express cross-fragment communication, so any
expressible kernel satisfies it by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StreamError
from repro.gpu import shaderir as ir
from repro.gpu.shader import FragmentShader


@dataclass(frozen=True)
class StreamKernel:
    """A kernel in the stream model.

    Attributes
    ----------
    shader:
        The fragment program that computes one output record.
    inputs:
        Sampler names, in the order callers pass streams.  Must cover the
        shader's declared samplers exactly.
    """

    shader: FragmentShader
    inputs: tuple[str, ...]

    def __post_init__(self) -> None:
        if set(self.inputs) != set(self.shader.samplers):
            raise StreamError(
                f"kernel {self.shader.name!r}: inputs {self.inputs} do not "
                f"cover samplers {self.shader.samplers}")
        if len(set(self.inputs)) != len(self.inputs):
            raise StreamError(
                f"kernel {self.shader.name!r}: duplicate input names")

    @property
    def name(self) -> str:
        return self.shader.name

    @classmethod
    def from_expression(cls, name: str, body: ir.Expr,
                        inputs: tuple[str, ...],
                        uniforms: tuple[str, ...] = ()) -> "StreamKernel":
        """Build and validate a kernel from an IR expression."""
        shader = FragmentShader(name, body, samplers=inputs,
                                uniforms=uniforms)
        return cls(shader=shader, inputs=inputs)


@dataclass(frozen=True)
class FusedKernel:
    """A composite kernel: several chained kernels in one launch.

    Built by :func:`repro.stream.optimize.fuse_elementwise`, never by
    hand.  The member bodies are alpha-renamed so every sampler *is* a
    stream name; intermediates consumed only at zero offset are inlined
    into their consumer's body, intermediates fetched at fixed offsets
    survive as *parts* — evaluated inside the launch, never allocated
    as textures.

    Attributes
    ----------
    name:
        Composite name (``a+b+c``), shown in launch records.
    part_shaders:
        One validated :class:`~repro.gpu.shader.FragmentShader` per
        materialized part, in evaluation order; the last one computes
        the fused step's output.
    part_names:
        The stream name each part computes (parallel to
        ``part_shaders``); earlier names may appear as samplers of
        later parts.
    external_inputs:
        Stream names the composite reads from outside, in first-use
        order.
    fused_count:
        How many original steps were folded in (>= 1; the launch
        records ``fused_count - 1`` saved passes).
    """

    name: str
    part_shaders: tuple[FragmentShader, ...]
    part_names: tuple[str, ...]
    external_inputs: tuple[str, ...]
    fused_count: int

    def __post_init__(self) -> None:
        if not self.part_shaders:
            raise StreamError(f"fused kernel {self.name!r} has no parts")
        if len(self.part_shaders) != len(self.part_names):
            raise StreamError(
                f"fused kernel {self.name!r}: {len(self.part_shaders)} "
                f"shaders but {len(self.part_names)} part names")
        if self.fused_count < len(self.part_shaders):
            raise StreamError(
                f"fused kernel {self.name!r}: fused_count "
                f"{self.fused_count} below part count "
                f"{len(self.part_shaders)}")
        known = set(self.external_inputs)
        for shader, part in zip(self.part_shaders, self.part_names):
            undefined = set(shader.samplers) - known
            if undefined:
                raise StreamError(
                    f"fused kernel {self.name!r}: part {part!r} reads "
                    f"{sorted(undefined)} before they exist")
            known.add(part)

    @property
    def output(self) -> str:
        """The stream the final part computes."""
        return self.part_names[-1]

    @property
    def dynamic_fetches(self) -> int:
        """Total dependent fetches across parts (0 for fusable chains)."""
        return sum(s.stats.dynamic_fetches for s in self.part_shaders)

    def max_static_reach(self) -> int:
        """Chebyshev radius of input pixels one output pixel can read.

        Offsets compose through materialized parts (a fetch of part *p*
        at offset *d* reaches ``d + reach(p)``) but not through inlined
        bodies, whose offsets already sit in the consumer's shader —
        exactly the dependency radius of the unfused chain, so
        :func:`repro.stream.chunked.graph_halo` stays correct.
        """
        reach: dict[str, int] = {}
        for shader, part in zip(self.part_shaders, self.part_names):
            r = 0
            for node in ir.walk(shader.body):
                if isinstance(node, ir.TexFetch):
                    r = max(r, max(abs(node.dx), abs(node.dy))
                            + reach.get(node.sampler, 0))
            reach[part] = r
        return reach[self.part_names[-1]]


# ---------------------------------------------------------------------------
# A small standard library of kernels, enough to build the example
# pipelines without touching the IR directly.
# ---------------------------------------------------------------------------

def map_binary(name: str, op: str) -> StreamKernel:
    """Element-wise binary kernel: ``out = a <op> b``."""
    body = ir.Op(op, (ir.TexFetch("a"), ir.TexFetch("b")))
    return StreamKernel.from_expression(name, body, inputs=("a", "b"))


def map_scale_bias(name: str) -> StreamKernel:
    """``out = a * scale + bias`` with uniform scale/bias."""
    body = ir.add(ir.mul(ir.TexFetch("a"), ir.Uniform("scale")),
                  ir.Uniform("bias"))
    return StreamKernel.from_expression(name, body, inputs=("a",),
                                        uniforms=("scale", "bias"))


def reduce_dot(name: str) -> StreamKernel:
    """``out = acc + dot(a, b)`` — the accumulation step of a band-wise
    reduction chain."""
    body = ir.add(ir.TexFetch("acc"),
                  ir.dot4(ir.TexFetch("a"), ir.TexFetch("b")))
    return StreamKernel.from_expression(name, body, inputs=("acc", "a", "b"))


def stencil_sum(name: str, offsets: tuple[tuple[int, int], ...]) -> StreamKernel:
    """``out = sum over offsets of a(x + o)`` — a fixed-window stencil."""
    if not offsets:
        raise StreamError("stencil needs at least one offset")
    body: ir.Expr = ir.TexFetch("a", offsets[0][1], offsets[0][0])
    for dy, dx in offsets[1:]:
        body = ir.add(body, ir.TexFetch("a", dx, dy))
    return StreamKernel.from_expression(name, body, inputs=("a",))


def convolve2d(name: str, weights) -> StreamKernel:
    """Fixed-coefficient 2-D convolution (correlation) kernel.

    ``weights`` is a small 2-D array of odd extents; each non-zero
    coefficient becomes one fetch+MAD.  Coefficients are compile-time
    constants of the fragment program, the way small filters were
    unrolled into 2005-era shaders.
    """
    import numpy as np

    # Filter design happens host-side at shader-compile time; the
    # coefficients become float32 IR constants below.
    weights = np.asarray(weights, dtype=np.float64)  # reprolint: disable=dtype-discipline
    if weights.ndim != 2 or weights.size == 0:
        raise StreamError(f"weights must be a non-empty 2-D array, got "
                          f"shape {weights.shape}")
    if weights.shape[0] % 2 == 0 or weights.shape[1] % 2 == 0:
        raise StreamError(f"weights extents must be odd, got "
                          f"{weights.shape}")
    cy, cx = weights.shape[0] // 2, weights.shape[1] // 2
    body: ir.Expr | None = None
    for y in range(weights.shape[0]):
        for x in range(weights.shape[1]):
            w = float(weights[y, x])  # reprolint: disable=dtype-discipline
            if w == 0.0:
                continue
            term = ir.mul(ir.TexFetch("a", x - cx, y - cy), ir.vec4(w))
            body = term if body is None else ir.add(body, term)
    if body is None:
        raise StreamError("weights are all zero")
    return StreamKernel.from_expression(name, body, inputs=("a",))


def gaussian_blur(name: str, radius: int = 1,
                  sigma: float | None = None) -> StreamKernel:
    """An unrolled (2r+1)^2 Gaussian blur, weights normalized to 1."""
    import numpy as np

    if radius < 1:
        raise StreamError(f"radius must be >= 1, got {radius}")
    if sigma is None:
        sigma = radius / 1.5
    # Gaussian weight design in host precision, quantized by convolve2d.
    axis = np.arange(-radius, radius + 1, dtype=np.float64)  # reprolint: disable=dtype-discipline
    one_d = np.exp(-0.5 * (axis / sigma) ** 2)
    weights = np.outer(one_d, one_d)
    weights /= weights.sum()
    return convolve2d(name, weights)


def sobel_magnitude(name: str) -> StreamKernel:
    """Gradient-magnitude-squared of lane x (edge detector).

    ``out = gx^2 + gy^2`` with the 3x3 Sobel operators — squared rather
    than rooted so the kernel stays a pure MAD chain (fp30 idiom: defer
    the sqrt to whoever needs calibrated units).
    """
    gx = convolve2d(f"{name}_gx", [[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]])
    gy = convolve2d(f"{name}_gy", [[-1, -2, -1], [0, 0, 0], [1, 2, 1]])
    body = ir.add(ir.mul(gx.shader.body, gx.shader.body),
                  ir.mul(gy.shader.body, gy.shader.body))
    return StreamKernel.from_expression(name, body, inputs=("a",))
