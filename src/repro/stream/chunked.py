"""Chunked execution of stage graphs (stream uploading for the framework).

The hand-tuned AMC pipeline manages its own chunking; this module gives
the same capability to *any* :class:`~repro.stream.graph.StageGraph`:
split the input streams into line-wise chunks with a halo wide enough
for every stencil in the graph, run the graph per chunk on any executor,
and stitch the output cores back together — producing results identical
to whole-image execution.

The required halo is derived from the shaders themselves: a chain of
steps with static fetch radii r1, r2, ... needs sum(ri) halo lines
(each stage's output pixel depends on inputs up to its radius, and the
dependencies compose).  Kernels with *dependent* fetches can address
arbitrarily far, so graphs containing them are rejected — exactly the
constraint that forced the paper's MEI stage to keep its whole chunk
resident.
"""

from __future__ import annotations

import numpy as np

from repro.errors import StreamError
from repro.hsi.chunking import ChunkPlan, plan_chunks_by_lines
from repro.stream.graph import FusedStep, StageGraph
from repro.stream.stream import Stream


def graph_halo(graph: StageGraph) -> int:
    """Upper bound on the input halo the graph's output pixels need.

    Sum over steps of each kernel's maximum static fetch offset — exact
    for a linear chain, conservative (never too small) for DAGs.  A
    :class:`~repro.stream.graph.FusedStep` contributes its composite
    reach (offsets compose through materialized parts, inlined bodies
    carry theirs directly), which equals the unfused chain's — fusing a
    graph never changes its halo.

    Raises
    ------
    StreamError
        If any kernel performs dependent fetches (unbounded reach).
    """
    halo = 0
    for step in graph.steps:
        if isinstance(step, FusedStep):
            if step.kernel.dynamic_fetches:
                raise StreamError(
                    f"fused kernel {step.kernel.name!r} uses dependent "
                    f"texture fetches; its reach is data-dependent and "
                    f"cannot be chunked safely")
            halo += step.kernel.max_static_reach()
            continue
        stats = step.kernel.shader.stats
        if stats.dynamic_fetches:
            raise StreamError(
                f"kernel {step.kernel.name!r} uses dependent texture "
                f"fetches; its reach is data-dependent and cannot be "
                f"chunked safely")
        halo += stats.max_static_offset
    return halo


def plan_stream_chunks(graph: StageGraph, inputs: dict[str, Stream], *,
                       max_ext_lines: int,
                       halo: int | None = None) -> ChunkPlan:
    """Validate the inputs and plan the line-wise chunks for a graph.

    The shared front half of :func:`run_chunked` and
    :func:`repro.parallel.run_chunked_parallel`: checks the input
    streams agree on shape, derives (or accepts) the halo — rejecting
    dependent-fetch graphs via :func:`graph_halo` — and returns the
    validated :class:`~repro.hsi.chunking.ChunkPlan` whose cores tile
    the image exactly.
    """
    if not inputs:
        raise StreamError("chunked execution needs at least one input")
    shapes = {s.shape for s in inputs.values()}
    if len(shapes) != 1:
        raise StreamError(f"input streams disagree on shape: {shapes}")
    (lines, samples), = shapes
    needed = graph_halo(graph) if halo is None else int(halo)
    return plan_chunks_by_lines(lines, samples, 1,
                                max_ext_lines=max_ext_lines, halo=needed)


def run_chunked(graph: StageGraph, inputs: dict[str, Stream], executor, *,
                max_ext_lines: int,
                halo: int | None = None) -> dict[str, Stream]:
    """Run a stage graph chunk by chunk and stitch the outputs.

    Parameters
    ----------
    graph:
        The pipeline to execute.
    inputs:
        Full-size input streams (all the same shape).
    executor:
        Any object with ``run(graph, inputs) -> outputs`` —
        :class:`~repro.stream.executor.CpuExecutor` or
        :class:`~repro.stream.executor.GpuExecutor`.
    max_ext_lines:
        Chunk height budget including halos (the caller derives it from
        its device's memory and the graph's stream count).
    halo:
        Override the derived :func:`graph_halo` (must be >= it for
        correctness; exposed for tests and for callers that know their
        graph's true dependency radius).

    Returns
    -------
    dict of output streams, identical to unchunked execution.
    """
    plan = plan_stream_chunks(graph, inputs, max_ext_lines=max_ext_lines,
                              halo=halo)
    lines, samples = plan.lines, plan.samples
    outputs: dict[str, np.ndarray] = {}
    for chunk in plan:
        chunk_inputs = {
            name: Stream(name, stream.data[chunk.ext_start:chunk.ext_stop])
            for name, stream in inputs.items()}
        result = executor.run(graph, chunk_inputs)
        for name, stream in result.items():
            if name not in outputs:
                outputs[name] = np.empty((lines, samples, 4),
                                         dtype=np.float32)
            outputs[name][chunk.core_start:chunk.core_stop] = \
                chunk.core_of(stream.data)
    return {name: Stream(name, data) for name, data in outputs.items()}
