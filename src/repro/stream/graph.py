"""Stage graphs: validated DAGs of kernel applications.

A :class:`StageGraph` is the "application constructed by chaining
multiple kernels" of the stream model: a list of steps, each applying a
kernel to named streams and producing a named stream.  Validation (done
with :mod:`networkx`) guarantees:

* every input name is either a graph input or produced by an earlier
  step (no dangling references);
* no stream name is produced twice (single assignment);
* the dependency graph is acyclic (loops are expressed by *unrolled*
  steps, exactly like the multi-pass loops of the real implementation);
* the declared outputs all exist.

Executors can therefore run the steps in the given order without any
further checking.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.errors import StreamError
from repro.stream.kernel import FusedKernel, StreamKernel


@dataclass(frozen=True)
class Step:
    """One kernel application: ``output = kernel(**inputs)``."""

    kernel: StreamKernel
    inputs: dict[str, str]          # sampler name -> stream name
    output: str
    uniforms: dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        missing = set(self.kernel.inputs) - set(self.inputs)
        if missing:
            raise StreamError(
                f"step {self.output!r}: kernel {self.kernel.name!r} inputs "
                f"{sorted(missing)} not bound")
        extra = set(self.inputs) - set(self.kernel.inputs)
        if extra:
            raise StreamError(
                f"step {self.output!r}: unknown kernel inputs "
                f"{sorted(extra)}")
        missing_u = set(self.kernel.shader.uniforms) - set(self.uniforms)
        if missing_u:
            raise StreamError(
                f"step {self.output!r}: uniforms {sorted(missing_u)} "
                f"not bound")


@dataclass(frozen=True)
class FusedStep:
    """One *fused* kernel application — several chained steps, one pass.

    Emitted by :func:`repro.stream.optimize.fuse_elementwise`; presents
    the same ``kernel`` / ``inputs`` / ``output`` / ``uniforms`` surface
    as :class:`Step` (``inputs`` is the identity map over the fused
    kernel's external streams — the alpha-renaming already happened at
    fusion time), so :class:`StageGraph` validation and the executors'
    liveness analysis work unchanged.
    """

    kernel: FusedKernel
    inputs: dict[str, str]          # external stream name -> itself
    output: str
    uniforms: dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if set(self.inputs) != set(self.kernel.external_inputs):
            raise StreamError(
                f"fused step {self.output!r}: inputs "
                f"{sorted(self.inputs)} do not cover external streams "
                f"{sorted(self.kernel.external_inputs)}")
        for sampler, source in self.inputs.items():
            if sampler != source:
                raise StreamError(
                    f"fused step {self.output!r}: binding {sampler!r} -> "
                    f"{source!r} is not the identity (fused samplers are "
                    f"stream names)")
        if self.output != self.kernel.output:
            raise StreamError(
                f"fused step {self.output!r}: kernel computes "
                f"{self.kernel.output!r}")
        needed = {u for s in self.kernel.part_shaders for u in s.uniforms}
        missing = needed - set(self.uniforms)
        if missing:
            raise StreamError(
                f"fused step {self.output!r}: uniforms {sorted(missing)} "
                f"not bound")


@dataclass(frozen=True)
class StageGraph:
    """A validated chain of kernel applications.

    Parameters
    ----------
    name:
        Pipeline name for error messages and profiles.
    inputs:
        Names of the streams the caller must provide.
    steps:
        Kernel applications, in execution order.
    outputs:
        Names of the streams :meth:`repro.stream.executor` calls return.
    """

    name: str
    inputs: tuple[str, ...]
    steps: tuple[Step | FusedStep, ...]
    outputs: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise StreamError(f"graph {self.name!r} has no steps")
        available = set(self.inputs)
        if len(available) != len(self.inputs):
            raise StreamError(f"graph {self.name!r}: duplicate input names")
        graph = nx.DiGraph()
        for step in self.steps:
            if step.output in available:
                raise StreamError(
                    f"graph {self.name!r}: stream {step.output!r} assigned "
                    f"more than once (single-assignment rule)")
            for source in step.inputs.values():
                if source not in available:
                    raise StreamError(
                        f"graph {self.name!r}: step {step.output!r} reads "
                        f"{source!r} before it exists")
                graph.add_edge(source, step.output)
            available.add(step.output)
        missing = set(self.outputs) - available
        if missing:
            raise StreamError(
                f"graph {self.name!r}: outputs {sorted(missing)} are never "
                f"produced")
        if not nx.is_directed_acyclic_graph(graph):
            raise StreamError(f"graph {self.name!r} contains a cycle")

    @property
    def stream_names(self) -> tuple[str, ...]:
        """All stream names, inputs first, then step outputs in order."""
        return self.inputs + tuple(s.output for s in self.steps)

    def step_count(self) -> int:
        return len(self.steps)

    def producers(self) -> dict[str, Step]:
        """Stream name -> the step that produces it."""
        return {s.output: s for s in self.steps}
