"""Graph optimization passes for stage graphs.

A stage graph is data, so it can be transformed before execution.
Three passes are provided — the ones that matter for generated graphs
like those of :mod:`repro.stream.amc_stages`, where builders emit steps
mechanically:

* :func:`eliminate_dead_steps` — drop every step whose output cannot
  reach a declared graph output (dead code elimination).  Builders that
  compute more than a caller asked for stop paying for it.
* :func:`collapse_copies` — remove pure-copy steps (a kernel whose body
  is exactly one zero-offset fetch of a single input, or that fetch
  plus addition of a zero constant) by rewiring consumers to the copy's
  source.  Copies that *are* graph outputs are kept (their name is part
  of the contract).
* :func:`fuse_elementwise` — the pass-fusion compiler: fold chains of
  single-consumer steps into one :class:`~repro.stream.graph.FusedStep`
  so the intermediate textures are never materialized and the chain
  costs one render pass.  Intermediates consumed only at zero offset
  are *inlined* (the producer's body substituted at the fetch site);
  intermediates read at fixed offsets become in-launch *parts*.
  Because one fused launch evaluates every member body under a single
  structurally-keyed memo, loop-invariant fetches and uniform-only
  subexpressions shared between members are hoisted automatically —
  they evaluate once per fused launch instead of once per original
  pass.

Fusion blockers (a step starts a new group): multi-consumer
intermediates, declared graph outputs (their name is part of the
contract), kernels with dependent fetches (unbounded reach), and the
``max_group`` register-pressure bound.

All passes preserve semantics exactly: the executors produce
bit-identical streams for the declared outputs (asserted by the test
suite), and :func:`repro.stream.chunked.graph_halo` of a fused graph
equals the dependency radius of the unfused chain.
"""

from __future__ import annotations

import numpy as np

from repro.errors import StreamError
from repro.gpu import shaderir as ir
from repro.gpu.shader import FragmentShader
from repro.stream.graph import FusedStep, StageGraph, Step
from repro.stream.kernel import FusedKernel


def eliminate_dead_steps(graph: StageGraph) -> StageGraph:
    """Drop steps that cannot reach any declared output."""
    needed: set[str] = set(graph.outputs)
    keep: list[Step] = []
    for step in reversed(graph.steps):
        if step.output in needed:
            keep.append(step)
            needed.update(step.inputs.values())
    keep.reverse()
    if not keep:
        raise StreamError(
            f"graph {graph.name!r}: no step reaches the declared outputs")
    return StageGraph(graph.name, inputs=graph.inputs,
                      steps=tuple(keep), outputs=graph.outputs)


def _copy_source(step: Step) -> str | None:
    """If ``step`` is a pure copy, return the stream it copies."""
    body = step.kernel.shader.body
    # form 1: a bare zero-offset fetch
    if isinstance(body, ir.TexFetch) and body.dx == 0 and body.dy == 0:
        return step.inputs[body.sampler]
    # form 2: fetch + literal zero (the idiom amc_stages uses to alias)
    if isinstance(body, ir.Op) and body.op == "add":
        a, b = body.args
        fetch, const = (a, b) if isinstance(a, ir.TexFetch) else (b, a)
        if isinstance(fetch, ir.TexFetch) and fetch.dx == 0 \
                and fetch.dy == 0 and isinstance(const, ir.Const) \
                and const.values == (0.0, 0.0, 0.0, 0.0):
            return step.inputs[fetch.sampler]
    return None


def collapse_copies(graph: StageGraph) -> StageGraph:
    """Rewire consumers of pure-copy steps to the copied stream."""
    alias: dict[str, str] = {}
    steps: list[Step] = []
    outputs = set(graph.outputs)

    def resolve(name: str) -> str:
        while name in alias:
            name = alias[name]
        return name

    for step in graph.steps:
        rewired = {sampler: resolve(source)
                   for sampler, source in step.inputs.items()}
        source = _copy_source(step)
        if source is not None and step.output not in outputs:
            alias[step.output] = resolve(source)
            continue
        if rewired != step.inputs:
            step = Step(step.kernel, rewired, step.output, step.uniforms)
        steps.append(step)
    if not steps:
        raise StreamError(
            f"graph {graph.name!r}: nothing left after copy collapsing")
    return StageGraph(graph.name, inputs=graph.inputs,
                      steps=tuple(steps), outputs=graph.outputs)


def _canonical_uniform(value) -> np.ndarray:
    """A uniform as the float32 4-vector the interpreter will see."""
    v = np.asarray(value, dtype=np.float32).reshape(-1)
    if v.size == 1:
        v = np.repeat(v, 4)
    return v


def _zero_offset_only(step: Step, stream: str) -> bool:
    """True if ``step`` fetches ``stream`` only at offset (0, 0)."""
    samplers = {s for s, src in step.inputs.items() if src == stream}
    for node in ir.walk(step.kernel.shader.body):
        if isinstance(node, ir.TexFetch) and node.sampler in samplers \
                and (node.dx or node.dy):
            return False
    return True


def _merge_uniforms(group: list[Step]) -> tuple[dict, list[dict]]:
    """Merge member uniforms, deduping by value, renaming on conflict.

    Returns the fused step's uniform dict and one rename map per group
    member (empty when the member's names survive unchanged).  Two
    members binding the same name to the same float32 value share one
    slot; a clash gets a fresh ``name_f<i>``.
    """
    merged: dict[str, np.ndarray] = {}
    taken: dict[str, bytes] = {}
    renames: list[dict[str, str]] = []
    for index, step in enumerate(group):
        rename: dict[str, str] = {}
        for name in step.kernel.shader.uniforms:
            value = _canonical_uniform(step.uniforms[name])
            digest = value.tobytes()
            final = name
            if name in taken and taken[name] != digest:
                final = f"{name}_f{index}"
                while final in taken and taken[final] != digest:
                    final += "_"
                rename[name] = final
            if final not in taken:
                taken[final] = digest
                merged[final] = value
        renames.append(rename)
    return merged, renames


def _compile_group(group: list[Step]) -> FusedStep:
    """Fold a fusable chain of steps into one :class:`FusedStep`."""
    merged_uniforms, uniform_renames = _merge_uniforms(group)
    inline: dict[str, ir.Expr] = {}        # stream -> substituted body
    parts: list[tuple[str, ir.Expr]] = []  # materialized, in order
    part_names: set[str] = set()
    for index, step in enumerate(group):
        fetch_map: dict[str, tuple[str, object]] = {}
        for sampler, source in step.inputs.items():
            if source in inline:
                fetch_map[sampler] = ("inline", inline[source])
            elif sampler != source:
                fetch_map[sampler] = ("rename", source)
        body = ir.substitute(step.kernel.shader.body, fetch_map,
                             uniform_renames[index])
        if index + 1 < len(group) and _zero_offset_only(group[index + 1],
                                                        step.output):
            inline[step.output] = body
        else:
            parts.append((step.output, body))
            part_names.add(step.output)

    shaders = []
    external: list[str] = []
    for name, body in parts:
        samplers: list[str] = []
        uniforms: list[str] = []
        for node in ir.walk(body):
            if isinstance(node, (ir.TexFetch, ir.TexFetchDyn)):
                if node.sampler not in samplers:
                    samplers.append(node.sampler)
                if node.sampler not in part_names \
                        and node.sampler not in external:
                    external.append(node.sampler)
            elif isinstance(node, ir.Uniform) and node.name not in uniforms:
                uniforms.append(node.name)
        shaders.append(FragmentShader(name, body, samplers=tuple(samplers),
                                      uniforms=tuple(uniforms)))

    used = {u for s in shaders for u in s.uniforms}
    kernel = FusedKernel(
        name="+".join(s.kernel.name for s in group),
        part_shaders=tuple(shaders),
        part_names=tuple(name for name, _ in parts),
        external_inputs=tuple(external),
        fused_count=len(group))
    return FusedStep(kernel=kernel,
                     inputs={name: name for name in external},
                     output=group[-1].output,
                     uniforms={n: v for n, v in merged_uniforms.items()
                               if n in used})


def fuse_elementwise(graph: StageGraph, *,
                     max_group: int = 8) -> StageGraph:
    """Fuse chains of single-consumer steps into composite passes.

    Walks the steps in order, greedily growing a group: the next step
    joins when it is the *only* consumer of the previous member's
    output, that output is not a declared graph output, neither kernel
    performs dependent fetches, and the group is below ``max_group``
    (the register-pressure bound a real shader compiler hits).  Groups
    of one are emitted unchanged.
    """
    if max_group < 2:
        raise StreamError(f"max_group must be >= 2, got {max_group}")
    consumers: dict[str, int] = {}
    for step in graph.steps:
        for source in step.inputs.values():
            consumers[source] = consumers.get(source, 0) + 1
    outputs = set(graph.outputs)

    def fusable(step) -> bool:
        return isinstance(step, Step) \
            and step.kernel.shader.stats.dynamic_fetches == 0

    steps: list[Step | FusedStep] = []
    group: list[Step] = []

    def flush() -> None:
        if not group:
            return
        steps.append(group[0] if len(group) == 1
                     else _compile_group(group))
        group.clear()

    for step in graph.steps:
        if not fusable(step):
            flush()
            steps.append(step)
            continue
        if group:
            prev = group[-1]
            chained = prev.output in step.inputs.values() \
                and consumers.get(prev.output, 0) == 1 \
                and prev.output not in outputs \
                and len(group) < max_group
            if not chained:
                flush()
        group.append(step)
    flush()
    return StageGraph(graph.name, inputs=graph.inputs,
                      steps=tuple(steps), outputs=graph.outputs)


def optimize(graph: StageGraph, *, fuse: bool = True,
             max_group: int = 8) -> StageGraph:
    """Run all passes (copies first so DCE sees the rewired uses, then
    pass fusion over the cleaned graph).  ``fuse=False`` keeps the
    historical unfused pipeline as the bit-identity oracle."""
    graph = eliminate_dead_steps(collapse_copies(graph))
    if fuse:
        graph = fuse_elementwise(graph, max_group=max_group)
    return graph
