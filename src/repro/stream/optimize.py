"""Graph optimization passes for stage graphs.

A stage graph is data, so it can be transformed before execution.  Two
passes are provided — the ones that matter for generated graphs like
those of :mod:`repro.stream.amc_stages`, where builders emit steps
mechanically:

* :func:`eliminate_dead_steps` — drop every step whose output cannot
  reach a declared graph output (dead code elimination).  Builders that
  compute more than a caller asked for stop paying for it.
* :func:`collapse_copies` — remove pure-copy steps (a kernel whose body
  is exactly one zero-offset fetch of a single input, or that fetch
  plus addition of a zero constant) by rewiring consumers to the copy's
  source.  Copies that *are* graph outputs are kept (their name is part
  of the contract).

Both passes preserve semantics exactly: the executors produce identical
streams for the declared outputs (asserted by the test suite).
"""

from __future__ import annotations

from repro.errors import StreamError
from repro.gpu import shaderir as ir
from repro.stream.graph import StageGraph, Step


def eliminate_dead_steps(graph: StageGraph) -> StageGraph:
    """Drop steps that cannot reach any declared output."""
    needed: set[str] = set(graph.outputs)
    keep: list[Step] = []
    for step in reversed(graph.steps):
        if step.output in needed:
            keep.append(step)
            needed.update(step.inputs.values())
    keep.reverse()
    if not keep:
        raise StreamError(
            f"graph {graph.name!r}: no step reaches the declared outputs")
    return StageGraph(graph.name, inputs=graph.inputs,
                      steps=tuple(keep), outputs=graph.outputs)


def _copy_source(step: Step) -> str | None:
    """If ``step`` is a pure copy, return the stream it copies."""
    body = step.kernel.shader.body
    # form 1: a bare zero-offset fetch
    if isinstance(body, ir.TexFetch) and body.dx == 0 and body.dy == 0:
        return step.inputs[body.sampler]
    # form 2: fetch + literal zero (the idiom amc_stages uses to alias)
    if isinstance(body, ir.Op) and body.op == "add":
        a, b = body.args
        fetch, const = (a, b) if isinstance(a, ir.TexFetch) else (b, a)
        if isinstance(fetch, ir.TexFetch) and fetch.dx == 0 \
                and fetch.dy == 0 and isinstance(const, ir.Const) \
                and const.values == (0.0, 0.0, 0.0, 0.0):
            return step.inputs[fetch.sampler]
    return None


def collapse_copies(graph: StageGraph) -> StageGraph:
    """Rewire consumers of pure-copy steps to the copied stream."""
    alias: dict[str, str] = {}
    steps: list[Step] = []
    outputs = set(graph.outputs)

    def resolve(name: str) -> str:
        while name in alias:
            name = alias[name]
        return name

    for step in graph.steps:
        rewired = {sampler: resolve(source)
                   for sampler, source in step.inputs.items()}
        source = _copy_source(step)
        if source is not None and step.output not in outputs:
            alias[step.output] = resolve(source)
            continue
        if rewired != step.inputs:
            step = Step(step.kernel, rewired, step.output, step.uniforms)
        steps.append(step)
    if not steps:
        raise StreamError(
            f"graph {graph.name!r}: nothing left after copy collapsing")
    return StageGraph(graph.name, inputs=graph.inputs,
                      steps=tuple(steps), outputs=graph.outputs)


def optimize(graph: StageGraph) -> StageGraph:
    """Run all passes (copies first so DCE sees the rewired uses)."""
    return eliminate_dead_steps(collapse_copies(graph))
