"""Streams: ordered 2-D collections of float4 records.

A stream is the data half of the stream programming model: shape-tagged,
immutable-by-convention, and convertible to/from the texture
representation the GPU backend uses.  Scalar (single-channel) data rides
in lane x with the remaining lanes zero, matching
:meth:`repro.gpu.texture.Texture2D.from_scalar_image`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError, StreamError

#: Records are float4, the native width of the fragment processors.
RECORD_WIDTH: int = 4


@dataclass
class Stream:
    """A named 2-D stream of float4 records.

    Attributes
    ----------
    name:
        Identifier used by stage graphs and error messages.
    data:
        (height, width, 4) float32 array.
    """

    name: str
    data: np.ndarray

    def __post_init__(self) -> None:
        if not self.name:
            raise StreamError("streams need a non-empty name")
        data = np.asarray(self.data, dtype=np.float32)
        if data.ndim != 3 or data.shape[2] != RECORD_WIDTH:
            raise ShapeError(
                f"stream {self.name!r} must be (H, W, 4), got {data.shape}")
        self.data = data

    @property
    def height(self) -> int:
        return self.data.shape[0]

    @property
    def width(self) -> int:
        return self.data.shape[1]

    @property
    def shape(self) -> tuple[int, int]:
        return (self.height, self.width)

    @classmethod
    def from_scalar(cls, name: str, image: np.ndarray) -> "Stream":
        """Wrap an (H, W) scalar map (lane x carries the values)."""
        image = np.asarray(image, dtype=np.float32)
        if image.ndim != 2:
            raise ShapeError(f"expected 2-D scalar data, got {image.shape}")
        data = np.zeros(image.shape + (RECORD_WIDTH,), dtype=np.float32)
        data[:, :, 0] = image
        return cls(name, data)

    @classmethod
    def zeros(cls, name: str, height: int, width: int) -> "Stream":
        """An all-zero stream (accumulator initialisation)."""
        if height <= 0 or width <= 0:
            raise ShapeError(f"stream extents must be positive, got "
                             f"{height}x{width}")
        return cls(name, np.zeros((height, width, RECORD_WIDTH),
                                  dtype=np.float32))

    def scalar(self) -> np.ndarray:
        """Lane x as an (H, W) view."""
        return self.data[:, :, 0]

    def copy(self, name: str | None = None) -> "Stream":
        """An independent copy (optionally renamed)."""
        return Stream(name or self.name, self.data.copy())
