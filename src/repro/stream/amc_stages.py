"""AMC pipeline stages as declarative stage graphs.

:mod:`repro.core.amc_gpu` is the hand-tuned implementation (its own
ping-pong management, fusion batching, VRAM lifecycle).  This module
expresses the same Fig. 4 stages as :class:`~repro.stream.graph.StageGraph`
values, so a user of the *framework* can compose AMC building blocks
with their own kernels, run them on either executor, chunk them with
:mod:`repro.stream.chunked`, and inspect/extend the dataflow as data.

Two builders are provided:

* :func:`build_normalization_graph` — stage 2 of Fig. 4: band-sum
  reduction over the texture stack, per-group normalization (eqs. 3-4),
  log streams and the self-entropy reduction;
* :func:`build_cumulative_graph` — stage 3 for a caller-chosen set of
  SE-offset pairs: per-pair cross-term reductions, SID maps, and the
  per-neighbour cumulative-distance accumulations.

The test suite checks both against :func:`repro.core.mei` computations,
so the declarative graphs and the hand-tuned pipeline cannot drift
apart silently.
"""

from __future__ import annotations

import numpy as np

from repro.core.mei import se_offsets
from repro.errors import StreamError
from repro.gpu import shaderir as ir
from repro.gpu.texture import band_group_count, group_masks
from repro.spectral.normalize import SpectralEpsilon
from repro.stream.graph import StageGraph, Step
from repro.stream.kernel import StreamKernel
from repro.stream.stream import Stream


def _x(e: ir.Expr) -> ir.Expr:
    return ir.Swizzle(e, "xxxx")


def group_streams(cube_bip: np.ndarray, prefix: str = "src") -> dict[str, Stream]:
    """Pack an (H, W, N) cube into the named input streams the graphs
    below expect (``src0``, ``src1``, ...)."""
    from repro.gpu.texture import pack_bands

    return {f"{prefix}{g}": Stream(f"{prefix}{g}", tex)
            for g, tex in enumerate(pack_bands(cube_bip))}


def build_normalization_graph(bands: int, *,
                              eps: float | None = None) -> StageGraph:
    """Stage 2 of Fig. 4 as a stage graph.

    Inputs: ``src0..src{G-1}`` (the packed band groups) and ``zero`` (an
    all-zero stream seeding the reductions).  Outputs: ``total`` (band
    sum), ``norm0..`` and ``log0..`` per group, and ``entropy``.
    """
    if bands < 1:
        raise StreamError(f"bands must be >= 1, got {bands}")
    groups = band_group_count(bands)
    masks = group_masks(bands)
    # Host-side uniform scalar; the shader receives it as a float32 lane.
    eps_value = (SpectralEpsilon.get() if eps is None
                 else float(eps))  # reprolint: disable=dtype-discipline

    bandsum = StreamKernel.from_expression(
        "g_bandsum",
        ir.add(ir.TexFetch("acc"),
               ir.dot4(ir.TexFetch("src"), ir.Uniform("mask"))),
        inputs=("acc", "src"), uniforms=("mask",))
    normalize = StreamKernel.from_expression(
        "g_normalize",
        ir.mul(ir.div(ir.TexFetch("src"), _x(ir.TexFetch("total"))),
               ir.Uniform("mask")),
        inputs=("src", "total"), uniforms=("mask",))
    logstream = StreamKernel.from_expression(
        "g_log", ir.log(ir.max_(ir.TexFetch("norm"), ir.vec4(eps_value))),
        inputs=("norm",))
    entropy = StreamKernel.from_expression(
        "g_entropy",
        ir.add(ir.TexFetch("acc"),
               ir.dot4(ir.TexFetch("norm"), ir.TexFetch("logt"))),
        inputs=("acc", "norm", "logt"))

    steps: list[Step] = []
    acc = "zero"
    for g in range(groups):
        out = "total" if g == groups - 1 else f"sum{g}"
        steps.append(Step(bandsum, {"acc": acc, "src": f"src{g}"}, out,
                          uniforms={"mask": masks[g]}))
        acc = out
    for g in range(groups):
        steps.append(Step(normalize,
                          {"src": f"src{g}", "total": "total"},
                          f"norm{g}", uniforms={"mask": masks[g]}))
        steps.append(Step(logstream, {"norm": f"norm{g}"}, f"log{g}"))
    acc = "zero"
    for g in range(groups):
        out = "entropy" if g == groups - 1 else f"ent{g}"
        steps.append(Step(entropy, {"acc": acc, "norm": f"norm{g}",
                                    "logt": f"log{g}"}, out))
        acc = out

    outputs = ("total", "entropy") \
        + tuple(f"norm{g}" for g in range(groups)) \
        + tuple(f"log{g}" for g in range(groups))
    return StageGraph("amc-normalization",
                      inputs=("zero",) + tuple(f"src{g}"
                                               for g in range(groups)),
                      steps=tuple(steps), outputs=outputs)


def build_cumulative_graph(bands: int, radius: int = 1, *,
                           pairs: tuple[tuple[int, int], ...] | None = None,
                           ) -> StageGraph:
    """Stage 3 of Fig. 4 (cumulative SID distances) as a stage graph.

    Inputs: ``zero``, ``entropy`` and the ``norm*``/``log*`` streams of
    :func:`build_normalization_graph`.  Outputs: one ``sid_{a}_{b}`` map
    per requested pair and one ``accum{k}`` cumulative stream per SE
    neighbour that appears in the pairs.

    ``pairs`` defaults to every unordered pair of the SE — note that is
    K(K-1)/2 * G steps; for demonstrations pass a subset.
    """
    offsets = se_offsets(radius)
    k_count = len(offsets)
    groups = band_group_count(bands)
    if pairs is None:
        pairs = tuple((a, b) for a in range(k_count)
                      for b in range(a + 1, k_count))
    for a, b in pairs:
        if not 0 <= a < b < k_count:
            raise StreamError(f"invalid SE pair ({a}, {b}) for radius "
                              f"{radius}")

    add2 = StreamKernel.from_expression(
        "g_add", ir.add(ir.TexFetch("a"), ir.TexFetch("b")),
        inputs=("a", "b"))

    steps: list[Step] = []
    touched: dict[int, str] = {}
    for a, b in pairs:
        ady, adx = offsets[a]
        bdy, bdx = offsets[b]
        cross = StreamKernel.from_expression(
            f"g_cross_{a}_{b}",
            ir.add(ir.TexFetch("acc"),
                   ir.add(ir.dot4(ir.TexFetch("norm", adx, ady),
                                  ir.TexFetch("logt", bdx, bdy)),
                          ir.dot4(ir.TexFetch("norm", bdx, bdy),
                                  ir.TexFetch("logt", adx, ady)))),
            inputs=("acc", "norm", "logt"))
        sid = StreamKernel.from_expression(
            f"g_sid_{a}_{b}",
            ir.max_(ir.sub(ir.add(ir.TexFetch("h", adx, ady),
                                  ir.TexFetch("h", bdx, bdy)),
                           ir.TexFetch("cross")),
                    ir.vec4(0.0)),
            inputs=("h", "cross"))
        acc = "zero"
        for g in range(groups):
            out = f"cross_{a}_{b}" if g == groups - 1 \
                else f"cross_{a}_{b}_g{g}"
            steps.append(Step(cross, {"acc": acc, "norm": f"norm{g}",
                                      "logt": f"log{g}"}, out))
            acc = out
        steps.append(Step(sid, {"h": "entropy", "cross": f"cross_{a}_{b}"},
                          f"sid_{a}_{b}"))
        for k in (a, b):
            prev = touched.get(k, "zero")
            out = f"accum{k}_v{len(steps)}"
            steps.append(Step(add2, {"a": prev, "b": f"sid_{a}_{b}"}, out))
            touched[k] = out

    # final aliases: copy each neighbour's last accumulator to accum{k}
    identity = StreamKernel.from_expression(
        "g_copy", ir.add(ir.TexFetch("a"), ir.vec4(0.0)), inputs=("a",))
    for k, name in touched.items():
        steps.append(Step(identity, {"a": name}, f"accum{k}"))

    outputs = tuple(f"sid_{a}_{b}" for a, b in pairs) \
        + tuple(f"accum{k}" for k in sorted(touched))
    inputs = ("zero", "entropy") \
        + tuple(f"norm{g}" for g in range(groups)) \
        + tuple(f"log{g}" for g in range(groups))
    return StageGraph("amc-cumulative", inputs=inputs,
                      steps=tuple(steps), outputs=outputs)
