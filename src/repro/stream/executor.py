"""Executors: run a stage graph on a backend.

Two backends implement the same contract — given input streams, return
the graph's declared output streams:

* :class:`CpuExecutor` evaluates each kernel with the shader interpreter
  directly on host arrays (the "reference" path, no device bookkeeping);
* :class:`GpuExecutor` uploads inputs as textures on a
  :class:`~repro.gpu.device.VirtualGPU`, runs each step as a
  render-to-texture pass, frees intermediates as soon as their last
  consumer has run (the register-allocation of texture memory a careful
  2006 implementation performs), and downloads only the outputs.

Both produce identical float32 results; the GPU executor additionally
leaves its cost-model accounting on the device's counters.
"""

from __future__ import annotations

import numpy as np

from repro.errors import StreamError
from repro.gpu.device import VirtualGPU
from repro.gpu.interpreter import execute, execute_fused
from repro.gpu.spec import GEFORCE_7800GTX, GpuSpec
from repro.gpu.texture import Texture2D
from repro.stream.graph import FusedStep, StageGraph
from repro.stream.stream import Stream


def _check_inputs(graph: StageGraph, inputs: dict[str, Stream]) -> tuple[int, int]:
    missing = set(graph.inputs) - set(inputs)
    if missing:
        raise StreamError(f"graph {graph.name!r}: input streams "
                          f"{sorted(missing)} not provided")
    extra = set(inputs) - set(graph.inputs)
    if extra:
        raise StreamError(f"graph {graph.name!r}: unexpected inputs "
                          f"{sorted(extra)}")
    shapes = {s.shape for s in inputs.values()}
    if len(shapes) != 1:
        raise StreamError(
            f"graph {graph.name!r}: input streams disagree on shape: "
            f"{sorted(shapes)}")
    return shapes.pop()


class CpuExecutor:
    """Evaluate a stage graph on the host, stream by stream."""

    def run(self, graph: StageGraph,
            inputs: dict[str, Stream]) -> dict[str, Stream]:
        """Execute and return the graph's outputs."""
        height, width = _check_inputs(graph, inputs)
        env: dict[str, np.ndarray] = {n: s.data for n, s in inputs.items()}
        for step in graph.steps:
            textures = {sampler: env[source]
                        for sampler, source in step.inputs.items()}
            if isinstance(step, FusedStep):
                env[step.output] = execute_fused(
                    step.kernel.part_shaders, step.kernel.part_names,
                    height, width, textures, step.uniforms)
            else:
                env[step.output] = execute(step.kernel.shader, height,
                                           width, textures, step.uniforms)
        return {name: Stream(name, env[name]) for name in graph.outputs}


class GpuExecutor:
    """Run a stage graph as render-to-texture passes on a virtual GPU."""

    def __init__(self, device: VirtualGPU | None = None,
                 spec: GpuSpec = GEFORCE_7800GTX):
        self.device = device if device is not None else VirtualGPU(spec)

    def run(self, graph: StageGraph,
            inputs: dict[str, Stream]) -> dict[str, Stream]:
        """Execute on the device and download the declared outputs."""
        height, width = _check_inputs(graph, inputs)
        gpu = self.device

        # Liveness: a stream can be freed after its last consuming step
        # (outputs stay alive until download).
        last_use: dict[str, int] = {}
        for index, step in enumerate(graph.steps):
            for source in step.inputs.values():
                last_use[source] = index
        keep = set(graph.outputs)

        resident: dict[str, Texture2D] = {
            name: gpu.upload(stream.data, label=name)
            for name, stream in inputs.items()}
        try:
            for index, step in enumerate(graph.steps):
                target = gpu.create_target(height, width, label=step.output)
                launched = False
                try:
                    bindings = {sampler: resident[source]
                                for sampler, source in step.inputs.items()}
                    if isinstance(step, FusedStep):
                        gpu.launch_fused(step.kernel, target, bindings,
                                         step.uniforms or None)
                    else:
                        gpu.launch(step.kernel.shader, target, bindings,
                                   step.uniforms or None)
                    launched = True
                finally:
                    if not launched:
                        gpu.free(target)  # not yet tracked in `resident`
                resident[step.output] = target
                for source in set(step.inputs.values()):
                    if last_use.get(source) == index and source not in keep:
                        gpu.free(resident.pop(source))
            return {name: Stream(name, gpu.download(resident[name]))
                    for name in graph.outputs}
        finally:
            gpu.free(*resident.values())
