"""Probability normalization of pixel spectra (paper eqs. 3-4).

The SID distance treats each pixel vector as a discrete probability
distribution over spectral bands:

.. math::

    p_l = \\frac{f_l(x, y)}{\\sum_{k=1}^{N} f_k(x, y)}

Radiance values from a calibrated sensor are non-negative, but synthetic
or preprocessed data can contain zeros (dead bands, water-absorption bands
set to zero).  A zero component makes ``log(p_l)`` singular, so the whole
library clamps normalized spectra to a small epsilon before taking
logarithms — the same guard any practical Cg shader implementation needs,
since ``log(0)`` on 2005-era fragment processors returns ``-inf`` and
poisons every accumulation downstream.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError, ValidationError

#: Default clamp applied before logarithms.  Chosen well above float32
#: denormals so the GPU (float32) and CPU (float64) paths agree, yet far
#: below 1/N for any realistic band count so it never distorts a valid
#: distribution.
DEFAULT_EPSILON: float = 1e-12


class SpectralEpsilon:
    """Context-free holder for the library-wide normalization epsilon.

    Exposed as a class (rather than a bare module constant) so tests can
    temporarily tighten or loosen the clamp via :meth:`set` without
    monkeypatching every importer.
    """

    _value: float = DEFAULT_EPSILON

    @classmethod
    def get(cls) -> float:
        """Return the current epsilon used to clamp probabilities."""
        return cls._value

    @classmethod
    def set(cls, value: float) -> None:
        """Set the clamp.  ``value`` must be a positive finite float."""
        value = float(value)
        if not np.isfinite(value) or value <= 0.0:
            raise ValidationError(f"epsilon must be positive and finite, got {value!r}")
        cls._value = value

    @classmethod
    def reset(cls) -> None:
        """Restore the library default."""
        cls._value = DEFAULT_EPSILON


def normalize_spectra(spectra: np.ndarray, *, axis: int = -1,
                      epsilon: float | None = None) -> np.ndarray:
    """Normalize spectra to unit sum along ``axis`` (paper eqs. 3-4).

    Parameters
    ----------
    spectra:
        Array with a spectral axis; any number of leading dimensions.
        Values must be non-negative (radiance / reflectance).
    axis:
        The spectral axis.  Defaults to the last axis.
    epsilon:
        Lower clamp applied *after* normalization so downstream
        logarithms are finite.  Defaults to :meth:`SpectralEpsilon.get`.

    Returns
    -------
    numpy.ndarray
        Same shape as ``spectra``, dtype float64 (or float32 if the input
        is float32), each spectrum summing to ~1 before clamping.

    Raises
    ------
    ShapeError
        If the spectral axis has zero length.
    ValueError
        If any value is negative or an entire spectrum sums to zero.
    """
    spectra = np.asarray(spectra)
    if spectra.shape == () or spectra.shape[axis] == 0:
        raise ShapeError("spectra must have a non-empty spectral axis")
    if np.any(spectra < 0):
        raise ValidationError("spectra must be non-negative to be normalized "
                         "as probability distributions (paper eq. 3)")
    eps = SpectralEpsilon.get() if epsilon is None else float(epsilon)
    out_dtype = spectra.dtype if spectra.dtype == np.float32 else np.float64
    spectra = spectra.astype(out_dtype, copy=False)
    total = spectra.sum(axis=axis, keepdims=True)
    if np.any(total == 0):
        raise ValidationError("at least one spectrum sums to zero and cannot be "
                         "normalized; mask empty pixels before calling")
    out = spectra / total
    np.clip(out, eps, None, out=out)
    return out


def normalize_image(cube: np.ndarray, *, epsilon: float | None = None) -> np.ndarray:
    """Normalize an (H, W, N) image cube so every pixel vector sums to 1.

    Thin wrapper over :func:`normalize_spectra` with the spectral axis
    fixed to the last dimension, mirroring the *Normalization* stage of
    the paper's stream implementation (Fig. 4).
    """
    cube = np.asarray(cube)
    if cube.ndim != 3:
        raise ShapeError(f"expected an (H, W, N) cube, got ndim={cube.ndim}")
    return normalize_spectra(cube, axis=-1, epsilon=epsilon)


def safe_log(values: np.ndarray, *, epsilon: float | None = None) -> np.ndarray:
    """Logarithm with the library's epsilon clamp applied first.

    Equivalent to ``np.log(np.maximum(values, eps))`` but never emits the
    ``divide-by-zero`` warning and preserves float32 inputs as float32 —
    the property needed for the GPU interpreter, which works in float32
    like the real fragment processors did.
    """
    eps = SpectralEpsilon.get() if epsilon is None else float(epsilon)
    values = np.asarray(values)
    clamped = np.maximum(values, np.asarray(eps, dtype=values.dtype))
    return np.log(clamped)
