"""Spectral distance measures between pixel vectors.

The central measure is the **Spectral Information Divergence** (SID) of
paper eq. 2, the symmetrized Kullback-Leibler divergence between two
spectra viewed as probability distributions:

.. math::

    \\mathrm{SID}(p, q) = \\sum_l p_l \\log\\frac{p_l}{q_l}
                        + \\sum_l q_l \\log\\frac{q_l}{p_l}

For the morphological operations we need SID not between two isolated
vectors but between *every pixel of an image and every pixel of a shifted
copy of the same image* (the cumulative distance of eq. 1).  Expanding the
definition gives the **cross-entropy decomposition** used throughout the
library:

.. math::

    \\mathrm{SID}(p, q) = h(p) + h(q) - x(p, q) - x(q, p)

with the (negated-sign) self entropy :math:`h(p) = \\sum_l p_l \\log p_l`
and cross term :math:`x(p, q) = \\sum_l p_l \\log q_l`.  The self entropies
depend on a single pixel and are computed once per image; only the two
cross terms depend on the *pair*, halving the per-pair band reductions.
This is exactly the "maximize computation reuse" hand-tuning the paper
applies to its CPU reference codes, and the same split maps naturally onto
the GPU accumulation kernels.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.spectral.normalize import safe_log


def _check_pair(p: np.ndarray, q: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape[-1] != q.shape[-1]:
        raise ShapeError(
            f"spectral axes differ: {p.shape[-1]} vs {q.shape[-1]}")
    return p, q


def sid(p: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Spectral Information Divergence between normalized spectra.

    Parameters
    ----------
    p, q:
        Arrays whose last axis is spectral, already normalized to unit sum
        (see :func:`repro.spectral.normalize.normalize_spectra`).  Leading
        axes broadcast, so ``sid(image, vector)`` scores a whole image
        against one reference spectrum.

    Returns
    -------
    numpy.ndarray or float
        SID values with the broadcast leading shape.  Always >= 0, and 0
        iff the spectra are identical (up to the epsilon clamp).
    """
    p, q = _check_pair(p, q)
    lp = safe_log(p)
    lq = safe_log(q)
    d = (p - q) * (lp - lq)
    out = d.sum(axis=-1)
    # Guard against tiny negative values from cancellation; SID is a
    # sum of non-negative terms analytically.
    return np.maximum(out, 0.0)


def sid_self_entropy(p: np.ndarray) -> np.ndarray:
    """Self term :math:`h(p) = \\sum_l p_l \\log p_l` of the decomposition.

    ``p`` has the spectral axis last; the result drops that axis.
    """
    p = np.asarray(p, dtype=np.float64)
    return (p * safe_log(p)).sum(axis=-1)


def sid_cross_terms(p: np.ndarray, q: np.ndarray,
                    lp: np.ndarray | None = None,
                    lq: np.ndarray | None = None) -> np.ndarray:
    """Sum of the two cross terms :math:`x(p,q) + x(q,p)`.

    Combined with :func:`sid_self_entropy`,
    ``sid(p, q) == sid_self_entropy(p) + sid_self_entropy(q)
    - sid_cross_terms(p, q)``.

    Parameters
    ----------
    p, q:
        Normalized spectra, spectral axis last.
    lp, lq:
        Optional precomputed ``safe_log(p)`` / ``safe_log(q)``.  Callers
        that evaluate many cross terms against the same spectra (the
        pair-map loops) hold the logs once instead of re-logging per
        call.
    """
    p, q = _check_pair(p, q)
    if lp is None:
        lp = safe_log(p)
    if lq is None:
        lq = safe_log(q)
    return (p * lq + q * lp).sum(axis=-1)


def sid_image(image_p: np.ndarray, image_q: np.ndarray,
              hp: np.ndarray | None = None,
              hq: np.ndarray | None = None,
              lp: np.ndarray | None = None,
              lq: np.ndarray | None = None) -> np.ndarray:
    """SID between two aligned (H, W, N) images, pixel by pixel.

    This is the workhorse of the cumulative-distance stage: the caller
    passes the normalized image and a spatially shifted copy of it, plus
    (optionally) precomputed self entropies and logs so neither is
    recomputed for every shift.

    Parameters
    ----------
    image_p, image_q:
        Normalized (H, W, N) cubes.
    hp, hq:
        Optional precomputed ``sid_self_entropy`` maps of shape (H, W).
    lp, lq:
        Optional precomputed ``safe_log`` cubes of shape (H, W, N) —
        forwarded to :func:`sid_cross_terms` so a caller that already
        holds the log image (every pair-map evaluator does) pays no
        per-pair re-log.

    Returns
    -------
    numpy.ndarray
        (H, W) map of SID values.
    """
    image_p = np.asarray(image_p, dtype=np.float64)
    image_q = np.asarray(image_q, dtype=np.float64)
    if image_p.shape != image_q.shape:
        raise ShapeError(
            f"images must be aligned, got {image_p.shape} vs {image_q.shape}")
    if image_p.ndim != 3:
        raise ShapeError(f"expected (H, W, N) images, got ndim={image_p.ndim}")
    if hp is None:
        hp = sid_self_entropy(image_p)
    if hq is None:
        hq = sid_self_entropy(image_q)
    cross = sid_cross_terms(image_p, image_q, lp=lp, lq=lq)
    return np.maximum(hp + hq - cross, 0.0)


def sid_pairwise(spectra_a: np.ndarray, spectra_b: np.ndarray | None = None) -> np.ndarray:
    """Dense SID matrix between two sets of spectra.

    Parameters
    ----------
    spectra_a:
        (M, N) normalized spectra.
    spectra_b:
        (K, N) normalized spectra; defaults to ``spectra_a`` (in which
        case the result is symmetric with a zero diagonal).

    Returns
    -------
    numpy.ndarray
        (M, K) matrix of SID values, computed with two matrix products via
        the cross-entropy decomposition rather than an M*K loop.
    """
    a = np.asarray(spectra_a, dtype=np.float64)
    b = a if spectra_b is None else np.asarray(spectra_b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2:
        raise ShapeError("sid_pairwise expects 2-D (count, bands) arrays")
    if a.shape[1] != b.shape[1]:
        raise ShapeError(
            f"band counts differ: {a.shape[1]} vs {b.shape[1]}")
    la = safe_log(a)
    lb = safe_log(b)
    ha = (a * la).sum(axis=1)          # (M,)
    hb = (b * lb).sum(axis=1)          # (K,)
    cross = a @ lb.T + (b @ la.T).T    # (M, K) = x(a,b) + x(b,a)
    out = ha[:, None] + hb[None, :] - cross
    return np.maximum(out, 0.0)


def sam(p: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Spectral Angle Mapper: the angle (radians) between spectra.

    Scale-invariant, so it accepts *unnormalized* spectra.  Used by the
    example applications as an alternative similarity measure; the paper's
    algorithm itself uses SID.
    """
    p, q = _check_pair(p, q)
    num = (p * q).sum(axis=-1)
    den = np.sqrt((p * p).sum(axis=-1) * (q * q).sum(axis=-1))
    with np.errstate(invalid="ignore", divide="ignore"):
        cosang = np.where(den > 0, num / np.maximum(den, 1e-300), 1.0)
    return np.arccos(np.clip(cosang, -1.0, 1.0))


def spectral_correlation(p: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Pearson correlation between spectra along the last axis."""
    p, q = _check_pair(p, q)
    pc = p - p.mean(axis=-1, keepdims=True)
    qc = q - q.mean(axis=-1, keepdims=True)
    num = (pc * qc).sum(axis=-1)
    den = np.sqrt((pc * pc).sum(axis=-1) * (qc * qc).sum(axis=-1))
    with np.errstate(invalid="ignore", divide="ignore"):
        out = np.where(den > 0, num / np.maximum(den, 1e-300), 0.0)
    return np.clip(out, -1.0, 1.0)


def euclidean(p: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Euclidean distance between spectra along the last axis."""
    p, q = _check_pair(p, q)
    d = p - q
    return np.sqrt((d * d).sum(axis=-1))
