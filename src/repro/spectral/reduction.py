"""Dimensionality reduction and intrinsic-dimension estimation.

Hyperspectral pipelines routinely reduce the spectral dimension before
heavy processing ([11] builds its classification on exactly such a
reduction).  Three standard tools are provided:

* :func:`pca` — principal component analysis of the pixel cloud;
* :func:`mnf` — the maximum noise fraction transform: components ordered
  by signal-to-noise rather than variance, using a noise covariance
  estimated from horizontal pixel differences (the classic
  shift-difference estimator);
* :func:`virtual_dimensionality` — the HFC estimator of how many
  spectrally distinct signal sources the scene contains, the principled
  way to pick the AMC input ``c``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg

from repro.errors import ShapeError, ValidationError


def _as_pixels(data: np.ndarray) -> tuple[np.ndarray, tuple[int, ...]]:
    data = np.asarray(data, dtype=np.float64)
    if data.ndim == 2:
        return data, data.shape[:1]
    if data.ndim == 3:
        return data.reshape(-1, data.shape[2]), data.shape[:2]
    raise ShapeError(f"expected (P, N) pixels or an (H, W, N) cube, got "
                     f"{data.shape}")


@dataclass(frozen=True)
class Projection:
    """A fitted linear spectral projection.

    ``transformed`` holds the input projected onto the leading
    components (same leading shape as the input); ``components`` is
    (n_components, N); ``scores`` holds the per-component ordering
    statistic (variance for PCA, SNR for MNF).
    """

    transformed: np.ndarray
    components: np.ndarray
    scores: np.ndarray
    mean: np.ndarray

    @property
    def n_components(self) -> int:
        return self.components.shape[0]

    def project(self, data: np.ndarray) -> np.ndarray:
        """Project new data onto the fitted components."""
        pixels, leading = _as_pixels(data)
        if pixels.shape[1] != self.mean.shape[0]:
            raise ShapeError(
                f"data has {pixels.shape[1]} bands, projection was fitted "
                f"on {self.mean.shape[0]}")
        out = (pixels - self.mean) @ self.components.T
        return out.reshape(*leading, self.n_components)


def pca(data: np.ndarray, n_components: int) -> Projection:
    """Principal component analysis.

    Parameters
    ----------
    data:
        (P, N) pixels or an (H, W, N) cube.
    n_components:
        Number of leading components to keep (1..N).
    """
    pixels, leading = _as_pixels(data)
    n = pixels.shape[1]
    if not 1 <= n_components <= n:
        raise ValidationError(f"n_components must be in [1, {n}], got "
                         f"{n_components}")
    mean = pixels.mean(axis=0)
    centered = pixels - mean
    cov = centered.T @ centered / max(pixels.shape[0] - 1, 1)
    eigvals, eigvecs = np.linalg.eigh(cov)
    order = np.argsort(eigvals)[::-1][:n_components]
    components = eigvecs[:, order].T
    scores = np.maximum(eigvals[order], 0.0)
    transformed = (centered @ components.T).reshape(*leading, n_components)
    return Projection(transformed=transformed, components=components,
                      scores=scores, mean=mean)


def estimate_noise_covariance(cube: np.ndarray) -> np.ndarray:
    """Shift-difference noise covariance estimate.

    Adjacent pixels of a remote-sensing scene share their signal almost
    entirely, so half the covariance of horizontal pixel differences is
    a serviceable estimate of the noise covariance.
    """
    cube = np.asarray(cube, dtype=np.float64)
    if cube.ndim != 3:
        raise ShapeError(f"expected (H, W, N), got {cube.shape}")
    if cube.shape[1] < 2:
        raise ShapeError("need at least 2 samples per line for the "
                         "shift-difference estimator")
    diff = (cube[:, 1:, :] - cube[:, :-1, :]).reshape(-1, cube.shape[2])
    return diff.T @ diff / (2.0 * max(diff.shape[0] - 1, 1))


def mnf(cube: np.ndarray, n_components: int) -> Projection:
    """Maximum noise fraction transform.

    Solves the generalized eigenproblem ``C_signal v = lambda C_noise v``
    and keeps the ``n_components`` directions of highest SNR.  Unlike
    PCA, a high-variance but noisy direction (e.g. a water-absorption
    residual) ranks low.
    """
    cube = np.asarray(cube, dtype=np.float64)
    if cube.ndim != 3:
        raise ShapeError(f"expected (H, W, N), got {cube.shape}")
    n = cube.shape[2]
    if not 1 <= n_components <= n:
        raise ValidationError(f"n_components must be in [1, {n}], got "
                         f"{n_components}")
    pixels = cube.reshape(-1, n)
    mean = pixels.mean(axis=0)
    centered = pixels - mean
    cov = centered.T @ centered / max(pixels.shape[0] - 1, 1)
    noise = estimate_noise_covariance(cube)
    # regularize: the noise estimate can be rank-deficient on synthetic
    # data with near-perfect band correlation
    noise = noise + np.eye(n) * (1e-12 * np.trace(noise) / n + 1e-30)
    eigvals, eigvecs = scipy.linalg.eigh(cov, noise)
    order = np.argsort(eigvals)[::-1][:n_components]
    components = eigvecs[:, order].T              # rows: v_k
    scores = np.maximum(eigvals[order], 0.0)      # SNR-like ratios
    transformed = (centered @ components.T).reshape(
        cube.shape[0], cube.shape[1], n_components)
    return Projection(transformed=transformed, components=components,
                      scores=scores, mean=mean)


def virtual_dimensionality(cube: np.ndarray, *,
                           false_alarm_rate: float = 1e-3) -> int:
    """HFC estimate of the number of spectrally distinct sources.

    Compares the eigenvalues of the sample *correlation* matrix (signal
    plus mean) with those of the *covariance* matrix (signal only): a
    source present in the scene pushes a correlation eigenvalue above
    its covariance counterpart.  A Neyman-Pearson test at the given
    false-alarm rate counts how many pairs differ significantly.
    """
    cube = np.asarray(cube, dtype=np.float64)
    pixels, _ = _as_pixels(cube)
    p, n = pixels.shape
    if p < 2:
        raise ShapeError("need at least 2 pixels")
    if not 0.0 < false_alarm_rate < 0.5:
        raise ValidationError("false_alarm_rate must be in (0, 0.5)")
    corr = pixels.T @ pixels / p
    mean = pixels.mean(axis=0)
    cov = corr - np.outer(mean, mean)
    l_corr = np.sort(np.linalg.eigvalsh(corr))[::-1]
    l_cov = np.sort(np.linalg.eigvalsh(cov))[::-1]
    # NP threshold: the difference statistic's std under H0 is
    # sqrt(2 (l_corr^2 + l_cov^2) / p) (HFC's Gaussian approximation).
    from scipy.special import ndtri

    tau = -ndtri(false_alarm_rate)  # one-sided quantile
    sigma = np.sqrt(2.0 * (l_corr ** 2 + l_cov ** 2) / p)
    return int(np.sum(l_corr - l_cov > tau * sigma))
