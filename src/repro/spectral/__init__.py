"""Spectral mathematics: distances between pixel vectors and normalization.

This package implements the spectral measures used by the paper:

* :func:`~repro.spectral.distances.sid` — the Spectral Information
  Divergence (paper eq. 2), the distance at the heart of the AMC
  morphological operations, together with image-form and pairwise-form
  variants used by the vectorized implementations.
* :func:`~repro.spectral.normalize.normalize_spectra` — the probability
  normalization of paper eqs. 3-4.
* Additional classic measures (SAM, spectral correlation, Euclidean) that
  the surrounding literature ([2] Chang 2003, [10] Plaza et al. 2002) uses
  and which the library exposes for the example applications.
"""

from repro.spectral.distances import (
    euclidean,
    sam,
    sid,
    sid_cross_terms,
    sid_image,
    sid_pairwise,
    sid_self_entropy,
    spectral_correlation,
)
from repro.spectral.normalize import (
    SpectralEpsilon,
    normalize_image,
    normalize_spectra,
    safe_log,
)
from repro.spectral.reduction import (
    Projection,
    estimate_noise_covariance,
    mnf,
    pca,
    virtual_dimensionality,
)

__all__ = [
    "Projection",
    "SpectralEpsilon",
    "estimate_noise_covariance",
    "euclidean",
    "mnf",
    "normalize_image",
    "normalize_spectra",
    "pca",
    "safe_log",
    "sam",
    "sid",
    "sid_cross_terms",
    "sid_image",
    "sid_pairwise",
    "sid_self_entropy",
    "spectral_correlation",
    "virtual_dimensionality",
]
