"""The backend registry: one place that maps names to implementations.

Every layer that used to string-compare ``config.backend`` now resolves
through :func:`get_backend`, so adding an execution substrate is a
single :func:`register_backend` call — the algorithm driver, the
chunk-parallel executor, ``AMCConfig`` validation and the CLI's
``--backend`` choices all pick it up without modification
(reprolint's ``backend-dispatch`` rule keeps it that way).
"""

from __future__ import annotations

from repro.backends.base import MorphologicalBackend
from repro.errors import (RegistryTypeError, UnknownBackendError,
                          ValidationError)

_REGISTRY: dict[str, MorphologicalBackend] = {}


def register_backend(backend: MorphologicalBackend, *,
                     replace: bool = False) -> MorphologicalBackend:
    """Register a backend under its :attr:`~MorphologicalBackend.name`.

    Returns the backend (so the call composes as a decorator-ish
    one-liner).  Re-registering a taken name is an error unless
    ``replace=True`` — silent shadowing of ``reference`` would be a
    debugging nightmare.
    """
    if not isinstance(backend, MorphologicalBackend):
        raise RegistryTypeError(f"expected a MorphologicalBackend instance, got "
                        f"{type(backend).__name__}")
    if not backend.name:
        raise ValidationError("backend.name must be a non-empty string")
    if backend.name in _REGISTRY and not replace:
        raise ValidationError(
            f"backend {backend.name!r} is already registered; pass "
            f"replace=True to override it")
    _REGISTRY[backend.name] = backend
    return backend


def unregister_backend(name: str) -> None:
    """Remove a backend from the registry (no-op for unknown names)."""
    _REGISTRY.pop(name, None)


def backend_names() -> tuple[str, ...]:
    """The registered backend names, sorted — the CLI's ``--backend``
    choices and the listing every unknown-backend error carries."""
    return tuple(sorted(_REGISTRY))


def get_backend(backend) -> MorphologicalBackend:
    """Resolve a backend name (or pass an instance through).

    Raises :class:`~repro.errors.UnknownBackendError` — listing the
    registered names — for anything not in the registry.
    """
    if isinstance(backend, MorphologicalBackend):
        return backend
    try:
        return _REGISTRY[backend]
    except KeyError:
        raise UnknownBackendError(
            f"unknown backend {backend!r}; registered backends: "
            f"{backend_names()}") from None
