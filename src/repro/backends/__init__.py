"""Pluggable morphological backends for AMC.

The paper runs one algorithm on very different execution substrates
(Pentium 4 baselines, two GPU generations); the related ports in
PAPERS.md repeat that pattern.  This package makes the substrate a
first-class, *pluggable* axis: a :class:`MorphologicalBackend` adapts
one implementation of the morphological stage to a common contract, a
registry maps names to adapters, and every consumer —
:func:`repro.core.amc.run_amc`, the chunk-parallel executor, ``amee``,
the CLI — resolves through :func:`get_backend` instead of
string-comparing backend names (reprolint's ``backend-dispatch`` rule
— ``python -m tools.reprolint --rules backend-dispatch`` — enforces
that this stays the *only* dispatch point).

Built-ins: ``reference`` (vectorized float64 CPU), ``naive`` (per-pixel
loop oracle), ``gpu`` (stream pipeline on a virtual board).  Register
your own with::

    from repro.backends import MorphologicalBackend, register_backend

    class MyBackend(MorphologicalBackend):
        name = "mine"
        def run(self, bip, radius, *, spec=None, device=None):
            ...

    register_backend(MyBackend())

and ``AMCConfig(backend="mine")``, ``repro classify --backend mine``
and ``n_workers > 1`` all work immediately.
"""

from repro.backends.base import (
    ChunkResult,
    MorphologicalBackend,
    MorphologyResult,
)
from repro.backends.builtin import GpuBackend, NaiveBackend, ReferenceBackend
from repro.backends.registry import (
    backend_names,
    get_backend,
    register_backend,
    unregister_backend,
)

register_backend(ReferenceBackend())
register_backend(NaiveBackend())
register_backend(GpuBackend())

__all__ = [
    "ChunkResult",
    "GpuBackend",
    "MorphologicalBackend",
    "MorphologyResult",
    "NaiveBackend",
    "ReferenceBackend",
    "backend_names",
    "get_backend",
    "register_backend",
    "unregister_backend",
]
