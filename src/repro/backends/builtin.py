"""The three built-in morphological backends.

Adapters over the implementations the library has always had — the
vectorized float64 reference, the per-pixel loop oracle, and the
stream-programming pipeline on the virtual GPU.  Implementation imports
are deferred into the methods so that importing :mod:`repro.backends`
never drags in (or cycles with) :mod:`repro.core`.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import (
    ChunkResult,
    MorphologicalBackend,
    MorphologyResult,
)


class ReferenceBackend(MorphologicalBackend):
    """``reference`` — the vectorized float64 NumPy implementation
    (:func:`repro.core.mei.mei_reference`), the production CPU path.

    Runs the shift-reuse engine by default (one SID map per unique
    offset difference — see :mod:`repro.core.pairreuse`); construct
    with ``method="pairs"`` to opt out into the all-pairs loop.  Both
    are bit-identical; the reuse accounting rides along in
    :attr:`~repro.backends.base.MorphologyResult.stats`.
    """

    name = "reference"
    accepts_halo_margins = True

    def __init__(self, method: str = "shift",
                 optimize: str = "fuse") -> None:
        self.method = method
        self.optimize = optimize

    def configured(self, *, optimize: str = "fuse"):
        """Same method, requested ``optimize`` mode."""
        return ReferenceBackend(method=self.method, optimize=optimize)

    def run(self, bip, radius, *, spec=None, device=None):
        """Whole-image morphological stage via the vectorized pair
        maps."""
        from repro.core.mei import mei_reference

        out = mei_reference(bip, radius, method=self.method,
                            optimize=self.optimize)
        stats = None if out.stats is None else out.stats.as_counters()
        return MorphologyResult(mei=out.mei,
                                erosion_index=out.erosion_index,
                                dilation_index=out.dilation_index,
                                stats=stats)

    def run_chunk(self, bip, radius, *, spec=None,
                  halo_margins=(0, 0)):
        """One halo-extended chunk, with cross-chunk shift-reuse.

        ``halo_margins`` names the extended-region rows the stitcher
        will discard (a neighbouring chunk owns them); the fused engine
        skips border corrections confined to those rows and counts them
        as ``border_pixels_shared``.  Core rows are bit-identical
        either way.
        """
        from repro.core.mei import mei_reference

        out = mei_reference(bip, radius, method=self.method,
                            optimize=self.optimize,
                            halo_margins=halo_margins
                            if self.optimize == "fuse" else (0, 0))
        stats = None if out.stats is None else out.stats.as_counters()
        return ChunkResult(mei=out.mei.astype(self.mei_dtype, copy=False),
                           erosion_index=out.erosion_index,
                           dilation_index=out.dilation_index,
                           stats=stats)


class NaiveBackend(MorphologicalBackend):
    """``naive`` — the literal per-pixel loop oracle
    (:func:`repro.core.naive.mei_naive`) the test suite grounds on."""

    name = "naive"

    def run(self, bip, radius, *, spec=None, device=None):
        """Whole-image morphological stage via the per-pixel loops."""
        from repro.core.naive import mei_naive

        out = mei_naive(bip, radius)
        return MorphologyResult(mei=out.mei,
                                erosion_index=out.erosion_index,
                                dilation_index=out.dilation_index)


class GpuBackend(MorphologicalBackend):
    """``gpu`` — the stream implementation of paper Fig. 4 on a virtual
    board (:func:`repro.core.amc_gpu.gpu_morphological_stage`)."""

    name = "gpu"
    mei_dtype = np.float32
    supports_device_unmixing = True
    supports_trace = True

    def __init__(self, optimize: str = "fuse") -> None:
        self.optimize = optimize

    def configured(self, *, optimize: str = "fuse"):
        """A backend whose boards run in the requested ``optimize``
        mode."""
        return GpuBackend(optimize=optimize)

    def _resolve_device(self, spec, device):
        if device is not None:
            return device
        from repro.gpu.device import VirtualGPU
        from repro.gpu.spec import GEFORCE_7800GTX

        return VirtualGPU(GEFORCE_7800GTX if spec is None else spec,
                          optimize=self.optimize)

    def run(self, bip, radius, *, spec=None, device=None):
        """Whole-image stream pipeline on one virtual board.

        The MEI is converted to float64 for the host tail; the raw
        float32 map stays in ``accounting.mei``.  The live device rides
        along in :attr:`MorphologyResult.device` so the GPU unmixing
        tail (or an AMEE iteration) can keep accumulating on it.
        """
        from repro.core.amc_gpu import gpu_morphological_stage

        dev = self._resolve_device(spec, device)
        out = gpu_morphological_stage(bip, radius, device=dev)
        return MorphologyResult(mei=out.mei.astype(np.float64),
                                erosion_index=out.erosion_index,
                                dilation_index=out.dilation_index,
                                accounting=out, device=dev)

    def run_chunk(self, bip, radius, *, spec=None):
        """One chunk on its own board — the multi-board reading of the
        paper's decomposition; ships the upload/compute/download split
        and the board's accounting for summation."""
        from repro.core.amc_gpu import gpu_morphological_stage

        device = self._resolve_device(spec, None)
        out = gpu_morphological_stage(bip, radius, device=device)
        counters = device.counters
        split = (counters.upload_time_s, counters.kernel_time_s,
                 counters.download_time_s)
        accounting = (out.modeled_time_s, out.chunk_count,
                      counters.summary(), counters.time_by_kernel())
        return ChunkResult(mei=out.mei, erosion_index=out.erosion_index,
                           dilation_index=out.dilation_index,
                           split=split, accounting=accounting)

    def stitched_accounting(self, mei, erosion, dilation, radius, pieces):
        """Sum per-board accounting into one
        :class:`~repro.core.amc_gpu.GpuAmcOutput` (``modeled_time_s`` is
        total device work, not the parallel makespan)."""
        from repro.core.amc_gpu import GpuAmcOutput, sum_time_dicts

        total_time = 0.0
        total_chunks = 0
        counters: dict[str, float] = {}
        by_kernel: dict[str, float] = {}
        for time_s, chunk_count, summary, kernels in pieces:
            total_time += time_s
            total_chunks += chunk_count
            counters = sum_time_dicts(counters, summary)
            by_kernel = sum_time_dicts(by_kernel, kernels)
        return GpuAmcOutput(
            mei=mei, erosion_index=erosion, dilation_index=dilation,
            radius=radius, chunk_count=total_chunks,
            modeled_time_s=total_time, counters=counters,
            time_by_kernel=by_kernel)
