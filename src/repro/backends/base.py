"""The morphological-backend contract.

A :class:`MorphologicalBackend` is a small adapter around one
implementation of the AMC morphological stage (paper Fig. 4, stages
1-6: upload, normalize, cumulative SID, min/max, MEI, download).  The
three built-in adapters wrap :func:`repro.core.mei.mei_reference`,
:func:`repro.core.naive.mei_naive` and
:func:`repro.core.amc_gpu.gpu_morphological_stage`; anything else that
honours the contract — same SE semantics, clamp-to-edge addressing,
first-occurrence tie-breaking — can be registered alongside them
(:mod:`repro.backends.registry`) and becomes runnable through
:func:`repro.core.amc.run_amc`, the chunk-parallel executor and the CLI
without touching any of those layers.

The contract has two entry points:

* :meth:`MorphologicalBackend.run` — whole-image execution, returning a
  :class:`MorphologyResult` (float64 MEI plus the erosion/dilation
  index maps, optional device accounting, and — for device backends —
  the live device so the unmixing tail can keep accumulating on it);
* :meth:`MorphologicalBackend.run_chunk` — one halo-extended chunk for
  the worker pool, returning a :class:`ChunkResult` whose MEI keeps the
  backend's native dtype (:attr:`MorphologicalBackend.mei_dtype`) so
  that stitching is bit-identical to whole-image execution.

This module imports nothing from :mod:`repro.core` at module level (the
concrete adapters defer their implementation imports), so
``repro.backends`` can be imported from any layer without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np


@dataclass(frozen=True)
class MorphologyResult:
    """Whole-image output of a backend's morphological stage.

    Attributes
    ----------
    mei:
        (H, W) float64 morphological eccentricity index.
    erosion_index / dilation_index:
        (H, W) SE-neighbour indices (row-major into
        :func:`repro.core.mei.se_offsets`) of the per-pixel argmin /
        argmax of the cumulative distance.
    accounting:
        A :class:`repro.core.amc_gpu.GpuAmcOutput` for device backends
        (modeled time, counter summary, per-kernel profile), ``None``
        for host backends.
    device:
        The live device the stage ran on, when the backend keeps one
        (the GPU unmixing tail reuses it so one counter set covers the
        whole algorithm); ``None`` otherwise.
    stats:
        Plain-float work-counter dict for the profiler's stage records
        (e.g. the reference backend's shift-reuse accounting — see
        :meth:`repro.core.pairreuse.PairReuseStats.as_counters`),
        ``None`` when the backend records none.
    """

    mei: np.ndarray
    erosion_index: np.ndarray
    dilation_index: np.ndarray
    accounting: Any | None = None
    device: Any | None = None
    stats: dict | None = None


@dataclass(frozen=True)
class ChunkResult:
    """One halo-extended chunk's output, as the worker pool ships it.

    Attributes
    ----------
    mei / erosion_index / dilation_index:
        Extended-region maps in the backend's native dtypes (the
        stitcher extracts the core rows).
    split:
        ``(upload_s, compute_s, download_s)`` stream-phase split for
        device backends, ``None`` when no bus was crossed (the caller
        then books the measured wall time as compute).
    accounting:
        ``(modeled_time_s, chunk_count, counter_summary,
        time_by_kernel)`` for device backends, ``None`` otherwise;
        summed across chunks by
        :meth:`MorphologicalBackend.stitched_accounting`.
    stats:
        Plain-float work-counter dict (pickle-friendly across the pool
        boundary), summed over chunks into the morphology stage record
        by the chunk-parallel executor; ``None`` when the backend
        records none.
    """

    mei: np.ndarray
    erosion_index: np.ndarray
    dilation_index: np.ndarray
    split: tuple[float, float, float] | None = None
    accounting: tuple | None = None
    stats: dict | None = None


class MorphologicalBackend:
    """Base class for morphological-stage backends.

    Subclasses set :attr:`name` (the registry key) and implement
    :meth:`run`; everything else has working defaults for host
    backends.  Device backends additionally override :meth:`run_chunk`
    and :meth:`stitched_accounting` and flip the capability flags.
    """

    #: Registry key (``AMCConfig.backend``, CLI ``--backend``).
    name: str = ""
    #: dtype the chunk-parallel stitcher allocates for the MEI plane —
    #: the backend's *native* MEI precision, so stitched maps are
    #: bit-identical to whole-image runs.
    mei_dtype: type = np.float64
    #: Whether the unmixing/classification tail can run on this
    #: backend's device (``AMCConfig.gpu_unmixing``).
    supports_device_unmixing: bool = False
    #: Whether the CLI ``--trace`` device timeline applies.
    supports_trace: bool = False
    #: Whether :meth:`run_chunk` accepts a ``halo_margins=(top,
    #: bottom)`` keyword — the chunk-parallel executor then tells the
    #: backend which extended-region rows are discarded halo, so the
    #: cross-chunk shift-reuse can skip border corrections a
    #: neighbouring chunk already owns.
    accepts_halo_margins: bool = False

    def configured(self, *, optimize: str = "fuse"
                   ) -> "MorphologicalBackend":
        """A backend instance with execution knobs applied.

        Registered backends are shared singletons, so knob application
        returns a (possibly new) instance instead of mutating.  The
        base implementation ignores every knob — correct for backends
        with no fused path, where ``optimize`` selects between
        bit-identical strategies that do not exist.
        """
        return self

    def run(self, bip: np.ndarray, radius: int, *, spec=None,
            device=None) -> MorphologyResult:
        """Run the morphological stage on a whole (H, W, N) image.

        ``spec`` configures device backends (ignored by host ones);
        ``device`` lets a caller thread one live device through several
        calls so its accounting accumulates.
        """
        raise NotImplementedError

    def run_chunk(self, bip: np.ndarray, radius: int, *,
                  spec=None) -> ChunkResult:
        """Run the stage on one halo-extended chunk (worker-pool entry).

        The default wraps :meth:`run`; device backends override it to
        give each chunk its own board and report the stream-phase
        split.
        """
        res = self.run(bip, radius, spec=spec)
        return ChunkResult(mei=res.mei.astype(self.mei_dtype, copy=False),
                           erosion_index=res.erosion_index,
                           dilation_index=res.dilation_index,
                           stats=res.stats)

    def stitched_accounting(self, mei: np.ndarray, erosion: np.ndarray,
                            dilation: np.ndarray, radius: int,
                            pieces: list):
        """Aggregate per-chunk accounting tuples after stitching.

        ``pieces`` holds the non-``None`` :attr:`ChunkResult.accounting`
        values in plan order.  Host backends have nothing to aggregate
        and return ``None``.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"
