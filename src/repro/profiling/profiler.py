"""Wall-clock profiling of AMC runs: stage timers and per-chunk records.

The virtual GPU already accounts for every *modeled* millisecond
(:mod:`repro.gpu.counters`); this module is the host-side mirror for
*measured* time.  A :class:`Profiler` collects two kinds of records:

* :class:`StageRecord` — one wall-clock interval per algorithm stage
  (morphology, endmembers, unmixing, classification, evaluation), taken
  with :meth:`Profiler.stage`;
* :class:`ChunkRecord` — one record per spatial chunk dispatched by the
  chunked/parallel executors, mirroring the paper's three stream phases:
  ``upload_s`` / ``compute_s`` / ``download_s`` follow exactly the
  upload / kernel / download split of
  :class:`~repro.gpu.counters.GpuCounters` (modeled seconds on the GPU
  backend, measured host seconds on the CPU backends, where the
  transfer phases are zero because no bus is crossed);
* :class:`EventRecord` — one entry per noteworthy resilience event
  (a retried chunk, a pool falling back to in-process recovery, an OOM
  degradation re-plan), recorded with :meth:`Profiler.record_event` so
  fault recovery is *visible* in the report rather than silent.

:meth:`Profiler.report` freezes everything into a
:class:`ProfileReport`, which renders as JSON (``to_json`` / ``save``)
for machines and as an aligned text table (``to_text``) for terminals —
the report behind ``repro classify --profile``.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager, nullcontext
from dataclasses import asdict, dataclass, field


@dataclass(frozen=True)
class StageRecord:
    """One timed algorithm stage (host wall clock).

    ``counters`` carries stage-specific work counters recorded during
    the span with :meth:`Profiler.record_stage_counters` — e.g. the
    morphology stage's shift-reuse accounting (``pair_maps`` served vs
    ``difference_maps`` actually evaluated, and the resulting
    ``reuse_ratio``); empty for stages that record none.
    """

    name: str
    wall_s: float
    counters: dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class ChunkRecord:
    """One spatial chunk's execution, in the paper's three stream phases.

    Attributes
    ----------
    index:
        Chunk index in the plan (core regions are ordered by line).
    core_lines / ext_lines:
        Lines the chunk owns in the output / lines it computed
        including halos (``ext_lines - core_lines`` is the redundant
        halo work this chunk paid for independence).
    halo:
        Halo lines carried on each interior edge.
    wall_s:
        Measured wall-clock seconds for the whole chunk, in whichever
        process ran it.
    upload_s / compute_s / download_s:
        The stream upload / kernel / download split.  On the GPU
        backend these are the modeled seconds from the device counters;
        on CPU backends ``compute_s`` is measured host time and the
        transfer phases are zero.
    worker:
        OS pid of the process that executed the chunk — equal across
        records for serial runs, distinct for pool runs.
    retries:
        How many extra attempts this chunk needed before the recorded
        (successful) one — 0 on the fault-free path.
    """

    index: int
    core_lines: int
    ext_lines: int
    halo: int
    wall_s: float
    upload_s: float = 0.0
    compute_s: float = 0.0
    download_s: float = 0.0
    worker: int = 0
    retries: int = 0


@dataclass(frozen=True)
class EventRecord:
    """One resilience event observed during a run.

    Attributes
    ----------
    kind:
        Event category — ``"retry"`` (a task was re-attempted),
        ``"pool_recovery"`` (a dead/broken pool's missing tasks were
        recomputed in-process), ``"oom_degrade"`` (chunked execution
        re-planned with smaller chunks after a GPU OOM),
        ``"batch_error"`` (a batch cube failed under a non-raise
        ``on_error`` policy), ``"watchdog"`` (the serving watchdog
        requeued or failed a job whose heartbeat went stale).
    detail:
        Human-readable context (exception text, old/new chunk sizes...).
    chunk_index:
        The chunk or cube index the event concerns (-1 if run-wide).
    """

    kind: str
    detail: str = ""
    chunk_index: int = -1


@dataclass(frozen=True)
class ProfileReport:
    """A frozen profiling report: metadata, stage and chunk records."""

    meta: dict[str, object]
    stages: tuple[StageRecord, ...]
    chunks: tuple[ChunkRecord, ...]
    events: tuple[EventRecord, ...] = ()

    @property
    def total_wall_s(self) -> float:
        """Sum of the stage wall-clock intervals."""
        return sum(s.wall_s for s in self.stages)

    def to_dict(self) -> dict:
        """Plain-data form (what ``to_json`` serializes)."""
        return {
            "meta": dict(self.meta),
            "total_wall_s": self.total_wall_s,
            "stages": [asdict(s) for s in self.stages],
            "chunks": [asdict(c) for c in self.chunks],
            "events": [asdict(e) for e in self.events],
        }

    def to_json(self, indent: int = 2) -> str:
        """The report as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "ProfileReport":
        """Rebuild a report from its :meth:`to_dict` form.

        The inverse the serving layer needs: per-job reports cross the
        socket protocol as JSON, and the client reconstructs them here
        to reuse :meth:`to_text` instead of reimplementing rendering.
        Unknown keys are ignored so reports stay readable across
        protocol revisions.
        """
        def build(record_cls, entries):
            names = {f for f in record_cls.__dataclass_fields__}
            return tuple(
                record_cls(**{k: v for k, v in entry.items() if k in names})
                for entry in entries)

        return cls(meta=dict(data.get("meta", {})),
                   stages=build(StageRecord, data.get("stages", ())),
                   chunks=build(ChunkRecord, data.get("chunks", ())),
                   events=build(EventRecord, data.get("events", ())))

    def save(self, path: str) -> str:
        """Write the JSON report to ``path`` and return the path."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")
        return path

    def to_text(self) -> str:
        """An aligned, terminal-friendly rendering."""
        lines = ["profile"]
        for key, value in self.meta.items():
            lines.append(f"  {key}: {value}")
        if self.stages:
            lines.append("  stages (wall clock):")
            width = max(len(s.name) for s in self.stages)
            total = self.total_wall_s
            for s in self.stages:
                share = 100.0 * s.wall_s / total if total > 0 else 0.0
                lines.append(f"    {s.name:<{width}}  "
                             f"{s.wall_s * 1e3:9.2f} ms  {share:5.1f}%")
                if s.counters:
                    rendered = "  ".join(
                        f"{key}={value:g}"
                        for key, value in sorted(s.counters.items()))
                    lines.append(f"    {'':<{width}}  {rendered}")
            lines.append(f"    {'total':<{width}}  {total * 1e3:9.2f} ms")
        if self.chunks:
            lines.append("  chunks (upload/compute/download as in the "
                         "stream model):")
            lines.append("    idx  core  ext  halo     wall ms   "
                         "upload ms  compute ms  download ms  worker  retries")
            for c in self.chunks:
                lines.append(
                    f"    {c.index:>3}  {c.core_lines:>4}  {c.ext_lines:>3}"
                    f"  {c.halo:>4}  {c.wall_s * 1e3:10.2f}"
                    f"  {c.upload_s * 1e3:10.3f}  {c.compute_s * 1e3:10.3f}"
                    f"  {c.download_s * 1e3:11.3f}  {c.worker:>6}"
                    f"  {c.retries:>7}")
        if self.events:
            lines.append("  resilience events:")
            for e in self.events:
                where = "" if e.chunk_index < 0 else f" [chunk {e.chunk_index}]"
                detail = f": {e.detail}" if e.detail else ""
                lines.append(f"    {e.kind}{where}{detail}")
        return "\n".join(lines)


@dataclass
class Profiler:
    """Collects stage and chunk records during one run.

    A profiler is passed down the call chain
    (``run_amc(..., profiler=...)``); the executors it reaches append
    chunk records, the algorithm driver wraps its stages.  ``meta``
    carries free-form run context (backend, worker count, image shape).
    """

    meta: dict[str, object] = field(default_factory=dict)
    stage_records: list[StageRecord] = field(default_factory=list)
    chunk_records: list[ChunkRecord] = field(default_factory=list)
    event_records: list[EventRecord] = field(default_factory=list)
    #: Counters recorded during an open stage span, attached to the
    #: StageRecord when the span closes (keyed by stage name).
    pending_counters: dict[str, dict[str, float]] = field(
        default_factory=dict, init=False, repr=False)

    @contextmanager
    def stage(self, name: str):
        """Context manager timing one named stage."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.stage_records.append(
                StageRecord(name, time.perf_counter() - start,
                            self.pending_counters.pop(name, {})))

    def record_stage_counters(self, name: str,
                              counters: dict[str, float]) -> None:
        """Merge-add work counters onto the named stage's next record.

        Called from inside a :meth:`stage` span (the executors reach the
        profiler through the context/call chain); the accumulated dict
        is attached to the :class:`StageRecord` when the span closes.
        Counters recorded outside any span stay in
        :attr:`pending_counters` (standalone executor calls), where
        callers can still read them.
        """
        pending = self.pending_counters.setdefault(name, {})
        for key, value in counters.items():
            pending[key] = pending.get(key, 0.0) + float(value)

    def record_chunk(self, record: ChunkRecord) -> None:
        """Append one chunk record (workers return them to the parent)."""
        self.chunk_records.append(record)

    def record_event(self, kind: str, detail: str = "",
                     chunk_index: int = -1) -> None:
        """Append one resilience :class:`EventRecord`."""
        self.event_records.append(EventRecord(kind, detail, chunk_index))

    def report(self) -> ProfileReport:
        """Freeze the collected records into a :class:`ProfileReport`."""
        return ProfileReport(meta=dict(self.meta),
                             stages=tuple(self.stage_records),
                             chunks=tuple(self.chunk_records),
                             events=tuple(self.event_records))


def profiled_stage(profiler: Profiler | None, name: str):
    """``profiler.stage(name)`` or a no-op context when no profiler."""
    return nullcontext() if profiler is None else profiler.stage(name)
