"""Observability for AMC runs: where did the time go?

The package complements the virtual GPU's *modeled* accounting
(:mod:`repro.gpu.counters`) with *measured* host-side records: per-stage
wall-clock timers and per-chunk upload/compute/download splits, frozen
into a JSON- or text-renderable :class:`~repro.profiling.profiler.ProfileReport`.
Entry points: pass a :class:`Profiler` to
:func:`repro.core.amc.run_amc` (or use ``repro classify --profile``).
"""

from repro.profiling.profiler import (
    ChunkRecord,
    EventRecord,
    ProfileReport,
    Profiler,
    StageRecord,
    profiled_stage,
)

__all__ = [
    "ChunkRecord",
    "EventRecord",
    "ProfileReport",
    "Profiler",
    "StageRecord",
    "profiled_stage",
]
