"""The AMC classify workload: the paper's algorithm as a registry entry.

This module is where the body of the historical
:func:`~repro.pipeline.amc.execute_amc` now lives; that function (and
:func:`~repro.core.amc.run_amc` above it) is a thin facade over
``get_workload("amc").run(...)`` — same signature, bit-identical
results, golden-pinned by the pipeline test suite.  Nothing about the
execution changed: the same five stages, the same profiling records,
the same chunk-parallel morphological stage with its halo, faults,
retries and reuse counters.
"""

from __future__ import annotations

import numpy as np

from repro.backends import get_backend
from repro.core.amc import AMCConfig, AMCResult
from repro.pipeline.amc import build_amc_pipeline
from repro.pipeline.runner import Pipeline
from repro.profiling.profiler import Profiler
from repro.workloads.base import Workload


class AMCWorkload(Workload):
    """Automated Morphological Classification, end to end.

    The only ``"classify"``-kind built-in: morphology → endmembers →
    unmixing → classification → evaluation over any registered
    morphological backend, with the chunk planner honouring the SE
    radius as halo.
    """

    name = "amc"
    kind = "classify"
    stage_names = ("morphology", "endmembers", "unmixing",
                   "classification", "evaluation")
    config_type = AMCConfig

    def build_pipeline(self) -> Pipeline:
        """The canonical five-stage AMC pipeline."""
        return build_amc_pipeline()

    def halo(self, config) -> int:
        """The SE radius — every morphological output pixel reads an
        ``se_radius``-neighbourhood."""
        return self.as_config(config).se_radius

    def result_arrays(self, result: AMCResult) -> tuple[np.ndarray, ...]:
        """Labels, MEI, abundances — the digest order the serving
        layer's golden tests have always pinned."""
        return (result.labels, result.mei, result.abundances)

    def result_nbytes(self, result: AMCResult) -> int:
        """Retained payload of one cached AMC result (all ndarray
        fields, matching the historical serving accounting)."""
        arrays = [result.mei, result.erosion_index,
                  result.dilation_index, result.abundances, result.labels,
                  result.endmembers.spectra, result.endmembers.normalized]
        if result.endmember_labels is not None:
            arrays.append(result.endmember_labels)
        return int(sum(np.asarray(a).nbytes for a in arrays))

    def run(self, bip: np.ndarray, config=None, *, ground_truth=None,
            class_names=None, profiler: Profiler | None = None,
            pipeline: Pipeline | None = None) -> AMCResult:
        """Run one (H, W, N) image through the AMC pipeline.

        The historical ``execute_amc`` body: validate, build the
        context, run the (possibly caller-provided) pipeline, assemble
        the :class:`~repro.core.amc.AMCResult`.
        """
        config = self.as_config(config)
        if pipeline is None:
            pipeline = self.build_pipeline()
        bip = self.check_inputs(bip)
        ctx = {
            "bip": bip,
            "config": config,
            "backend": get_backend(config.backend).configured(
                optimize=config.optimize),
            "ground_truth": ground_truth,
            "class_names": class_names,
        }
        pipeline.run(ctx, profiler=profiler)
        return AMCResult(config=config, mei=ctx["mei"],
                         erosion_index=ctx["erosion_index"],
                         dilation_index=ctx["dilation_index"],
                         endmembers=ctx["endmembers"],
                         abundances=ctx["abundances"],
                         endmember_labels=ctx["endmember_labels"],
                         labels=ctx["labels"], report=ctx["report"],
                         gpu_output=ctx["gpu_output"])
