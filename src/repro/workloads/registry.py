"""The workload registry: one place that maps names to algorithms.

The exact mirror of :mod:`repro.backends.registry`, one level up the
stack: where the backend registry de-stringified *how the morphological
kernel runs*, this registry de-stringifies *which algorithm a request
is*.  Every layer that would otherwise compare workload names — the
serving layer's submit path, the CLI's ``detect``/``reduce`` dispatch,
the cache-key derivation — resolves through :func:`get_workload`
instead, so adding an algorithm is a single :func:`register_workload`
call (the ``workload-dispatch`` reprolint rule keeps it that way).
"""

from __future__ import annotations

from repro.errors import (RegistryTypeError, UnknownWorkloadError,
                          ValidationError)
from repro.workloads.base import Workload

_REGISTRY: dict[str, Workload] = {}


def register_workload(workload: Workload, *,
                      replace: bool = False) -> Workload:
    """Register a workload under its :attr:`~Workload.name`.

    Returns the workload (so the call composes as a decorator-ish
    one-liner).  Re-registering a taken name is an error unless
    ``replace=True`` — silent shadowing of ``amc`` would be a debugging
    nightmare.
    """
    if not isinstance(workload, Workload):
        raise RegistryTypeError(f"expected a Workload instance, got "
                        f"{type(workload).__name__}")
    if not workload.name:
        raise ValidationError("workload.name must be a non-empty string")
    if workload.name in _REGISTRY and not replace:
        raise ValidationError(
            f"workload {workload.name!r} is already registered; pass "
            f"replace=True to override it")
    _REGISTRY[workload.name] = workload
    return workload


def unregister_workload(name: str) -> None:
    """Remove a workload from the registry (no-op for unknown names)."""
    _REGISTRY.pop(name, None)


def workload_names(kind: str | None = None) -> tuple[str, ...]:
    """The registered workload names, sorted.

    ``kind`` filters to one family (``"detection"``, ``"reduction"``,
    ``"classify"``) — the source of the CLI's per-subcommand ``--algo``
    choices.
    """
    return tuple(sorted(
        name for name, workload in _REGISTRY.items()
        if kind is None or workload.kind == kind))


def get_workload(workload) -> Workload:
    """Resolve a workload name (or pass an instance through).

    Raises :class:`~repro.errors.UnknownWorkloadError` — listing the
    registered names — for anything not in the registry.
    """
    if isinstance(workload, Workload):
        return workload
    try:
        return _REGISTRY[workload]
    except KeyError:
        raise UnknownWorkloadError(
            f"unknown workload {workload!r}; registered workloads: "
            f"{workload_names()}") from None
