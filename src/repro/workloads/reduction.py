"""The PCA band-reduction workload: a composable preprocessing step.

The paper's pipeline (and [11] before it) front-loads a spectral
reduction before the heavy morphological processing.  This module
exposes that reduction through the same workload machinery as every
other algorithm: a *statistics* stage fits the principal components on
the whole pixel cloud (:func:`repro.spectral.pca` — one global
eigendecomposition, identical on every execution path), then a
*project* stage maps the fitted linear projection over the image as a
per-pixel kernel — chunk-parallel through
:func:`~repro.parallel.parallel_pixel_map` with the standard retry
policy, or the very same kernel whole-image when ``n_workers == 1``,
so the two paths are bit-identical.

Both stages are ordinary :class:`~repro.pipeline.Stage` objects, so a
custom pipeline can splice :class:`ProjectStage` in front of other
work (fit once, project per chunk) without going through
:meth:`PcaWorkload.run`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.pipeline.runner import Pipeline
from repro.pipeline.stages import Stage
from repro.profiling.profiler import Profiler
from repro.spectral.reduction import pca
from repro.workloads.base import Workload, run_pixel_kernel

#: Stage labels the reduction pipeline emits, in execution order.
REDUCTION_STAGE_NAMES = ("statistics", "project")


@dataclass(frozen=True)
class ReductionConfig:
    """Inputs of one band-reduction request.

    ``n_components`` is the number of leading components to keep (its
    upper bound — the band count — is checked against the cube at fit
    time); the three execution knobs match
    :class:`~repro.core.amc.AMCConfig` and never reach cache keys.
    """

    n_components: int = 3
    n_workers: int = 1
    max_retries: int = 0
    chunk_timeout_s: float | None = None
    #: Interface-uniform execution knob (see
    #: :class:`~repro.core.amc.AMCConfig`); the reduction kernels are
    #: plain NumPy linear algebra, so both modes run the same code.
    optimize: str = "fuse"

    def __post_init__(self) -> None:
        from repro.core.pairreuse import check_optimize

        check_optimize(self.optimize)
        if self.n_components < 1:
            raise ValidationError(
                f"n_components must be >= 1, got {self.n_components}")
        if self.n_workers < 0:
            raise ValidationError("n_workers must be >= 0 (0 = all cores)")
        if self.max_retries < 0:
            raise ValidationError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.chunk_timeout_s is not None and self.chunk_timeout_s <= 0:
            raise ValidationError(
                f"chunk_timeout_s must be positive, got "
                f"{self.chunk_timeout_s}")


@dataclass(frozen=True)
class ReductionResult:
    """Everything one band-reduction run produces."""

    config: ReductionConfig
    workload: str           # registry name of the reducer
    transformed: np.ndarray  # (H, W, K) reduced cube
    components: np.ndarray   # (K, N) projection rows
    scores: np.ndarray       # (K,) per-component variance
    mean: np.ndarray         # (N,) spectral mean removed before projecting


def project_components(cube_bip: np.ndarray, mean: np.ndarray,
                       components: np.ndarray) -> np.ndarray:
    """The projection kernel: center and project each pixel.

    A per-pixel einsum with fixed reduction order along the spectral
    axis only — chunked evaluation is bit-identical to whole-image.
    """
    centered = np.asarray(cube_bip, dtype=np.float64) - mean
    return np.einsum("hwn,kn->hwk", centered, components)


class FitStage(Stage):
    """Fit the projection on the whole pixel cloud (one global pass)."""

    name = "statistics"

    def run(self, ctx: dict) -> None:
        projection = pca(ctx["bip"], ctx["config"].n_components)
        ctx["fit"] = projection
        ctx["payload"] = (projection.mean, projection.components)


class ProjectStage(Stage):
    """Map the fitted projection over the image (chunk-parallel).

    Expects ``ctx["payload"] = (mean, components)`` — normally from
    :class:`FitStage`, but any producer works, which is what makes
    this a composable preprocessing stage.
    """

    name = "project"

    def run(self, ctx: dict) -> None:
        ctx["transformed"] = run_pixel_kernel(
            ctx["bip"], project_components, ctx["payload"],
            config=ctx["config"], profiler=ctx.get("profiler"))


class PcaWorkload(Workload):
    """Principal-component band reduction as a registered workload."""

    name = "pca"
    kind = "reduction"
    stage_names = REDUCTION_STAGE_NAMES
    config_type = ReductionConfig

    def build_pipeline(self) -> Pipeline:
        """statistics (fit) → project."""
        return Pipeline((FitStage(), ProjectStage()))

    def result_arrays(self, result: ReductionResult
                      ) -> tuple[np.ndarray, ...]:
        """Reduced cube first, then the fit (components, variances,
        mean) — everything a consumer needs to invert or extend the
        projection."""
        return (result.transformed, result.components, result.scores,
                result.mean)

    def run(self, bip: np.ndarray, config=None, *, ground_truth=None,
            class_names=None, profiler: Profiler | None = None,
            pipeline: Pipeline | None = None) -> ReductionResult:
        """Reduce one (H, W, N) image to its leading components.

        ``ground_truth`` and ``class_names`` are accepted for signature
        uniformity and unused by reductions.
        """
        config = self.as_config(config)
        if pipeline is None:
            pipeline = self.build_pipeline()
        bip = self.check_inputs(bip)
        ctx = {"bip": bip, "config": config, "workload": self}
        pipeline.run(ctx, profiler=profiler)
        fit = ctx["fit"]
        return ReductionResult(config=config, workload=self.name,
                               transformed=ctx["transformed"],
                               components=fit.components,
                               scores=fit.scores, mean=fit.mean)
