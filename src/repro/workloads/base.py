"""The :class:`Workload` contract: what a registered algorithm declares.

A workload is the unit the execution core is generic over.  Where a
:class:`~repro.backends.MorphologicalBackend` answers "how do I run the
morphological kernel", a workload answers "what algorithm is this
request" — it declares:

* ``stage_names`` — the ordered stage labels its pipeline emits (the
  profiling contract: a profiled run yields exactly one record per
  stage, in this order, on every execution path);
* :meth:`halo` — the per-chunk context its stencil widest stage needs,
  which the chunk planner honours (AMC: the SE radius; the per-pixel
  detectors and PCA: 0);
* ``config_type`` — the frozen dataclass its parameters coerce into
  (so invalid requests fail at admission, not in a worker);
* ``execution_knobs`` — the config fields that select *how* a result
  is computed, never *what*; excluded from cache keys by
  :meth:`canonical_params` (sound under the repo-wide bit-identity
  discipline);
* :meth:`result_arrays` — the result's decision arrays in digest
  order, which define its bit-identity fingerprint and its cache
  accounting;
* :meth:`run` — one image through one (possibly caller-provided,
  long-lived) :class:`~repro.pipeline.Pipeline`.

Implementations live beside this module (``amc``, ``detection``,
``reduction``) and register in :mod:`repro.workloads.registry`.
"""

from __future__ import annotations

from dataclasses import asdict

import numpy as np

from repro.pipeline.runner import Pipeline
from repro.profiling.profiler import Profiler

#: Config fields that select an execution strategy, not a result —
#: shared by every built-in workload (and the historical
#: ``repro.serving.EXECUTION_KNOBS``).
DEFAULT_EXECUTION_KNOBS = frozenset(
    {"n_workers", "max_retries", "chunk_timeout_s", "optimize"})


def run_pixel_kernel(bip: np.ndarray, kernel, payload, *, config,
                     halo: int = 0, profiler: Profiler | None = None
                     ) -> np.ndarray:
    """Run a per-pixel kernel serially or chunk-parallel, bit-identically.

    The one place a workload stage decides between the whole-image
    serial path (``kernel(bip, *payload)``) and the chunk-parallel
    fan-out (:func:`~repro.parallel.parallel_pixel_map`, with the
    config's retry policy and the caller's profiler).  ``n_workers=1``
    means serial; anything else — including 0 = all cores — goes
    through the pool.
    """
    if config.n_workers != 1:
        # imports deferred: repro.parallel sits above this package
        from repro.parallel import parallel_pixel_map
        from repro.resilience import RetryPolicy

        policy = RetryPolicy(max_retries=config.max_retries,
                             chunk_timeout_s=config.chunk_timeout_s)
        return parallel_pixel_map(bip, kernel, payload, halo=halo,
                                  n_workers=config.n_workers,
                                  profiler=profiler, policy=policy)
    return np.asarray(kernel(bip, *payload))


class Workload:
    """One registered algorithm the generic pipeline can execute.

    Subclasses set the class attributes, implement
    :meth:`build_pipeline` and :meth:`run`, and usually inherit the
    param/canonicalization plumbing unchanged.
    """

    #: Registry name (the CLI's ``--algo`` / the serving protocol's
    #: ``workload`` field).
    name: str = ""

    #: Coarse family: ``"classify"`` | ``"detection"`` | ``"reduction"``
    #: — what the CLI groups subcommand choices by.
    kind: str = "classify"

    #: Ordered stage labels the workload's pipeline emits.
    stage_names: tuple[str, ...] = ()

    #: Frozen dataclass the workload's parameters coerce into.
    config_type: type | None = None

    #: Config fields excluded from cache keys (execution strategy only).
    execution_knobs: frozenset[str] = DEFAULT_EXECUTION_KNOBS

    #: Whether :meth:`run` needs a target spectrum in its config
    #: (SAM/CEM matched filters do; anomaly detectors and classify
    #: workloads do not).  Capability flag, so callers never compare
    #: workload names.
    requires_target: bool = False

    #: Heartbeat-age limit (seconds) before the serving watchdog deems
    #: a running job of this workload stuck; None defers to the
    #: server-wide default.  Override for workloads whose healthy
    #: attempts legitimately run long between heartbeats.
    watchdog_deadline_s: float | None = None

    def build_pipeline(self) -> Pipeline:
        """A fresh pipeline of this workload's stages (reusable across
        runs — the serving layer keeps one per executor thread)."""
        raise NotImplementedError

    def halo(self, config) -> int:
        """Lines of per-chunk context the chunk planner must provide."""
        return 0

    def as_config(self, params):
        """Coerce ``params`` (None | mapping | config_type) to a config.

        A mapping is splatted into the dataclass constructor, so
        unknown keys and invalid values fail here — at admission —
        rather than inside a worker.
        """
        if self.config_type is None:  # pragma: no cover - abstract use
            raise NotImplementedError(f"workload {self.name!r} declares "
                                      f"no config_type")
        if params is None:
            return self.config_type()
        if isinstance(params, self.config_type):
            return params
        return self.config_type(**dict(params))

    def canonical_params(self, params) -> dict:
        """The result-affecting parameters of ``params``, as a plain
        dict.

        Fields are the ``config_type`` fields minus
        :attr:`execution_knobs`, sorted; nested dataclasses flatten to
        dicts, so the output is JSON-serializable and
        order-independent.  This is the workload's *declared param
        list* — the only thing of a request that reaches the cache key
        besides the input arrays and the workload name.
        """
        fields = asdict(self.as_config(params))
        return {name: value for name, value in sorted(fields.items())
                if name not in self.execution_knobs}

    def check_inputs(self, bip: np.ndarray) -> np.ndarray:
        """Validate the input cube; returns it coerced to an (H, W, N)
        BIP array.

        Accepts a :class:`~repro.hsi.cube.HyperCube` or any 3-D array.
        The default rejects empty cubes — any zero-sized dimension —
        with :class:`~repro.errors.InvalidCubeError` naming the shape,
        and non-finite cubes
        (:class:`~repro.errors.NonFiniteInputError` naming the first
        bad pixel/band) — the serving layer calls this at submit time,
        so a poisoned cube never occupies a queue slot.
        """
        # imports deferred: repro.core/.pipeline sit beside/above this
        # package and import it back through the AMC facade
        from repro.core.amc import _as_bip
        from repro.errors import InvalidCubeError
        from repro.pipeline.amc import check_finite_cube

        bip = _as_bip(bip)
        if bip.size == 0:
            raise InvalidCubeError(
                f"cube has a zero-sized dimension (shape "
                f"{tuple(bip.shape)}); nothing to process")
        return check_finite_cube(bip)

    def result_arrays(self, result) -> tuple[np.ndarray, ...]:
        """The result's decision arrays, in digest order.

        Defines both the bit-identity fingerprint
        (:func:`~repro.serving.api.result_digest`) and the default
        cache accounting (:meth:`result_nbytes`).
        """
        raise NotImplementedError

    def result_nbytes(self, result) -> int:
        """Approximate retained size of one cached result, in bytes."""
        return int(sum(np.asarray(a).nbytes
                       for a in self.result_arrays(result)))

    def run(self, bip: np.ndarray, config=None, *, ground_truth=None,
            class_names=None, profiler: Profiler | None = None,
            pipeline: Pipeline | None = None):
        """Run one (H, W, N) image through this workload's pipeline.

        ``ground_truth`` is workload-interpreted: a label map for
        classify workloads, a boolean target mask for detection
        workloads (scored into a
        :class:`~repro.core.detection.DetectionCurve`), unused by
        reductions.  ``pipeline`` lets a caller supply a prebuilt —
        possibly long-lived — pipeline of this workload's stages.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r} ({self.kind})>"
