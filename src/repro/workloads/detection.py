"""Detection workloads: SAM and CEM target detection, RX anomalies.

Each detector follows the paper's streaming-processor shape (Fig. 4)
without being AMC: a *statistics* stage makes one global pass over the
scene (a target spectrum needs none; CEM inverts the scene correlation;
RX inverts the scene covariance), then a *scores* stage maps a
per-pixel kernel over the image — chunk-parallel through
:func:`~repro.parallel.parallel_pixel_map` when ``n_workers != 1``,
with the same profiling records, fault sites and retry machinery as
the AMC morphological stage — and an *evaluation* stage scores the map
against an optional target mask
(:func:`~repro.core.detection.detection_curve`).

Bit-identity holds by construction: statistics are computed once on
the whole image on every path, and the kernels
(:func:`sam_scores` / :func:`~repro.core.detection.cem_scores` /
:func:`~repro.core.detection.rx_scores`) are per-pixel independent
with fixed reduction order, so the serial path (the same kernel over
the whole image) and any chunking produce identical bits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.detection import (
    DetectionCurve,
    cem_scores,
    cem_statistics,
    detection_curve,
    rx_scores,
    rx_statistics,
)
from repro.errors import ValidationError
from repro.pipeline.runner import Pipeline
from repro.pipeline.stages import Stage
from repro.profiling.profiler import Profiler
from repro.spectral.distances import sam
from repro.workloads.base import Workload, run_pixel_kernel

#: Stage labels every detection pipeline emits, in execution order.
DETECTION_STAGE_NAMES = ("statistics", "scores", "evaluation")


@dataclass(frozen=True)
class DetectionConfig:
    """Inputs of one detection request.

    Attributes
    ----------
    target:
        (N,) spectrum of the material to detect, as a tuple of floats
        (JSON-canonicalizable, hence part of the cache key).  Required
        by the matched filters (SAM, CEM); ignored by RX.
    regularization:
        Ridge factor on the scene second-moment matrix (CEM, RX).
    max_alarms:
        Detection-curve horizon when a target mask is supplied
        (default: 10% of the scene).
    n_workers / max_retries / chunk_timeout_s:
        Execution knobs of the chunk-parallel scores stage — same
        semantics as on :class:`~repro.core.amc.AMCConfig`, excluded
        from cache keys.
    """

    target: tuple[float, ...] | None = None
    regularization: float = 1e-6
    max_alarms: int | None = None
    n_workers: int = 1
    max_retries: int = 0
    chunk_timeout_s: float | None = None
    #: Accepted for interface uniformity with
    #: :class:`~repro.core.amc.AMCConfig` (same validation, same
    #: cache-key exclusion).  The detection kernels are single plain
    #: NumPy per-pixel passes — there is no stream graph or virtual
    #: board here, so both modes run the same code.
    optimize: str = "fuse"

    def __post_init__(self) -> None:
        from repro.core.pairreuse import check_optimize

        check_optimize(self.optimize)
        if self.target is not None:
            coerced = tuple(float(v) for v in np.asarray(self.target,
                                                         dtype=np.float64))
            object.__setattr__(self, "target", coerced)
        if self.regularization <= 0:
            raise ValidationError(f"regularization must be positive, got "
                             f"{self.regularization}")
        if self.max_alarms is not None and self.max_alarms < 1:
            raise ValidationError(f"max_alarms must be >= 1, got "
                             f"{self.max_alarms}")
        if self.n_workers < 0:
            raise ValidationError("n_workers must be >= 0 (0 = all cores)")
        if self.max_retries < 0:
            raise ValidationError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.chunk_timeout_s is not None and self.chunk_timeout_s <= 0:
            raise ValidationError(
                f"chunk_timeout_s must be positive, got "
                f"{self.chunk_timeout_s}")


@dataclass(frozen=True)
class DetectionResult:
    """Everything one detection run produces."""

    config: DetectionConfig
    workload: str               # registry name of the detector
    scores: np.ndarray          # (H, W), higher = more target-like
    curve: DetectionCurve | None   # scored when a target mask was given

    @property
    def auc(self) -> float | None:
        """Area under the detection curve, when a mask was supplied."""
        return None if self.curve is None else self.curve.auc


def sam_scores(cube_bip: np.ndarray, target: np.ndarray) -> np.ndarray:
    """The SAM per-pixel kernel: negated spectral angle to ``target``.

    Negated so "higher = more target-like" holds across all detectors
    (the angle itself shrinks with similarity).  Per-pixel sums along
    the spectral axis only, so chunked evaluation is bit-identical to
    whole-image.
    """
    return -sam(np.asarray(cube_bip, dtype=np.float64), target)


class StatisticsStage(Stage):
    """One global pass: the detector's fixed per-pixel-kernel payload."""

    name = "statistics"

    def run(self, ctx: dict) -> None:
        workload = ctx["workload"]
        ctx["payload"] = workload.statistics(ctx["bip"], ctx["config"])


class ScoreStage(Stage):
    """Map the detector's kernel over the image (chunk-parallel)."""

    name = "scores"

    def run(self, ctx: dict) -> None:
        workload, config, bip = ctx["workload"], ctx["config"], ctx["bip"]
        ctx["scores"] = run_pixel_kernel(
            bip, workload.kernel, ctx["payload"], config=config,
            halo=workload.halo(config), profiler=ctx.get("profiler"))


class DetectionEvaluationStage(Stage):
    """Score the map against a target mask, when one was supplied."""

    name = "evaluation"

    def run(self, ctx: dict) -> None:
        mask = ctx.get("ground_truth")
        curve = None
        if mask is not None:
            curve = detection_curve(
                ctx["scores"], np.asarray(mask).astype(bool),
                max_alarms=ctx["config"].max_alarms)
        ctx["curve"] = curve


class DetectionWorkload(Workload):
    """Shared machinery of the three built-in detectors.

    Subclasses declare the registry name, the per-pixel ``kernel``
    (a picklable module-level function) and implement
    :meth:`statistics`; everything else — pipeline shape, config
    coercion, canonicalization, execution — is common.
    """

    kind = "detection"
    stage_names = DETECTION_STAGE_NAMES
    config_type = DetectionConfig

    #: The per-pixel scoring kernel ``kernel(sub_bip, *payload)``.
    kernel = None

    def build_pipeline(self) -> Pipeline:
        """statistics → scores → evaluation."""
        return Pipeline((StatisticsStage(), ScoreStage(),
                         DetectionEvaluationStage()))

    def statistics(self, bip: np.ndarray, config: DetectionConfig):
        """The kernel payload: one whole-image pass, identical on the
        serial and chunk-parallel paths."""
        raise NotImplementedError

    def result_arrays(self, result: DetectionResult
                      ) -> tuple[np.ndarray, ...]:
        """The score map — the detection decision surface (the curve
        derives deterministically from it and the mask, which is
        already in the job key)."""
        return (result.scores,)

    def run(self, bip: np.ndarray, config=None, *, ground_truth=None,
            class_names=None, profiler: Profiler | None = None,
            pipeline: Pipeline | None = None) -> DetectionResult:
        """Run one (H, W, N) image through the detection pipeline.

        ``ground_truth`` is the (H, W) boolean target mask (anything
        array-like coercible to bool); when given, the evaluation stage
        produces a :class:`~repro.core.detection.DetectionCurve`.
        ``class_names`` is accepted for signature uniformity and
        unused.
        """
        config = self.as_config(config)
        if self.requires_target and config.target is None:
            raise ValidationError(
                f"workload {self.name!r} needs a target spectrum: pass "
                f"target=(...) in its parameters")
        if pipeline is None:
            pipeline = self.build_pipeline()
        bip = self.check_inputs(bip)
        ctx = {
            "bip": bip,
            "config": config,
            "workload": self,
            "ground_truth": ground_truth,
            "class_names": class_names,
        }
        pipeline.run(ctx, profiler=profiler)
        return DetectionResult(config=config, workload=self.name,
                               scores=ctx["scores"], curve=ctx["curve"])


class SamWorkload(DetectionWorkload):
    """Spectral Angle Mapper target detection.

    Scale-invariant matched filter: score = negated angle between each
    pixel and the target spectrum.  Needs no scene statistics — the
    statistics stage just fixes the target vector.
    """

    name = "sam"
    requires_target = True
    kernel = staticmethod(sam_scores)

    def statistics(self, bip: np.ndarray, config: DetectionConfig):
        """The target spectrum, as the kernel's single payload entry."""
        return (np.asarray(config.target, dtype=np.float64),)


class CemWorkload(DetectionWorkload):
    """Constrained energy minimization target detection.

    Statistics: the CEM filter weights from the scene correlation
    (:func:`~repro.core.detection.cem_statistics`); kernel: the filter
    response ``w^T x`` per pixel.
    """

    name = "cem"
    requires_target = True
    kernel = staticmethod(cem_scores)

    def statistics(self, bip: np.ndarray, config: DetectionConfig):
        """The filter weight vector (one correlation inverse, global)."""
        return (cem_statistics(bip, np.asarray(config.target,
                                               dtype=np.float64),
                               regularization=config.regularization),)


class RxWorkload(DetectionWorkload):
    """Reed-Xiaoli global anomaly detection.

    Statistics: scene mean + inverse covariance
    (:func:`~repro.core.detection.rx_statistics`); kernel: the
    Mahalanobis quadratic form per pixel.  Needs no target.
    """

    name = "rx"
    kernel = staticmethod(rx_scores)

    def statistics(self, bip: np.ndarray, config: DetectionConfig):
        """``(mean, inverse covariance)`` of the whole scene."""
        return rx_statistics(bip, regularization=config.regularization)
